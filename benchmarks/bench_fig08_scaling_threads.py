"""Figure 8 bench: thread scaling of the nine applications on Lulesh.

Regenerates the modeled sweep (asserting the 59%-vs-79% efficiency split
between scan and window applications) and benchmarks the Lulesh step
kernel plus the compiled-equivalent window kernels the model replays.
"""

import numpy as np
import pytest
import scipy.signal
from numpy.lib.stride_tricks import sliding_window_view

from benchmarks.conftest import regenerate
from repro.harness import fig08
from repro.sim import LuleshProxy


def test_fig08_regenerate(figure_results, benchmark):
    results = regenerate(figure_results, "fig8", fig08.run, benchmark)
    # Window applications scale better than the stream-bound first five
    # (paper: 79% vs 59% at 8 threads).
    assert results["window_avg"] > results["first_five_avg"]
    assert 0.45 <= results["first_five_avg"] <= 0.75
    assert 0.70 <= results["window_avg"] <= 0.90


def test_bench_lulesh_step(benchmark):
    sim = LuleshProxy(32)
    benchmark(sim.advance)


class TestWindowKernels:
    """The compiled-speed window kernels of the calibration layer."""

    @pytest.fixture(scope="class")
    def signal(self):
        return np.random.default_rng(8).normal(size=100_000)

    def test_bench_moving_average_kernel(self, benchmark, signal):
        kernel = np.ones(25) / 25
        benchmark(lambda: np.convolve(signal, kernel, mode="same"))

    def test_bench_moving_median_kernel(self, benchmark, signal):
        windows = sliding_window_view(signal, 25)
        benchmark(lambda: np.median(windows, axis=1))

    def test_bench_savgol_kernel(self, benchmark, signal):
        benchmark(lambda: scipy.signal.savgol_filter(signal, 25, 2))

    def test_bench_gaussian_kernel(self, benchmark, signal):
        offsets = np.arange(-12, 13)
        weights = np.exp(-0.5 * (offsets / 5.0) ** 2)
        ones = np.ones_like(signal)
        benchmark(
            lambda: np.convolve(signal, weights, mode="same")
            / np.convolve(ones, weights, mode="same")
        )
