"""Figure 9 bench: time-sharing zero-copy vs extra-copy.

Benchmarks the real zero-copy and copying code paths at this host's scale
(the measured micro-comparison) and regenerates the modeled paper-scale
sweeps with their memory cliffs.
"""

import numpy as np
import pytest

from benchmarks.conftest import regenerate
from repro.analytics import LogisticRegression
from repro.core import SchedArgs
from repro.harness import fig09


def test_fig09_regenerate(figure_results, benchmark):
    results = regenerate(figure_results, "fig9", fig09.run, benchmark)
    # 9a shape: small gains at small steps, blow-up near the bound, crash
    # past it (paper: up to 11% then crash at 2 GB).
    a = results["fig9a"]
    steps = sorted(a)
    assert a[steps[0]]["gain"] < 1.10
    assert a[steps[-1]]["copy_crashed"]
    # 9b shape: flat until the knee, multi-x at edge 233 (paper: 5x).
    b = results["fig9b"]
    edges = sorted(b)
    assert b[edges[0]]["gain"] < 1.10
    assert b[edges[-1]]["gain"] > 2.0
    # Measured micro-comparison: the copy costs real time even unpressured.
    assert results["measured_copy"]["copy"] > results["measured_copy"]["nocopy"]


@pytest.fixture(scope="module")
def lr_data():
    rng = np.random.default_rng(9)
    data = rng.normal(size=16 * 40_000)
    data.reshape(-1, 16)[:, 15] = data.reshape(-1, 16)[:, 15] > 0
    return data


def _make_lr(copy_input):
    return LogisticRegression(
        SchedArgs(chunk_size=16, num_iters=3, vectorized=True, copy_input=copy_input),
        dims=15,
    )


def test_bench_zero_copy_run(benchmark, lr_data):
    app = _make_lr(copy_input=False)
    benchmark(lambda: (app.reset(), app.run(lr_data)))


def test_bench_extra_copy_run(benchmark, lr_data):
    app = _make_lr(copy_input=True)
    benchmark(lambda: (app.reset(), app.run(lr_data)))


def test_bench_raw_memcpy(benchmark, lr_data):
    """The raw cost the extra-copy variant adds per time-step."""
    benchmark(lambda: lr_data.copy())
