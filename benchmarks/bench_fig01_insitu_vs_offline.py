"""Figure 1 bench: in-situ vs offline k-means on Heat3D.

Regenerates the figure's rows (measured real-I/O table + paper-scale
modeled table) and benchmarks the two pipelines' single-step costs.
"""

import numpy as np

from benchmarks.conftest import regenerate
from repro.analytics import KMeans
from repro.baselines import OfflineDriver
from repro.core import SchedArgs, TimeSharingDriver
from repro.harness import fig01
from repro.sim import Heat3D

GRID = (16, 24, 24)


def make_kmeans(iters=4):
    probe = Heat3D(GRID)
    init = probe.advance().reshape(-1, 4)[:8].copy()
    return KMeans(
        SchedArgs(chunk_size=4, num_iters=iters, extra_data=init, vectorized=True),
        dims=4,
    )


def test_fig01_regenerate(figure_results, benchmark):
    data = regenerate(figure_results, "fig1", fig01.run, benchmark)
    measured = {k: v for k, v in data.items() if k != "modeled"}
    # The figure's shape: the in-situ advantage shrinks as analytics
    # computation grows (paper Fig. 1).
    speedups = [measured[i]["speedup"] for i in sorted(measured)]
    assert speedups[0] >= speedups[-1] * 0.8
    # At paper scale the modeled in-situ advantage is large at low iteration
    # counts (paper: up to 10.4x).
    assert data["modeled"][min(data["modeled"])]["speedup"] > 3.0


def test_bench_insitu_step(benchmark):
    driver = TimeSharingDriver(Heat3D(GRID), make_kmeans())
    benchmark(lambda: driver.run(1))


def test_bench_offline_step(benchmark, tmp_path):
    sim = Heat3D(GRID)
    app = make_kmeans()
    driver = OfflineDriver(sim, app, scratch_dir=tmp_path)
    benchmark(lambda: driver.run(1))


def test_bench_offline_io_only(benchmark, tmp_path):
    """The store+load round trip the paper's Fig. 1 I/O bar measures."""
    import os

    payload = np.random.default_rng(0).random(GRID[0] * GRID[1] * GRID[2])
    path = tmp_path / "step.bin"

    def roundtrip():
        with open(path, "wb") as fh:
            fh.write(payload.tobytes())
            fh.flush()
            os.fsync(fh.fileno())
        return np.fromfile(path, dtype=np.float64)

    benchmark(roundtrip)
