"""Communication-substrate microbenchmarks.

Latency/throughput of the threaded SPMD substrate's primitives — the
floor under every distributed number in this repository.  Useful when
porting the runtime to a real MPI backend: the same benches run there
and the deltas localize regressions.
"""

import numpy as np
import pytest

from repro.comm import spmd_launch


@pytest.mark.parametrize("ranks", [2, 4, 8])
def test_bench_barrier(benchmark, ranks):
    def round_of_barriers():
        def body(comm):
            for _ in range(10):
                comm.barrier()

        spmd_launch(ranks, body, timeout=30)

    benchmark.pedantic(round_of_barriers, rounds=3, iterations=1)


@pytest.mark.parametrize("ranks", [2, 4])
def test_bench_allreduce_scalar(benchmark, ranks):
    def round_of_allreduce():
        def body(comm):
            acc = 0
            for _ in range(10):
                acc = comm.allreduce(comm.rank)
            return acc

        spmd_launch(ranks, body, timeout=30)

    benchmark.pedantic(round_of_allreduce, rounds=3, iterations=1)


@pytest.mark.parametrize("kib", [1, 64, 1024])
def test_bench_pt2pt_payload(benchmark, kib):
    payload = np.zeros(kib * 1024 // 8)

    def ping_pong():
        def body(comm):
            if comm.rank == 0:
                comm.send(payload, dest=1, tag=1)
                return comm.recv(source=1, tag=2).nbytes
            got = comm.recv(source=0, tag=1)
            comm.send(got, dest=0, tag=2)
            return got.nbytes

        spmd_launch(2, body, timeout=30)

    benchmark.pedantic(ping_pong, rounds=3, iterations=1)


def test_bench_bcast_numpy(benchmark):
    payload = np.zeros(128 * 1024 // 8)

    def round_of_bcast():
        def body(comm):
            for _ in range(5):
                comm.bcast(payload if comm.is_master else None)

        spmd_launch(4, body, timeout=30)

    benchmark.pedantic(round_of_bcast, rounds=3, iterations=1)


def test_bench_cluster_spinup(benchmark):
    """Fixed cost of standing up a rank team (thread spawn + teardown)."""
    benchmark.pedantic(
        lambda: spmd_launch(4, lambda c: c.rank, timeout=30),
        rounds=5, iterations=1,
    )


def test_bench_dup_context(benchmark):
    def dup_round():
        def body(comm):
            d = comm.dup()
            return d.allreduce(1)

        spmd_launch(4, body, timeout=30)

    benchmark.pedantic(dup_round, rounds=3, iterations=1)
