"""Figure 11 bench: early emission of reduction objects.

Benchmarks the real trigger-on vs trigger-off reduction paths (measuring
the state-size effect directly) and regenerates the modeled paper-scale
sweeps with their crashes.
"""

import numpy as np
import pytest

from benchmarks.conftest import regenerate
from repro.analytics import MovingAverage, MovingMedian
from repro.core import SchedArgs
from repro.harness import fig11


def test_fig11_regenerate(figure_results, benchmark):
    results = regenerate(figure_results, "fig11", fig11.run, benchmark)
    # Measured layer: identical results, orders-of-magnitude fewer live
    # reduction objects with the trigger.
    measured = results["measured"]
    assert measured["peak_off"] / measured["peak_on"] > 100
    # Modeled layer: speedup grows with the step size and the trigger-less
    # variant crashes at the largest configurations (paper: 5.6x / 5.2x).
    a = results["fig11a"]
    assert a[sorted(a)[-1]]["off_crashed"]
    assert max(v["speedup"] for v in a.values() if not v["off_crashed"]) > 2.0
    b = results["fig11b"]
    assert b[sorted(b)[-1]]["off_crashed"]
    assert max(v["speedup"] for v in b.values() if not v["off_crashed"]) > 2.0


@pytest.fixture(scope="module")
def signal():
    return np.random.default_rng(11).normal(size=20_000)


def _run_moving_average(signal, disable):
    app = MovingAverage(
        SchedArgs(disable_early_emission=disable), win_size=7
    )
    out = np.full(signal.shape[0], np.nan)
    app.run2(signal, out)
    return out


def test_bench_moving_average_with_trigger(benchmark, signal):
    benchmark(lambda: _run_moving_average(signal, disable=False))


def test_bench_moving_average_without_trigger(benchmark, signal):
    benchmark(lambda: _run_moving_average(signal, disable=True))


def test_bench_moving_median_with_trigger(benchmark, signal):
    small = signal[:3000]

    def run():
        app = MovingMedian(SchedArgs(), win_size=11)
        out = np.full(small.shape[0], np.nan)
        app.run2(small, out)
        return out

    benchmark(run)


def test_bench_moving_median_without_trigger(benchmark, signal):
    small = signal[:3000]

    def run():
        app = MovingMedian(SchedArgs(disable_early_emission=True), win_size=11)
        out = np.full(small.shape[0], np.nan)
        app.run2(small, out)
        return out

    benchmark(run)
