"""Figure 5 bench: Smart vs mini-Spark on LR / k-means / histogram.

Benchmarks both engines on identical emulator data (the measured core of
Fig. 5) and regenerates the full figure rows including the thread model
and memory-footprint audit.
"""

import pytest

from benchmarks.conftest import regenerate
from repro.analytics import Histogram, KMeans, LogisticRegression
from repro.baselines.minispark import (
    MiniSparkContext,
    spark_histogram,
    spark_kmeans,
    spark_logistic_regression,
)
from repro.core import SchedArgs
from repro.harness import fig05


def test_fig05_regenerate(figure_results, benchmark):
    results = regenerate(figure_results, "fig5", fig05.run, benchmark)
    # Headline claim: Smart outperforms Spark by at least an order of
    # magnitude on all three applications.
    for app in ("histogram", "kmeans", "logistic_regression"):
        assert results[app]["spark"] / results[app]["smart"] > 10.0
        assert results[app]["spark_mem"] > 10.0 * results[app]["smart_mem"]


class TestHistogram:
    def test_bench_smart(self, benchmark, emulator_stream):
        app = Histogram(SchedArgs(vectorized=True), lo=-4, hi=4, num_buckets=100)
        benchmark(lambda: (app.reset(), app.run(emulator_stream)))

    def test_bench_smart_scalar_chunk_loop(self, benchmark, emulator_stream):
        data = emulator_stream[:8000]
        app = Histogram(SchedArgs(), lo=-4, hi=4, num_buckets=100)
        benchmark(lambda: (app.reset(), app.run(data)))

    def test_bench_minispark(self, benchmark, emulator_stream):
        data = emulator_stream[:8000]
        with MiniSparkContext(1) as ctx:
            benchmark(lambda: spark_histogram(ctx, data, -4, 4, 100))


class TestKMeans:
    DIMS, K, ITERS = 64, 8, 10

    @pytest.fixture(scope="class")
    def points(self, emulator_stream):
        usable = (len(emulator_stream) // self.DIMS) * self.DIMS
        return emulator_stream[:usable]

    def test_bench_smart(self, benchmark, points):
        init = points.reshape(-1, self.DIMS)[: self.K].copy()
        app = KMeans(
            SchedArgs(chunk_size=self.DIMS, num_iters=self.ITERS,
                      extra_data=init, vectorized=True),
            dims=self.DIMS,
        )
        benchmark(lambda: (app.reset(), app.run(points)))

    def test_bench_minispark(self, benchmark, points):
        small = points[: 40 * self.DIMS]  # pure-Python distance loops are slow
        init = small.reshape(-1, self.DIMS)[: self.K].copy()
        with MiniSparkContext(1) as ctx:
            benchmark(lambda: spark_kmeans(ctx, small, init, 2))


class TestLogisticRegression:
    DIMS, ITERS = 15, 10

    @pytest.fixture(scope="class")
    def samples(self, emulator_stream):
        row = self.DIMS + 1
        usable = (len(emulator_stream) // row) * row
        data = emulator_stream[:usable].copy()
        data.reshape(-1, row)[:, self.DIMS] = (
            data.reshape(-1, row)[:, self.DIMS] > 0
        )
        return data

    def test_bench_smart(self, benchmark, samples):
        app = LogisticRegression(
            SchedArgs(chunk_size=self.DIMS + 1, num_iters=self.ITERS,
                      vectorized=True),
            dims=self.DIMS,
        )
        benchmark(lambda: (app.reset(), app.run(samples)))

    def test_bench_minispark(self, benchmark, samples):
        small = samples[: 200 * (self.DIMS + 1)]
        with MiniSparkContext(1) as ctx:
            benchmark(
                lambda: spark_logistic_regression(ctx, small, self.DIMS, 2)
            )
