"""Figure 6 bench: Smart vs hand-written low-level analytics.

Benchmarks the identical kernels through both code paths (the measured
core of Fig. 6) plus the serialization step that explains Smart's
overhead, and regenerates the figure's overhead/programmability tables.
"""

import numpy as np
import pytest

from benchmarks.conftest import regenerate
from repro.analytics import KMeans, LogisticRegression, make_blobs, make_logreg_samples
from repro.baselines.lowlevel import lowlevel_kmeans, lowlevel_logreg
from repro.core import SchedArgs
from repro.core.serialization import deserialize_map, serialize_map
from repro.harness import fig06


def test_fig06_regenerate(figure_results, benchmark):
    results = regenerate(figure_results, "fig6", fig06.run, benchmark)
    # Shape: Smart stays within a small factor of the manual code —
    # the paper reports <= 9% (k-means) and unnoticeable (LR).
    for app in ("kmeans", "logistic_regression"):
        for nodes, overhead in results["overheads"][app].items():
            assert overhead < 25.0, (app, nodes, overhead)


class TestKMeansKernels:
    @pytest.fixture(scope="class")
    def data(self):
        flat, _ = make_blobs(4000, 64, 8, seed=61)
        init = flat.reshape(-1, 64)[:8].copy()
        return flat, init

    def test_bench_smart(self, benchmark, data):
        flat, init = data
        app = KMeans(
            SchedArgs(chunk_size=64, num_iters=10, extra_data=init, vectorized=True),
            dims=64,
        )
        benchmark(lambda: (app.reset(), app.run(flat)))

    def test_bench_lowlevel(self, benchmark, data):
        flat, init = data
        benchmark(lambda: lowlevel_kmeans(flat, init, 10))


class TestLogRegKernels:
    @pytest.fixture(scope="class")
    def data(self):
        flat, _ = make_logreg_samples(8000, 15, seed=62)
        return flat

    def test_bench_smart(self, benchmark, data):
        app = LogisticRegression(
            SchedArgs(chunk_size=16, num_iters=10, vectorized=True), dims=15
        )
        benchmark(lambda: (app.reset(), app.run(data)))

    def test_bench_lowlevel(self, benchmark, data):
        benchmark(lambda: lowlevel_logreg(data, 15, 10))


class TestSerializationOverheadSource:
    """The paper attributes Smart's Fig. 6 overhead to serializing
    noncontiguous reduction objects; these benches measure exactly that
    against the contiguous-buffer alternative."""

    @pytest.fixture(scope="class")
    def com_map(self):
        flat, _ = make_blobs(500, 64, 8, seed=63)
        init = flat.reshape(-1, 64)[:8].copy()
        app = KMeans(
            SchedArgs(chunk_size=64, num_iters=1, extra_data=init, vectorized=True),
            dims=64,
        )
        app.run(flat)
        return app.get_combination_map()

    def test_bench_serialize_reduction_map(self, benchmark, com_map):
        benchmark(lambda: deserialize_map(serialize_map(com_map)))

    def test_bench_contiguous_buffer_pack(self, benchmark):
        sums = np.random.default_rng(0).random((8, 64))
        sizes = np.random.default_rng(1).random(8)
        buf = np.empty(8 * 64 + 8)

        def pack():
            buf[: 8 * 64] = sums.reshape(-1)
            buf[8 * 64 :] = sizes
            return buf.copy()

        benchmark(pack)
