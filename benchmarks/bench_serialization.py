"""Wire-format microbenchmarks: pickle vs columnar vs allreduce.

Times the global-combination hot path the paper's Section 5.3 singles
out — serializing the reduction map and merging rank contributions —
under each wire format, on a SumCountObj map large enough (>= 10k keys)
that per-object costs dominate fixed overheads:

* ``pickle`` — the paper-faithful path: one pickle per rank payload,
  per-object Python ``merge()`` calls on the master.
* ``columnar`` — :class:`~repro.core.serialization.PackedMap` payloads,
  ``searchsorted`` key alignment, one merge ufunc per field.
* ``allreduce`` — the short-circuit: identity-padded contiguous records
  reduced elementwise, the shape of the hand-written MPI baseline.

Runs under pytest-benchmark (``pytest benchmarks/bench_serialization.py``)
or standalone, writing ``BENCH_serialization.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_serialization.py [--quick]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analytics import SumCountObj
from repro.comm import TrafficProfiler, spmd_launch
from repro.core import KeyedMap, global_combine, serialize_map
from repro.core.serialization import _decode, PackedMap

NUM_KEYS = 10_000
RANKS = 4
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serialization.json"


def merge_sumcount(red_obj, com_obj):
    com_obj.total += red_obj.total
    com_obj.count += red_obj.count
    return com_obj


def make_rank_maps(num_keys: int = NUM_KEYS, ranks: int = RANKS) -> list[KeyedMap]:
    """Per-rank maps with overlapping keys plus a disjoint tail per rank
    (matched keys exercise the merge kernel, fresh keys the insert path)."""
    rng = np.random.default_rng(7)
    maps = []
    for rank in range(ranks):
        m = KeyedMap()
        for key in range(num_keys):
            m[key] = SumCountObj(float(rng.standard_normal()), int(rank + 1))
        for key in range(num_keys + rank * 64, num_keys + rank * 64 + 64):
            m[key] = SumCountObj(1.0, 1)
        maps.append(m)
    return maps


def serialize_and_merge(rank_maps: list[KeyedMap], wire_format: str) -> KeyedMap:
    """The gather master's work: encode every rank map, decode, merge.

    Mirrors ``_combine_gather`` exactly — pickle payloads merge object
    by object, columnar payloads merge through the vectorized kernel and
    materialize objects once.
    """
    payloads = [serialize_map(m, wire_format) for m in rank_maps]
    decoded = [_decode(p) for p in payloads]
    head = decoded[0]
    if isinstance(head, PackedMap):
        for d in decoded[1:]:
            head.merge_from(d)
        return head.to_map()
    merged = head
    for rank_map in decoded[1:]:
        merged.merge_map(rank_map, merge_sumcount)
    return merged


def timed(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def combine_on_cluster(algorithm: str, wire_format: str, num_keys: int) -> dict:
    """End-to-end global combination on the SPMD substrate, with the
    per-format wire-byte tallies from the traffic profiler."""
    profiler = TrafficProfiler()

    def body(comm):
        local = KeyedMap()
        for key in range(num_keys):
            local[key] = SumCountObj(float(key % 97), comm.rank + 1)
        merged = global_combine(
            comm, local, merge_sumcount, algorithm=algorithm, wire_format=wire_format
        )
        return len(merged)

    t0 = time.perf_counter()
    sizes = spmd_launch(RANKS, body, profiler=profiler, timeout=60)
    seconds = time.perf_counter() - t0
    assert sizes == [num_keys] * RANKS
    wire_bytes = {
        op: total
        for op, (_count, total) in profiler.snapshot().items()
        if op.startswith("wire.")
    }
    return {"seconds": seconds, "wire_bytes": wire_bytes}


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def rank_maps() -> list[KeyedMap]:
    return make_rank_maps()


@pytest.mark.parametrize("wire_format", ["pickle", "columnar"])
def test_bench_serialize_merge(benchmark, rank_maps, wire_format):
    merged = benchmark.pedantic(
        lambda: serialize_and_merge(rank_maps, wire_format), rounds=3, iterations=1
    )
    assert len(merged) == NUM_KEYS + RANKS * 64
    assert merged[0].count == sum(range(1, RANKS + 1))


@pytest.mark.parametrize(
    "algorithm,wire_format",
    [("gather", "pickle"), ("gather", "columnar"), ("allreduce", "columnar")],
)
def test_bench_global_combine(benchmark, algorithm, wire_format):
    benchmark.pedantic(
        lambda: combine_on_cluster(algorithm, wire_format, 2_000),
        rounds=3,
        iterations=1,
    )


# ---------------------------------------------------------------------------
# standalone mode: write BENCH_serialization.json
# ---------------------------------------------------------------------------

def main(quick: bool = False) -> dict:
    repeats = 2 if quick else 5
    rank_maps = make_rank_maps()
    payload_bytes = {
        fmt: len(serialize_map(rank_maps[0], fmt)) for fmt in ("pickle", "columnar")
    }
    t_pickle = timed(lambda: serialize_and_merge(rank_maps, "pickle"), repeats)
    t_columnar = timed(lambda: serialize_and_merge(rank_maps, "columnar"), repeats)
    combine_keys = 2_000 if quick else NUM_KEYS
    results = {
        "num_keys": NUM_KEYS,
        "ranks": RANKS,
        "quick": quick,
        "payload_bytes": payload_bytes,
        "serialize_merge": {
            "pickle_seconds": t_pickle,
            "columnar_seconds": t_columnar,
            "columnar_speedup": t_pickle / t_columnar,
        },
        "global_combine": {
            "num_keys": combine_keys,
            "gather_pickle": combine_on_cluster("gather", "pickle", combine_keys),
            "gather_columnar": combine_on_cluster("gather", "columnar", combine_keys),
            "allreduce_columnar": combine_on_cluster(
                "allreduce", "columnar", combine_keys
            ),
        },
    }
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    speedup = results["serialize_merge"]["columnar_speedup"]
    print(f"serialize+merge ({NUM_KEYS} keys x {RANKS} ranks):")
    print(f"  pickle   {t_pickle * 1e3:8.2f} ms   payload {payload_bytes['pickle']} B")
    print(
        f"  columnar {t_columnar * 1e3:8.2f} ms   payload"
        f" {payload_bytes['columnar']} B   speedup {speedup:.1f}x"
    )
    for name, r in results["global_combine"].items():
        if not isinstance(r, dict):
            continue
        print(f"  {name:20s} {r['seconds'] * 1e3:8.2f} ms   wire {r['wire_bytes']}")
    print(f"wrote {RESULT_PATH}")
    assert speedup > 1.0, "columnar should beat pickle on serialize+merge"
    return results


if __name__ == "__main__":
    main(quick="--quick" in sys.argv[1:])
