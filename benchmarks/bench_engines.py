"""Engine throughput: serial vs thread vs process on real analytics.

Times the split-reduction inner loop under each execution backend on
k-means and histogram workloads (the paper's intra-rank OpenMP region).
Numbers are recorded honestly for the current host — on a single-core
machine the pooled engines pay dispatch overhead without any parallel
win, and that is the result you will see.  Pools are created outside the
timed region (they exist once per scheduler lifetime), so the benchmark
measures steady-state dispatch, not pool startup.
"""

import numpy as np
import pytest

from repro.analytics import Histogram, KMeans, make_blobs
from repro.core import SchedArgs

ENGINES = ("serial", "thread", "process")
THREADS = 4


@pytest.fixture(scope="module")
def scalars() -> np.ndarray:
    return np.random.default_rng(21).normal(size=1_000_000)


@pytest.fixture(scope="module")
def blob_flat() -> np.ndarray:
    flat, _ = make_blobs(250_000, 4, 8, seed=21)
    return flat


@pytest.mark.parametrize("engine", ENGINES)
def test_bench_histogram_vectorized(benchmark, scalars, engine):
    with Histogram(
        SchedArgs(num_threads=THREADS, engine=engine, vectorized=True),
        lo=-4, hi=4, num_buckets=1200,
    ) as app:
        app.run(scalars)  # warm-up creates the pool outside the timed region

        def run():
            app.reset()
            app.run(scalars)

        benchmark(run)
        assert app.telemetry.counter("engine.pools_created") <= 1


@pytest.mark.parametrize("engine", ENGINES)
def test_bench_kmeans_vectorized(benchmark, blob_flat, engine):
    init = blob_flat.reshape(-1, 4)[:8].copy()
    with KMeans(
        SchedArgs(
            chunk_size=4, num_iters=2, extra_data=init,
            num_threads=THREADS, engine=engine, vectorized=True,
        ),
        dims=4,
    ) as app:
        app.run(blob_flat)

        def run():
            app.reset()
            app.run(blob_flat)

        benchmark(run)


@pytest.mark.parametrize("engine", ENGINES)
def test_bench_histogram_scalar_loop(benchmark, scalars, engine):
    """The chunk loop the GIL serializes — the process engine's target.

    Scaled down (the Python loop is ~1000x slower per element than the
    vectorized path).
    """
    data = scalars[:40_000]
    with Histogram(
        SchedArgs(num_threads=THREADS, engine=engine), lo=-4, hi=4, num_buckets=100
    ) as app:
        app.run(data)

        def run():
            app.reset()
            app.run(data)

        benchmark(run)
