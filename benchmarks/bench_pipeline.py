"""Steady-state data plane: residency + state deltas + pipelining.

Two measurements of the process-engine steady state this repo adds on
top of the paper's time-sharing design, reported honestly for the
current host:

* **Dispatch bytes** — iterative k-means re-running one resident
  partition.  Post-warmup, the legacy protocol would copy the partition
  into a fresh shared-memory segment every run and ship a full pickled
  scheduler clone with every task; the steady-state protocol ships a
  per-iteration delta against the worker-cached core and skips the
  input copy entirely (a residency hit).  The legacy cost is modeled
  exactly — the old clone is re-pickled with today's scheduler — and
  the reduction must be >= 5x.
* **Pipelined wall-clock** — a simulation with an explicit wait phase
  (the halo-exchange / I-O stall share of real time-steps; pure
  CPU-bound phases cannot overlap on a single core) driven by the
  serial and pipelined time-sharing drivers.  Pipelining must beat the
  serial driver's total and stay bit-exact.

Runs under pytest (``pytest benchmarks/bench_pipeline.py``) or
standalone, writing ``BENCH_pipeline.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_pipeline.py [--quick]
"""

from __future__ import annotations

import copy
import json
import pickle
import sys
import time
from pathlib import Path

import numpy as np

from repro.analytics import Histogram, KMeans, make_blobs
from repro.core import PipelinedTimeSharingDriver, SchedArgs, TimeSharingDriver
from repro.core.serialization import serialize_map
from repro.sim import GaussianEmulator

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_pipeline.json"

DIMS = 4
CLUSTERS = 8
STALL_SECONDS = 0.03


def legacy_state_nbytes(sched) -> int:
    """Bytes of the pre-delta per-task scheduler payload: the full clone
    (combination map included), exactly as the old protocol pickled it."""
    clone = copy.copy(sched)
    clone.data_ = None
    clone.out_ = None
    clone.comm = None
    clone._fed = None
    clone._engine = None
    clone.telemetry = None
    clone.stats = None
    clone.fault_plan = None
    return len(pickle.dumps(clone, protocol=pickle.HIGHEST_PROTOCOL))


def ops_bytes(snap: dict, name: str) -> int:
    return snap["ops"].get(name, {}).get("bytes", 0)


def measure_dispatch(points: np.ndarray, init: np.ndarray, iters: int) -> dict:
    """Steady-state (post-warmup) bytes per k-means run on the process
    engine, against the modeled legacy protocol."""
    app = KMeans(
        SchedArgs(
            num_threads=2,
            chunk_size=DIMS,
            extra_data=init,
            num_iters=iters,
            engine="process",
        ),
        dims=DIMS,
    )
    with app:
        app.run(points)  # warm-up: publishes the core, copies the input
        warm = app.telemetry_snapshot()
        app.run(points)  # steady state: resident input, delta dispatch
        steady = app.telemetry_snapshot()

        counters = steady["counters"]
        tasks = (
            counters["engine.splits"] - warm["counters"]["engine.splits"]
        )
        # Bytes the steady-state run actually moved for input + state:
        # residency copies (0 on a hit), core republishes (0 — cached),
        # and per-task delta+map dispatch.
        new_bytes = (
            counters.get("engine.residency.copied_bytes", 0)
            - warm["counters"].get("engine.residency.copied_bytes", 0)
            + ops_bytes(steady, "engine.state.core")
            - ops_bytes(warm, "engine.state.core")
            + ops_bytes(steady, "engine.dispatch")
            - ops_bytes(warm, "engine.dispatch")
        )
        # The legacy protocol for the same run: re-copy the partition,
        # ship the full clone with every task, plus the same map bytes.
        state_nbytes = legacy_state_nbytes(app)
        map_nbytes = len(serialize_map(app.combination_map_, app.args.wire_format))
        legacy_bytes = points.nbytes + tasks * (state_nbytes + map_nbytes)

        hits = counters.get("engine.residency.hits", 0)
        misses = counters.get("engine.residency.misses", 0)
        return {
            "tasks_per_run": tasks,
            "legacy_state_nbytes_per_task": state_nbytes,
            "legacy_bytes_per_run": legacy_bytes,
            "steady_bytes_per_run": new_bytes,
            "reduction_x": legacy_bytes / max(new_bytes, 1),
            "residency_hits": hits,
            "residency_misses": misses,
            "residency_hit_rate": hits / max(hits + misses, 1),
            "bytes_saved": counters.get("engine.residency.bytes_saved", 0),
        }


class StallingEmulator(GaussianEmulator):
    """Emulator with an explicit per-step wait phase.

    Real time-steps are not pure compute: halo exchanges, collective
    waits, and I/O flushes leave the cores idle (the in-situ premise —
    analytics can use those cycles).  The stall is modeled as a sleep so
    a single-core host genuinely has the idle window the pipelined
    driver is designed to fill; the compute part (the RNG fill) stays
    bit-identical to :class:`GaussianEmulator`.
    """

    def __init__(self, *args, stall_seconds: float = STALL_SECONDS, **kwargs):
        super().__init__(*args, **kwargs)
        self.stall_seconds = stall_seconds

    def advance(self):
        result = super().advance()
        time.sleep(self.stall_seconds)
        return result

    def advance_into(self, out):
        result = super().advance_into(out)
        time.sleep(self.stall_seconds)
        return result


def measure_pipeline(steps: int, elements: int) -> dict:
    """Serial vs pipelined wall-clock over the stalling simulation."""

    def run(driver_cls):
        sim = StallingEmulator(step_elements=elements, seed=29)
        app = Histogram(SchedArgs(num_threads=2), lo=-4, hi=4, num_buckets=32)
        with app:
            t0 = time.perf_counter()
            result = driver_cls(sim, app).run(steps)
            seconds = time.perf_counter() - t0
            counts = {k: v.count for k, v in app.get_combination_map().sorted_items()}
        return seconds, result, counts

    serial_seconds, serial_result, serial_counts = run(TimeSharingDriver)
    piped_seconds, piped_result, piped_counts = run(PipelinedTimeSharingDriver)
    assert piped_counts == serial_counts, "pipelined output diverged"
    return {
        "steps": steps,
        "stall_seconds_per_step": STALL_SECONDS,
        "serial_seconds": serial_seconds,
        "pipelined_seconds": piped_seconds,
        "speedup_x": serial_seconds / piped_seconds,
        "overlap_seconds": piped_result.overlap_seconds,
        "serial_overlap_seconds": serial_result.overlap_seconds,
        "bit_exact": True,
    }


# ---------------------------------------------------------------------------
# pytest entry points (assertions only; timing happens standalone)
# ---------------------------------------------------------------------------

def test_dispatch_reduction_smoke():
    points, _ = make_blobs(2_000, DIMS, CLUSTERS, seed=17)
    init = points.reshape(-1, DIMS)[:CLUSTERS].copy()
    r = measure_dispatch(points, init, iters=3)
    assert r["residency_hit_rate"] > 0
    assert r["reduction_x"] >= 5.0


def test_pipeline_overlap_smoke():
    r = measure_pipeline(steps=4, elements=50_000)
    assert r["bit_exact"]
    assert r["pipelined_seconds"] < r["serial_seconds"]


# ---------------------------------------------------------------------------
# standalone mode: write BENCH_pipeline.json
# ---------------------------------------------------------------------------

def main(quick: bool = False) -> dict:
    n_points = 5_000 if quick else 50_000
    steps = 4 if quick else 8
    elements = 50_000 if quick else 200_000
    points, _ = make_blobs(n_points, DIMS, CLUSTERS, seed=17)
    init = points.reshape(-1, DIMS)[:CLUSTERS].copy()

    dispatch = measure_dispatch(points, init, iters=3 if quick else 5)
    pipeline = measure_pipeline(steps=steps, elements=elements)
    results = {"quick": quick, "dispatch": dispatch, "pipeline": pipeline}
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")

    print(f"dispatch (k-means, {n_points} points, process engine, post-warmup):")
    print(
        f"  legacy  {dispatch['legacy_bytes_per_run']:>12,} B/run"
        f"   ({dispatch['legacy_state_nbytes_per_task']} B state x"
        f" {dispatch['tasks_per_run']} tasks + input copy)"
    )
    print(
        f"  steady  {dispatch['steady_bytes_per_run']:>12,} B/run"
        f"   reduction {dispatch['reduction_x']:.1f}x,"
        f" hit rate {dispatch['residency_hit_rate']:.2f}"
    )
    print(f"pipeline ({steps} steps, {STALL_SECONDS * 1e3:.0f} ms stall/step):")
    print(
        f"  serial    {pipeline['serial_seconds'] * 1e3:8.1f} ms\n"
        f"  pipelined {pipeline['pipelined_seconds'] * 1e3:8.1f} ms"
        f"   speedup {pipeline['speedup_x']:.2f}x,"
        f" overlap {pipeline['overlap_seconds'] * 1e3:.1f} ms"
    )
    print(f"wrote {RESULT_PATH}")
    assert dispatch["reduction_x"] >= 5.0, "steady-state dispatch must be >= 5x smaller"
    assert dispatch["residency_hit_rate"] > 0, "steady-state run must hit residency"
    assert pipeline["pipelined_seconds"] < pipeline["serial_seconds"], (
        "pipelined driver must beat the serial driver with a stalling simulation"
    )
    return results


if __name__ == "__main__":
    main(quick="--quick" in sys.argv[1:])
