"""Figure 7 bench: node scaling of the nine applications on Heat3D.

The cluster sweep is modeled (see DESIGN.md); the benches here measure
the two ingredients the model replays — the Heat3D step kernel and each
application's per-element reduction — and the regeneration asserts the
figure's headline (93% average parallel efficiency).
"""

import numpy as np
import pytest

from benchmarks.conftest import regenerate
from repro.analytics import GridAggregation, Histogram, MutualInformation
from repro.core import SchedArgs
from repro.harness import fig07
from repro.sim import Heat3D


def test_fig07_regenerate(figure_results, benchmark):
    results = regenerate(figure_results, "fig7", fig07.run, benchmark)
    assert 0.85 <= results["average_efficiency"] <= 1.1  # paper: 93%
    # Doubling nodes must never slow any application down.
    for app, times in results["times"].items():
        nodes = sorted(times)
        for a, b in zip(nodes, nodes[1:]):
            assert times[b] < times[a], app
    # The memory-pressured variant shows the paper's super-linear effect.
    pressured = results["pressured"]
    assert pressured[4] / pressured[8] > 2.0


def test_bench_heat3d_step(benchmark):
    sim = Heat3D((24, 48, 48))
    benchmark(sim.advance)


@pytest.mark.parametrize(
    "name,factory",
    [
        ("grid_aggregation",
         lambda: GridAggregation(SchedArgs(vectorized=True), grid_size=1000)),
        ("histogram",
         lambda: Histogram(SchedArgs(vectorized=True), lo=-4, hi=4, num_buckets=1200)),
        ("mutual_information",
         lambda: MutualInformation(SchedArgs(chunk_size=2, vectorized=True),
                                   x_range=(-4, 4), y_range=(-4, 4), bins=100)),
    ],
)
def test_bench_scan_application_kernels(benchmark, name, factory):
    data = np.random.default_rng(7).normal(size=100_000)
    app = factory()
    benchmark(lambda: (app.reset(), app.run(data)))
