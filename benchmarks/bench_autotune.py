"""Advisor quality: ``ExecutionPolicy.auto()`` vs hand-picked configs.

For every workload in the conformance registry, times the advised policy
against a small pool of hand-picked single-rank configurations (the
paper-default serial scalar loop, a 2-worker thread pool, and — where the
analytic implements one — the serial vectorized fast path).  The advisor
"matches" a workload when its policy is within tolerance of the best
hand-picked time; the gate requires it to match or beat the best
hand-picked config on at least 3 of the 9 registry workloads.

Writes ``BENCH_autotune.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_autotune.py [--quick]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import ExecutionPolicy
from repro.verify import get_workload, workload_names

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_autotune.json"

#: An advised run within this factor of the best hand-picked run counts
#: as a match (best-of-N timing still jitters on millisecond runs).
TOLERANCE = 1.15
REQUIRED_MATCHES = 3


def hand_picked(w) -> dict[str, ExecutionPolicy]:
    """The configurations a careful user would try by hand (ranks=1)."""
    base = dict(chunk_size=w.chunk_size, num_iters=w.num_iters)
    pool = {
        "serial_scalar": ExecutionPolicy.parse("engine=serial").evolve(**base),
        "thread2_scalar": ExecutionPolicy.parse(
            "engine=thread,threads=2").evolve(**base),
    }
    if w.has_vector_path:
        pool["serial_vectorized"] = ExecutionPolicy.parse(
            "engine=serial,vec=1").evolve(**base)
    return pool


def advised(w, elements: int) -> ExecutionPolicy:
    return ExecutionPolicy.auto(
        elements=elements,
        ranks=1,
        threads=1,
        chunk_size=w.chunk_size,
        num_iters=w.num_iters,
        key_estimate=w.key_estimate,
        schema_mergeable=w.schema_mergeable,
        has_vector_path=w.has_vector_path,
    )


def run_once(w, policy: ExecutionPolicy, data: np.ndarray) -> float:
    app = w.build(policy, None)
    with app:
        t0 = time.perf_counter()
        if w.multi_key:
            out = np.full(w.output_length(len(data)), np.nan)
            app.run2(data, out)
        else:
            app.run(data)
        return time.perf_counter() - t0


def best_of(w, policy: ExecutionPolicy, data: np.ndarray,
            repeats: int) -> float:
    run_once(w, policy, data)  # warmup: allocator + import one-time costs
    return min(run_once(w, policy, data) for _ in range(repeats))


def main(quick: bool = False) -> dict:
    repeats = 3 if quick else 5
    scale = 2 if quick else 8
    per_workload = {}
    matched = 0
    for name in workload_names():
        w = get_workload(name)
        elements = w.default_elements * scale
        data = w.make_data(seed=2015, elements=elements)
        extra = w.extra(data)

        def with_extra(policy):
            return policy if extra is None else policy.evolve(extra_data=extra)

        auto_policy = advised(w, len(data))
        auto_seconds = best_of(w, with_extra(auto_policy), data, repeats)
        hand = {
            label: best_of(w, with_extra(policy), data, repeats)
            for label, policy in hand_picked(w).items()
        }
        best_label, best_seconds = min(hand.items(), key=lambda kv: kv[1])
        ok = auto_seconds <= best_seconds * TOLERANCE
        matched += ok
        per_workload[name] = {
            "elements": len(data),
            "auto_policy": auto_policy.fingerprint(),
            "auto_seconds": auto_seconds,
            "hand_picked_seconds": hand,
            "best_hand_picked": best_label,
            "best_hand_picked_seconds": best_seconds,
            "auto_vs_best": auto_seconds / best_seconds,
            "matched": bool(ok),
        }
        print(f"{name:16s} auto {auto_seconds * 1e3:8.2f} ms  "
              f"best hand-picked ({best_label}) {best_seconds * 1e3:8.2f} ms  "
              f"{'match' if ok else 'MISS'}")

    total = len(per_workload)
    results = {
        "quick": quick,
        "tolerance": TOLERANCE,
        "workloads": per_workload,
        "summary": {
            "matched": matched,
            "total": total,
            "matched_fraction": matched / total,
            "required_matches": REQUIRED_MATCHES,
        },
    }
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nauto() matched/beat the best hand-picked config on "
          f"{matched}/{total} workloads (gate: >= {REQUIRED_MATCHES})")
    print(f"wrote {RESULT_PATH}")
    assert matched >= REQUIRED_MATCHES, (
        f"advisor matched only {matched}/{total} workloads "
        f"(need {REQUIRED_MATCHES})")
    return results


if __name__ == "__main__":
    main(quick="--quick" in sys.argv[1:])
