"""Figure 10 bench: time sharing vs space sharing.

Benchmarks the two real drivers end to end on the same workload (the
functional core of the comparison) and regenerates the modeled Xeon Phi
sweep with its three paper outcomes.
"""


from benchmarks.conftest import regenerate
from repro.analytics import Histogram
from repro.core import CoreSplit, SchedArgs, SpaceSharingDriver, TimeSharingDriver
from repro.harness import fig10
from repro.sim import LuleshProxy


def test_fig10_regenerate(figure_results, benchmark):
    results = regenerate(figure_results, "fig10", fig10.run, benchmark)
    # Paper outcomes: histogram prefers time sharing; k-means's best space
    # scheme is 50_10 and wins; moving median's best is 30_30 and wins big.
    assert results["histogram"]["improvement_pct"] < 0
    assert results["kmeans"]["best"] == "50_10"
    assert results["kmeans"]["improvement_pct"] > 0
    assert results["moving_median"]["best"] == "30_30"
    assert results["moving_median"]["improvement_pct"] > 15


def _make_histogram():
    return Histogram(
        SchedArgs(vectorized=True, buffer_capacity=2),
        lo=-1.0, hi=60.0, num_buckets=64,
    )


def test_bench_time_sharing_driver(benchmark):
    def run():
        driver = TimeSharingDriver(LuleshProxy(16), _make_histogram())
        return driver.run(4)

    benchmark(run)


def test_bench_space_sharing_driver(benchmark):
    def run():
        driver = SpaceSharingDriver(
            LuleshProxy(16), _make_histogram(), CoreSplit(1, 1)
        )
        return driver.run(4)

    benchmark(run)


def test_bench_circular_buffer_throughput(benchmark):
    """put/get round trips through the space-sharing buffer."""
    import numpy as np

    from repro.core import CircularBuffer

    payload = np.zeros(4096)
    buf = CircularBuffer(4)

    def roundtrip():
        for _ in range(8):
            buf.put(payload.copy())
            buf.get()

    benchmark(roundtrip)
