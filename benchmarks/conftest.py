"""Shared benchmark fixtures.

Each ``bench_figNN`` module regenerates one figure of the paper's
evaluation (rows printed to stdout; run pytest with ``-s`` to see them)
and additionally benchmarks the measured kernels that figure rests on.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def emulator_stream() -> np.ndarray:
    """One 40k-element time-step from the Section 5.2 emulator."""
    from repro.sim import GaussianEmulator

    return GaussianEmulator(40_000, seed=99).advance().copy()


@pytest.fixture(scope="session")
def figure_results() -> dict:
    """Cache of per-figure harness outputs (each figure runs at most once
    per benchmark session; calibration is shared via the harness cache)."""
    return {}


def regenerate(figure_results: dict, name: str, runner, benchmark) -> dict:
    """Run a figure harness exactly once and time that single regeneration."""
    def once():
        if name not in figure_results:
            figure_results[name] = runner()
        return figure_results[name]

    return benchmark.pedantic(once, rounds=1, iterations=1)
