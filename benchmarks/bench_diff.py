"""Benchmark regression gate: current BENCH_*.json vs committed baselines.

The repository commits benchmark result files (``BENCH_*.json`` at the
repo root) and reference copies under ``benchmarks/baselines/``.  This
gate compares the *ratio* metrics — machine-relative numbers (speedups,
reduction factors, match fractions) that are stable across hosts, unlike
raw seconds — and fails when any hot-path metric regresses by more than
the threshold (default 25%).

Usage::

    PYTHONPATH=src python benchmarks/bench_diff.py            # gate
    PYTHONPATH=src python benchmarks/bench_diff.py --update   # rebless

``--update`` copies the current result files over the baselines (after a
deliberate, reviewed performance change).
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
BASELINE_DIR = ROOT / "benchmarks" / "baselines"

#: Higher-is-better ratio metrics gated per result file (dotted paths).
METRICS: dict[str, tuple[str, ...]] = {
    "BENCH_serialization.json": (
        "serialize_merge.columnar_speedup",
    ),
    "BENCH_pipeline.json": (
        "dispatch.reduction_x",
        "pipeline.speedup_x",
    ),
    "BENCH_autotune.json": (
        "summary.matched_fraction",
    ),
    "BENCH_map.json": (
        "summary.histogram_speedup",
        "summary.grid_aggregation_speedup",
        "summary.kde_grid_speedup",
    ),
    "BENCH_chaos.json": (
        "overhead.overhead_ratio",
    ),
    "BENCH_service.json": (
        "summary.fairness_index",
        "summary.shared_hit_rate",
        "summary.bit_exact_fraction",
    ),
}

DEFAULT_THRESHOLD = 0.25


def lookup(doc: dict, dotted: str) -> float:
    node = doc
    for part in dotted.split("."):
        node = node[part]
    return float(node)


def compare_file(name: str, threshold: float) -> list[dict]:
    """Per-metric comparison records for one result file."""
    current_path = ROOT / name
    baseline_path = BASELINE_DIR / name
    if not current_path.exists():
        return [{"file": name, "metric": "-", "status": "missing-current"}]
    if not baseline_path.exists():
        return [{"file": name, "metric": "-", "status": "missing-baseline"}]
    current = json.loads(current_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    records = []
    for metric in METRICS[name]:
        base = lookup(baseline, metric)
        cur = lookup(current, metric)
        ratio = cur / base if base else float("inf")
        status = "ok" if ratio >= 1.0 - threshold else "REGRESSION"
        records.append({
            "file": name, "metric": metric, "baseline": base,
            "current": cur, "ratio": ratio, "status": status,
        })
    return records


def update_baselines() -> int:
    BASELINE_DIR.mkdir(parents=True, exist_ok=True)
    for name in METRICS:
        src = ROOT / name
        if src.exists():
            shutil.copyfile(src, BASELINE_DIR / name)
            print(f"blessed {name}")
        else:
            print(f"skipped {name} (no current result)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_diff.py",
        description="fail on >threshold regression of committed benchmark "
                    "ratio metrics vs benchmarks/baselines/")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed fractional drop (default 0.25)")
    parser.add_argument("--update", action="store_true",
                        help="copy current results over the baselines")
    parser.add_argument("--strict", action="store_true",
                        help="missing files fail the gate instead of warning")
    args = parser.parse_args(argv)

    if args.update:
        return update_baselines()

    records = []
    for name in METRICS:
        records.extend(compare_file(name, args.threshold))

    width = max(len(r["metric"]) for r in records)
    failed = False
    for r in records:
        if r["status"].startswith("missing"):
            print(f"{r['file']:28s} {'-':{width}s}  {r['status']}")
            failed = failed or args.strict
            continue
        print(f"{r['file']:28s} {r['metric']:{width}s}  "
              f"baseline {r['baseline']:9.3f}  current {r['current']:9.3f}  "
              f"ratio {r['ratio']:5.2f}  {r['status']}")
        failed = failed or r["status"] == "REGRESSION"

    if failed:
        print(f"\nFAIL: metric dropped more than {args.threshold:.0%} below "
              "baseline (or --strict file missing); if intentional, rebless "
              "with --update")
        return 1
    print("\nall gated metrics within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
