"""Ablation benchmarks for Smart's design choices (DESIGN.md section 4).

Each class isolates one knob of the runtime and benchmarks its settings
on identical workloads, quantifying the design decisions the paper makes
qualitatively: in-place reduction vs materialized pairs, chunk/block
granularity, the vectorized fast path, seeded reduction maps, serialized
global combination, and in-transit vs hybrid placement.
"""

import numpy as np
import pytest

from repro.analytics import Histogram, KMeans, make_blobs
from repro.baselines.minispark import Serializer, shuffle_read, shuffle_write
from repro.comm import spmd_launch
from repro.core import (
    CircularBuffer,
    InTransitDriver,
    KeyedMap,
    SchedArgs,
    split_staging_comm,
)
from repro.core.serialization import deserialize_map, serialize_map
from repro.sim import GaussianEmulator

DATA = np.random.default_rng(500).normal(size=50_000)


class TestChunkSizeAblation:
    """Chunk size = unit-processing granularity.  Larger chunks amortize
    the per-chunk dispatch of the scalar path (the paper sets it to the
    feature-vector length; this shows why not smaller)."""

    @pytest.mark.parametrize("chunk_size", [1, 4, 16])
    def test_bench_scalar_grid_aggregation(self, benchmark, chunk_size):
        from repro.analytics import GridAggregation

        data = DATA[:8000]

        class ChunkMean(GridAggregation):
            # Aggregate whole chunks (positions chunk-aligned) so varying
            # chunk_size preserves semantics while changing dispatch count.
            def accumulate(self, chunk, data, red_obj, key):
                from repro.analytics.objects import SumCountObj

                if red_obj is None:
                    red_obj = SumCountObj()
                red_obj.total += float(data[chunk.slice].sum())
                red_obj.count += chunk.size
                return red_obj

        app = ChunkMean(SchedArgs(chunk_size=chunk_size), grid_size=1000)
        benchmark(lambda: (app.reset(), app.run(data)))


class TestBlockSizeAblation:
    """Block streaming bounds transient state; the throughput cost of
    small blocks is the price of that bound."""

    @pytest.mark.parametrize("block_size", [256, 4096, None])
    def test_bench_histogram_blocks(self, benchmark, block_size):
        app = Histogram(
            SchedArgs(vectorized=True, block_size=block_size),
            lo=-4, hi=4, num_buckets=64,
        )
        benchmark(lambda: (app.reset(), app.run(DATA)))


class TestVectorizedPathAblation:
    """The compiled-equivalent fast path vs the paper-faithful chunk loop."""

    def test_bench_scalar_path(self, benchmark):
        app = Histogram(SchedArgs(), lo=-4, hi=4, num_buckets=64)
        data = DATA[:5000]
        benchmark(lambda: (app.reset(), app.run(data)))

    def test_bench_vectorized_path(self, benchmark):
        app = Histogram(SchedArgs(vectorized=True), lo=-4, hi=4, num_buckets=64)
        data = DATA[:5000]
        benchmark(lambda: (app.reset(), app.run(data)))


class TestReductionVsShuffleAblation:
    """The core design decision: in-place reduction objects vs emitting
    key-value pairs and grouping (Section 2.3.3).

    At interpreter granularity the two loops cost similar *time* — the
    decisive differences are memory (the emit path materializes one pair
    per element before any grouping; the in-place path holds one object
    per key) and that only the in-place path admits the compiled
    vectorized fast path (see TestVectorizedPathAblation: ~70x)."""

    def test_bench_in_place_reduction(self, benchmark):
        app = Histogram(SchedArgs(), lo=-4, hi=4, num_buckets=64)
        data = DATA[:5000]
        benchmark(lambda: (app.reset(), app.run(data)))

    def test_bench_emit_shuffle_group(self, benchmark):
        data = DATA[:5000]
        ser = Serializer()

        def mapreduce_style():
            pairs = [
                (min(max(int((x + 4) / 0.125), 0), 63), 1) for x in data
            ]
            buckets = shuffle_write(pairs, 4, ser)
            grouped = shuffle_read(buckets, ser)
            return {k: sum(v) for k, v in grouped.items()}

        benchmark(mapreduce_style)


class TestSeededMapAblation:
    """Seeding reduction maps (Algorithm 1 line 6) costs one clone per
    thread per iteration; this prices that against an iteration."""

    @pytest.fixture(scope="class")
    def kmeans_workload(self):
        flat, _ = make_blobs(5000, 8, 8, seed=501)
        init = flat.reshape(-1, 8)[:8].copy()
        return flat, init

    @pytest.mark.parametrize("threads", [1, 4, 16])
    def test_bench_seeding_cost(self, benchmark, kmeans_workload, threads):
        flat, init = kmeans_workload
        app = KMeans(
            SchedArgs(chunk_size=8, num_iters=5, extra_data=init,
                      vectorized=True, num_threads=threads),
            dims=8,
        )
        benchmark(lambda: (app.reset(), app.run(flat)))


class TestSerializationAblation:
    """Global-combination payload cost as the key count grows (the Fig. 6
    overhead source)."""

    @pytest.mark.parametrize("keys", [8, 256, 4096])
    def test_bench_map_round_trip(self, benchmark, keys):
        from repro.analytics import CountObj

        com_map = KeyedMap({k: CountObj(k) for k in range(keys)})
        benchmark(lambda: deserialize_map(serialize_map(com_map)))


class TestBufferCapacityAblation:
    """Space-sharing circular-buffer depth: deeper buffers decouple the
    producer at the cost of step-sized copies held live."""

    @pytest.mark.parametrize("capacity", [1, 2, 8])
    def test_bench_producer_consumer(self, benchmark, capacity):
        payload = np.zeros(4096)

        def run():
            buf = CircularBuffer(capacity)
            for _ in range(32):
                buf.put(payload.copy())
                buf.get()

        benchmark(run)


class TestPlacementAblation:
    """In-transit (raw data shipped) vs hybrid (local maps shipped):
    the byte-volume trade the Section-6 platforms differ on."""

    STEPS = 3

    def _run(self, mode):
        def body(comm):
            driver = InTransitDriver(comm, num_staging=1, mode=mode)
            staging = split_staging_comm(comm, 1)
            if driver.placement.is_staging:
                app = Histogram(
                    SchedArgs(vectorized=True), staging, lo=-4, hi=4, num_buckets=32
                )
                driver.run_staging_side(app)
                return 0
            sim = GaussianEmulator(2000, seed=502 + comm.rank)
            local = (
                Histogram(SchedArgs(vectorized=True), lo=-4, hi=4, num_buckets=32)
                if mode == "hybrid"
                else None
            )
            return driver.run_simulation_side(sim, self.STEPS, local_scheduler=local)

        return spmd_launch(3, body, timeout=60)

    def test_bench_in_transit_shipping(self, benchmark):
        shipped = benchmark.pedantic(
            lambda: sum(self._run("in_transit")), rounds=2, iterations=1
        )
        assert shipped == 2 * self.STEPS * 2000 * 8  # raw partitions

    def test_bench_hybrid_shipping(self, benchmark):
        shipped = benchmark.pedantic(
            lambda: sum(self._run("hybrid")), rounds=2, iterations=1
        )
        assert shipped < 2 * self.STEPS * 2000 * 8 / 10  # compact maps
