"""Map-phase microbenchmarks: scalar loop vs vector path vs batch path.

Times the reduction (map) hot loop — the paper's Algorithm 2 per-chunk
``gen_key``/``accumulate`` — under each ``map_path`` on the analytics
that implement the batch path, at sizes where per-element interpreter
overhead dominates.  The headline numbers are the batch-over-scalar
speedups at the largest size; the conformance kit separately guarantees
the paths agree bit-for-bit (or within the declared ulp bound for
kde_grid), so this file only spot-checks value agreement.

Runs standalone, writing ``BENCH_map.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_map.py [--quick]

``--quick`` keeps the largest size (speedups stay comparable to the
committed baseline) but drops the smaller sizes and extra repeats.
The gate: ``benchmarks/bench_diff.py`` compares the speedup ratios
against ``benchmarks/baselines/BENCH_map.json``; this script itself
asserts the acceptance floor — >= 10x on at least two of histogram /
grid_aggregation / kde_grid, >= 5x on the pure-numpy path.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.analytics import (
    GridAggregation,
    Histogram,
    MinMax,
    MovingAverage,
    ValueGridKDE,
)
from repro.core import SchedArgs
from repro.core.batch import HAVE_NUMBA

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_map.json"

#: Workloads whose batch speedup the acceptance criterion gates.
TARGETS = ("histogram", "grid_aggregation", "kde_grid")

KDE_GRID = np.linspace(-3.0, 3.0, 256)


def _data(n: int) -> np.ndarray:
    return np.random.default_rng(42).normal(size=n)


CASES = {
    "histogram": {
        "sizes": (100_000, 1_000_000),
        "make": lambda args, n: Histogram(args, lo=-4.0, hi=4.0,
                                          num_buckets=1200),
        "multi": False,
        "paths": ("scalar", "vector", "batch"),
    },
    "grid_aggregation": {
        "sizes": (100_000, 1_000_000),
        "make": lambda args, n: GridAggregation(args, grid_size=1000),
        "multi": False,
        "paths": ("scalar", "vector", "batch"),
    },
    "minmax": {
        "sizes": (100_000, 1_000_000),
        "make": lambda args, n: MinMax(args),
        "multi": False,
        "paths": ("scalar", "vector", "batch"),
    },
    "moving_average": {
        "sizes": (50_000, 200_000),
        "make": lambda args, n: MovingAverage(args, win_size=7),
        "multi": True,
        "out_len": lambda n: n,
        "paths": ("scalar", "vector", "batch"),
    },
    "kde_grid": {
        "sizes": (10_000, 30_000),
        "make": lambda args, n: ValueGridKDE(args, grid=KDE_GRID,
                                             bandwidth=0.2),
        "multi": True,
        "out_len": lambda n: KDE_GRID.shape[0],
        "paths": ("scalar", "batch"),  # no vector_reduce on this one
    },
}


def _args_for(path: str) -> SchedArgs:
    if path == "vector":
        return SchedArgs(vectorized=True)
    return SchedArgs(map_path=path)


def _run_case(case: dict, path: str, data: np.ndarray):
    """One full run under ``path``; returns (seconds, result array)."""
    app = case["make"](_args_for(path), len(data))
    with app:
        t0 = time.perf_counter()
        if case["multi"]:
            out = np.full(case["out_len"](len(data)), np.nan)
            app.run2(data, out)
            seconds = time.perf_counter() - t0
            result = out
        else:
            app.run(data)
            seconds = time.perf_counter() - t0
            items = app.get_combination_map().sorted_items()
            result = np.array(
                [getattr(obj, obj.fields()[0].name) for _, obj in items])
    return seconds, result


def bench_case(name: str, case: dict, *, quick: bool) -> dict:
    sizes = case["sizes"][-1:] if quick else case["sizes"]
    repeats = 1 if quick else 3
    per_size: dict[str, dict[str, float]] = {}
    for n in sizes:
        data = _data(n)
        timings: dict[str, float] = {}
        results: dict[str, np.ndarray] = {}
        for path in case["paths"]:
            best = float("inf")
            for _ in range(repeats if path != "scalar" else 1):
                seconds, result = _run_case(case, path, data)
                best = min(best, seconds)
            timings[path] = best
            results[path] = result
        for path, result in results.items():
            # Value-level spot check (bit-level agreement is the
            # conformance kit's job; kde_grid's np.exp drift and the
            # vector path's regrouping are both below 1e-9 here).
            if not np.allclose(results["scalar"], result,
                               rtol=1e-9, atol=0, equal_nan=True):
                raise AssertionError(
                    f"{name}: {path} result diverged from scalar")
        per_size[str(n)] = timings
    largest = per_size[str(sizes[-1])]
    return {
        "sizes": list(sizes),
        "seconds": per_size,
        "speedup": largest["scalar"] / largest["batch"],
        "vector_speedup": (
            largest["scalar"] / largest["vector"]
            if "vector" in largest else None),
    }


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_map.py",
        description="map-path (scalar vs vector vs batch) benchmarks")
    parser.add_argument("--quick", action="store_true",
                        help="largest size only, single repeat")
    args = parser.parse_args(argv)

    workloads = {}
    for name, case in CASES.items():
        workloads[name] = bench_case(name, case, quick=args.quick)
        r = workloads[name]
        vec = (f"  vector {r['vector_speedup']:6.1f}x"
               if r["vector_speedup"] else "")
        print(f"{name:18s} batch {r['speedup']:6.1f}x{vec}  "
              f"(largest size {r['sizes'][-1]})")

    results = {
        "quick": bool(args.quick),
        "numba": HAVE_NUMBA,
        "workloads": workloads,
        "summary": {
            f"{name}_speedup": workloads[name]["speedup"]
            for name in workloads
        },
    }
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")

    floor = 5.0 if not HAVE_NUMBA else 10.0
    hits = sum(1 for name in TARGETS
               if workloads[name]["speedup"] >= 10.0)
    assert hits >= 2, (
        f"acceptance floor: expected >=10x batch speedup on at least two "
        f"of {TARGETS}, got "
        + ", ".join(f"{n}={workloads[n]['speedup']:.1f}x" for n in TARGETS))
    for name in TARGETS:
        assert workloads[name]["speedup"] >= floor, (
            f"{name}: batch speedup {workloads[name]['speedup']:.1f}x "
            f"below the {floor:.0f}x floor")
    return results


if __name__ == "__main__":
    main()
