"""Cluster machine models (the paper's two evaluation platforms).

The scalability figures (7-10) ran on clusters this environment does not
have; the performance model replays measured per-element kernel costs on
these machine descriptions (see DESIGN.md section 1's substitution
table).  Numbers for the two clusters come from paper Section 5.1;
network parameters are standard InfiniBand-era values for such systems
(the figures' *shapes* are insensitive to their exact magnitude — they
enter only the synchronization term).
"""

from __future__ import annotations

from dataclasses import dataclass

GIB = 1024**3


@dataclass(frozen=True)
class MachineSpec:
    """One cluster node type plus its interconnect.

    Attributes
    ----------
    name:
        Identifier used in harness output.
    cores_per_node:
        Usable compute cores per node.
    clock_ghz:
        Core clock; per-element kernel costs scale inversely with it
        (relative to the calibration host's assumed clock).
    core_efficiency:
        Per-clock throughput of one core relative to a calibration-host
        core (Xeon Phi cores are in-order and much narrower — the paper's
        simulations 'may not be able to use all available cores
        effectively' there).
    mem_bytes:
        Physical memory per node (12 GB multicore / 8 GB Phi,
        Section 5.1).
    net_latency_s / net_bandwidth_bps:
        Alpha-beta interconnect model parameters for collectives.
    sim_parallel_fraction / analytics_parallel_fraction:
        Amdahl fractions for thread scaling of simulation and analytics
        code on this node type; the Phi's low simulation fraction is the
        premise of space-sharing mode (Section 3.2).
    """

    name: str
    cores_per_node: int
    clock_ghz: float
    core_efficiency: float
    mem_bytes: int
    net_latency_s: float
    net_bandwidth_bps: float
    sim_parallel_fraction: float
    analytics_parallel_fraction: float
    #: Straggler/imbalance amplification: steps finish when the slowest
    #: rank does, and the expected maximum over n ranks grows ~log n.
    #: Multiplies step time by (1 + coeff * log2(nodes)).
    imbalance_coeff: float = 0.04
    #: Sustained memcpy bandwidth for the extra-copy variant (Fig. 9).
    copy_bandwidth_bps: float = 4.0e9

    def thread_speedup(self, threads: int, parallel_fraction: float) -> float:
        """Amdahl speedup of ``threads`` threads on this node."""
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        threads = min(threads, self.cores_per_node)
        f = parallel_fraction
        return 1.0 / ((1.0 - f) + f / threads)

    def core_seconds_scale(self, calibration_clock_ghz: float) -> float:
        """Convert calibration-host seconds to this machine's seconds."""
        return (calibration_clock_ghz / self.clock_ghz) / self.core_efficiency


#: The multi-core cluster of Section 5.1: 8-core 2.53 GHz Xeon nodes,
#: 12 GB memory, up to 64 nodes (512 cores).
MULTICORE_CLUSTER = MachineSpec(
    name="xeon-multicore",
    cores_per_node=8,
    clock_ghz=2.53,
    core_efficiency=1.0,
    mem_bytes=12 * GIB,
    net_latency_s=25e-6,
    net_bandwidth_bps=1.25e9,  # ~10 Gb/s effective
    sim_parallel_fraction=0.995,
    analytics_parallel_fraction=0.997,
    imbalance_coeff=0.04,
    copy_bandwidth_bps=4.0e9,
)

#: The many-core cluster: Intel Xeon Phi SE10P, 61 cores at 1.1 GHz, 8 GB.
#: One core is reserved for scheduling/communication (Section 5.6), and the
#: simulation's parallel fraction is low enough that it stops scaling well
#: before 60 threads — the space-sharing premise.
XEON_PHI_CLUSTER = MachineSpec(
    name="xeon-phi",
    cores_per_node=60,
    clock_ghz=1.1,
    core_efficiency=0.35,
    mem_bytes=8 * GIB,
    net_latency_s=40e-6,
    net_bandwidth_bps=0.9e9,
    sim_parallel_fraction=0.94,
    analytics_parallel_fraction=0.995,
    imbalance_coeff=0.04,
    copy_bandwidth_bps=3.0e9,
)

#: Assumed clock of the host this repository calibrates kernel costs on.
CALIBRATION_CLOCK_GHZ = 2.5
