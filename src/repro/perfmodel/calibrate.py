"""Kernel-cost calibration.

The performance model's compute terms are *measured*, not guessed: each
application's per-element analytics cost and each simulation's
per-element step cost are timed on this host by running the very code in
this repository over a small workload.  Costs are then rescaled to the
paper's machines by clock ratio and core efficiency
(:meth:`~repro.perfmodel.machine.MachineSpec.core_seconds_scale`).

The vectorized analytics paths are used for calibration because they are
the fair stand-in for the paper's compiled C++ kernels; the scalar
chunk-loop path measures Python interpreter overhead, not the algorithm.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..analytics import (
    GaussianKernelSmoother,
    GridAggregation,
    Histogram,
    KMeans,
    LogisticRegression,
    MovingAverage,
    MovingMedian,
    MutualInformation,
    SavitzkyGolay,
    make_blobs,
    make_logreg_samples,
)
from ..core.sched_args import SchedArgs
from ..sim import GaussianEmulator, Heat3D, LuleshProxy


@dataclass(frozen=True)
class KernelCost:
    """Measured single-thread cost of one kernel on the calibration host."""

    name: str
    seconds_per_element: float
    state_bytes: float  # reduction/combination state the kernel holds
    sync_bytes: float  # serialized combination-map payload per combination

    def scaled(self, factor: float) -> "KernelCost":
        return KernelCost(
            self.name, self.seconds_per_element * factor, self.state_bytes, self.sync_bytes
        )


def _time(fn: Callable[[], None], repeats: int = 3) -> float:
    """Best-of-N wall time of ``fn`` (per the guides: measure, min of runs)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _app_cost(name: str, scheduler, data: np.ndarray, multi_key: bool,
              record_len: int = 1) -> KernelCost:
    """Marginal per-element cost via a two-point slope.

    'Element' means one float of input — the unit the cluster model's
    workloads count in (``NodeWorkload.elements_per_step = bytes / 8``);
    applications whose records span several floats (k-means points, MI
    pairs, LR samples) still report cost per float.

    Per-run fixed overhead (scheduler bookkeeping, numpy call setup) does
    not scale with input, so measuring one size overstates the
    per-element cost — badly for fast kernels.  Timing the full input and
    a quarter of it and taking the slope isolates the marginal cost the
    cluster model should extrapolate with.
    """
    runner = scheduler.run2 if multi_key else scheduler.run
    elements = len(data)
    quarter_records = max(elements // record_len // 4, 1)
    small = data[: quarter_records * record_len]

    def body(payload: np.ndarray):
        def run() -> None:
            scheduler.reset()
            if multi_key:
                runner(payload, np.full(len(payload), np.nan))
            else:
                runner(payload)

        return run

    t_full = _time(body(data))
    t_small = _time(body(small))
    state = scheduler.telemetry_snapshot()["counters"]["run.state_nbytes"]
    from ..core.serialization import serialize_map

    sync = float(len(serialize_map(scheduler.get_combination_map())))
    delta_elements = elements - quarter_records * record_len
    if t_full > t_small and delta_elements > 0:
        per_element = (t_full - t_small) / delta_elements
    else:  # degenerate (noise or tiny input): fall back to the naive rate
        per_element = t_full / elements
    return KernelCost(name, per_element, float(state), sync)


def calibrate_analytics(scale: int = 200_000, seed: int = 7) -> dict[str, KernelCost]:
    """Measure per-element costs of all nine applications (vectorized path
    where one exists, scalar otherwise — i.e. the best available kernel,
    as the paper's C++ would be)."""
    rng = np.random.default_rng(seed)
    scalars = rng.normal(size=scale)
    costs: dict[str, KernelCost] = {}

    vec = dict(vectorized=True)
    costs["grid_aggregation"] = _app_cost(
        "grid_aggregation",
        GridAggregation(SchedArgs(**vec), grid_size=1000),
        scalars, False,
    )
    costs["histogram"] = _app_cost(
        "histogram",
        Histogram(SchedArgs(**vec), lo=-4, hi=4, num_buckets=1200),
        scalars, False,
    )
    costs["mutual_information"] = _app_cost(
        "mutual_information",
        MutualInformation(SchedArgs(chunk_size=2, **vec),
                          x_range=(-4, 4), y_range=(-4, 4), bins=100),
        scalars, False, record_len=2,
    )
    lr_flat, _ = make_logreg_samples(scale // 16, 15, seed=seed)
    costs["logistic_regression"] = _app_cost(
        "logistic_regression",
        LogisticRegression(SchedArgs(chunk_size=16, num_iters=1, **vec), dims=15),
        lr_flat, False, record_len=16,
    )
    km_flat, _ = make_blobs(scale // 4, 4, 8, seed=seed)
    init = km_flat.reshape(-1, 4)[:8].copy()
    costs["kmeans"] = _app_cost(
        "kmeans",
        KMeans(SchedArgs(chunk_size=4, num_iters=1, extra_data=init, **vec), dims=4),
        km_flat, False, record_len=4,
    )
    costs.update(calibrate_window_kernels(scale=scale, seed=seed))
    return costs


def calibrate_window_kernels(
    scale: int = 20_000, win_size: int = 25, seed: int = 7
) -> dict[str, KernelCost]:
    """Compiled-equivalent per-element costs of the four window kernels.

    The cluster model stands in for the paper's *C++* runtime, so window
    costs are measured from compiled (numpy/scipy) kernels computing the
    identical quantity — a Python chunk loop would overstate these
    applications' cost by 2-3 orders of magnitude and distort every
    analytics-to-simulation ratio downstream.  State/sync bytes still
    come from small runs of the real Smart applications.
    """
    import scipy.signal
    from numpy.lib.stride_tricks import sliding_window_view

    rng = np.random.default_rng(seed)
    data = rng.normal(size=scale)
    half = win_size // 2
    windows = sliding_window_view(data, win_size)

    def state_probe(app, n: int = 2000) -> tuple[float, float]:
        small = data[:n]
        app.run2(small, np.full(n, np.nan))
        from ..core.serialization import serialize_map

        return (
            float(app.telemetry_snapshot()["counters"]["run.state_nbytes"]),
            float(len(serialize_map(app.get_combination_map()))),
        )

    costs: dict[str, KernelCost] = {}

    kernel = np.ones(win_size) / win_size
    t = _time(lambda: np.convolve(data, kernel, mode="same"))
    state, sync = state_probe(MovingAverage(SchedArgs(), win_size=win_size))
    costs["moving_average"] = KernelCost("moving_average", t / scale, state, sync)

    t = _time(lambda: np.median(windows, axis=1))
    state, sync = state_probe(MovingMedian(SchedArgs(), win_size=win_size))
    costs["moving_median"] = KernelCost("moving_median", t / scale, state, sync)

    offsets = np.arange(-half, half + 1)
    weights = np.exp(-0.5 * (offsets / (win_size / 5.0)) ** 2)
    t = _time(
        lambda: np.convolve(data, weights, mode="same")
        / np.convolve(np.ones_like(data), weights, mode="same")
    )
    state, sync = state_probe(GaussianKernelSmoother(SchedArgs(), win_size=win_size))
    costs["kernel_density"] = KernelCost("kernel_density", t / scale, state, sync)

    t = _time(lambda: scipy.signal.savgol_filter(data, win_size, 2))
    state, sync = state_probe(SavitzkyGolay(SchedArgs(), win_size=win_size, polyorder=2))
    costs["savgol"] = KernelCost("savgol", t / scale, state, sync)
    return costs


def calibrate_simulations() -> dict[str, KernelCost]:
    """Measure per-element per-step costs of the simulation substrates."""
    costs: dict[str, KernelCost] = {}

    heat = Heat3D((24, 48, 48))
    elements = heat.partition_elements
    costs["heat3d"] = KernelCost(
        "heat3d", _time(lambda: heat.advance()) / elements, 0.0, 0.0
    )

    lulesh = LuleshProxy(32)
    costs["lulesh"] = KernelCost(
        "lulesh", _time(lambda: lulesh.advance()) / lulesh.partition_elements, 0.0, 0.0
    )

    emulator = GaussianEmulator(200_000)
    costs["emulator"] = KernelCost(
        "emulator",
        _time(lambda: emulator.advance()) / emulator.partition_elements,
        0.0,
        0.0,
    )
    return costs
