"""Memory-pressure model.

Several of the paper's results are memory effects, not compute effects:

* Fig. 7's super-linear scaling at 16 nodes ("caused by the reduction in
  memory requirements per node as more compute nodes are used");
* Fig. 9's cliff when the copying implementation approaches physical
  capacity (and the crash at a 2 GB time-step / edge 233);
* Fig. 11's crash without early emission.

We model them with a standard smooth-pressure curve: below a pressure
threshold the node runs at full speed; between the threshold and
capacity, paging/allocator pressure multiplies runtime smoothly; beyond
capacity the configuration crashes (``MemoryCrash``), as the paper's runs
did.
"""

from __future__ import annotations

from dataclasses import dataclass


class MemoryCrash(RuntimeError):
    """The modeled working set exceeds node memory (paper: 'a crash')."""

    def __init__(self, working_set: int, capacity: int):
        self.working_set = working_set
        self.capacity = capacity
        super().__init__(
            f"working set {working_set / 2**30:.2f} GiB exceeds node memory "
            f"{capacity / 2**30:.2f} GiB"
        )


@dataclass(frozen=True)
class MemoryModel:
    """Pressure curve parameters.

    ``threshold`` is the utilization where slowdown starts; ``severity``
    is the multiplier reached exactly at capacity (a node at 100%
    utilization runs ``1 + severity`` times slower than an unpressured
    one — thrashing, not linear DRAM contention).
    """

    threshold: float = 0.70
    severity: float = 4.0

    def multiplier(self, working_set: int, capacity: int) -> float:
        """Runtime multiplier for a node holding ``working_set`` bytes.

        Raises :class:`MemoryCrash` when the working set does not fit.
        """
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        utilization = working_set / capacity
        if utilization > 1.0:
            raise MemoryCrash(working_set, capacity)
        if utilization <= self.threshold:
            return 1.0
        x = (utilization - self.threshold) / (1.0 - self.threshold)
        return 1.0 + self.severity * x * x
