"""Calibrated analytic performance model for cluster-scale figures.

Pipeline: :mod:`calibrate` measures per-element kernel costs by running
this repository's code → :mod:`costmodel` replays them on a
:mod:`machine` description with alpha-beta synchronization and the
:mod:`memory` pressure curve → the Figure 6-11 harnesses sweep the
paper's x-axes.
"""

from .calibrate import KernelCost, calibrate_analytics, calibrate_simulations
from .costmodel import (
    AnalyticsModel,
    NodeWorkload,
    Prediction,
    SimulationModel,
    collective_seconds,
    combine_crossover_keys,
    model_combine_allreduce,
    model_combine_gather,
    model_simulation_only,
    model_space_sharing,
    model_time_sharing,
    parallel_efficiency,
)
from .machine import (
    CALIBRATION_CLOCK_GHZ,
    MULTICORE_CLUSTER,
    XEON_PHI_CLUSTER,
    MachineSpec,
)
from .memory import MemoryCrash, MemoryModel

__all__ = [
    "AnalyticsModel",
    "CALIBRATION_CLOCK_GHZ",
    "KernelCost",
    "MULTICORE_CLUSTER",
    "MachineSpec",
    "MemoryCrash",
    "MemoryModel",
    "NodeWorkload",
    "Prediction",
    "SimulationModel",
    "XEON_PHI_CLUSTER",
    "calibrate_analytics",
    "calibrate_simulations",
    "collective_seconds",
    "combine_crossover_keys",
    "model_combine_allreduce",
    "model_combine_gather",
    "model_simulation_only",
    "model_space_sharing",
    "model_time_sharing",
    "parallel_efficiency",
]
