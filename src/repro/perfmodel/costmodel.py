"""Analytic cluster cost model.

Predicts in-situ run time at paper scale from (a) per-element kernel
costs *measured on this host by running this repository's code*
(:mod:`repro.perfmodel.calibrate`), (b) an alpha-beta interconnect model
over the byte volumes global combination actually serializes, and (c)
the memory-pressure model.  Used by the Figure 6-11 harnesses, whose
x-axes (node counts, Xeon Phi core splits, multi-GB time-steps) exceed
this machine.

The model makes no claim about absolute seconds on the paper's clusters;
it reproduces *shapes*: efficiency curves, sharing-mode crossovers, and
memory cliffs.  Every parameter is either measured here or stated in the
bench configuration (see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..core.space_sharing import CoreSplit
from .machine import CALIBRATION_CLOCK_GHZ, MachineSpec
from .memory import MemoryCrash, MemoryModel


@dataclass(frozen=True)
class AnalyticsModel:
    """Cost profile of one analytics application.

    Attributes
    ----------
    seconds_per_element:
        Calibration-host single-thread seconds per input element for one
        pass over the data.
    passes:
        Passes over each time-step's data (= ``num_iters`` for iterative
        applications; each pass ends in one global combination).
    sync_payload_bytes:
        Serialized combination-map bytes each rank contributes per global
        combination (measured by serializing the real map).
    state_bytes_fixed:
        Reduction/combination state independent of input size (e.g. a
        histogram's buckets).
    state_bytes_per_element:
        State that grows with per-node elements — the window applications
        *without* early emission hold one reduction object per element
        (paper Section 4.1); with early emission this is ~0.
    """

    name: str
    seconds_per_element: float
    passes: int = 1
    sync_payload_bytes: float = 0.0
    state_bytes_fixed: float = 0.0
    state_bytes_per_element: float = 0.0
    #: Thread-scaling Amdahl fraction for this application; ``None`` uses
    #: the machine's default.
    parallel_fraction: float | None = None
    #: Smooth saturation cap: ``speedup(t) = t / (1 + t / sat)``.  Models
    #: memory-bandwidth-bound kernels, which scale near-linearly at low
    #: thread counts and asymptote at ``sat`` — stream-bound scans
    #: (histogram, grid aggregation) saturate well before compute-bound
    #: window kernels do, the source of Fig. 8's 59%-vs-79% split.
    #: Takes precedence over ``parallel_fraction`` when set.
    saturation_speedup: float | None = None

    def with_early_emission(self, enabled: bool, obj_bytes: float) -> "AnalyticsModel":
        """Window-app variant toggle: per-element state appears when the
        trigger mechanism is disabled (Fig. 11's comparison)."""
        return replace(
            self, state_bytes_per_element=0.0 if enabled else obj_bytes
        )


@dataclass(frozen=True)
class SimulationModel:
    """Cost/memory profile of the upstream simulation at paper scale.

    ``memory_factor`` is the simulation's working set as a multiple of
    its per-step output bytes.  For the paper's codes this is far above
    our Python proxies' two or four arrays: real Heat3D at scale keeps
    double buffers plus MPI staging (the Fig. 9a crash at a 2 GB step on
    a 12 GB node implies ~5x), and real LULESH keeps ~40 element- and
    node-centred fields plus ghost zones while outputting one (the Fig.
    9b cliff at edge 233 implies ~100x).  The bench configs state the
    value used per figure.
    """

    name: str
    seconds_per_element: float
    memory_factor: float
    halo_bytes_per_step: float = 0.0


@dataclass(frozen=True)
class NodeWorkload:
    """Per-node per-step data volume."""

    elements_per_step: int
    num_steps: int
    bytes_per_element: int = 8

    @property
    def step_bytes(self) -> int:
        return self.elements_per_step * self.bytes_per_element

    @classmethod
    def from_total(
        cls, total_bytes: float, num_steps: int, nodes: int, bytes_per_element: int = 8
    ) -> "NodeWorkload":
        """Split a global dataset (e.g. the paper's 1 TB) evenly."""
        elements = int(total_bytes / bytes_per_element / num_steps / nodes)
        return cls(elements, num_steps, bytes_per_element)


@dataclass
class Prediction:
    """Modeled run time with its per-step breakdown (seconds)."""

    sim_seconds: float
    analytics_seconds: float
    sync_seconds: float
    memory_multiplier: float
    working_set_bytes: float
    num_steps: int
    mode: str
    crashed: bool = False
    notes: dict = field(default_factory=dict)

    @property
    def step_seconds(self) -> float:
        if self.crashed:
            return math.inf
        return (
            self.sim_seconds + self.analytics_seconds
        ) * self.memory_multiplier + self.sync_seconds

    @property
    def total_seconds(self) -> float:
        return self.step_seconds * self.num_steps


def analytics_speedup(machine: MachineSpec, threads: int, app: AnalyticsModel) -> float:
    """Thread speedup of this application's analytics on this machine."""
    threads = min(threads, machine.cores_per_node)
    if app.saturation_speedup is not None:
        return threads / (1.0 + threads / app.saturation_speedup)
    fraction = (
        app.parallel_fraction
        if app.parallel_fraction is not None
        else machine.analytics_parallel_fraction
    )
    return machine.thread_speedup(threads, fraction)


def collective_seconds(
    machine: MachineSpec, nodes: int, payload_bytes: float, rounds: int = 2
) -> float:
    """Alpha-beta cost of one global combination across ``nodes``.

    ``rounds=2``: the gather to the master plus the broadcast back
    (Algorithm 1's combination + redistribution), each a
    ``ceil(log2(nodes))``-deep tree.
    """
    if nodes <= 1:
        return 0.0
    depth = math.ceil(math.log2(nodes))
    return rounds * depth * (
        machine.net_latency_s + payload_bytes / machine.net_bandwidth_bps
    )


# -- global-combination algorithm models --------------------------------
#
# Linear-in-keys costs for the two combine algorithms the runtime can
# switch between (paper Fig. 6's overhead experiment vs the Section 5.3
# hand-written-MPI shape).  Per-key constants are calibration-host scale
# (2.5 GHz reference clock), in the same spirit as the kernel costs
# above: the model reproduces the *crossover shape*, not absolute
# seconds.

#: Master-side seconds to deserialize + Python-merge one reduction
#: object on the gather path (pickle decode, dict probe, ``merge()``).
T_OBJ_GATHER = 3e-6
#: Per-key seconds of the contiguous elementwise reduce (ufunc over
#: packed records) on the allreduce path.
T_KEY_ALLREDUCE = 4e-8
#: Fixed per-rank setup of the allreduce path: the collective
#: eligibility vote, key-union agreement, and identity padding.
ALLREDUCE_SETUP = 2e-4
#: Default serialized bytes per reduction object on the pickle wire.
OBJ_WIRE_BYTES = 96.0
#: Default bytes per key of a packed record row on the columnar wire.
REC_WIRE_BYTES = 24.0


def model_combine_gather(
    machine: MachineSpec,
    ranks: int,
    keys: int,
    obj_bytes: float = OBJ_WIRE_BYTES,
) -> float:
    """Modeled seconds of one ``gather`` global combination.

    The master receives every rank's serialized map (alpha-beta gather +
    broadcast back) and merges object by object in Python — the
    master-side term grows with ``(ranks - 1) * keys``, which is why
    gather loses to allreduce once maps are large (paper Fig. 6).
    """
    if ranks <= 1:
        return 0.0
    payload = keys * obj_bytes
    return (
        collective_seconds(machine, ranks, payload)
        + (ranks - 1) * keys * T_OBJ_GATHER
    )


def model_combine_allreduce(
    machine: MachineSpec,
    ranks: int,
    keys: int,
    rec_bytes: float = REC_WIRE_BYTES,
) -> float:
    """Modeled seconds of one ``allreduce`` global combination.

    Ranks agree on the key union, identity-pad packed records, and
    reduce the contiguous buffers elementwise — high fixed setup (the
    collective vote), tiny per-key cost (one ufunc lane per key).
    """
    if ranks <= 1:
        return 0.0
    depth = math.ceil(math.log2(ranks))
    payload = keys * rec_bytes
    return (
        ranks * ALLREDUCE_SETUP
        + collective_seconds(machine, ranks, 64.0)  # the eligibility vote
        + collective_seconds(machine, ranks, payload, rounds=1)
        + depth * keys * T_KEY_ALLREDUCE
    )


def combine_crossover_keys(
    machine: MachineSpec,
    ranks: int,
    *,
    obj_bytes: float = OBJ_WIRE_BYTES,
    rec_bytes: float = REC_WIRE_BYTES,
    max_keys: int = 1 << 20,
) -> int:
    """Smallest key count at which allreduce beats gather (``ranks`` > 1).

    Deterministic doubling-then-bisect scan of the two linear models —
    the calibrated decision boundary :class:`repro.core.autotune` uses
    both for launch-time advice and for the mid-run combine switch.
    Returns ``max_keys`` when gather wins everywhere below it.
    """
    if ranks <= 1:
        return max_keys

    def allreduce_wins(k: int) -> bool:
        return model_combine_allreduce(machine, ranks, k, rec_bytes) < (
            model_combine_gather(machine, ranks, k, obj_bytes)
        )

    hi = 1
    while hi < max_keys and not allreduce_wins(hi):
        hi *= 2
    if hi >= max_keys:
        return max_keys
    lo = hi // 2
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if allreduce_wins(mid):
            hi = mid
        else:
            lo = mid
    return hi


def _working_set(
    workload: NodeWorkload,
    sim: SimulationModel,
    app: AnalyticsModel,
    extra_copies: float,
) -> float:
    return (
        sim.memory_factor * workload.step_bytes
        + app.state_bytes_fixed
        + app.state_bytes_per_element * workload.elements_per_step
        + extra_copies * workload.step_bytes
    )


def model_time_sharing(
    machine: MachineSpec,
    nodes: int,
    threads: int,
    workload: NodeWorkload,
    sim: SimulationModel,
    app: AnalyticsModel,
    *,
    copy_input: bool = False,
    memory: MemoryModel = MemoryModel(),
    calibration_clock_ghz: float = CALIBRATION_CLOCK_GHZ,
) -> Prediction:
    """Predict a time-sharing run: sim and analytics alternate on all cores."""
    scale = machine.core_seconds_scale(calibration_clock_ghz)
    elems = workload.elements_per_step
    t_sim = (
        sim.seconds_per_element * elems * scale
        / machine.thread_speedup(threads, machine.sim_parallel_fraction)
    )
    t_ana = (
        app.seconds_per_element * elems * scale * app.passes
        / analytics_speedup(machine, threads, app)
    )
    t_sync = app.passes * collective_seconds(machine, nodes, app.sync_payload_bytes)
    t_sync += _halo_seconds(machine, nodes, sim)
    if copy_input:
        # The extra-copy implementation pays a real memcpy per step.
        t_sync += workload.step_bytes / machine.copy_bandwidth_bps
    t_sync *= _imbalance(machine, nodes)
    t_sim *= _imbalance(machine, nodes)
    t_ana *= _imbalance(machine, nodes)
    working = _working_set(workload, sim, app, 1.0 if copy_input else 0.0)
    try:
        mult = memory.multiplier(int(working), machine.mem_bytes)
        crashed = False
    except MemoryCrash:
        mult = math.inf
        crashed = True
    return Prediction(
        sim_seconds=t_sim,
        analytics_seconds=t_ana,
        sync_seconds=t_sync,
        memory_multiplier=mult,
        working_set_bytes=working,
        num_steps=workload.num_steps,
        mode="time_sharing",
        crashed=crashed,
    )


def model_simulation_only(
    machine: MachineSpec,
    nodes: int,
    threads: int,
    workload: NodeWorkload,
    sim: SimulationModel,
    *,
    memory: MemoryModel = MemoryModel(),
    calibration_clock_ghz: float = CALIBRATION_CLOCK_GHZ,
) -> Prediction:
    """Pure-simulation baseline (Fig. 10's 'simulation-only' bar)."""
    no_analytics = AnalyticsModel("none", 0.0)
    pred = model_time_sharing(
        machine, nodes, threads, workload, sim, no_analytics,
        memory=memory, calibration_clock_ghz=calibration_clock_ghz,
    )
    pred.mode = "simulation_only"
    return pred


def model_space_sharing(
    machine: MachineSpec,
    nodes: int,
    split: CoreSplit,
    workload: NodeWorkload,
    sim: SimulationModel,
    app: AnalyticsModel,
    *,
    buffer_cells: int = 4,
    memory: MemoryModel = MemoryModel(),
    calibration_clock_ghz: float = CALIBRATION_CLOCK_GHZ,
) -> Prediction:
    """Predict a space-sharing run: the two core groups run concurrently.

    Steady-state pipeline: the per-step time is the slower of the two
    stages, *plus* the communication of both stages, which cannot overlap
    — the paper notes space sharing "can only execute the message passing
    in simulation and analytics sequentially, to avoid the potential data
    race in MPI" (Section 5.6).  The circular buffer's cells are extra
    step-sized copies in the working set.
    """
    if split.total > machine.cores_per_node:
        raise ValueError(
            f"core split {split.label} exceeds {machine.cores_per_node} cores"
        )
    scale = machine.core_seconds_scale(calibration_clock_ghz)
    elems = workload.elements_per_step
    t_sim = (
        sim.seconds_per_element * elems * scale
        / machine.thread_speedup(split.sim_threads, machine.sim_parallel_fraction)
    )
    t_ana = (
        app.seconds_per_element * elems * scale * app.passes
        / analytics_speedup(machine, split.analytics_threads, app)
    )
    # Unlike time sharing's read pointer, space sharing must copy every
    # time-step into a circular-buffer cell (paper Section 3.2) — the
    # producer stage pays one memcpy per step.
    t_sim += workload.step_bytes / machine.copy_bandwidth_bps
    t_sync = app.passes * collective_seconds(machine, nodes, app.sync_payload_bytes)
    t_sync += _halo_seconds(machine, nodes, sim)
    # Space sharing copies each step into the circular buffer; occupied
    # cells are bounded by how far the producer runs ahead.
    cells_in_flight = min(buffer_cells, max(1, math.ceil(t_ana / max(t_sim, 1e-12))))
    working = _working_set(workload, sim, app, float(cells_in_flight))
    try:
        mult = memory.multiplier(int(working), machine.mem_bytes)
        crashed = False
    except MemoryCrash:
        mult = math.inf
        crashed = True
    t_sim *= _imbalance(machine, nodes)
    t_ana *= _imbalance(machine, nodes)
    t_sync *= _imbalance(machine, nodes)
    overlapped = max(t_sim, t_ana)
    hidden = min(t_sim, t_ana)
    pred = Prediction(
        sim_seconds=overlapped,
        analytics_seconds=0.0,
        sync_seconds=t_sync,
        memory_multiplier=mult,
        working_set_bytes=working,
        num_steps=workload.num_steps,
        mode=f"space_sharing[{split.label}]",
        crashed=crashed,
    )
    pred.notes.update(
        stage_sim=t_sim, stage_analytics=t_ana, hidden_seconds=hidden,
        cells_in_flight=cells_in_flight,
    )
    return pred


def _imbalance(machine: MachineSpec, nodes: int) -> float:
    """Straggler amplification: a step ends when the slowest rank does."""
    if nodes <= 1:
        return 1.0
    return 1.0 + machine.imbalance_coeff * math.log2(nodes)


def _halo_seconds(machine: MachineSpec, nodes: int, sim: SimulationModel) -> float:
    """Per-step halo-exchange cost of the simulation itself."""
    if nodes <= 1 or sim.halo_bytes_per_step <= 0:
        return 0.0
    return 2.0 * machine.net_latency_s + sim.halo_bytes_per_step / machine.net_bandwidth_bps


def parallel_efficiency(
    base_nodes: int, base_total: float, nodes: int, total: float
) -> float:
    """Weak/strong efficiency vs. the smallest configuration measured."""
    if total <= 0:
        raise ValueError("total time must be positive")
    return (base_total * base_nodes) / (total * nodes)
