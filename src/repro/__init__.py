"""Smart: a MapReduce-like framework for in-situ scientific analytics.

Python reproduction of Wang, Agrawal, Bicer & Jiang (SC 2015 / OSU TR
#OSU-CISRC-4/15-TR05).  Subpackages:

* :mod:`repro.core` — the Smart runtime (scheduler, reduction objects,
  time/space sharing, early emission, pipelines).
* :mod:`repro.comm` — the message-passing substrate (MPI stand-in).
* :mod:`repro.sim` — Heat3D, a LULESH-like proxy, and the emulator.
* :mod:`repro.analytics` — the paper's nine analytics applications.
* :mod:`repro.baselines` — mini-Spark, hand-written low-level analytics,
  and the offline (store-first-analyze-after) driver.
* :mod:`repro.perfmodel` — calibrated cluster performance model.
* :mod:`repro.harness` — per-figure experiment runners
  (``python -m repro.harness fig7``).
* :mod:`repro.telemetry` — the unified runtime-statistics recorder
  behind ``RunStats``, ``TrafficProfiler``, and the execution engines.
* :mod:`repro.faults` — deterministic seeded fault injection
  (:class:`~repro.faults.FaultPlan`) and recovery policies
  (:class:`~repro.faults.FaultPolicy`) for chaos testing the runtime.
"""

__version__ = "1.2.0"

from . import analytics, baselines, comm, core, faults, sim, telemetry  # noqa: F401

__all__ = [
    "analytics",
    "baselines",
    "comm",
    "core",
    "faults",
    "sim",
    "telemetry",
    "__version__",
]
