"""Shared machinery for window-based analytics (paper Section 4).

A window-based application computes one output per element position from
the elements inside a sliding window centred there.  With Smart's
``run2``/``gen_keys`` path, each element contributes to every window
snapshot that covers it; the reduction object for position ``i``
accumulates those contributions and its ``trigger`` fires once all of
them have arrived (full windows only — windows truncated by the global
array boundary flow through the combination phase instead).
"""

from __future__ import annotations

import numpy as np

from ..core.chunk import Chunk
from ..core.maps import KeyedMap
from ..core.sched_args import SchedArgs
from ..core.scheduler import Scheduler


def window_bounds(center: int, win_size: int, total_len: int) -> tuple[int, int]:
    """Inclusive-exclusive global bounds of the window centred at ``center``.

    ``win_size`` must be odd (a symmetric window with ``win_size // 2``
    elements on each side, clipped to ``[0, total_len)``).
    """
    half = win_size // 2
    return max(center - half, 0), min(center + half + 1, total_len)


def window_coverage(center: int, win_size: int, total_len: int) -> int:
    """Number of elements the (possibly clipped) window actually covers."""
    lo, hi = window_bounds(center, win_size, total_len)
    return hi - lo


class WindowScheduler(Scheduler):
    """Base class for the window applications: shared ``gen_keys``.

    An element at global position ``g`` contributes to every window
    centre in ``[g - half, g + half]`` that exists — Listing 5's
    ``gen_keys`` loop.  Subclasses implement ``accumulate`` / ``merge`` /
    ``convert`` and choose a reduction-object type whose ``trigger``
    encodes the full-coverage condition.

    Parameters
    ----------
    win_size:
        Window length; must be odd and >= 1 (the paper uses 7, 11 and 25).
    """

    def __init__(self, args: SchedArgs, comm=None, *, win_size: int):
        if args.chunk_size != 1:
            raise ValueError(
                f"window analytics consume scalar elements: chunk_size must be 1, "
                f"got {args.chunk_size}"
            )
        super().__init__(args, comm)
        if win_size < 1 or win_size % 2 == 0:
            raise ValueError(f"win_size must be odd and >= 1, got {win_size}")
        self.win_size = int(win_size)

    def gen_keys(
        self,
        chunk: Chunk,
        data: np.ndarray,
        keys: list[int],
        combination_map: KeyedMap,
    ) -> None:
        g = self.global_offset_ + chunk.start
        half = self.win_size // 2
        lo = max(g - half, 0)
        hi = min(g + half + 1, self.total_len_)
        keys.extend(range(lo, hi))

    def element_position(self, chunk: Chunk) -> int:
        """Global position of the (scalar) element in ``chunk``."""
        return self.global_offset_ + chunk.start

    def make_output(self, total_len: int | None = None) -> np.ndarray:
        """NaN-initialized output array (NaN marks 'not written locally',
        which :func:`~repro.core.scheduler.merge_distributed_output` uses
        to overlay per-rank partials)."""
        n = self.total_len_ if total_len is None else total_len
        return np.full(n, np.nan)


def sliding_window_apply(data: np.ndarray, win_size: int, fn) -> np.ndarray:
    """Reference evaluator: ``out[i] = fn(window_values, center_rel_index)``.

    ``window_values`` are the clipped window's elements in positional
    order; ``center_rel_index`` is the centre's index within them.  O(N·W)
    but obviously correct — the tests' ground truth for every window
    application.
    """
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    half = win_size // 2
    out = np.empty(n)
    for i in range(n):
        lo, hi = max(i - half, 0), min(i + half + 1, n)
        out[i] = fn(data[lo:hi], i - lo)
    return out
