"""Equi-width histogram (paper Listing 3; statistical analytics class).

The simplest non-iterative Smart application: one reduction object per
bucket, key = bucket index of the element's value.  Used throughout the
paper's evaluation (Figs. 5c, 7, 8, 10a).
"""

from __future__ import annotations

import numpy as np

from ..comm.interface import Communicator
from ..core.batch import HAVE_NUMBA, ColumnarAccumulator, maybe_njit
from ..core.chunk import Chunk
from ..core.maps import KeyedMap
from ..core.red_obj import RedObj
from ..core.sched_args import SchedArgs
from ..core.scheduler import Scheduler
from .objects import CountObj


@maybe_njit(cache=True)
def _histogram_count_kernel(block, lo, width, num_buckets, counts):  # pragma: no cover
    """Single-pass bucket-count scatter (numba-compiled when available).

    Divides by ``width`` — not a reciprocal multiply — so the quotient
    rounds exactly like the scalar ``bucket_of``.
    """
    for i in range(block.shape[0]):
        k = np.int64((block[i] - lo) / width)
        if k < 0:
            k = 0
        elif k >= num_buckets:
            k = num_buckets - 1
        counts[k] += 1


class Histogram(Scheduler):
    """Equi-width histogram over ``[lo, hi)`` with ``num_buckets`` buckets.

    Values outside the range clamp into the first/last bucket (so mass is
    conserved — a property the tests rely on).  Elements are scalars:
    ``chunk_size`` should be 1.

    Parameters
    ----------
    args, comm:
        Standard scheduler arguments and communicator.
    lo, hi:
        Value range.  The paper assumes the range "can be taken as a
        priori knowledge or be retrieved by an earlier Smart analytics
        job" — see :mod:`repro.analytics.minmax` for that earlier job.
    num_buckets:
        Bucket count (paper uses 100 in Section 5.2, 1,200 in 5.4).
    """

    def __init__(
        self,
        args: SchedArgs,
        comm: Communicator | None = None,
        *,
        lo: float,
        hi: float,
        num_buckets: int,
    ):
        super().__init__(args, comm)
        if not hi > lo:
            raise ValueError(f"need hi > lo, got [{lo}, {hi})")
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.lo = float(lo)
        self.hi = float(hi)
        self.num_buckets = int(num_buckets)
        self.width = (self.hi - self.lo) / self.num_buckets

    def bucket_of(self, value: float) -> int:
        k = int((value - self.lo) / self.width)
        if k < 0:
            return 0
        if k >= self.num_buckets:
            return self.num_buckets - 1
        return k

    # -- user API ----------------------------------------------------------
    def gen_key(self, chunk: Chunk, data: np.ndarray, combination_map: KeyedMap) -> int:
        return self.bucket_of(data[chunk.start])

    def accumulate(
        self, chunk: Chunk, data: np.ndarray, red_obj: RedObj | None, key: int
    ) -> RedObj:
        if red_obj is None:
            red_obj = CountObj()
        red_obj.count += 1
        return red_obj

    def merge(self, red_obj: RedObj, com_obj: RedObj) -> RedObj:
        com_obj.count += red_obj.count
        return com_obj

    def convert(self, red_obj: RedObj, out: np.ndarray, key: int) -> None:
        out[key] = red_obj.count

    # -- vectorized fast path ------------------------------------------------
    def vector_reduce(
        self, data: np.ndarray, start: int, stop: int, red_map: KeyedMap
    ) -> None:
        block = data[start:stop]
        keys = ((block - self.lo) / self.width).astype(np.int64)
        np.clip(keys, 0, self.num_buckets - 1, out=keys)
        counts = np.bincount(keys, minlength=self.num_buckets)
        for key in np.nonzero(counts)[0]:
            obj = red_map.get(int(key))
            if obj is None:
                obj = CountObj()
                red_map[int(key)] = obj
            obj.count += int(counts[key])

    # -- batch-map path ------------------------------------------------------
    def make_accumulator(self, start: int, stop: int) -> ColumnarAccumulator:
        return ColumnarAccumulator(CountObj(), 0, self.num_buckets)

    def batch_reduce(
        self, data: np.ndarray, start: int, stop: int, acc: ColumnarAccumulator
    ) -> None:
        block = data[start:stop]
        if HAVE_NUMBA:  # pragma: no cover - numba not in the test image
            counts = np.zeros(self.num_buckets, dtype=np.int64)
            _histogram_count_kernel(block, self.lo, self.width, self.num_buckets, counts)
        else:
            keys = ((block - self.lo) / self.width).astype(np.int64)
            np.clip(keys, 0, self.num_buckets - 1, out=keys)
            counts = np.bincount(keys, minlength=self.num_buckets)
        count_col = acc.column("count")
        count_col += counts
        acc.contrib += counts

    # -- convenience ---------------------------------------------------------
    def counts(self) -> np.ndarray:
        """Bucket counts from the combination map as a dense array."""
        out = np.zeros(self.num_buckets, dtype=np.int64)
        for key, obj in self.combination_map_.items():
            out[key] = obj.count
        return out


def reference_histogram(
    data: np.ndarray, lo: float, hi: float, num_buckets: int
) -> np.ndarray:
    """Ground-truth histogram with the same bucketing/clamping semantics.

    Uses the specification formula ``floor((v - lo) / width)`` with clamp,
    i.e. exactly what :meth:`Histogram.bucket_of` computes per element, so
    boundary values bucket identically (``np.histogram`` differs on the
    top edge and on float round-off at bin boundaries).
    """
    width = (hi - lo) / num_buckets
    keys = np.floor((np.asarray(data, dtype=np.float64) - lo) / width).astype(np.int64)
    np.clip(keys, 0, num_buckets - 1, out=keys)
    return np.bincount(keys, minlength=num_buckets).astype(np.int64)
