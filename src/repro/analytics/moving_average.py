"""Moving average (paper Listing 5; window-based analytics).

``out[i]`` is the mean of the elements in the window centred at ``i``.
The reduction object is the algebraic ``(sum, count)`` pair — Θ(1) per
window — and triggers (early emission, Section 4.2) at full coverage.
"""

from __future__ import annotations

import numpy as np

from ..core.batch import ColumnarAccumulator
from ..core.chunk import Chunk
from ..core.maps import KeyedMap
from ..core.red_obj import RedObj
from .objects import WindowSumObj
from .window import WindowScheduler, sliding_window_apply


class MovingAverage(WindowScheduler):
    """Sliding-window mean; use with ``run2`` (multi-key)."""

    def accumulate(
        self, chunk: Chunk, data: np.ndarray, red_obj: RedObj | None, key: int
    ) -> RedObj:
        if red_obj is None:
            red_obj = WindowSumObj(self.win_size)
        red_obj.total += float(data[chunk.start])
        red_obj.count += 1
        return red_obj

    def merge(self, red_obj: RedObj, com_obj: RedObj) -> RedObj:
        com_obj.total += red_obj.total
        com_obj.count += red_obj.count
        return com_obj

    def convert(self, red_obj: RedObj, out: np.ndarray, key: int) -> None:
        out[key] = red_obj.total / red_obj.count

    def vector_reduce(
        self, data: np.ndarray, start: int, stop: int, red_map: KeyedMap
    ) -> None:
        """Bulk path: per-offset shifted adds over the affected key range."""
        block = data[start:stop]
        half = self.win_size // 2
        g0 = self.global_offset_ + start
        key_lo = max(g0 - half, 0)
        key_hi = min(self.global_offset_ + stop - 1 + half, self.total_len_ - 1)
        n_keys = key_hi - key_lo + 1
        sums = np.zeros(n_keys)
        counts = np.zeros(n_keys, dtype=np.int64)
        for offset in range(-half, half + 1):
            keys = np.arange(g0, g0 + block.shape[0]) + offset
            valid = (keys >= 0) & (keys < self.total_len_)
            np.add.at(sums, keys[valid] - key_lo, block[valid])
            np.add.at(counts, keys[valid] - key_lo, 1)
        for i in np.nonzero(counts)[0]:
            key = key_lo + int(i)
            obj = red_map.get(key)
            if obj is None:
                obj = WindowSumObj(self.win_size)
                red_map[key] = obj
            obj.total += float(sums[i])
            obj.count += int(counts[i])


    # -- batch-map path ------------------------------------------------------
    def make_accumulator(self, start: int, stop: int) -> ColumnarAccumulator:
        half = self.win_size // 2
        g0 = self.global_offset_ + start
        g1 = self.global_offset_ + stop
        key_lo = max(g0 - half, 0)
        key_hi = min(g1 + half, self.total_len_)
        return ColumnarAccumulator(WindowSumObj(self.win_size), key_lo, key_hi)

    def batch_reduce(
        self, data: np.ndarray, start: int, stop: int, acc: ColumnarAccumulator
    ) -> None:
        block = data[start:stop]
        half = self.win_size // 2
        g0 = self.global_offset_ + start
        g1 = self.global_offset_ + stop
        totals = acc.column("total")
        counts = acc.column("count")
        contrib = acc.contrib
        # Offsets run DESCENDING (+half .. -half) so every key receives
        # its contributing elements in ascending element order, matching
        # the scalar loop's float grouping bit-for-bit: element g lands
        # on key g + o, so for a fixed key k the contributing element is
        # g = k - o — descending o gives ascending g.  (The object-path
        # vector_reduce above iterates ascending and is therefore only
        # value-equal, not bit-exact, which is why ``vectorized`` is a
        # structure axis in the conformance kit while ``map_path`` is
        # transparent.)
        for offset in range(half, -half - 1, -1):
            lo = max(g0, -offset)
            hi = min(g1, self.total_len_ - offset)
            if hi <= lo:
                continue
            k0 = lo + offset - acc.key_lo
            k1 = hi + offset - acc.key_lo
            seg = block[lo - g0 : hi - g0]
            totals[k0:k1] += seg
            counts[k0:k1] += 1
            contrib[k0:k1] += 1


def reference_moving_average(data: np.ndarray, win_size: int) -> np.ndarray:
    """Ground truth: clipped-window mean at every position."""
    return sliding_window_apply(data, win_size, lambda w, _c: w.mean())
