"""Moving median (window-based analytics; the holistic case).

The median cannot be computed from a compact summary: the reduction
object must hold all Θ(W) window elements (paper Section 4.1's
algebraic-vs-holistic distinction).  This is the application where early
emission matters most — Fig. 11b — because without it, N reduction
objects of Θ(W) elements each must be held simultaneously.
"""

from __future__ import annotations

import numpy as np

from ..core.chunk import Chunk
from ..core.red_obj import RedObj
from .objects import HoldAllObj
from .window import WindowScheduler, sliding_window_apply


class MovingMedian(WindowScheduler):
    """Sliding-window median; use with ``run2`` (multi-key).

    No vectorized fast path is provided: the holistic object defeats
    bulk accumulation, which is faithful to why the paper treats this
    application as the compute- and memory-heavy end of the spectrum.
    """

    def accumulate(
        self, chunk: Chunk, data: np.ndarray, red_obj: RedObj | None, key: int
    ) -> RedObj:
        if red_obj is None:
            red_obj = HoldAllObj(self.win_size)
        red_obj.add(self.element_position(chunk), float(data[chunk.start]))
        return red_obj

    def merge(self, red_obj: RedObj, com_obj: RedObj) -> RedObj:
        com_obj.extend(red_obj)
        return com_obj

    def convert(self, red_obj: RedObj, out: np.ndarray, key: int) -> None:
        out[key] = float(np.median(np.asarray(red_obj.values)))


def reference_moving_median(data: np.ndarray, win_size: int) -> np.ndarray:
    """Ground truth: clipped-window median at every position."""
    return sliding_window_apply(data, win_size, lambda w, _c: float(np.median(w)))
