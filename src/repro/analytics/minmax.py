"""Global min/max — the 'earlier Smart analytics job' of paper Listing 3.

The histogram example assumes the value range "can be taken as a priori
knowledge or be retrieved by an earlier Smart analytics job"; this is
that job.  A single reduction object (key 0) tracks the running minimum
and maximum, demonstrating the degenerate-key case and serving as the
first stage of the range→histogram pipeline example.
"""

from __future__ import annotations

import numpy as np

from ..core.batch import ColumnarAccumulator
from ..core.chunk import Chunk
from ..core.maps import KeyedMap
from ..core.red_obj import Field, RedObj
from ..core.scheduler import Scheduler


class MinMaxObj(RedObj):
    """Running (min, max) over all accumulated elements."""

    __slots__ = ("lo", "hi")

    def __init__(self):
        self.lo = np.inf
        self.hi = -np.inf

    def fields(self):
        return (Field("lo", np.float64, "min"), Field("hi", np.float64, "max"))

    def __repr__(self) -> str:  # pragma: no cover
        return f"MinMaxObj(lo={self.lo}, hi={self.hi})"


class MinMax(Scheduler):
    """Global value range of the input (single key 0; ``chunk_size=1``)."""

    def accumulate(
        self, chunk: Chunk, data: np.ndarray, red_obj: RedObj | None, key: int
    ) -> RedObj:
        if red_obj is None:
            red_obj = MinMaxObj()
        value = float(data[chunk.start])
        if value < red_obj.lo:
            red_obj.lo = value
        if value > red_obj.hi:
            red_obj.hi = value
        return red_obj

    def merge(self, red_obj: RedObj, com_obj: RedObj) -> RedObj:
        com_obj.lo = min(com_obj.lo, red_obj.lo)
        com_obj.hi = max(com_obj.hi, red_obj.hi)
        return com_obj

    def convert(self, red_obj: RedObj, out: np.ndarray, key: int) -> None:
        out[0] = red_obj.lo
        out[1] = red_obj.hi

    def vector_reduce(
        self, data: np.ndarray, start: int, stop: int, red_map: KeyedMap
    ) -> None:
        block = data[start:stop]
        obj = red_map.get(0)
        if obj is None:
            obj = MinMaxObj()
            red_map[0] = obj
        obj.lo = min(obj.lo, float(block.min()))
        obj.hi = max(obj.hi, float(block.max()))

    # -- batch-map path ------------------------------------------------------
    def make_accumulator(self, start: int, stop: int) -> ColumnarAccumulator:
        return ColumnarAccumulator(MinMaxObj(), 0, 1)

    def batch_reduce(
        self, data: np.ndarray, start: int, stop: int, acc: ColumnarAccumulator
    ) -> None:
        # min/max are exactly associative, so one reduction over the block
        # folded against the seeded running value is bit-identical to the
        # element loop.
        block = data[start:stop]
        lo = acc.column("lo")
        hi = acc.column("hi")
        lo[0] = min(lo[0], block.min())
        hi[0] = max(hi[0], block.max())
        acc.contrib[0] += stop - start

    @property
    def value_range(self) -> tuple[float, float]:
        obj = self.combination_map_[0]
        return obj.lo, obj.hi
