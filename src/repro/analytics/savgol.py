"""Savitzky-Golay smoothing filter (window-based analytics; paper ref 39).

For interior positions the filter is a fixed convolution: the output at
``i`` is the dot product of the window's elements with least-squares
polynomial-fit coefficients (obtained from
``scipy.signal.savgol_coeffs``).  Each element's contribution is its
value times the coefficient for its offset from the window centre — a
key-dependent weight, accumulated into a Θ(1) reduction object that
triggers at full coverage.

Positions within ``win_size // 2`` of the global array boundary have a
truncated window; there the reduction object keeps its raw samples and
``convert`` performs the polynomial fit directly on the truncated window
(evaluating the fit at the centre position).
"""

from __future__ import annotations

import numpy as np
from scipy.signal import savgol_coeffs

from ..core.chunk import Chunk
from ..core.red_obj import RedObj
from ..core.sched_args import SchedArgs
from .objects import SavGolObj
from .window import WindowScheduler, sliding_window_apply


class SavitzkyGolay(WindowScheduler):
    """Savitzky-Golay filter; use with ``run2``.

    Parameters
    ----------
    polyorder:
        Degree of the fitted polynomial; must be < ``win_size``.
    """

    def __init__(self, args: SchedArgs, comm=None, *, win_size: int, polyorder: int = 2):
        super().__init__(args, comm, win_size=win_size)
        if not 0 <= polyorder < win_size:
            raise ValueError(
                f"polyorder must be in [0, win_size), got {polyorder} for {win_size}"
            )
        self.polyorder = int(polyorder)
        # Coefficients ordered for offsets -half..+half relative to centre.
        self.coeffs = savgol_coeffs(win_size, polyorder, use="dot")[::-1].copy()

    def _is_boundary(self, key: int) -> bool:
        half = self.win_size // 2
        return key < half or key >= self.total_len_ - half

    def accumulate(
        self, chunk: Chunk, data: np.ndarray, red_obj: RedObj | None, key: int
    ) -> RedObj:
        if red_obj is None:
            red_obj = SavGolObj(self.win_size, boundary=self._is_boundary(key))
        pos = self.element_position(chunk)
        value = float(data[chunk.start])
        if red_obj.boundary:
            red_obj.positions.append(pos - key)  # offset from the centre
            red_obj.values.append(value)
        else:
            offset = pos - key + self.win_size // 2
            red_obj.acc += float(self.coeffs[offset]) * value
        red_obj.count += 1
        return red_obj

    def merge(self, red_obj: RedObj, com_obj: RedObj) -> RedObj:
        com_obj.acc += red_obj.acc
        com_obj.count += red_obj.count
        com_obj.positions.extend(red_obj.positions)
        com_obj.values.extend(red_obj.values)
        return com_obj

    def convert(self, red_obj: RedObj, out: np.ndarray, key: int) -> None:
        if red_obj.boundary:
            out[key] = _truncated_fit(
                np.asarray(red_obj.positions), np.asarray(red_obj.values), self.polyorder
            )
        else:
            out[key] = red_obj.acc


def _truncated_fit(offsets: np.ndarray, values: np.ndarray, polyorder: int) -> float:
    """Least-squares polynomial fit on a truncated window, evaluated at 0.

    Degree degrades gracefully when the window holds fewer points than
    ``polyorder + 1`` (the fit would otherwise be underdetermined).
    """
    degree = min(polyorder, offsets.shape[0] - 1)
    # Vandermonde least squares; evaluating at offset 0 selects the
    # constant coefficient.
    coeffs = np.polynomial.polynomial.polyfit(offsets, values, degree)
    return float(coeffs[0])


def reference_savgol(data: np.ndarray, win_size: int, polyorder: int = 2) -> np.ndarray:
    """Ground truth: interior = savgol convolution, boundary = truncated fit.

    The interior matches ``scipy.signal.savgol_filter``; the boundary uses
    the truncated-window least-squares fit defined above (scipy's
    ``mode='interp'`` instead re-uses the last *full* window's fit, a
    different but equally standard convention — tests compare interiors to
    scipy and boundaries to this definition).
    """
    def fit(window: np.ndarray, center: int) -> float:
        if window.shape[0] == win_size:
            coeffs = savgol_coeffs(win_size, polyorder, use="dot")[::-1]
            return float(coeffs @ window)
        offsets = np.arange(window.shape[0]) - center
        return _truncated_fit(offsets, window, polyorder)

    return sliding_window_apply(data, win_size, fit)
