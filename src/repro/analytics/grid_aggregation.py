"""Grid aggregation (visualization class; paper Sections 5.1, 5.4).

Groups the elements within each grid of ``grid_size`` consecutive
positions into a single element (here: their mean) for multi-resolution
visualization — the structural aggregation of SAGA [paper ref 57] that
conventional byte-stream MapReduce cannot express because it loses
positional information (paper Section 5.8).

Key = global element position // grid_size.
"""

from __future__ import annotations

import numpy as np

from ..comm.interface import Communicator
from ..core.batch import HAVE_NUMBA, ColumnarAccumulator, maybe_njit
from ..core.chunk import Chunk
from ..core.maps import KeyedMap
from ..core.red_obj import RedObj
from ..core.sched_args import SchedArgs
from ..core.scheduler import Scheduler
from .objects import SumCountObj


@maybe_njit(cache=True)
def _grid_sum_kernel(block, pos0, grid_size, key_lo, totals, counts):  # pragma: no cover
    """Sequential position-order scatter (numba-compiled when available).

    Accumulates element-by-element in ascending position order directly
    onto the seeded totals, so per-grid float sums group exactly like the
    scalar loop.
    """
    for i in range(block.shape[0]):
        r = (pos0 + i) // grid_size - key_lo
        totals[r] += block[i]
        counts[r] += 1


class GridAggregation(Scheduler):
    """Mean of every ``grid_size`` consecutive elements.

    ``chunk_size`` should be 1; positions are global (the scheduler's
    resolved ``global_offset_`` makes multi-rank partitions line up).

    Parameters
    ----------
    grid_size:
        Elements per grid (paper Section 5.4 uses 1,000).
    """

    def __init__(
        self,
        args: SchedArgs,
        comm: Communicator | None = None,
        *,
        grid_size: int,
    ):
        super().__init__(args, comm)
        if grid_size < 1:
            raise ValueError(f"grid_size must be >= 1, got {grid_size}")
        self.grid_size = int(grid_size)

    def gen_key(self, chunk: Chunk, data: np.ndarray, combination_map: KeyedMap) -> int:
        return (self.global_offset_ + chunk.start) // self.grid_size

    def accumulate(
        self, chunk: Chunk, data: np.ndarray, red_obj: RedObj | None, key: int
    ) -> RedObj:
        if red_obj is None:
            red_obj = SumCountObj()
        red_obj.total += float(data[chunk.start])
        red_obj.count += 1
        return red_obj

    def merge(self, red_obj: RedObj, com_obj: RedObj) -> RedObj:
        com_obj.total += red_obj.total
        com_obj.count += red_obj.count
        return com_obj

    def convert(self, red_obj: RedObj, out: np.ndarray, key: int) -> None:
        out[key] = red_obj.total / red_obj.count

    def vector_reduce(
        self, data: np.ndarray, start: int, stop: int, red_map: KeyedMap
    ) -> None:
        block = data[start:stop]
        positions = np.arange(self.global_offset_ + start, self.global_offset_ + stop)
        keys = positions // self.grid_size
        first = int(keys[0])
        rel = keys - first
        sums = np.bincount(rel, weights=block)
        counts = np.bincount(rel)
        for i in np.nonzero(counts)[0]:
            key = first + int(i)
            obj = red_map.get(key)
            if obj is None:
                obj = SumCountObj()
                red_map[key] = obj
            obj.total += float(sums[i])
            obj.count += int(counts[i])


    # -- batch-map path ------------------------------------------------------
    def make_accumulator(self, start: int, stop: int) -> ColumnarAccumulator:
        g0 = (self.global_offset_ + start) // self.grid_size
        g1 = (self.global_offset_ + stop - 1) // self.grid_size + 1
        return ColumnarAccumulator(SumCountObj(), g0, g1)

    def batch_reduce(
        self, data: np.ndarray, start: int, stop: int, acc: ColumnarAccumulator
    ) -> None:
        block = data[start:stop]
        totals = acc.column("total")
        counts = np.zeros(len(acc), dtype=np.int64)
        if HAVE_NUMBA:  # pragma: no cover - numba not in the test image
            _grid_sum_kernel(
                block,
                self.global_offset_ + start,
                self.grid_size,
                acc.key_lo,
                totals,
                counts,
            )
        else:
            positions = np.arange(
                self.global_offset_ + start, self.global_offset_ + stop
            )
            rel = positions // self.grid_size - acc.key_lo
            # ufunc.at applies updates element-by-element in index order —
            # the per-grid sums continue from the seeded totals with the
            # exact float grouping of the scalar loop (np.bincount would
            # produce a subtotal whose later addition regroups).
            np.add.at(totals, rel, block)
            counts += np.bincount(rel, minlength=len(acc)).astype(np.int64)
        count_col = acc.column("count")
        count_col += counts
        acc.contrib += counts


def reference_grid_aggregation(data: np.ndarray, grid_size: int) -> np.ndarray:
    """Ground-truth grid means over the full (global) array."""
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    n_grids = -(-n // grid_size)
    out = np.empty(n_grids)
    for g in range(n_grids):
        out[g] = data[g * grid_size : (g + 1) * grid_size].mean()
    return out
