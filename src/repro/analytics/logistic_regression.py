"""Logistic regression via batch gradient descent (feature analytics).

A single reduction object (key 0) accumulates the gradient of the
log-likelihood over all samples; ``post_combine`` applies one gradient
step after each global combination — one Smart iteration per GD
iteration, exactly the structure the paper benchmarks against Spark's
example LR (Section 5.2: 10 iterations × 15 dimensions).

Data layout: each unit chunk is one sample, ``dims`` features followed by
a 0/1 label (``chunk_size = dims + 1``).
"""

from __future__ import annotations

import numpy as np

from ..comm.interface import Communicator
from ..core.chunk import Chunk
from ..core.maps import KeyedMap
from ..core.red_obj import RedObj
from ..core.sched_args import SchedArgs
from ..core.scheduler import Scheduler
from .objects import GradientObj


def _sigmoid(z: np.ndarray | float) -> np.ndarray | float:
    return 1.0 / (1.0 + np.exp(-z))


class LogisticRegression(Scheduler):
    """Batch-GD logistic regression.

    The initial weights arrive as ``SchedArgs.extra_data`` (a ``dims``
    array; zeros when ``None``) — the paper's ``extra_data`` mechanism.
    Reduction maps are seeded from the combination map so ``accumulate``
    sees the current weights (Algorithm 1 line 6).

    Parameters
    ----------
    dims:
        Feature dimensions (chunk layout is ``dims`` features + label).
    learning_rate:
        Step size applied in ``post_combine``.
    """

    seed_reduction_maps = True

    def __init__(
        self,
        args: SchedArgs,
        comm: Communicator | None = None,
        *,
        dims: int,
        learning_rate: float = 0.1,
    ):
        if args.chunk_size != dims + 1:
            raise ValueError(
                f"chunk layout is {dims} features + 1 label: chunk_size must be "
                f"{dims + 1}, got {args.chunk_size}"
            )
        super().__init__(args, comm)
        if dims < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.dims = int(dims)
        self.learning_rate = float(learning_rate)

    # -- user API ------------------------------------------------------------
    def process_extra_data(self, extra_data, combination_map: KeyedMap) -> None:
        if 0 in combination_map:
            return  # keep the evolving model across time-steps
        weights = (
            np.zeros(self.dims)
            if extra_data is None
            else np.asarray(extra_data, dtype=np.float64)
        )
        if weights.shape != (self.dims,):
            raise ValueError(
                f"initial weights must have shape ({self.dims},), got {weights.shape}"
            )
        combination_map[0] = GradientObj(weights)

    def accumulate(
        self, chunk: Chunk, data: np.ndarray, red_obj: RedObj | None, key: int
    ) -> RedObj:
        assert red_obj is not None, "seeded reduction maps guarantee the object"
        x = data[chunk.start : chunk.start + self.dims]
        y = data[chunk.start + self.dims]
        p = _sigmoid(float(red_obj.weights @ x))
        red_obj.grad += (p - y) * x
        red_obj.count += 1
        return red_obj

    def merge(self, red_obj: RedObj, com_obj: RedObj) -> RedObj:
        com_obj.grad += red_obj.grad
        com_obj.count += red_obj.count
        com_obj.loss += red_obj.loss
        return com_obj

    def post_combine(self, combination_map: KeyedMap) -> None:
        obj = combination_map[0]
        if obj.count > 0:
            obj.weights -= self.learning_rate * obj.grad / obj.count
        obj.grad[:] = 0.0
        obj.count = 0
        obj.loss = 0.0

    def convert(self, red_obj: RedObj, out: np.ndarray, key: int) -> None:
        out[:] = red_obj.weights

    def vector_reduce(
        self, data: np.ndarray, start: int, stop: int, red_map: KeyedMap
    ) -> None:
        obj = red_map.get(0)
        assert obj is not None, "seeded reduction maps guarantee the object"
        block = data[start:stop].reshape(-1, self.dims + 1)
        X = block[:, : self.dims]
        y = block[:, self.dims]
        p = _sigmoid(X @ obj.weights)
        obj.grad += X.T @ (p - y)
        obj.count += X.shape[0]

    # -- result ----------------------------------------------------------------
    @property
    def weights(self) -> np.ndarray:
        return self.combination_map_[0].weights


def make_logreg_samples(
    n: int, dims: int, true_weights: np.ndarray | None = None, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic samples: interleaved ``(features..., label)`` rows.

    Returns ``(flat_data, true_weights)`` where ``flat_data`` has
    ``n * (dims + 1)`` float64 values.
    """
    rng = np.random.default_rng(seed)
    w = rng.normal(size=dims) if true_weights is None else np.asarray(true_weights)
    X = rng.normal(size=(n, dims))
    prob = _sigmoid(X @ w)
    y = (rng.random(n) < prob).astype(np.float64)
    flat = np.concatenate([X, y[:, None]], axis=1).reshape(-1)
    return flat, w


def reference_logreg(
    flat_data: np.ndarray,
    dims: int,
    num_iters: int,
    learning_rate: float = 0.1,
    init_weights: np.ndarray | None = None,
) -> np.ndarray:
    """Ground-truth batch GD on the full dataset (pure numpy)."""
    block = np.asarray(flat_data, dtype=np.float64).reshape(-1, dims + 1)
    X, y = block[:, :dims], block[:, dims]
    w = np.zeros(dims) if init_weights is None else np.asarray(init_weights, float).copy()
    for _ in range(num_iters):
        p = _sigmoid(X @ w)
        w -= learning_rate * (X.T @ (p - y)) / X.shape[0]
    return w
