"""Gaussian kernel density estimation (window-based analytics).

Two estimators are provided:

* :class:`GaussianKernelSmoother` — the paper's window-based formulation
  ("window sizes were all 25", Section 5.4): the density/intensity
  estimate at position ``i`` is the Gaussian-kernel-weighted combination
  of the elements in the window centred at ``i``,
  ``out[i] = Σ_j K((j - i)/h) · x_j / Σ_j K((j - i)/h)``.  This is a
  Nadaraya-Watson estimate with a positional kernel — the standard way a
  streaming Gaussian KDE/smoother is applied to a regularly sampled
  signal.  The kernel weight depends on the (key, element) pair, which is
  why ``accumulate`` receives the key in this Python port.

* :class:`ValueGridKDE` — a classic value-space KDE on a fixed evaluation
  grid, ``f(v_g) = (1/(N·h)) Σ_j K((v_g - x_j)/h)``, exercising the
  ``run2`` multi-key path without windows (each sample contributes to all
  grid points within ``cutoff`` bandwidths).  Not part of the paper's
  nine applications, but a natural extension users of such a framework
  expect; included in the extension benches.
"""

from __future__ import annotations

import math

import numpy as np

from ..comm.interface import Communicator
from ..core.batch import ColumnarAccumulator
from ..core.chunk import Chunk
from ..core.maps import KeyedMap
from ..core.red_obj import RedObj
from ..core.sched_args import SchedArgs
from ..core.scheduler import Scheduler
from .objects import SumCountObj, WeightedWindowObj
from .window import WindowScheduler, sliding_window_apply


class GaussianKernelSmoother(WindowScheduler):
    """Window-based Gaussian kernel estimate; use with ``run2``.

    Parameters
    ----------
    bandwidth:
        Positional kernel bandwidth ``h`` (in elements).  Defaults to
        ``win_size / 5`` so the kernel decays to ~e⁻³ at the window edge.
    """

    def __init__(self, args: SchedArgs, comm=None, *, win_size: int,
                 bandwidth: float | None = None):
        super().__init__(args, comm, win_size=win_size)
        self.bandwidth = float(bandwidth) if bandwidth else self.win_size / 5.0
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")

    def kernel(self, distance: float) -> float:
        """Unnormalized Gaussian positional kernel."""
        z = distance / self.bandwidth
        return math.exp(-0.5 * z * z)

    def accumulate(
        self, chunk: Chunk, data: np.ndarray, red_obj: RedObj | None, key: int
    ) -> RedObj:
        if red_obj is None:
            red_obj = WeightedWindowObj(self.win_size)
        pos = self.element_position(chunk)
        w = self.kernel(pos - key)
        red_obj.wsum += w * float(data[chunk.start])
        red_obj.wtotal += w
        red_obj.count += 1
        return red_obj

    def merge(self, red_obj: RedObj, com_obj: RedObj) -> RedObj:
        com_obj.wsum += red_obj.wsum
        com_obj.wtotal += red_obj.wtotal
        com_obj.count += red_obj.count
        return com_obj

    def convert(self, red_obj: RedObj, out: np.ndarray, key: int) -> None:
        out[key] = red_obj.wsum / red_obj.wtotal


def reference_gaussian_smoother(
    data: np.ndarray, win_size: int, bandwidth: float | None = None
) -> np.ndarray:
    """Ground truth for :class:`GaussianKernelSmoother`."""
    h = float(bandwidth) if bandwidth else win_size / 5.0

    def estimate(window: np.ndarray, center: int) -> float:
        offsets = np.arange(window.shape[0]) - center
        weights = np.exp(-0.5 * (offsets / h) ** 2)
        return float(weights @ window / weights.sum())

    return sliding_window_apply(data, win_size, estimate)


class ValueGridKDE(Scheduler):
    """Value-space Gaussian KDE on a fixed evaluation grid (``run2``).

    Keys are evaluation-grid indices; each sample contributes kernel mass
    to every grid point within ``cutoff`` bandwidths of its value.
    ``density()`` normalizes by the *global* sample count after the run.
    """

    def __init__(
        self,
        args: SchedArgs,
        comm: Communicator | None = None,
        *,
        grid: np.ndarray,
        bandwidth: float,
        cutoff: float = 4.0,
    ):
        if args.chunk_size != 1:
            raise ValueError("ValueGridKDE consumes scalar samples (chunk_size=1)")
        super().__init__(args, comm)
        self.grid = np.asarray(grid, dtype=np.float64)
        if self.grid.ndim != 1 or self.grid.shape[0] < 2:
            raise ValueError("grid must be a 1-D array with >= 2 points")
        if np.any(np.diff(self.grid) <= 0):
            raise ValueError("grid must be strictly increasing")
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.bandwidth = float(bandwidth)
        self.cutoff = float(cutoff)

    def _reach(self, value: float) -> range:
        lo = np.searchsorted(self.grid, value - self.cutoff * self.bandwidth, "left")
        hi = np.searchsorted(self.grid, value + self.cutoff * self.bandwidth, "right")
        return range(int(lo), int(hi))

    def gen_keys(
        self, chunk: Chunk, data: np.ndarray, keys: list[int], combination_map: KeyedMap
    ) -> None:
        keys.extend(self._reach(float(data[chunk.start])))

    def accumulate(
        self, chunk: Chunk, data: np.ndarray, red_obj: RedObj | None, key: int
    ) -> RedObj:
        if red_obj is None:
            red_obj = SumCountObj()
        z = (float(data[chunk.start]) - self.grid[key]) / self.bandwidth
        red_obj.total += math.exp(-0.5 * z * z)
        red_obj.count += 1
        return red_obj

    def merge(self, red_obj: RedObj, com_obj: RedObj) -> RedObj:
        com_obj.total += red_obj.total
        com_obj.count += red_obj.count
        return com_obj

    def convert(self, red_obj: RedObj, out: np.ndarray, key: int) -> None:
        out[key] = red_obj.total

    # -- batch-map path ------------------------------------------------------
    def make_accumulator(self, start: int, stop: int) -> ColumnarAccumulator:
        return ColumnarAccumulator(SumCountObj(), 0, self.grid.shape[0])

    def batch_reduce(
        self, data: np.ndarray, start: int, stop: int, acc: ColumnarAccumulator
    ) -> None:
        """Sample-major (sample, grid-point) pair expansion.

        The pair list enumerates each sample's reach in ascending sample
        order — the exact visitation order of the scalar ``gen_keys``
        loop — and ``np.add.at`` applies updates in pair order, so per-key
        sums group identically.  The one deviation: ``np.exp`` (SIMD) may
        differ from ``math.exp`` (libm) in the last ulp per term, which
        is why this workload declares a ``batch_ulp`` bound in the
        conformance registry instead of bit-exactness.
        """
        block = np.asarray(data[start:stop], dtype=np.float64)
        reach = self.cutoff * self.bandwidth
        lo_idx = np.searchsorted(self.grid, block - reach, "left")
        hi_idx = np.searchsorted(self.grid, block + reach, "right")
        counts_per = hi_idx - lo_idx
        total_pairs = int(counts_per.sum())
        if total_pairs == 0:
            return
        ends = np.cumsum(counts_per)
        starts = ends - counts_per
        within = np.arange(total_pairs) - np.repeat(starts, counts_per)
        keys = np.repeat(lo_idx, counts_per) + within
        vals = np.repeat(block, counts_per)
        z = (vals - self.grid[keys]) / self.bandwidth
        mass = np.exp(-0.5 * z * z)
        np.add.at(acc.column("total"), keys, mass)
        cnt = np.bincount(keys, minlength=len(acc)).astype(np.int64)
        count_col = acc.column("count")
        count_col += cnt
        acc.contrib += cnt

    def density(self, n_samples: int) -> np.ndarray:
        """Normalized density over the grid given the global sample count."""
        norm = n_samples * self.bandwidth * math.sqrt(2.0 * math.pi)
        out = np.zeros_like(self.grid)
        for key, obj in self.combination_map_.items():
            out[key] = obj.total / norm
        return out


def reference_value_grid_kde(
    samples: np.ndarray, grid: np.ndarray, bandwidth: float, cutoff: float = 4.0
) -> np.ndarray:
    """Ground truth for :class:`ValueGridKDE` (same truncation)."""
    samples = np.asarray(samples, dtype=np.float64)
    grid = np.asarray(grid, dtype=np.float64)
    z = (grid[None, :] - samples[:, None]) / bandwidth
    mass = np.exp(-0.5 * z * z)
    mass[np.abs(z) > cutoff] = 0.0
    return mass.sum(axis=0) / (samples.shape[0] * bandwidth * math.sqrt(2 * math.pi))
