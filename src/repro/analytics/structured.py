"""Structural analytics on 3-D fields (extension; paper Section 5.8, ref [57]).

The paper argues Smart suits *ad-hoc structural analytics* because its
unit chunks preserve array positional information, citing SAGA's
structural aggregations.  The bundled grid aggregation and moving average
operate on the flattened 1-D view; this module provides the full 3-D
forms for simulation fields:

* :class:`TileAggregation3D` — mean over ``(tz, ty, tx)`` tiles of a
  ``(nz, ny, nx)`` field (multi-resolution downsampling for
  visualization);
* :class:`MovingAverage3D` — mean over a cubic sliding window centred at
  every cell (volumetric smoothing), with early emission at full-window
  coverage exactly like the 1-D case.

Positions are *global*: with the slab decomposition used by the bundled
simulations, rank ``r``'s flattened partition starts at global element
``z_start * ny * nx``, so tiles and windows spanning rank boundaries are
resolved by global combination like any other key.
"""

from __future__ import annotations

import numpy as np

from ..comm.interface import Communicator
from ..core.chunk import Chunk
from ..core.maps import KeyedMap
from ..core.red_obj import RedObj
from ..core.sched_args import SchedArgs
from ..core.scheduler import Scheduler
from .objects import SumCountObj, WindowSumObj


class _Field3D(Scheduler):
    """Shared 3-D coordinate bookkeeping."""

    def __init__(self, args: SchedArgs, comm: Communicator | None = None,
                 *, shape: tuple[int, int, int]):
        if args.chunk_size != 1:
            raise ValueError("3-D structural analytics consume scalar cells "
                             "(chunk_size must be 1)")
        super().__init__(args, comm)
        nz, ny, nx = shape
        if min(nz, ny, nx) < 1:
            raise ValueError(f"invalid field shape {shape}")
        self.shape = (int(nz), int(ny), int(nx))

    def coords(self, chunk: Chunk) -> tuple[int, int, int]:
        """Global (z, y, x) of the cell in ``chunk``."""
        nz, ny, nx = self.shape
        g = self.global_offset_ + chunk.start
        z, rem = divmod(g, ny * nx)
        y, x = divmod(rem, nx)
        return z, y, x

    def flat(self, z: int, y: int, x: int) -> int:
        _nz, ny, nx = self.shape
        return (z * ny + y) * nx + x


class TileAggregation3D(_Field3D):
    """Mean of every ``(tz, ty, tx)`` tile of a 3-D field.

    Key = flattened tile index over the ``ceil(n/t)``-per-axis tile grid.
    Edge tiles may be partial; their mean is over the cells they cover.
    """

    def __init__(self, args: SchedArgs, comm=None, *,
                 shape: tuple[int, int, int], tile: tuple[int, int, int]):
        super().__init__(args, comm, shape=shape)
        tz, ty, tx = tile
        if min(tz, ty, tx) < 1:
            raise ValueError(f"invalid tile shape {tile}")
        self.tile = (int(tz), int(ty), int(tx))
        self.tiles_per_axis = tuple(
            -(-n // t) for n, t in zip(self.shape, self.tile)
        )

    def tile_key(self, z: int, y: int, x: int) -> int:
        tz, ty, tx = self.tile
        gz, gy, gx = z // tz, y // ty, x // tx
        _mz, my, mx = self.tiles_per_axis
        return (gz * my + gy) * mx + gx

    @property
    def num_tiles(self) -> int:
        mz, my, mx = self.tiles_per_axis
        return mz * my * mx

    def gen_key(self, chunk: Chunk, data: np.ndarray, combination_map: KeyedMap) -> int:
        return self.tile_key(*self.coords(chunk))

    def accumulate(self, chunk: Chunk, data: np.ndarray, red_obj: RedObj | None,
                   key: int) -> RedObj:
        if red_obj is None:
            red_obj = SumCountObj()
        red_obj.total += float(data[chunk.start])
        red_obj.count += 1
        return red_obj

    def merge(self, red_obj: RedObj, com_obj: RedObj) -> RedObj:
        com_obj.total += red_obj.total
        com_obj.count += red_obj.count
        return com_obj

    def convert(self, red_obj: RedObj, out: np.ndarray, key: int) -> None:
        out[key] = red_obj.total / red_obj.count

    def vector_reduce(self, data: np.ndarray, start: int, stop: int,
                      red_map: KeyedMap) -> None:
        nz, ny, nx = self.shape
        tz, ty, tx = self.tile
        _mz, my, mx = self.tiles_per_axis
        g = np.arange(self.global_offset_ + start, self.global_offset_ + stop)
        z, rem = np.divmod(g, ny * nx)
        y, x = np.divmod(rem, nx)
        keys = ((z // tz) * my + (y // ty)) * mx + (x // tx)
        first = int(keys.min())
        rel = keys - first
        sums = np.bincount(rel, weights=data[start:stop])
        counts = np.bincount(rel)
        for i in np.nonzero(counts)[0]:
            key = first + int(i)
            obj = red_map.get(key)
            if obj is None:
                obj = SumCountObj()
                red_map[key] = obj
            obj.total += float(sums[i])
            obj.count += int(counts[i])

    def means(self) -> np.ndarray:
        """Dense tile-mean field, shaped ``tiles_per_axis``."""
        out = np.full(self.num_tiles, np.nan)
        for key, obj in self.combination_map_.items():
            out[key] = obj.total / obj.count
        return out.reshape(self.tiles_per_axis)


class MovingAverage3D(_Field3D):
    """Cubic-window mean at every cell of a 3-D field; use with ``run2``.

    ``win_size`` is the odd edge length of the cube; a cell contributes to
    every window centre within ``win_size // 2`` along each axis.  The
    reduction object triggers at full ``win_size**3`` coverage (interior
    windows entirely inside one split), the direct 3-D generalization of
    paper Listing 5.
    """

    def __init__(self, args: SchedArgs, comm=None, *,
                 shape: tuple[int, int, int], win_size: int):
        super().__init__(args, comm, shape=shape)
        if win_size < 1 or win_size % 2 == 0:
            raise ValueError(f"win_size must be odd and >= 1, got {win_size}")
        self.win_size = int(win_size)
        self.full_coverage = self.win_size**3

    def gen_keys(self, chunk: Chunk, data: np.ndarray, keys: list[int],
                 combination_map: KeyedMap) -> None:
        nz, ny, nx = self.shape
        z, y, x = self.coords(chunk)
        half = self.win_size // 2
        for cz in range(max(z - half, 0), min(z + half + 1, nz)):
            for cy in range(max(y - half, 0), min(y + half + 1, ny)):
                base = (cz * ny + cy) * nx
                keys.extend(
                    range(base + max(x - half, 0), base + min(x + half + 1, nx))
                )

    def accumulate(self, chunk: Chunk, data: np.ndarray, red_obj: RedObj | None,
                   key: int) -> RedObj:
        if red_obj is None:
            red_obj = WindowSumObj(self.full_coverage)
        red_obj.total += float(data[chunk.start])
        red_obj.count += 1
        return red_obj

    def merge(self, red_obj: RedObj, com_obj: RedObj) -> RedObj:
        com_obj.total += red_obj.total
        com_obj.count += red_obj.count
        return com_obj

    def convert(self, red_obj: RedObj, out: np.ndarray, key: int) -> None:
        out[key] = red_obj.total / red_obj.count


def reference_tile_aggregation_3d(
    field: np.ndarray, tile: tuple[int, int, int]
) -> np.ndarray:
    """Ground-truth tile means (partial edge tiles included)."""
    nz, ny, nx = field.shape
    tz, ty, tx = tile
    mz, my, mx = -(-nz // tz), -(-ny // ty), -(-nx // tx)
    out = np.empty((mz, my, mx))
    for gz in range(mz):
        for gy in range(my):
            for gx in range(mx):
                block = field[
                    gz * tz : (gz + 1) * tz,
                    gy * ty : (gy + 1) * ty,
                    gx * tx : (gx + 1) * tx,
                ]
                out[gz, gy, gx] = block.mean()
    return out


def reference_moving_average_3d(field: np.ndarray, win_size: int) -> np.ndarray:
    """Ground-truth clipped cubic-window mean (O(N·W³); test scale only)."""
    nz, ny, nx = field.shape
    half = win_size // 2
    out = np.empty_like(field, dtype=np.float64)
    for z in range(nz):
        z0, z1 = max(z - half, 0), min(z + half + 1, nz)
        for y in range(ny):
            y0, y1 = max(y - half, 0), min(y + half + 1, ny)
            for x in range(nx):
                x0, x1 = max(x - half, 0), min(x + half + 1, nx)
                out[z, y, x] = field[z0:z1, y0:y1, x0:x1].mean()
    return out
