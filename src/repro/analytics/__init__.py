"""The paper's nine analytics applications (plus min/max, Section 5.1).

========================  ==========================================
Class of analytics        Application
========================  ==========================================
visualization             :class:`GridAggregation`
statistical               :class:`Histogram`
similarity                :class:`MutualInformation`
feature                   :class:`LogisticRegression`
clustering                :class:`KMeans`
window-based              :class:`MovingAverage`, :class:`MovingMedian`,
                          :class:`GaussianKernelSmoother`,
                          :class:`SavitzkyGolay`
========================  ==========================================

Every application ships a pure-numpy ``reference_*`` ground-truth
implementation used by the tests and a vectorized fast path where the
reduction is algebraic.
"""

from .grid_aggregation import GridAggregation, reference_grid_aggregation
from .histogram import Histogram, reference_histogram
from .kernel_density import (
    GaussianKernelSmoother,
    ValueGridKDE,
    reference_gaussian_smoother,
    reference_value_grid_kde,
)
from .kmeans import KMeans, make_blobs, reference_kmeans
from .logistic_regression import (
    LogisticRegression,
    make_logreg_samples,
    reference_logreg,
)
from .minmax import MinMax, MinMaxObj
from .moving_average import MovingAverage, reference_moving_average
from .moving_median import MovingMedian, reference_moving_median
from .mutual_information import (
    MutualInformation,
    mutual_information_from_counts,
    reference_mutual_information,
)
from .objects import (
    ClusterObj,
    CountObj,
    GradientObj,
    HoldAllObj,
    SavGolObj,
    SumCountObj,
    WeightedWindowObj,
    WindowSumObj,
)
from .savgol import SavitzkyGolay, reference_savgol
from .structured import (
    MovingAverage3D,
    TileAggregation3D,
    reference_moving_average_3d,
    reference_tile_aggregation_3d,
)
from .window import (
    WindowScheduler,
    sliding_window_apply,
    window_bounds,
    window_coverage,
)

__all__ = [
    "ClusterObj",
    "CountObj",
    "GaussianKernelSmoother",
    "GradientObj",
    "GridAggregation",
    "Histogram",
    "HoldAllObj",
    "KMeans",
    "LogisticRegression",
    "MinMax",
    "MinMaxObj",
    "MovingAverage",
    "MovingAverage3D",
    "MovingMedian",
    "MutualInformation",
    "SavGolObj",
    "SavitzkyGolay",
    "SumCountObj",
    "TileAggregation3D",
    "ValueGridKDE",
    "WeightedWindowObj",
    "WindowScheduler",
    "WindowSumObj",
    "make_blobs",
    "make_logreg_samples",
    "mutual_information_from_counts",
    "reference_gaussian_smoother",
    "reference_grid_aggregation",
    "reference_histogram",
    "reference_kmeans",
    "reference_logreg",
    "reference_moving_average",
    "reference_moving_average_3d",
    "reference_moving_median",
    "reference_mutual_information",
    "reference_savgol",
    "reference_tile_aggregation_3d",
    "reference_value_grid_kde",
    "sliding_window_apply",
    "window_bounds",
    "window_coverage",
]
