"""Reduction-object types shared across the bundled analytics."""

from __future__ import annotations

import numpy as np

from ..core.red_obj import Field, RedObj


class CountObj(RedObj):
    """A bare counter (histogram buckets, joint-histogram cells)."""

    __slots__ = ("count",)

    def __init__(self, count: int = 0):
        self.count = int(count)

    def fields(self):
        return (Field("count", np.int64, "sum"),)

    def __repr__(self) -> str:  # pragma: no cover
        return f"CountObj(count={self.count})"


class SumCountObj(RedObj):
    """Sum and count — the algebraic pair behind averages."""

    __slots__ = ("total", "count")

    def __init__(self, total: float = 0.0, count: int = 0):
        self.total = float(total)
        self.count = int(count)

    def fields(self):
        return (Field("total", np.float64, "sum"), Field("count", np.int64, "sum"))

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ZeroDivisionError("mean of an empty SumCountObj")
        return self.total / self.count

    def __repr__(self) -> str:  # pragma: no cover
        return f"SumCountObj(total={self.total}, count={self.count})"


class WindowSumObj(RedObj):
    """Sum/count with an early-emission trigger at full window coverage.

    The paper's Listing 5 ``WinObj``: a window snapshot's value is final
    once every one of its ``win_size`` contributions has arrived, which
    can only happen when the whole window lies inside one split — exactly
    the situation early emission exploits.  Boundary windows (global array
    edges) never reach ``win_size`` and flow through combination instead.
    """

    __slots__ = ("total", "count", "win_size")

    def __init__(self, win_size: int, total: float = 0.0, count: int = 0):
        self.win_size = int(win_size)
        self.total = float(total)
        self.count = int(count)

    def fields(self):
        # win_size is identical for every window of a run, so "max" is a
        # correct merge (and keeps the schema allreduce-eligible).
        return (
            Field("total", np.float64, "sum"),
            Field("count", np.int64, "sum"),
            Field("win_size", np.int64, "max"),
        )

    def trigger(self) -> bool:
        return self.count == self.win_size

    def __repr__(self) -> str:  # pragma: no cover
        return f"WindowSumObj(total={self.total}, count={self.count}/{self.win_size})"


class WeightedWindowObj(RedObj):
    """Weighted sum / weight total / count, with the full-window trigger.

    Used by the Gaussian kernel estimator (weights from the positional
    kernel) and by any Nadaraya-Watson style smoother.
    """

    __slots__ = ("wsum", "wtotal", "count", "win_size")

    def __init__(self, win_size: int):
        self.win_size = int(win_size)
        self.wsum = 0.0
        self.wtotal = 0.0
        self.count = 0

    def fields(self):
        return (
            Field("wsum", np.float64, "sum"),
            Field("wtotal", np.float64, "sum"),
            Field("count", np.int64, "sum"),
            Field("win_size", np.int64, "max"),
        )

    def trigger(self) -> bool:
        return self.count == self.win_size


class HoldAllObj(RedObj):
    """Holds every contribution — the Θ(W) holistic case (moving median).

    ``values`` stores ``(global_position, value)`` pairs so holistic
    statistics that care about within-window order (not the median, but
    e.g. a mid-window difference) remain computable after out-of-order
    accumulation across splits and ranks.
    """

    __slots__ = ("positions", "values", "win_size")

    def __init__(self, win_size: int):
        self.win_size = int(win_size)
        self.positions: list[int] = []
        self.values: list[float] = []

    @property
    def count(self) -> int:
        return len(self.values)

    def add(self, position: int, value: float) -> None:
        self.positions.append(int(position))
        self.values.append(float(value))

    def extend(self, other: "HoldAllObj") -> None:
        self.positions.extend(other.positions)
        self.values.extend(other.values)

    def trigger(self) -> bool:
        return len(self.values) == self.win_size

    def sorted_values(self) -> np.ndarray:
        order = np.argsort(self.positions, kind="stable")
        return np.asarray(self.values)[order]

    def nbytes(self) -> int:
        return 64 + 16 * len(self.values)


class GradientObj(RedObj):
    """Logistic-regression state: weights plus accumulated gradient.

    ``weights`` ride along so seeded reduction maps carry the current
    model to ``accumulate``; ``grad``/``count``/``loss`` are the
    mergeable fields and are reset to identity by ``post_combine``
    (the contract documented on :class:`~repro.core.red_obj.RedObj`).
    """

    __slots__ = ("weights", "grad", "count", "loss")

    def __init__(self, weights: np.ndarray):
        self.weights = np.asarray(weights, dtype=np.float64).copy()
        self.grad = np.zeros_like(self.weights)
        self.count = 0
        self.loss = 0.0

    def fields(self):
        # weights ride along identically on every rank (the model is
        # global state), so the combination side keeps its own copy.
        dims = self.weights.shape[0]
        return (
            Field("weights", np.float64, "keep", (dims,)),
            Field("grad", np.float64, "sum", (dims,)),
            Field("count", np.int64, "sum"),
            Field("loss", np.float64, "sum"),
        )

    def nbytes(self) -> int:
        return 64 + self.weights.nbytes + self.grad.nbytes


class ClusterObj(RedObj):
    """K-means cluster: centroid, point-sum, and size (paper Listing 4)."""

    __slots__ = ("centroid", "vec_sum", "size")

    def __init__(self, centroid: np.ndarray):
        self.centroid = np.asarray(centroid, dtype=np.float64).copy()
        self.vec_sum = np.zeros_like(self.centroid)
        self.size = 0

    def fields(self):
        # The centroid is recomputed from sum/size by update() and is
        # identical on every rank between combinations: keep, not sum.
        dims = self.centroid.shape[0]
        return (
            Field("centroid", np.float64, "keep", (dims,)),
            Field("vec_sum", np.float64, "sum", (dims,)),
            Field("size", np.int64, "sum"),
        )

    def update(self) -> None:
        """Recompute the centroid from sum/size, then reset both.

        Exactly the paper's ``update()``: empty clusters keep their
        previous centroid (sum/size carry no information).
        """
        if self.size > 0:
            np.divide(self.vec_sum, self.size, out=self.centroid)
        self.vec_sum[:] = 0.0
        self.size = 0

    def nbytes(self) -> int:
        return 64 + self.centroid.nbytes + self.vec_sum.nbytes


class SavGolObj(RedObj):
    """Savitzky-Golay window state.

    Interior windows accumulate the coefficient dot-product directly
    (``acc``); windows truncated by the array boundary also keep their
    raw samples so ``convert`` can do the boundary polynomial fit.
    """

    __slots__ = ("acc", "count", "win_size", "boundary", "positions", "values")

    def __init__(self, win_size: int, boundary: bool):
        self.win_size = int(win_size)
        self.boundary = bool(boundary)
        self.acc = 0.0
        self.count = 0
        self.positions: list[int] = []
        self.values: list[float] = []

    def trigger(self) -> bool:
        return not self.boundary and self.count == self.win_size

    def nbytes(self) -> int:
        return 80 + 16 * len(self.values)
