"""K-means clustering (paper Listing 4; clustering analytics class).

The canonical iterative Smart application: the combination map holds one
:class:`~repro.analytics.objects.ClusterObj` per centroid; ``gen_key``
assigns each point to its nearest centroid; ``post_combine`` recomputes
centroids (Lloyd iteration) once per Smart iteration.  Initial centroids
arrive via ``SchedArgs.extra_data`` (a ``k × dims`` array).
"""

from __future__ import annotations

import numpy as np

from ..comm.interface import Communicator
from ..core.chunk import Chunk
from ..core.maps import KeyedMap
from ..core.red_obj import RedObj
from ..core.sched_args import SchedArgs
from ..core.scheduler import Scheduler
from .objects import ClusterObj


class KMeans(Scheduler):
    """Lloyd's k-means over ``dims``-dimensional points.

    Data layout: flat float64, ``chunk_size = dims`` (one point per unit
    chunk).  ``num_iters`` in :class:`SchedArgs` is the Lloyd iteration
    count (paper uses 10).
    """

    seed_reduction_maps = True

    def __init__(
        self,
        args: SchedArgs,
        comm: Communicator | None = None,
        *,
        dims: int,
        tolerance: float | None = None,
    ):
        if args.chunk_size != dims:
            raise ValueError(
                f"one point per chunk: chunk_size must equal dims ({dims}), "
                f"got {args.chunk_size}"
            )
        super().__init__(args, comm)
        if dims < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        if tolerance is not None and tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        self.dims = int(dims)
        #: Optional convergence tolerance: iteration stops early once no
        #: centroid moves more than this (infinity-norm), before
        #: ``num_iters`` is exhausted.
        self.tolerance = tolerance
        #: Max centroid displacement of the most recent Lloyd iteration.
        self.last_shift = np.inf

    # -- user API ------------------------------------------------------------
    def process_extra_data(self, extra_data, combination_map: KeyedMap) -> None:
        if len(combination_map):
            return  # keep tracking centroids across time-steps
        if extra_data is None:
            raise ValueError("KMeans requires initial centroids as extra_data")
        centroids = np.asarray(extra_data, dtype=np.float64)
        if centroids.ndim != 2 or centroids.shape[1] != self.dims:
            raise ValueError(
                f"initial centroids must be (k, {self.dims}), got {centroids.shape}"
            )
        for key, centroid in enumerate(centroids):
            combination_map[key] = ClusterObj(centroid)

    def _centroid_matrix(self, com_map: KeyedMap) -> tuple[np.ndarray, list[int]]:
        keys = sorted(com_map.keys())
        return np.stack([com_map[k].centroid for k in keys]), keys

    def gen_key(self, chunk: Chunk, data: np.ndarray, combination_map: KeyedMap) -> int:
        point = data[chunk.start : chunk.start + self.dims]
        best_key, best_dist = -1, np.inf
        for key, obj in combination_map.items():
            diff = obj.centroid - point
            dist = float(diff @ diff)
            if dist < best_dist or (dist == best_dist and key < best_key):
                best_key, best_dist = key, dist
        if best_key < 0:
            raise RuntimeError("gen_key called with an empty combination map")
        return best_key

    def accumulate(
        self, chunk: Chunk, data: np.ndarray, red_obj: RedObj | None, key: int
    ) -> RedObj:
        assert red_obj is not None, "seeded reduction maps guarantee the object"
        red_obj.vec_sum += data[chunk.start : chunk.start + self.dims]
        red_obj.size += 1
        return red_obj

    def merge(self, red_obj: RedObj, com_obj: RedObj) -> RedObj:
        com_obj.vec_sum += red_obj.vec_sum
        com_obj.size += red_obj.size
        return com_obj

    def post_combine(self, combination_map: KeyedMap) -> None:
        shift = 0.0
        for _, obj in combination_map.items():
            before = obj.centroid.copy()
            obj.update()
            move = float(np.max(np.abs(obj.centroid - before)))
            if move > shift:
                shift = move
        self.last_shift = shift

    def converged(self, combination_map: KeyedMap, iteration: int) -> bool:
        return self.tolerance is not None and self.last_shift <= self.tolerance

    def convert(self, red_obj: RedObj, out: np.ndarray, key: int) -> None:
        out[key] = red_obj.centroid

    def mutable_state(self) -> dict:
        # Centroids travel in the combination map; the only other state
        # post_combine mutates is the convergence shift, so per-iteration
        # worker dispatch ships just this float plus the map delta.
        return {"last_shift": self.last_shift}

    def load_state(self, state: dict) -> None:
        self.last_shift = state["last_shift"]

    def vector_reduce(
        self, data: np.ndarray, start: int, stop: int, red_map: KeyedMap
    ) -> None:
        points = data[start:stop].reshape(-1, self.dims)
        centroids, keys = self._centroid_matrix(red_map)
        # Squared distances via the expansion trick; argmin ties resolve to
        # the lowest index, matching gen_key's tie-break on sorted keys.
        d2 = (
            np.sum(points**2, axis=1)[:, None]
            - 2.0 * points @ centroids.T
            + np.sum(centroids**2, axis=1)[None, :]
        )
        assign = np.argmin(d2, axis=1)
        for idx, key in enumerate(keys):
            members = points[assign == idx]
            if members.shape[0]:
                obj = red_map[key]
                obj.vec_sum += members.sum(axis=0)
                obj.size += members.shape[0]

    # -- result ----------------------------------------------------------------
    def centroids(self) -> np.ndarray:
        matrix, _ = self._centroid_matrix(self.combination_map_)
        return matrix


def make_blobs(
    n: int, dims: int, k: int, spread: float = 0.3, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic clustered points; returns ``(flat_data, true_centers)``."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-5.0, 5.0, size=(k, dims))
    labels = rng.integers(0, k, size=n)
    points = centers[labels] + rng.normal(scale=spread, size=(n, dims))
    return points.reshape(-1), centers


def reference_kmeans(
    flat_data: np.ndarray, init_centroids: np.ndarray, num_iters: int
) -> np.ndarray:
    """Ground-truth Lloyd iterations (pure numpy, empty clusters frozen)."""
    dims = init_centroids.shape[1]
    points = np.asarray(flat_data, dtype=np.float64).reshape(-1, dims)
    centroids = np.asarray(init_centroids, dtype=np.float64).copy()
    for _ in range(num_iters):
        d2 = (
            np.sum(points**2, axis=1)[:, None]
            - 2.0 * points @ centroids.T
            + np.sum(centroids**2, axis=1)[None, :]
        )
        assign = np.argmin(d2, axis=1)
        for c in range(centroids.shape[0]):
            members = points[assign == c]
            if members.shape[0]:
                centroids[c] = members.mean(axis=0)
    return centroids
