"""Mutual information between two variables (similarity analytics class).

The paper (Sections 5.1, 5.4) computes MI between two simulation
variables by discretizing each into ``bins`` buckets — the 2-D space has
up to ``bins²`` cells — and estimating MI from the joint histogram.  Each
unit chunk is an ``(x, y)`` sample pair (``chunk_size = 2``); the key is
the flattened joint cell index; the reduction object is a counter.  The
MI value itself is derived from the global combination map by
:func:`mutual_information_from_counts` (the paper calls MI a "nuanced
MapReduce pipeline": histogram job, then a cheap sequential reduction).
"""

from __future__ import annotations

import numpy as np

from ..comm.interface import Communicator
from ..core.chunk import Chunk
from ..core.maps import KeyedMap
from ..core.red_obj import RedObj
from ..core.sched_args import SchedArgs
from ..core.scheduler import Scheduler
from .objects import CountObj


class MutualInformation(Scheduler):
    """Joint-histogram construction for MI estimation.

    Parameters
    ----------
    x_range, y_range:
        ``(lo, hi)`` value ranges of the two variables (out-of-range
        samples clamp into the edge cells).
    bins:
        Buckets per variable (paper Section 5.4 uses 100, i.e. up to
        10,000 cells).
    """

    def __init__(
        self,
        args: SchedArgs,
        comm: Communicator | None = None,
        *,
        x_range: tuple[float, float],
        y_range: tuple[float, float],
        bins: int,
    ):
        if args.chunk_size != 2:
            raise ValueError(
                f"MutualInformation consumes (x, y) pairs: chunk_size must be 2, "
                f"got {args.chunk_size}"
            )
        super().__init__(args, comm)
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        self.bins = int(bins)
        self.x_lo, self.x_hi = map(float, x_range)
        self.y_lo, self.y_hi = map(float, y_range)
        if not (self.x_hi > self.x_lo and self.y_hi > self.y_lo):
            raise ValueError("value ranges must be non-empty")
        self.x_width = (self.x_hi - self.x_lo) / self.bins
        self.y_width = (self.y_hi - self.y_lo) / self.bins

    def _cell(self, x: float, y: float) -> int:
        ix = min(max(int((x - self.x_lo) / self.x_width), 0), self.bins - 1)
        iy = min(max(int((y - self.y_lo) / self.y_width), 0), self.bins - 1)
        return ix * self.bins + iy

    def gen_key(self, chunk: Chunk, data: np.ndarray, combination_map: KeyedMap) -> int:
        return self._cell(data[chunk.start], data[chunk.start + 1])

    def accumulate(
        self, chunk: Chunk, data: np.ndarray, red_obj: RedObj | None, key: int
    ) -> RedObj:
        if red_obj is None:
            red_obj = CountObj()
        red_obj.count += 1
        return red_obj

    def merge(self, red_obj: RedObj, com_obj: RedObj) -> RedObj:
        com_obj.count += red_obj.count
        return com_obj

    def convert(self, red_obj: RedObj, out: np.ndarray, key: int) -> None:
        out[key] = red_obj.count

    def vector_reduce(
        self, data: np.ndarray, start: int, stop: int, red_map: KeyedMap
    ) -> None:
        block = data[start:stop].reshape(-1, 2)
        ix = ((block[:, 0] - self.x_lo) / self.x_width).astype(np.int64)
        iy = ((block[:, 1] - self.y_lo) / self.y_width).astype(np.int64)
        np.clip(ix, 0, self.bins - 1, out=ix)
        np.clip(iy, 0, self.bins - 1, out=iy)
        keys = ix * self.bins + iy
        counts = np.bincount(keys, minlength=self.bins * self.bins)
        for key in np.nonzero(counts)[0]:
            obj = red_map.get(int(key))
            if obj is None:
                obj = CountObj()
                red_map[int(key)] = obj
            obj.count += int(counts[key])

    # -- result --------------------------------------------------------------
    def joint_counts(self) -> np.ndarray:
        """The joint histogram as a dense ``bins × bins`` matrix."""
        joint = np.zeros((self.bins, self.bins), dtype=np.int64)
        for key, obj in self.combination_map_.items():
            joint[key // self.bins, key % self.bins] = obj.count
        return joint

    def mutual_information(self) -> float:
        """MI (nats) estimated from the current combination map."""
        return mutual_information_from_counts(self.joint_counts())


def mutual_information_from_counts(joint: np.ndarray) -> float:
    """MI (nats) from a joint count matrix: Σ p(x,y)·ln(p(x,y)/(p(x)p(y)))."""
    joint = np.asarray(joint, dtype=np.float64)
    total = joint.sum()
    if total <= 0:
        raise ValueError("cannot estimate MI from an empty joint histogram")
    p_xy = joint / total
    p_x = p_xy.sum(axis=1, keepdims=True)
    p_y = p_xy.sum(axis=0, keepdims=True)
    mask = p_xy > 0
    ratio = np.ones_like(p_xy)
    np.divide(p_xy, p_x * p_y, out=ratio, where=mask)
    return float(np.sum(p_xy[mask] * np.log(ratio[mask])))


def reference_mutual_information(
    xy: np.ndarray,
    x_range: tuple[float, float],
    y_range: tuple[float, float],
    bins: int,
) -> float:
    """Ground-truth MI from interleaved ``(x, y)`` samples."""
    pairs = np.asarray(xy, dtype=np.float64).reshape(-1, 2)
    ix = np.floor((pairs[:, 0] - x_range[0]) / ((x_range[1] - x_range[0]) / bins))
    iy = np.floor((pairs[:, 1] - y_range[0]) / ((y_range[1] - y_range[0]) / bins))
    ix = np.clip(ix.astype(np.int64), 0, bins - 1)
    iy = np.clip(iy.astype(np.int64), 0, bins - 1)
    joint = np.zeros((bins, bins), dtype=np.int64)
    np.add.at(joint, (ix, iy), 1)
    return mutual_information_from_counts(joint)
