"""Top-level command-line interface.

``python -m repro <command>``:

* ``figures [fig1 ... | all]`` — regenerate paper figures (same as
  ``python -m repro.harness``);
* ``calibrate`` — print this host's measured kernel costs;
* ``audit`` — the Section-5.2 memory-footprint comparison vs mini-Spark;
* ``demo`` — a 30-second guided tour: run one in-situ job in every
  placement mode and print what happened.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_figures(args: argparse.Namespace) -> int:
    from .harness.__main__ import main as harness_main

    return harness_main(args.names or ["--help"])


def _cmd_calibrate(_args: argparse.Namespace) -> int:
    from .harness.reporting import format_bytes, print_table
    from .perfmodel import calibrate_analytics, calibrate_simulations

    sims = calibrate_simulations()
    apps = calibrate_analytics()
    rows = [
        [name, f"{cost.seconds_per_element * 1e9:.2f} ns", "-", "-"]
        for name, cost in sims.items()
    ] + [
        [
            name,
            f"{cost.seconds_per_element * 1e9:.2f} ns",
            format_bytes(cost.state_bytes),
            format_bytes(cost.sync_bytes),
        ]
        for name, cost in apps.items()
    ]
    print_table(
        "Calibrated kernel costs on this host (marginal, per input float)",
        ["kernel", "cost/element", "state", "sync payload"],
        rows,
    )
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from .harness.memoryaudit import audit_all
    from .harness.reporting import format_bytes, format_ratio, print_table

    rows = []
    for row in audit_all(elements=args.elements):
        rows.append(
            [
                row.app,
                format_bytes(row.input_bytes),
                format_bytes(row.smart_state_bytes),
                format_bytes(row.spark_total_bytes),
                format_ratio(row.ratio),
            ]
        )
    print_table(
        "Live analytics state: Smart vs mini-Spark (paper Section 5.2: "
        "16 MB vs >90% of 12 GB)",
        ["app", "input", "Smart state", "mini-Spark state", "gap"],
        rows,
    )
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    import numpy as np

    from .analytics import Histogram
    from .baselines import OfflineDriver
    from .core import CoreSplit, SchedArgs, SpaceSharingDriver, TimeSharingDriver
    from .harness.reporting import format_seconds, print_table
    from .sim import GaussianEmulator

    steps, elements = 6, 50_000

    def fresh():
        return (
            GaussianEmulator(elements, seed=1),
            Histogram(SchedArgs(vectorized=True, buffer_capacity=2),
                      lo=-4, hi=4, num_buckets=32),
        )

    rows = []
    sim, app = fresh()
    r = TimeSharingDriver(sim, app).run(steps)
    rows.append(["time sharing (zero copy)", format_seconds(r.total_seconds),
                 f"{app.counts().sum():,} elements"])
    reference = app.counts()

    sim, app = fresh()
    r = SpaceSharingDriver(sim, app, CoreSplit(1, 1)).run(steps)
    assert np.array_equal(app.counts(), reference)
    rows.append(["space sharing (concurrent)", format_seconds(r.elapsed_seconds),
                 f"producer blocked {r.producer_blocks}x"])

    sim, app = fresh()
    r = OfflineDriver(sim, app).run(steps)
    assert np.array_equal(app.counts(), reference)
    rows.append(["offline (store first)", format_seconds(r.total),
                 f"I/O {format_seconds(r.io_overhead)}"])

    print_table(
        f"One histogram job, three placements ({steps} steps x {elements:,} "
        "elements; identical results)",
        ["placement", "total time", "notes"],
        rows,
    )
    print("\nnext: python -m repro figures all   (regenerate every paper figure)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Smart in-situ analytics — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figures", help="regenerate paper figures")
    p_fig.add_argument("names", nargs="*", help="fig1 ... fig11, or 'all'")
    p_fig.set_defaults(fn=_cmd_figures)

    p_cal = sub.add_parser("calibrate", help="print measured kernel costs")
    p_cal.set_defaults(fn=_cmd_calibrate)

    p_audit = sub.add_parser("audit", help="memory-footprint comparison")
    p_audit.add_argument("--elements", type=int, default=20_000)
    p_audit.set_defaults(fn=_cmd_audit)

    p_demo = sub.add_parser("demo", help="guided tour of the placements")
    p_demo.set_defaults(fn=_cmd_demo)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
