"""SimCluster schedule fuzzing: seeded interleaving pressure.

The SPMD substrate runs ranks as real threads, so collective-ordering
races are a genuine failure mode.  ``fuzz_schedule`` derives a multi-
rank configuration from a seed, installs a deterministic
:class:`~repro.comm.sim.InterleaveSchedule` (per-rank micro-delays
before every communication call) plus, on odd seeds, a seeded
comm-delay :class:`~repro.faults.FaultPlan`, and demands the run stays
bit-equal to the serial oracle.  A hang is reported as a structured
``deadlock`` mismatch.  Everything is keyed by the seed alone, so
``replay`` reproduces any failing schedule exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..comm import InterleaveSchedule
from ..comm.errors import CommError, CommTimeoutError, SpmdError
from ..faults import FaultPlan, FaultSpec
from ..telemetry import Recorder
from .matrix import DEFAULT_SEED, Config
from .oracle import Mismatch, OracleCache, diff_results, execute
from .workloads import Workload, get_workload

__all__ = ["FuzzCase", "derive_case", "fuzz_schedule", "replay", "run_fuzz"]

_ENGINES = ("serial", "thread")
_WIRES = ("pickle", "columnar")
_ALGOS = ("gather", "tree", "allreduce")


@dataclass(frozen=True)
class FuzzCase:
    """One seed-derived fuzz schedule (config + interleaving pressure)."""

    workload: str
    seed: int
    config: Config
    comm_plan_fingerprint: str | None

    def repro(self) -> str:
        return ("PYTHONPATH=src python -m repro.harness conform "
                f"--workload {self.workload} --fuzz 1 --fuzz-seed {self.seed}")


def derive_case(workload: Workload | str, seed: int, *,
                ranks: int = 3, data_seed: int | None = None) -> FuzzCase:
    """Map a fuzz seed onto a multi-rank configuration.

    The data seed stays fixed (so the oracle cache is shared across
    schedules); the fuzz seed picks engine, wire format, combine
    algorithm, thread count, and the interleave/fault schedules.
    """
    w = workload if isinstance(workload, Workload) else get_workload(workload)
    mixed = InterleaveSchedule._mix(seed)
    config = Config(
        workload=w.name,
        engine=_ENGINES[mixed % len(_ENGINES)],
        wire_format=_WIRES[(mixed >> 2) % len(_WIRES)],
        combine_algorithm=_ALGOS[(mixed >> 4) % len(_ALGOS)],
        num_threads=1 + 2 * ((mixed >> 6) % 2),
        ranks=max(2, int(ranks)),
        seed=DEFAULT_SEED if data_seed is None else data_seed,
    )
    plan_fp = None
    if seed % 2:
        plan_fp = FaultPlan(
            [FaultSpec("comm", "delay", at_call=seed % 7, times=3,
                       seconds=0.0005)],
            seed=seed).fingerprint()
    return FuzzCase(workload=w.name, seed=seed, config=config,
                    comm_plan_fingerprint=plan_fp)


def fuzz_schedule(
    workload: Workload | str, seed: int, *,
    ranks: int = 3,
    cache: OracleCache | None = None,
    telemetry: Recorder | None = None,
) -> list[Mismatch]:
    """Run one seeded schedule; return structured mismatches (empty when
    the interleaving changed nothing, as it must)."""
    w = workload if isinstance(workload, Workload) else get_workload(workload)
    case = derive_case(w, seed, ranks=ranks)
    if telemetry is not None:
        telemetry.inc("verify.fuzz_schedules")
    cache = cache if cache is not None else OracleCache(telemetry)
    comm_plan = (FaultPlan.parse(case.comm_plan_fingerprint)
                 if case.comm_plan_fingerprint else None)
    interleave = InterleaveSchedule(seed)
    try:
        oracle = cache.get(case.config)
        candidate = execute(w, case.config, interleave=interleave,
                            comm_plan=comm_plan)
    except (SpmdError, CommTimeoutError, CommError) as exc:
        return [Mismatch(
            workload=w.name, fingerprint=case.config.fingerprint(),
            kind="deadlock",
            detail=(f"schedule seed {seed} wedged or aborted the job: "
                    f"{type(exc).__name__}: {exc}"),
            repro=case.repro())]
    except Exception as exc:  # noqa: BLE001 - reported as a structured record
        return [Mismatch(
            workload=w.name, fingerprint=case.config.fingerprint(),
            kind="error", detail=f"{type(exc).__name__}: {exc}",
            repro=case.repro())]
    found = diff_results(w.name, case.config, oracle.result,
                         candidate.result)
    if telemetry is not None and found:
        telemetry.inc("verify.mismatches", len(found))
    return [m for m in found] if not found else [
        # Point the repro line at the fuzz seed, not the bare config —
        # the interleaving is part of the failure.
        Mismatch(**{**m.to_dict(), "repro": case.repro()}) for m in found
    ]


def replay(workload: Workload | str, seed: int, *,
           ranks: int = 3) -> list[Mismatch]:
    """Re-run one schedule from its seed (identical to the original)."""
    return fuzz_schedule(workload, seed, ranks=ranks)


def run_fuzz(
    workload: Workload | str, count: int, *,
    base_seed: int = 0, ranks: int = 3,
    cache: OracleCache | None = None,
    telemetry: Recorder | None = None,
) -> list[Mismatch]:
    """Fuzz ``count`` consecutive seeds; collect every mismatch."""
    cache = cache if cache is not None else OracleCache(telemetry)
    found: list[Mismatch] = []
    for seed in range(base_seed, base_seed + count):
        found.extend(fuzz_schedule(workload, seed, ranks=ranks,
                                   cache=cache, telemetry=telemetry))
    return found
