"""Canonical conformance workloads — one per analytic under test.

Every workload fixes a small, deterministic input and an extraction
function that reduces a finished run to plain numpy arrays.  The
conformance machinery (``repro.verify.oracle``) executes the same
workload under a candidate configuration and under the serial/pickle
oracle and demands bit-equality of the extracted arrays.

A workload also declares which *metamorphic* invariants hold exactly
for its reduction (``exact_partition`` / ``exact_permutation`` /
``exact_merge``); the property layer only asserts invariants the
analytic's float grouping actually guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..analytics import (
    GaussianKernelSmoother,
    GridAggregation,
    Histogram,
    KMeans,
    LogisticRegression,
    MinMax,
    MovingAverage,
    MovingMedian,
    SavitzkyGolay,
    ValueGridKDE,
    make_blobs,
    make_logreg_samples,
)

__all__ = ["Workload", "WORKLOADS", "get_workload", "workload_names"]

KDE_GRID_POINTS = 41


@dataclass(frozen=True)
class Workload:
    """A canonical analytic run the conformance matrix executes.

    ``factory(args, comm)`` builds the Scheduler; ``extract(app, out)``
    reduces the finished run to a name→array dict (the unit of
    comparison).  ``make_extra(data)`` derives ``SchedArgs.extra_data``
    (e.g. initial centroids) from the generated input so candidate and
    oracle always seed identically.
    """

    name: str
    factory: Callable[..., Any]
    extract: Callable[[Any, np.ndarray | None], dict[str, np.ndarray]]
    description: str = ""
    chunk_size: int = 1
    num_iters: int = 1
    multi_key: bool = False
    default_elements: int = 512
    make_extra: Callable[[np.ndarray], Any] | None = None
    out_len: Callable[[int], int] | None = None
    has_vector_path: bool = False
    #: Whether the analytic implements the batch-map path
    #: (``make_accumulator`` / ``batch_reduce``) — enables the
    #: ``map_path=batch`` axis for this workload.
    has_batch_path: bool = False
    #: Maximum acceptable ulp distance per output float under
    #: ``map_path=batch``.  0 demands bit-exactness (the default); a
    #: positive bound declares a known vector-math deviation (e.g.
    #: ``np.exp`` vs ``math.exp`` last-ulp drift accumulated over the
    #: per-key contribution count).
    batch_ulp: int = 0
    steps_ok: bool = False
    exact_partition: bool = False
    exact_permutation: bool = False
    exact_merge: bool = False
    #: Expected combination-map key count — the :class:`PolicyAdvisor`'s
    #: gather/allreduce input (``ExecutionPolicy.auto``).
    key_estimate: int = 16
    #: Whether the reduction object declares a ufunc-mergeable columnar
    #: schema (allreduce/columnar eligible; optimistic hints are safe —
    #: the runtime falls back collectively).
    schema_mergeable: bool = False
    build_kwargs: dict = field(default_factory=dict)

    def make_data(self, seed: int, elements: int | None = None) -> np.ndarray:
        n = self.default_elements if elements is None else int(elements)
        n -= n % max(self.chunk_size, 1)
        rng = np.random.default_rng(10_000 + seed)
        if self.name == "kmeans":
            flat, _ = make_blobs(n // self.chunk_size, self.chunk_size,
                                 4, seed=seed)
            return flat
        if self.name == "logreg":
            flat, _ = make_logreg_samples(n // self.chunk_size,
                                          self.chunk_size - 1, seed=seed)
            return flat
        return rng.normal(size=n)

    def build(self, args, comm=None):
        return self.factory(args, comm, **self.build_kwargs)

    def extra(self, data: np.ndarray) -> Any:
        return self.make_extra(data) if self.make_extra is not None else None

    def output_length(self, n_elements: int) -> int | None:
        if not self.multi_key:
            return None
        if self.out_len is not None:
            return self.out_len(n_elements)
        return n_elements


def _extract_histogram(app, out):
    return {"counts": app.counts()}


def _extract_minmax(app, out):
    lo, hi = app.value_range
    return {"range": np.array([lo, hi], dtype=np.float64)}


def _extract_grid_aggregation(app, out):
    items = app.combination_map_.sorted_items()
    return {
        "keys": np.array([k for k, _ in items], dtype=np.int64),
        "totals": np.array([o.total for _, o in items], dtype=np.float64),
        "counts": np.array([o.count for _, o in items], dtype=np.int64),
    }


def _extract_kmeans(app, out):
    return {"centroids": app.centroids()}


def _extract_logreg(app, out):
    return {"weights": np.asarray(app.weights, dtype=np.float64).copy()}


def _extract_out(app, out):
    return {"out": np.asarray(out, dtype=np.float64).copy()}


def _kmeans_init(flat: np.ndarray) -> np.ndarray:
    return flat.reshape(-1, 3)[:4].copy()


WORKLOADS: dict[str, Workload] = {}


def _register(w: Workload) -> Workload:
    WORKLOADS[w.name] = w
    return w


_register(Workload(
    name="histogram",
    factory=lambda args, comm: Histogram(args, comm, lo=-4.0, hi=4.0,
                                         num_buckets=32),
    extract=_extract_histogram,
    description="32-bucket histogram over N(0,1) samples (integer counts)",
    default_elements=2048,
    has_vector_path=True,
    steps_ok=True,
    exact_partition=True,
    exact_permutation=True,
    exact_merge=True,
    key_estimate=32,
    schema_mergeable=True,
    has_batch_path=True,
))

_register(Workload(
    name="grid_aggregation",
    factory=lambda args, comm: GridAggregation(args, comm, grid_size=64),
    extract=_extract_grid_aggregation,
    description="mean of every 64 consecutive positions (raw sums compared)",
    default_elements=2048,
    has_vector_path=True,
    has_batch_path=True,
    key_estimate=32,
    schema_mergeable=True,
))

_register(Workload(
    name="minmax",
    factory=lambda args, comm: MinMax(args, comm),
    extract=_extract_minmax,
    description="global value range (single reduction key)",
    default_elements=2048,
    has_vector_path=True,
    steps_ok=True,
    exact_partition=True,
    exact_permutation=True,
    exact_merge=True,
    key_estimate=1,
    schema_mergeable=True,
    has_batch_path=True,
))

_register(Workload(
    name="kmeans",
    factory=lambda args, comm: KMeans(args, comm, dims=3),
    extract=_extract_kmeans,
    description="3-d k-means, k=4, 3 Lloyd iterations",
    chunk_size=3,
    num_iters=3,
    default_elements=720,
    make_extra=_kmeans_init,
    has_vector_path=True,
    key_estimate=4,
    schema_mergeable=False,
))

_register(Workload(
    name="logreg",
    factory=lambda args, comm: LogisticRegression(args, comm, dims=4),
    extract=_extract_logreg,
    description="4-d logistic regression, 3 gradient steps",
    chunk_size=5,
    num_iters=3,
    default_elements=800,
    has_vector_path=True,
    key_estimate=1,
    schema_mergeable=False,
))

_register(Workload(
    name="moving_average",
    factory=lambda args, comm: MovingAverage(args, comm, win_size=7),
    extract=_extract_out,
    description="centered moving average, window 7",
    multi_key=True,
    default_elements=512,
    has_vector_path=True,
    has_batch_path=True,
    key_estimate=512,
    schema_mergeable=True,
))

_register(Workload(
    name="moving_median",
    factory=lambda args, comm: MovingMedian(args, comm, win_size=7),
    extract=_extract_out,
    description="centered moving median, window 7 (multiset-exact)",
    multi_key=True,
    default_elements=384,
    # np.median over the held multiset does not depend on how samples
    # were split across partitions, only on which samples arrived.
    exact_partition=True,
    key_estimate=384,
    schema_mergeable=False,
))

_register(Workload(
    name="savgol",
    factory=lambda args, comm: SavitzkyGolay(args, comm, win_size=7,
                                             polyorder=2),
    extract=_extract_out,
    description="Savitzky-Golay smoothing, window 7, order 2",
    multi_key=True,
    default_elements=384,
    key_estimate=384,
    schema_mergeable=False,
))

_register(Workload(
    name="kernel_smoother",
    factory=lambda args, comm: GaussianKernelSmoother(args, comm, win_size=9),
    extract=_extract_out,
    description="Gaussian kernel smoother, window 9",
    multi_key=True,
    default_elements=384,
    key_estimate=384,
    schema_mergeable=True,
))

_register(Workload(
    name="kde_grid",
    factory=lambda args, comm: ValueGridKDE(
        args, comm, grid=np.linspace(-3.0, 3.0, KDE_GRID_POINTS),
        bandwidth=0.35),
    extract=_extract_out,
    description="value-grid kernel density estimate, 41 grid points",
    multi_key=True,
    default_elements=512,
    out_len=lambda n: KDE_GRID_POINTS,
    key_estimate=41,
    schema_mergeable=True,
    has_batch_path=True,
    # np.exp (batch) vs math.exp (scalar) differ in the last ulp per
    # kernel term; ~500 samples × ~half the grid in reach accumulate to
    # a few hundred ulps of worst-case drift per grid-point total.
    batch_ulp=1024,
))


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None


def workload_names() -> tuple[str, ...]:
    return tuple(WORKLOADS)
