"""Differential conformance kit: every runtime configuration must be
bit-equivalent to the serial/pickle oracle.

The paper's transparency claim (Smart §4, Table 1 — alternate execution
modes are invisible to the analytics programmer) is checked three ways:

* :mod:`~repro.verify.matrix` + :mod:`~repro.verify.oracle` — a
  pairwise-pruned config-matrix runner diffing every candidate against
  the reference execution, with structured mismatch reports;
* :mod:`~repro.verify.properties` — metamorphic per-analytic
  invariants (partition/permutation invariance, merge associativity,
  residency idempotence, bit-exact fault replay);
* :mod:`~repro.verify.fuzz` — seeded SimCluster schedule fuzzing with
  replay.

CLI: ``python -m repro.harness conform --smoke``.
"""

from .fuzz import FuzzCase, derive_case, fuzz_schedule, replay, run_fuzz
from .matrix import (
    STRUCTURE_AXES,
    TRANSPARENT_AXES,
    Config,
    axis_values,
    build_matrix,
    enumerate_configs,
    pairwise_prune,
)
from .oracle import (
    ConformanceError,
    ConformanceReport,
    Mismatch,
    OracleCache,
    RunInfo,
    SlicedArraySim,
    diff_results,
    execute,
    repro_command,
    run_config,
    run_matrix,
    ulp_distance,
)
from .policy_check import advised_config, autotune_switch_check, run_autotune
from .properties import (
    applicable_properties,
    check_fault_replay,
    check_merge_associativity,
    check_partition_invariance,
    check_permutation_invariance,
    check_residency_idempotence,
    check_workload,
)
from .workloads import WORKLOADS, Workload, get_workload, workload_names

__all__ = [
    "Config",
    "ConformanceError",
    "ConformanceReport",
    "FuzzCase",
    "Mismatch",
    "OracleCache",
    "RunInfo",
    "STRUCTURE_AXES",
    "SlicedArraySim",
    "TRANSPARENT_AXES",
    "WORKLOADS",
    "Workload",
    "advised_config",
    "applicable_properties",
    "autotune_switch_check",
    "axis_values",
    "build_matrix",
    "check_fault_replay",
    "check_merge_associativity",
    "check_partition_invariance",
    "check_permutation_invariance",
    "check_residency_idempotence",
    "check_workload",
    "derive_case",
    "diff_results",
    "enumerate_configs",
    "execute",
    "fuzz_schedule",
    "get_workload",
    "pairwise_prune",
    "replay",
    "repro_command",
    "run_autotune",
    "run_config",
    "run_fuzz",
    "run_matrix",
    "ulp_distance",
    "workload_names",
]
