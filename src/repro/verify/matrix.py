"""Configuration matrix for differential conformance runs.

A :class:`Config` names one point in the runtime's configuration space.
Its axes split into two groups:

* **structure axes** (workload, threads, block size, vectorization,
  rank count, data seed) legitimately change how float summation is
  grouped, so candidate and oracle must agree on them;
* **transparent axes** (engine, wire format, combine algorithm,
  residency, fault plan, driver) are the paper's "transparent to the
  analytics programmer" claim — flipping any of them must leave the
  final combination map bit-identical.

``oracle_of`` resets the transparent axes to the reference execution
(serial engine, pickle wire, gather combine, default residency, no
faults, direct driver).  ``build_matrix`` enumerates the valid space
and prunes it with greedy pairwise covering so every pair of axis
values involving a transparent axis appears in at least one config.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass

from ..core.policy import (
    COMBINE_ALGORITHMS,
    ENGINE_BACKENDS,
    RESIDENCY_MODES,
    WIRE_FORMATS,
    CombinePolicy,
    EnginePolicy,
    ExecutionPolicy,
)
from .workloads import get_workload, workload_names

__all__ = [
    "Config",
    "STRUCTURE_AXES",
    "TRANSPARENT_AXES",
    "axis_values",
    "enumerate_configs",
    "pairwise_prune",
    "build_matrix",
]

# Axes whose value must match between candidate and oracle.
STRUCTURE_AXES = (
    "workload", "num_threads", "block_size", "vectorized", "ranks", "seed",
)
# Axes the runtime promises are invisible in the result.  ``map_path``
# is transparent with one declared exception: a workload may carry a
# positive ``batch_ulp`` bound for known vector-math last-ulp drift
# (np.exp vs math.exp), which the differ applies only under
# ``map_path=batch``.
TRANSPARENT_AXES = (
    "engine", "wire_format", "combine_algorithm", "residency", "fault",
    "driver", "map_path", "comm", "sharing",
)

_ORACLE_VALUES = {
    "engine": "serial",
    "wire_format": "pickle",
    "combine_algorithm": "gather",
    "residency": "auto",
    "fault": "none",
    "driver": "direct",
    # "auto", not "scalar": the oracle must retain the structure axis
    # ``vectorized`` (auto resolves to scalar whenever vectorized is
    # False, which it always is for a forced map_path — see is_valid).
    "map_path": "auto",
    "comm": "inproc",
    "sharing": "solo",
}

# Short keys used in fingerprints / --config tokens.
_SHORT = {
    "workload": "workload",
    "engine": "engine",
    "wire_format": "wire",
    "combine_algorithm": "algo",
    "residency": "residency",
    "fault": "fault",
    "driver": "driver",
    "map_path": "map",
    "comm": "comm",
    "sharing": "sharing",
    "num_threads": "threads",
    "block_size": "block",
    "vectorized": "vec",
    "ranks": "ranks",
    "seed": "seed",
}
_LONG = {v: k for k, v in _SHORT.items()}
_INT_AXES = {"num_threads", "block_size", "ranks", "seed"}

DEFAULT_SEED = 2015


@dataclass(frozen=True)
class Config:
    """One point in the engine × wire × residency × fault × driver space."""

    workload: str
    engine: str = "serial"
    wire_format: str = "pickle"
    combine_algorithm: str = "gather"
    residency: str = "auto"
    fault: str = "none"
    driver: str = "direct"
    map_path: str = "auto"
    comm: str = "inproc"
    #: ``solo`` runs the workload alone; ``shared`` submits it as N
    #: concurrent tenant jobs over one resident step through
    #: :class:`repro.service.AnalyticsService` and compares the first
    #: job's result (after asserting all N agree and exactly one shm
    #: segment was resident) against the solo oracle.
    sharing: str = "solo"
    num_threads: int = 1
    block_size: int = 0  # 0 = whole partition in one block
    vectorized: bool = False
    ranks: int = 1
    seed: int = DEFAULT_SEED

    def fingerprint(self) -> str:
        parts = []
        for axis in _SHORT:
            value = getattr(self, axis)
            if axis == "vectorized":
                value = int(value)
            parts.append(f"{_SHORT[axis]}={value}")
        return ",".join(parts)

    @classmethod
    def parse(cls, text: str) -> "Config":
        kwargs: dict = {}
        for token in text.replace(";", ",").split(","):
            token = token.strip()
            if not token:
                continue
            key, _, value = token.partition("=")
            key = key.strip()
            axis = _LONG.get(key, key)
            if axis not in _SHORT:
                raise ValueError(f"unknown config axis {key!r} in {text!r}")
            if axis == "vectorized":
                kwargs[axis] = value.strip() not in ("0", "False", "false")
            elif axis in _INT_AXES:
                kwargs[axis] = int(value)
            else:
                kwargs[axis] = value.strip()
        if "workload" not in kwargs:
            raise ValueError(f"config token must name a workload: {text!r}")
        return cls(**kwargs)

    def oracle_of(self) -> "Config":
        """The reference execution sharing this config's structure axes."""
        return dataclasses.replace(self, **_ORACLE_VALUES)

    def execution_policy(self, fault_policy: str = "fail_fast") -> ExecutionPolicy:
        """Lower this config's runtime axes to an
        :class:`~repro.core.policy.ExecutionPolicy`.

        The fault *plan* (engine-kill, comm-delay) is injected by the
        oracle runner, not the policy; ``fault_policy`` names the
        scheduler's recovery mode for it.  Block sizes are rounded down
        to the workload's chunk multiple exactly as the runner rounds
        them, so the policy fingerprint names the run actually executed.
        """
        w = get_workload(self.workload)
        block = self.block_size or None
        if block is not None:
            block = max(w.chunk_size, block - block % w.chunk_size)
        return ExecutionPolicy(
            engine=EnginePolicy(
                backend=self.engine,
                num_threads=self.num_threads,
                residency=self.residency,
                map_path=self.map_path,
            ),
            combine=CombinePolicy(
                algorithm=self.combine_algorithm,
                wire_format=self.wire_format,
            ),
            fault=fault_policy,
            chunk_size=w.chunk_size,
            num_iters=w.num_iters,
            block_size=block,
            vectorized=self.vectorized,
        )

    def policy_fingerprint(self, fault_policy: str = "fail_fast") -> str:
        """The :meth:`ExecutionPolicy.fingerprint` of this config's run."""
        return self.execution_policy(fault_policy).fingerprint()

    def validate(self) -> None:
        """Raise ``ValueError`` on any out-of-domain axis value.

        Delegates to the policy layer — the same ``validate()`` that
        rejects a bad :class:`~repro.core.SchedArgs`, so the matrix and
        the runtime cannot drift on what a legal configuration is.
        """
        self.execution_policy()
        if self.fault not in axis_values()["fault"]:
            raise ValueError(
                f"fault must be one of {axis_values()['fault']}, "
                f"got {self.fault!r}"
            )
        if self.driver not in axis_values()["driver"]:
            raise ValueError(
                f"driver must be one of {axis_values()['driver']}, "
                f"got {self.driver!r}"
            )
        if self.comm not in axis_values()["comm"]:
            raise ValueError(
                f"comm must be one of {axis_values()['comm']}, "
                f"got {self.comm!r}"
            )
        if self.sharing not in axis_values()["sharing"]:
            raise ValueError(
                f"sharing must be one of {axis_values()['sharing']}, "
                f"got {self.sharing!r}"
            )

    @property
    def is_oracle(self) -> bool:
        return all(getattr(self, a) == v for a, v in _ORACLE_VALUES.items())

    def structure_key(self) -> tuple:
        return tuple(getattr(self, a) for a in STRUCTURE_AXES)


def axis_values(smoke: bool = True) -> dict[str, tuple]:
    """Candidate values per axis (``workload`` is supplied separately)."""
    return {
        # Runtime axes come from the policy layer's single source of
        # truth; adding a backend there grows the matrix automatically.
        "engine": ENGINE_BACKENDS,
        "wire_format": WIRE_FORMATS,
        "combine_algorithm": COMBINE_ALGORITHMS,
        "residency": RESIDENCY_MODES,
        "fault": ("none", "engine-kill", "comm-delay"),
        "driver": ("direct", "pipelined"),
        # Transport under the SPMD ranks: in-process mailboxes (the sim
        # backend / LocalComm) or real framed TCP sockets.  The wire is
        # transparent: pickled frames must reproduce the in-process
        # result bit-exactly.
        "comm": ("inproc", "tcp"),
        # Multi-tenant shared-read residency: N concurrent service jobs
        # over one resident step must reproduce the solo run bit-exactly.
        "sharing": ("solo", "shared"),
        # "vector" is deliberately absent: forcing the vector path is
        # covered by the (structural) ``vectorized`` axis, and the full
        # matrix's explicit "scalar" only documents that forcing the
        # default is a no-op.
        "map_path": ("auto", "batch") if smoke else ("auto", "scalar", "batch"),
        "num_threads": (1, 3) if smoke else (1, 2, 3),
        "block_size": (0, 256),
        "vectorized": (False, True),
        "ranks": (1, 2) if smoke else (1, 2, 3),
    }


def is_valid(config: Config, smoke: bool = True) -> bool:
    """Structural validity of an axis combination.

    Rank counts stay ≤ 3 on purpose: at 4+ ranks the binomial-tree
    combine changes the rank-merge grouping (``(r0⊕r1)⊕(r2⊕r3)`` vs the
    gather left fold) and bit-equality across combine algorithms is no
    longer a runtime promise.
    """
    w = get_workload(config.workload)
    if config.vectorized and not w.has_vector_path:
        return False
    if config.map_path != "auto":
        # A forced map path overrides the vectorized toggle; keep the
        # axes orthogonal so every config names exactly one execution.
        if config.vectorized:
            return False
        if config.map_path == "batch" and not w.has_batch_path:
            return False
    if config.driver == "pipelined" and not (w.steps_ok and config.ranks == 1):
        return False
    if config.fault == "engine-kill" and not (
        config.engine == "process"
        and config.ranks == 1
        and config.num_threads >= 2
    ):
        return False
    if config.fault == "comm-delay" and config.ranks < 2:
        return False
    if config.combine_algorithm != "gather" and config.ranks < 2:
        return False
    if config.residency == "off" and config.engine != "process":
        return False
    if config.comm == "tcp":
        # The wire path composes with in-rank engines but not with a
        # process pool per rank (fd inheritance across fork would pin
        # router sockets) and not with the step-pipelined driver (which
        # is single-rank in-process by construction).
        if config.engine == "process" or config.driver != "direct":
            return False
    if config.sharing == "shared":
        # The service front-end is single-rank, direct-driver, in-proc
        # by construction (jobs are dispatched onto local engines); the
        # fault axes have their own dedicated configs.
        if (config.ranks != 1 or config.driver != "direct"
                or config.comm != "inproc" or config.fault != "none"):
            return False
        if smoke and config.engine == "process":
            # N concurrent process pools are too heavy for smoke runs.
            return False
    if smoke and config.ranks > 1 and config.engine == "process":
        # Process pools per simulated rank are heavyweight; the full
        # matrix covers this corner, the smoke matrix skips it.
        return False
    return True


def enumerate_configs(
    workloads: tuple[str, ...] | None = None,
    *,
    smoke: bool = True,
    seed: int = DEFAULT_SEED,
) -> list[Config]:
    names = tuple(workloads) if workloads else workload_names()
    values = axis_values(smoke)
    axes = tuple(values)
    configs = []
    for name in names:
        for combo in itertools.product(*(values[a] for a in axes)):
            cfg = Config(workload=name, seed=seed,
                         **dict(zip(axes, combo)))
            if is_valid(cfg, smoke=smoke):
                configs.append(cfg)
    return configs


def _pair_axes() -> list[tuple[str, str]]:
    """Axis pairs the covering array must hit.

    Structure × structure pairs are deliberately excluded: they do not
    test transparency (both sides of the diff share them) and each new
    structure combination costs an extra oracle run.
    """
    axes = ("workload",) + TRANSPARENT_AXES + (
        "num_threads", "block_size", "vectorized", "ranks",
    )
    pairs = []
    for a, b in itertools.combinations(axes, 2):
        structural = (a in STRUCTURE_AXES and b in STRUCTURE_AXES)
        if structural and "workload" not in (a, b):
            continue
        pairs.append((a, b))
    return pairs


def pairwise_prune(configs: list[Config]) -> list[Config]:
    """Greedy pairwise covering: keep a small subset of ``configs`` that
    still exhibits every achievable (axis=value, axis=value) pair for
    the tracked axis pairs.  Deterministic: ties break on fingerprint
    order."""
    if not configs:
        return []
    pair_axes = _pair_axes()
    ordered = sorted(configs, key=lambda c: c.fingerprint())

    def pairs_of(cfg: Config) -> frozenset:
        return frozenset(
            (a, getattr(cfg, a), b, getattr(cfg, b)) for a, b in pair_axes
        )

    remaining = [(cfg, pairs_of(cfg)) for cfg in ordered]
    uncovered = set().union(*(p for _, p in remaining))
    chosen: list[Config] = []
    while uncovered:
        best_idx, best_gain = -1, -1
        for idx, (_, pairs) in enumerate(remaining):
            gain = len(pairs & uncovered)
            if gain > best_gain:
                best_idx, best_gain = idx, gain
        if best_gain <= 0:
            break
        cfg, pairs = remaining.pop(best_idx)
        chosen.append(cfg)
        uncovered -= pairs
    return chosen


def build_matrix(
    workloads: tuple[str, ...] | None = None,
    *,
    smoke: bool = True,
    seed: int = DEFAULT_SEED,
    max_configs: int | None = None,
    min_configs: int = 20,
) -> list[Config]:
    """The pruned conformance matrix for the given workloads.

    Smoke matrices are padded to ``min_configs`` with per-engine × wire
    diagonal configs so the acceptance gate (≥ 20 configs, all three
    engines, both wire formats) holds even if the covering array is
    smaller.  ``max_configs`` truncates the greedy order, which
    front-loads coverage diversity.
    """
    names = tuple(workloads) if workloads else workload_names()
    chosen = pairwise_prune(enumerate_configs(names, smoke=smoke, seed=seed))
    if smoke:
        seen = set(chosen)
        values = axis_values(smoke)
        pads = itertools.product(
            names, values["engine"], values["wire_format"], (2, 1, 3))
        for name, engine, wire, threads in pads:
            if len(chosen) >= min_configs:
                break
            cfg = Config(workload=name, engine=engine, wire_format=wire,
                         num_threads=threads, seed=seed)
            if is_valid(cfg, smoke=smoke) and cfg not in seen:
                seen.add(cfg)
                chosen.append(cfg)
        # The smoke gate also requires >= 2 sharing=shared configs among
        # the first min_configs, so every smoke invocation exercises the
        # multi-tenant shared-residency path against the solo oracle.
        # (Runs before the tcp promotion below: both front-insert, and
        # 2 + 2 promoted configs stay well inside min_configs.)
        head_shared = [c for c in chosen[:min_configs]
                       if c.sharing == "shared"]
        if len(head_shared) < 2:
            for engine, threads in (("serial", 1), ("thread", 3)):
                if len(head_shared) >= 2:
                    break
                pad = Config(workload=names[0], sharing="shared",
                             engine=engine, num_threads=threads, seed=seed)
                if not is_valid(pad, smoke=smoke):
                    continue
                if pad in chosen:
                    chosen.remove(pad)
                chosen.insert(0, pad)
                head_shared.append(pad)
        # The smoke gate requires >= 2 comm=tcp configs among the first
        # min_configs, so every smoke invocation exercises the wire
        # path.  Promote-or-pad deterministically at the front (front
        # insertion survives any max_configs truncation).
        head_tcp = [c for c in chosen[:min_configs] if c.comm == "tcp"]
        if len(head_tcp) < 2:
            for ranks in (1, 2):
                if len(head_tcp) >= 2:
                    break
                pad = Config(workload=names[0], comm="tcp", ranks=ranks,
                             seed=seed)
                if not is_valid(pad, smoke=smoke):
                    continue
                if pad in chosen:
                    chosen.remove(pad)
                chosen.insert(0, pad)
                head_tcp.append(pad)
    if max_configs is not None:
        chosen = chosen[:max_configs]
    return chosen
