"""Service-level conformance: shared-residency runs vs the solo oracle.

The ``sharing=shared`` axis executes a config *through the multi-tenant
service*: :data:`SHARED_TENANTS` tenants submit the identical job
(workload × policy) against one registered sim step, concurrently, over
a shared worker pool.  The transparency claim under test is threefold:

1. every tenant's job reproduces the others bit-exactly (mutual
   agreement — concurrency and seat reuse are invisible);
2. exactly one shm segment was resident no matter how many tenants
   read the step (checked via the ``engine.residency.shared_*``
   gauges/counters);
3. the agreed result reproduces the solo oracle bit-exactly (checked by
   the ordinary :func:`repro.verify.oracle.diff_results` machinery on
   the returned :class:`~repro.verify.oracle.RunInfo`).

Any violation of (1) or (2) raises :class:`ConformanceError`, which the
matrix runner reports as a structured ``error`` mismatch.
"""

from __future__ import annotations

import numpy as np

from ..core import ExecutionPolicy
from ..service import AnalyticsService, JobSpec
from .matrix import Config
from .oracle import ConformanceError, RunInfo, _arrays_equal, _finish
from .workloads import Workload

__all__ = ["SHARED_TENANTS", "execute_shared"]

SHARED_TENANTS = 3
SHARED_WORKERS = 2
DRAIN_TIMEOUT = 120.0
_STEP_ID = "conform-step"


def execute_shared(workload: Workload, config: Config,
                   args: ExecutionPolicy, data: np.ndarray) -> RunInfo:
    """Run one config as N concurrent tenant jobs over one shared step.

    Returns the agreed result as a :class:`RunInfo` shaped exactly like
    a solo execution's, so the caller diffs it against the solo oracle
    with the same machinery as every other transparent axis.
    """
    service = AnalyticsService(workers=SHARED_WORKERS)
    service.register_step(_STEP_ID, data)
    try:
        with service:
            handles = [
                service.submit(JobSpec(
                    tenant=f"t{i}", workload=workload.name, step=_STEP_ID,
                    policy=args))
                for i in range(SHARED_TENANTS)
            ]
            if not service.drain(timeout=DRAIN_TIMEOUT):
                raise ConformanceError(
                    f"shared run deadlocked: {SHARED_TENANTS} tenant jobs "
                    f"did not drain within {DRAIN_TIMEOUT}s")
            segments = service.telemetry.gauge(
                "engine.residency.shared_segments")
            copies = service.telemetry.counter(
                "engine.residency.shared_copies")
            if segments != 1 or copies != 1:
                raise ConformanceError(
                    "shared-residency violation: expected exactly one "
                    f"resident segment for {SHARED_TENANTS} tenants, saw "
                    f"{segments:g} segments from {copies} copies")
            attaches = service.telemetry.counter(
                "engine.residency.shared_attaches")
            if attaches < SHARED_TENANTS:
                raise ConformanceError(
                    f"expected >= {SHARED_TENANTS} shared attaches "
                    f"(one per tenant job), saw {attaches}")
            results = [dict(h.result()) for h in handles]
            counters = [dict(h.counters) for h in handles]
    finally:
        service.close()
    base = results[0]
    for tenant, other in enumerate(results[1:], start=1):
        if set(other) != set(base):
            raise ConformanceError(
                f"tenant divergence: tenant {tenant} extracted fields "
                f"{sorted(other)} vs tenant 0 {sorted(base)}")
        for name in base:
            if not _arrays_equal(np.asarray(base[name]),
                                 np.asarray(other[name])):
                raise ConformanceError(
                    f"tenant divergence on field {name!r}: tenant "
                    f"{tenant} disagrees with tenant 0 under shared "
                    "residency")
    run_counters = {n: v for n, v in counters[0].items()
                    if n.startswith("run.")}
    for tenant, other in enumerate(counters[1:], start=1):
        other_run = {n: v for n, v in other.items() if n.startswith("run.")}
        if other_run != run_counters:
            raise ConformanceError(
                f"tenant divergence: tenant {tenant} run.* counters "
                f"{other_run} vs tenant 0 {run_counters}")
    return _finish(workload, config, dict(base), counters[0], None)
