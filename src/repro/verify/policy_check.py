"""Conformance over *advised* configurations.

The transparency promise must survive the autotuner: a run configured by
:meth:`ExecutionPolicy.auto` (launch advice) or reconfigured mid-run by
a :class:`~repro.core.autotune.CombineSwitch` is still just a point in
the transparent-axis space, so its combination map must stay
bit-identical to the serial/pickle oracle.  This module checks both:

* :func:`run_autotune` — every registry workload executed under the
  advisor's policy for a small SPMD shape, diffed against the oracle;
* :func:`autotune_switch_check` — an iterative workload run with a
  :class:`CombineSwitch` whose crossover is forced low enough to fire
  on the first iteration's observed key count, asserting the switch
  actually fired (via the ``policy.switches`` counter) *and* the result
  still matches the oracle.
"""

from __future__ import annotations

from ..core import CombineSwitch, PolicyAdvisor
from ..telemetry import Recorder
from .matrix import DEFAULT_SEED, Config
from .oracle import (
    ConformanceReport,
    Mismatch,
    OracleCache,
    diff_results,
    execute,
    repro_command,
    run_config,
)
from .workloads import get_workload, workload_names

__all__ = ["advised_config", "autotune_switch_check", "run_autotune"]

#: The SPMD shape advised runs are checked under: 2 ranks puts the
#: gather/allreduce crossover in play, 2 threads puts the engine choice
#: in play, and both stay inside the ≤3-rank bit-equality envelope.
ADVISED_RANKS = 2
ADVISED_THREADS = 2


def advised_config(
    name: str,
    *,
    ranks: int = ADVISED_RANKS,
    threads: int = ADVISED_THREADS,
    seed: int = DEFAULT_SEED,
    machine=None,
) -> Config:
    """The matrix :class:`Config` chosen by the advisor for a workload.

    The advisor's hints come from the workload registry (element count,
    chunk/iteration shape, key estimate, schema mergeability), so the
    advice is exactly what a user following docs/API.md would get.
    """
    w = get_workload(name)
    policy = PolicyAdvisor(machine).advise(
        elements=w.default_elements,
        ranks=ranks,
        threads=threads,
        chunk_size=w.chunk_size,
        num_iters=w.num_iters,
        key_estimate=w.key_estimate,
        schema_mergeable=w.schema_mergeable,
        has_vector_path=w.has_vector_path,
        has_batch_path=w.has_batch_path,
    )
    return Config(
        workload=name,
        engine=policy.engine.backend,
        wire_format=policy.combine.wire_format,
        combine_algorithm=policy.combine.algorithm,
        residency=policy.engine.residency,
        map_path=policy.engine.map_path,
        num_threads=policy.engine.num_threads,
        vectorized=policy.vectorized,
        ranks=ranks,
        seed=seed,
    )


def autotune_switch_check(
    *,
    workload: str = "kmeans",
    seed: int = DEFAULT_SEED,
    cache: OracleCache | None = None,
    telemetry: Recorder | None = None,
) -> list[Mismatch]:
    """One mid-run-adaptation run, diffed bit-for-bit against the oracle.

    The workload starts on gather at 2 ranks; forcing the switch's
    crossover below the workload's key count makes the first post-combine
    observation flip it to allreduce, so the remaining iterations combine
    under the adapted policy.  Every rank installs its own switch; the
    decision reads post-combine state, so ranks flip in lockstep.
    """
    w = get_workload(workload)
    if w.num_iters < 2:
        raise ValueError(
            f"switch check needs an iterative workload, {workload!r} has "
            f"num_iters={w.num_iters}")
    cache = cache if cache is not None else OracleCache(telemetry)
    config = Config(workload=workload, ranks=2, seed=seed)
    crossover = max(1, w.key_estimate - 1)
    try:
        oracle = cache.get(config)
        candidate = execute(
            w, config,
            adaptor_factory=lambda: CombineSwitch(crossover_keys=crossover),
        )
    except Exception as exc:  # noqa: BLE001 - reported as a structured record
        return [Mismatch(
            workload=workload, fingerprint=config.fingerprint(),
            kind="error", detail=f"{type(exc).__name__}: {exc}",
            repro=repro_command(config))]
    if telemetry is not None:
        telemetry.inc("verify.autotune_switch_runs")
    switches = candidate.counters.get("policy.switches", 0)
    if switches < 1:
        return [Mismatch(
            workload=workload, fingerprint=config.fingerprint(),
            kind="error",
            detail=f"combine switch never fired (crossover={crossover}, "
                   f"expected observed keys >= {w.key_estimate})",
            repro=repro_command(config))]
    return diff_results(workload, config, oracle.result, candidate.result)


def run_autotune(
    *,
    workloads: tuple[str, ...] | None = None,
    seed: int = DEFAULT_SEED,
    ranks: int = ADVISED_RANKS,
    threads: int = ADVISED_THREADS,
    telemetry: Recorder | None = None,
    cache: OracleCache | None = None,
) -> ConformanceReport:
    """Advised-policy conformance over the registry + the switch run."""
    telemetry = telemetry if telemetry is not None else Recorder()
    cache = cache if cache is not None else OracleCache(telemetry)
    names = tuple(workloads) if workloads else workload_names()
    report = ConformanceReport(seed=seed)
    for name in names:
        config = advised_config(name, ranks=ranks, threads=threads, seed=seed)
        report.configs.append(config.fingerprint())
        report.policies.append(config.policy_fingerprint())
        telemetry.inc("verify.autotune_runs")
        report.mismatches.extend(
            run_config(config, cache=cache, telemetry=telemetry))
    report.mismatches.extend(autotune_switch_check(
        seed=seed, cache=cache, telemetry=telemetry))
    report.counters = telemetry.counters("verify.")
    return report
