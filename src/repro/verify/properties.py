"""Metamorphic per-analytic invariants.

Each check reruns a workload under a transformed execution and demands
bit-equality where the analytic's reduction guarantees it:

* **partition invariance** — splitting the input across more ranks must
  not change the result (``exact_partition`` workloads: reductions
  whose merge is grouping-insensitive, e.g. integer counts, min/max,
  order-free multisets);
* **permutation invariance** — shuffling unit chunks must not change
  the result (``exact_permutation`` workloads);
* **merge associativity** — ``(A ⊕ B) ⊕ C == A ⊕ (B ⊕ C)`` over real
  combination maps (``exact_merge`` workloads);
* **residency idempotence** — re-running the process engine on the
  same resident array equals two serial runs and actually hits the
  residency cache;
* **fault replay** — an injected worker kill under ``retry`` replays to
  a bit-exact result and really fired.

Checks return the same structured :class:`~repro.verify.oracle.Mismatch`
records as the matrix runner, with ``kind`` prefixed ``property:``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core import SchedArgs
from ..telemetry import Recorder
from .matrix import Config
from .oracle import Mismatch, diff_results, execute
from .workloads import Workload, get_workload

__all__ = [
    "check_partition_invariance",
    "check_permutation_invariance",
    "check_merge_associativity",
    "check_residency_idempotence",
    "check_fault_replay",
    "check_workload",
    "applicable_properties",
]


def _as_workload(workload: Workload | str) -> Workload:
    return workload if isinstance(workload, Workload) else get_workload(workload)


def _tag(mismatches: list[Mismatch], prop: str) -> list[Mismatch]:
    return [dataclasses.replace(m, kind=f"property:{prop}:{m.kind}")
            for m in mismatches]


def _values_only(result: dict) -> dict:
    """Metamorphic checks deliberately vary structure axes, so run-shape
    statistics (chunk/emission counts) are not part of the invariant."""
    return {k: v for k, v in result.items() if k != "run.stats"}


def _note(workload: Workload, config: Config, prop: str,
          detail: str) -> Mismatch:
    return Mismatch(workload=workload.name, fingerprint=config.fingerprint(),
                    kind=f"property:{prop}", detail=detail)


def check_partition_invariance(
    workload: Workload | str, seed: int, *,
    elements: int | None = None, partitions: tuple[int, ...] = (2, 3),
) -> list[Mismatch]:
    """Result must not depend on how the input is split across ranks."""
    w = _as_workload(workload)
    if not w.exact_partition:
        return []
    data = w.make_data(seed, elements)
    base_cfg = Config(workload=w.name, seed=seed)
    base = execute(w, base_cfg, data=data)
    found: list[Mismatch] = []
    for ranks in partitions:
        cfg = dataclasses.replace(base_cfg, ranks=ranks)
        split = execute(w, cfg, data=data)
        found.extend(_tag(
            diff_results(w.name, cfg, _values_only(base.result),
                         _values_only(split.result)),
            "partition"))
    return found


def check_permutation_invariance(
    workload: Workload | str, seed: int, *, elements: int | None = None,
) -> list[Mismatch]:
    """Result must not depend on unit-chunk arrival order."""
    w = _as_workload(workload)
    if not w.exact_permutation:
        return []
    data = w.make_data(seed, elements)
    cfg = Config(workload=w.name, seed=seed)
    base = execute(w, cfg, data=data)
    rows = data.reshape(-1, w.chunk_size)
    perm = np.random.default_rng(seed + 1).permutation(len(rows))
    shuffled = np.ascontiguousarray(rows[perm].reshape(-1))
    permuted = execute(w, cfg, data=shuffled)
    return _tag(diff_results(w.name, cfg, _values_only(base.result),
                             _values_only(permuted.result)),
                "permutation")


def _map_result(workload: Workload, args: SchedArgs, combination_map):
    """Extract comparison arrays from an externally merged map."""
    app = workload.build(args, None)
    try:
        app.combination_map_ = combination_map
        return dict(workload.extract(app, None))
    finally:
        app.close()


def check_merge_associativity(
    workload: Workload | str, seed: int, *, elements: int | None = None,
) -> list[Mismatch]:
    """``RedObj.combine`` grouping: ``(A⊕B)⊕C == A⊕(B⊕C)`` over real maps."""
    w = _as_workload(workload)
    if not w.exact_merge:
        return []
    data = w.make_data(seed, elements)
    rows = data.reshape(-1, w.chunk_size)
    third = len(rows) // 3
    pieces = (rows[:third], rows[third: 2 * third], rows[2 * third:])

    def args_for() -> SchedArgs:
        return SchedArgs(chunk_size=w.chunk_size, num_iters=w.num_iters,
                         extra_data=w.extra(data))

    maps = []
    merge = None
    for piece in pieces:
        app = w.build(args_for(), None)
        try:
            app.run(np.ascontiguousarray(piece.reshape(-1)))
            maps.append(app.combination_map_)
            merge = app.merge
        finally:
            app.close()

    left = maps[0].clone()
    left.merge_map(maps[1].clone(), merge)
    left.merge_map(maps[2].clone(), merge)
    tail = maps[1].clone()
    tail.merge_map(maps[2].clone(), merge)
    right = maps[0].clone()
    right.merge_map(tail, merge)

    cfg = Config(workload=w.name, seed=seed)
    left_result = _map_result(w, args_for(), left)
    right_result = _map_result(w, args_for(), right)
    return _tag(diff_results(w.name, cfg, left_result, right_result),
                "associativity")


def check_residency_idempotence(
    workload: Workload | str, seed: int, *, elements: int | None = None,
) -> list[Mismatch]:
    """Re-running the process engine over the same resident array must
    hit the residency cache and still equal two serial runs."""
    w = _as_workload(workload)
    if w.multi_key:
        return []
    data = w.make_data(seed, elements)

    def double_run(engine: str):
        args = SchedArgs(num_threads=2, engine=engine,
                         chunk_size=w.chunk_size, num_iters=w.num_iters,
                         extra_data=w.extra(data))
        app = w.build(args, None)
        with app:
            app.run(data)
            app.run(data)
            result = dict(w.extract(app, None))
            counters = dict(app.telemetry_snapshot()["counters"])
        return result, counters

    reference, _ = double_run("serial")
    resident, counters = double_run("process")
    cfg = Config(workload=w.name, engine="process", num_threads=2, seed=seed)
    found = _tag(diff_results(w.name, cfg, reference, resident), "residency")
    if counters.get("engine.residency.hits", 0) < 1:
        found.append(_note(
            w, cfg, "residency",
            "second run of the same array never hit the residency cache "
            f"(hits={counters.get('engine.residency.hits', 0)})"))
    return found


def check_fault_replay(
    workload: Workload | str, seed: int, *, elements: int | None = None,
) -> list[Mismatch]:
    """An injected worker kill under ``retry`` must replay bit-exactly."""
    w = _as_workload(workload)
    if w.multi_key:
        return []
    cfg = Config(workload=w.name, engine="process", fault="engine-kill",
                 num_threads=2, seed=seed)
    data = w.make_data(seed, elements)
    oracle = execute(w, cfg.oracle_of(), data=data)
    candidate = execute(w, cfg, data=data)
    found = _tag(diff_results(w.name, cfg, oracle.result, candidate.result),
                 "fault_replay")
    if candidate.injections < 1:
        found.append(_note(
            w, cfg, "fault_replay",
            "the fault plan never fired — the run was not actually faulted"))
    elif candidate.counters.get("faults.replays", 0) < 1:
        found.append(_note(
            w, cfg, "fault_replay",
            "a fault fired but no iteration replay was recorded"))
    return found


_CHECKS = {
    "partition": check_partition_invariance,
    "permutation": check_permutation_invariance,
    "associativity": check_merge_associativity,
    "residency": check_residency_idempotence,
    "fault_replay": check_fault_replay,
}


def applicable_properties(workload: Workload | str) -> tuple[str, ...]:
    w = _as_workload(workload)
    names = []
    if w.exact_partition:
        names.append("partition")
    if w.exact_permutation:
        names.append("permutation")
    if w.exact_merge:
        names.append("associativity")
    if not w.multi_key:
        names.extend(["residency", "fault_replay"])
    return tuple(names)


def check_workload(
    workload: Workload | str, seed: int, *,
    elements: int | None = None,
    properties: tuple[str, ...] | None = None,
    telemetry: Recorder | None = None,
) -> list[Mismatch]:
    """Run every applicable (or requested) invariant for one workload."""
    w = _as_workload(workload)
    names = properties if properties is not None else applicable_properties(w)
    found: list[Mismatch] = []
    for name in names:
        if telemetry is not None:
            telemetry.inc("verify.property_checks")
        found.extend(_CHECKS[name](w, seed, elements=elements))
    if telemetry is not None and found:
        telemetry.inc("verify.mismatches", len(found))
    return found
