"""Differential execution against the serial/pickle oracle.

``execute`` runs one :class:`~repro.verify.matrix.Config` to completion
and extracts plain numpy arrays; ``diff_results`` compares a candidate
run against the oracle bit-for-bit and renders structured
:class:`Mismatch` records (first divergent key, dtype, ULP distance,
config fingerprint, ready-to-paste repro command); ``run_matrix``
drives a whole pruned matrix with oracle caching and ``verify.*``
telemetry.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..comm import spmd_launch
from ..core import (
    ExecutionPolicy,
    PipelinedTimeSharingDriver,
    merge_distributed_output,
)
from ..faults import FaultPlan, FaultPolicy, FaultSpec
from ..sim import Simulation
from ..telemetry import Recorder
from .matrix import Config
from .workloads import Workload, get_workload

__all__ = [
    "ConformanceError",
    "ConformanceReport",
    "Mismatch",
    "OracleCache",
    "RunInfo",
    "SlicedArraySim",
    "diff_results",
    "execute",
    "repro_command",
    "run_config",
    "run_matrix",
    "ulp_distance",
]

PIPELINE_STEPS = 4
SPMD_TIMEOUT = 60.0
_STAT_COUNTERS = (
    "run.chunks_processed", "run.accumulate_calls", "run.early_emissions",
)


class ConformanceError(RuntimeError):
    """A conformance run could not produce a comparable result."""


class SlicedArraySim(Simulation):
    """Replays a fixed array as ``steps`` equal consecutive partitions,
    so a stepwise driver accumulates exactly the one-shot input."""

    def __init__(self, data: np.ndarray, steps: int):
        data = np.ascontiguousarray(data, dtype=np.float64)
        per_step = len(data) // steps
        if per_step * steps != len(data):
            data = data[: per_step * steps]
        self._data = data
        self._steps = steps
        self._per_step = per_step
        self._step = 0

    def advance(self) -> np.ndarray:
        if self._step >= self._steps:
            raise RuntimeError(
                f"SlicedArraySim exhausted after {self._steps} steps")
        lo = self._step * self._per_step
        self._step += 1
        return self._data[lo: lo + self._per_step]

    @property
    def step(self) -> int:
        return self._step

    @property
    def partition_elements(self) -> int:
        return self._per_step

    @property
    def memory_nbytes(self) -> int:
        return self._data.nbytes

    def reset(self) -> None:
        self._step = 0


@dataclass(frozen=True)
class RunInfo:
    """One finished conformance run: extracted arrays + telemetry."""

    result: dict[str, np.ndarray]
    counters: dict[str, int]
    injections: int = 0


def repro_command(config: Config) -> str:
    return ("PYTHONPATH=src python -m repro.harness conform "
            f"--config '{config.fingerprint()}'")


def _ordered_bits(value: float) -> int:
    """Map a float64 onto a monotonically ordered integer line."""
    (bits,) = struct.unpack("<Q", struct.pack("<d", float(value)))
    if bits & (1 << 63):
        return (~bits) & ((1 << 64) - 1)
    return bits | (1 << 63)


def ulp_distance(a: float, b: float) -> int:
    """Distance in representable float64 steps between ``a`` and ``b``
    (``-1`` when either side is NaN)."""
    a, b = float(a), float(b)
    if np.isnan(a) or np.isnan(b):
        return -1
    return abs(_ordered_bits(a) - _ordered_bits(b))


@dataclass(frozen=True)
class Mismatch:
    """One structured divergence between candidate and oracle."""

    workload: str
    fingerprint: str
    kind: str               # value | dtype | shape | fields | error | deadlock
    field: str = ""
    key: int | None = None  # first divergent flat index
    dtype: str = ""
    expected: str = ""
    actual: str = ""
    ulp: int | None = None
    abs_diff: float | None = None
    detail: str = ""
    repro: str = ""

    def to_dict(self) -> dict:
        return {k: v for k, v in self.__dict__.items()}

    def describe(self) -> str:
        lines = [f"[{self.kind}] {self.workload} :: {self.fingerprint}"]
        if self.field:
            where = self.field if self.key is None else (
                f"{self.field}[{self.key}]")
            lines.append(f"  first divergence: {where} (dtype {self.dtype})")
            lines.append(f"  expected {self.expected}  actual {self.actual}")
        if self.ulp is not None:
            lines.append(
                f"  ulp distance {self.ulp}  abs diff {self.abs_diff}")
        if self.detail:
            lines.append(f"  {self.detail}")
        if self.repro:
            lines.append(f"  repro: {self.repro}")
        return "\n".join(lines)


def _fault_setup(config: Config):
    """(engine plan, comm plan, fault policy) for a config's fault axis."""
    if config.fault == "none":
        return None, None, "fail_fast"
    if config.fault == "engine-kill":
        plan = FaultPlan([FaultSpec("engine", "kill", at_call=1)],
                         seed=config.seed)
        return plan, None, FaultPolicy.retry(max_attempts=3, backoff=0.005)
    if config.fault == "comm-delay":
        plan = FaultPlan(
            [FaultSpec("comm", "delay", seconds=0.001, times=4)],
            seed=config.seed)
        return None, plan, "fail_fast"
    raise ConformanceError(f"unknown fault axis value {config.fault!r}")


def _exec_policy(workload: Workload, config: Config, data: np.ndarray,
                 fault_policy) -> ExecutionPolicy:
    """The candidate's full runtime configuration as a policy object.

    ``Config.execution_policy`` carries every fingerprinted axis
    (including the chunk-aligned block rounding); only the run's
    ``extra_data`` — derived from the generated input so candidate and
    oracle seed identically — is grafted on here.
    """
    policy = config.execution_policy(fault_policy)
    extra = workload.extra(data)
    if extra is not None:
        policy = policy.evolve(extra_data=extra)
    return policy


def _stats_comparable(config: Config) -> bool:
    # Replayed iterations legitimately re-process chunks.
    return config.fault != "engine-kill"


def _stats_array(counters: dict[str, int]) -> np.ndarray:
    return np.array([counters.get(name, 0) for name in _STAT_COUNTERS],
                    dtype=np.int64)


def _arrays_equal(a: np.ndarray, b: np.ndarray) -> bool:
    if a.shape != b.shape or a.dtype != b.dtype:
        return False
    if np.issubdtype(a.dtype, np.floating):
        return bool(np.array_equal(a, b, equal_nan=True))
    return bool(np.array_equal(a, b))


def execute(
    workload: Workload | str,
    config: Config,
    *,
    data: np.ndarray | None = None,
    interleave=None,
    comm_plan: FaultPlan | None = None,
    adaptor_factory=None,
) -> RunInfo:
    """Run one config to completion and extract comparable arrays.

    ``adaptor_factory`` (e.g. ``lambda: CombineSwitch(...)``) builds a
    fresh per-scheduler policy adaptor; each rank installs its own so
    mid-run adaptation runs under conformance too.
    """
    w = workload if isinstance(workload, Workload) else get_workload(workload)
    if data is None:
        data = w.make_data(config.seed)
    data = np.ascontiguousarray(data, dtype=np.float64)
    engine_plan, default_comm_plan, fault_policy = _fault_setup(config)
    if comm_plan is None:
        comm_plan = default_comm_plan
    args = _exec_policy(w, config, data, fault_policy)
    if getattr(config, "sharing", "solo") == "shared":
        # Multi-tenant shared-residency execution; the import is lazy so
        # the verify package never depends on the service layer unless
        # the axis is actually exercised.
        from .service_check import execute_shared
        return execute_shared(w, config, args, data)
    comm_backend = getattr(config, "comm", "inproc")
    if config.ranks == 1 and comm_backend == "inproc":
        return _execute_single(w, config, args, data, engine_plan,
                               adaptor_factory)
    # comm=tcp forces the SPMD path even for a single rank: the whole
    # point of the axis is to push every communication call through the
    # framed-socket wire path and diff it bit-exact against the in-proc
    # oracle.
    return _execute_spmd(w, config, args, data, engine_plan, comm_plan,
                         interleave, adaptor_factory,
                         comm_backend="tcp" if comm_backend == "tcp"
                         else "sim")


def _finish(workload: Workload, config: Config, result: dict,
            counters: dict, engine_plan: FaultPlan | None) -> RunInfo:
    if _stats_comparable(config):
        result["run.stats"] = _stats_array(counters)
    injections = engine_plan.injected() if engine_plan is not None else 0
    return RunInfo(result=result, counters=counters, injections=injections)


def _execute_single(workload: Workload, config: Config,
                    args: ExecutionPolicy, data: np.ndarray, engine_plan,
                    adaptor_factory=None) -> RunInfo:
    app = workload.build(args, None)
    if engine_plan is not None:
        app.fault_plan = engine_plan
    if adaptor_factory is not None:
        app.policy_adaptor = adaptor_factory()
    with app:
        if config.is_oracle and not app.engine.deterministic:
            raise ConformanceError(
                "oracle config resolved a non-deterministic engine "
                f"({app.engine.name!r}); the reference execution must be "
                "in-order")
        if config.driver == "pipelined":
            sim = SlicedArraySim(data, steps=PIPELINE_STEPS)
            PipelinedTimeSharingDriver(sim, app).run(PIPELINE_STEPS)
            result = dict(workload.extract(app, None))
        elif workload.multi_key:
            out = np.full(workload.output_length(len(data)), np.nan)
            app.run2(data, out)
            result = dict(workload.extract(app, out))
        else:
            app.run(data)
            result = dict(workload.extract(app, None))
        counters = dict(app.telemetry_snapshot()["counters"])
    return _finish(workload, config, result, counters, engine_plan)


def _execute_spmd(workload: Workload, config: Config, args: ExecutionPolicy,
                  data: np.ndarray, engine_plan, comm_plan,
                  interleave, adaptor_factory=None,
                  comm_backend: str = "sim") -> RunInfo:
    ranks = config.ranks
    rows = len(data) // workload.chunk_size
    sizes = [rows // ranks + (1 if r < rows % ranks else 0)
             for r in range(ranks)]
    bounds = np.concatenate(([0], np.cumsum(sizes))) * workload.chunk_size
    out_len = workload.output_length(len(data))
    total = len(data)

    def body(comm):
        lo = int(bounds[comm.rank])
        hi = int(bounds[comm.rank + 1])
        app = workload.build(args, comm)
        if engine_plan is not None:
            app.fault_plan = engine_plan
        if adaptor_factory is not None:
            app.policy_adaptor = adaptor_factory()
        with app:
            if workload.multi_key:
                out = np.full(out_len, np.nan)
                app.run2(data[lo:hi], out, global_offset=lo, total_len=total)
                out = merge_distributed_output(comm, out)
                result = dict(workload.extract(app, out))
            else:
                app.run(data[lo:hi])
                result = dict(workload.extract(app, None))
            counters = dict(app.telemetry_snapshot()["counters"])
        return result, counters

    rank_returns = spmd_launch(ranks, body, fault_plan=comm_plan,
                               interleave=interleave, timeout=SPMD_TIMEOUT,
                               comm_backend=comm_backend)
    results = [r for r, _ in rank_returns]
    base = results[0]
    for rank, other in enumerate(results[1:], start=1):
        if set(other) != set(base):
            raise ConformanceError(
                f"rank divergence: rank {rank} extracted fields "
                f"{sorted(other)} vs rank 0 {sorted(base)}")
        for name in base:
            if not _arrays_equal(np.asarray(base[name]),
                                 np.asarray(other[name])):
                raise ConformanceError(
                    f"rank divergence on field {name!r}: rank {rank} "
                    "disagrees with rank 0 after global combination")
    counters: dict[str, int] = {}
    for _, rank_counters in rank_returns:
        for name, value in rank_counters.items():
            counters[name] = counters.get(name, 0) + value
    return _finish(workload, config, dict(base), counters, engine_plan)


def diff_results(
    workload_name: str,
    config: Config,
    expected: dict[str, np.ndarray],
    actual: dict[str, np.ndarray],
) -> list[Mismatch]:
    """Bit-compare two extracted runs; one mismatch per divergent field
    (anchored at the first divergent flat index).

    Under ``map_path=batch`` two declared allowances apply: the
    ``run.accumulate_calls`` stat is masked from both sides (the batch
    path performs zero scalar accumulate calls by design), and a
    workload's positive ``batch_ulp`` bound tolerates known vector-math
    last-ulp drift per float entry.  Everything else stays bit-exact.
    """
    fp = config.fingerprint()
    repro = repro_command(config)
    mismatches: list[Mismatch] = []
    batch = getattr(config, "map_path", "auto") == "batch"
    ulp_tol = get_workload(workload_name).batch_ulp if batch else 0
    if "run.stats" not in expected or "run.stats" not in actual:
        # Stats are advisory (dropped on replayed-fault runs); compare
        # them only when both executions considered them meaningful.
        expected = {k: v for k, v in expected.items() if k != "run.stats"}
        actual = {k: v for k, v in actual.items() if k != "run.stats"}
    elif batch:
        # The oracle cache is shared across transparent variants, so the
        # mask is applied here rather than baked into the oracle run.
        keep = [i for i, name in enumerate(_STAT_COUNTERS)
                if name != "run.accumulate_calls"]
        expected = dict(expected)
        actual = dict(actual)
        expected["run.stats"] = np.asarray(expected["run.stats"])[keep]
        actual["run.stats"] = np.asarray(actual["run.stats"])[keep]
    if set(expected) != set(actual):
        missing = sorted(set(expected) - set(actual))
        extra = sorted(set(actual) - set(expected))
        mismatches.append(Mismatch(
            workload=workload_name, fingerprint=fp, kind="fields",
            detail=f"missing fields {missing}, unexpected fields {extra}",
            repro=repro))
        return mismatches
    for name in sorted(expected):
        e = np.asarray(expected[name])
        a = np.asarray(actual[name])
        if e.dtype != a.dtype:
            mismatches.append(Mismatch(
                workload=workload_name, fingerprint=fp, kind="dtype",
                field=name, dtype=str(a.dtype),
                detail=f"expected dtype {e.dtype}, got {a.dtype}",
                repro=repro))
            continue
        if e.shape != a.shape:
            mismatches.append(Mismatch(
                workload=workload_name, fingerprint=fp, kind="shape",
                field=name, dtype=str(e.dtype),
                detail=f"expected shape {e.shape}, got {a.shape}",
                repro=repro))
            continue
        ef, af = e.reshape(-1), a.reshape(-1)
        if np.issubdtype(e.dtype, np.floating):
            equal = (ef == af) | (np.isnan(ef) & np.isnan(af))
        else:
            equal = ef == af
        if bool(np.all(equal)):
            continue
        if ulp_tol and np.issubdtype(e.dtype, np.floating):
            bad = np.nonzero(~equal)[0]
            if all(0 <= ulp_distance(ef[i], af[i]) <= ulp_tol
                   for i in bad):
                continue
        idx = int(np.argmin(equal))
        ev, av = ef[idx], af[idx]
        ulp = abs_diff = None
        if np.issubdtype(e.dtype, np.floating):
            ulp = ulp_distance(ev, av)
            if not (np.isnan(ev) or np.isnan(av)):
                abs_diff = float(abs(float(ev) - float(av)))
        mismatches.append(Mismatch(
            workload=workload_name, fingerprint=fp, kind="value",
            field=name, key=idx, dtype=str(e.dtype),
            expected=repr(ev), actual=repr(av), ulp=ulp, abs_diff=abs_diff,
            detail=f"{int(np.size(equal) - np.count_nonzero(equal))} of "
                   f"{equal.size} entries diverge",
            repro=repro))
    return mismatches


class OracleCache:
    """Reference results keyed by structure axes — one oracle execution
    per (workload, threads, block, vectorized, ranks, seed) combination
    no matter how many transparent-axis candidates share it."""

    def __init__(self, telemetry: Recorder | None = None):
        self._cache: dict[tuple, RunInfo] = {}
        self._telemetry = telemetry

    def get(self, config: Config) -> RunInfo:
        key = config.structure_key()
        cached = self._cache.get(key)
        if cached is not None:
            if self._telemetry is not None:
                self._telemetry.inc("verify.oracle_cache_hits")
            return cached
        if self._telemetry is not None:
            self._telemetry.inc("verify.oracle_runs")
        info = execute(get_workload(config.workload), config.oracle_of())
        self._cache[key] = info
        return info


def run_config(
    config: Config,
    *,
    cache: OracleCache | None = None,
    telemetry: Recorder | None = None,
) -> list[Mismatch]:
    """Execute one candidate config and diff it against its oracle."""
    cache = cache if cache is not None else OracleCache(telemetry)
    workload = get_workload(config.workload)
    if telemetry is not None:
        telemetry.inc("verify.configs_run")
    try:
        oracle = cache.get(config)
        candidate = execute(workload, config)
    except Exception as exc:  # noqa: BLE001 - reported as a structured record
        return [Mismatch(
            workload=config.workload, fingerprint=config.fingerprint(),
            kind="error", detail=f"{type(exc).__name__}: {exc}",
            repro=repro_command(config))]
    found = diff_results(config.workload, config, oracle.result,
                         candidate.result)
    if telemetry is not None and found:
        telemetry.inc("verify.mismatches", len(found))
    return found


@dataclass
class ConformanceReport:
    """Aggregated outcome of a matrix run (JSON-serializable)."""

    configs: list[str] = field(default_factory=list)
    #: Per-config :meth:`ExecutionPolicy.fingerprint` — the runtime
    #: configuration each run actually executed under, in :attr:`configs`
    #: order.
    policies: list[str] = field(default_factory=list)
    mismatches: list[Mismatch] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    seed: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "configs": list(self.configs),
            "policies": list(self.policies),
            "mismatches": [m.to_dict() for m in self.mismatches],
            "counters": dict(self.counters),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")


def run_matrix(
    configs: list[Config],
    *,
    telemetry: Recorder | None = None,
    cache: OracleCache | None = None,
) -> ConformanceReport:
    """Run every config against its oracle; collect structured results."""
    telemetry = telemetry if telemetry is not None else Recorder()
    cache = cache if cache is not None else OracleCache(telemetry)
    report = ConformanceReport(
        seed=configs[0].seed if configs else 0)
    for config in configs:
        report.configs.append(config.fingerprint())
        # Fingerprint the policy the run really executes under — the
        # fault axis decides the recovery mode, not the policy default.
        _, _, fault_policy = _fault_setup(config)
        report.policies.append(config.policy_fingerprint(fault_policy))
        report.mismatches.extend(
            run_config(config, cache=cache, telemetry=telemetry))
    report.counters = telemetry.counters("verify.")
    return report
