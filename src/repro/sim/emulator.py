"""The simulation emulator of the Spark comparison (paper Section 5.2).

To give Spark a level playing field, the paper replaced the real
simulation with "a simple emulator — a sequential program that outputs
double precision array elements that follow a normal distribution".  This
class is that emulator: per ``advance()`` it produces one time-step of
``step_elements`` normally distributed float64 values, deterministically
seeded so Smart and every baseline analyze byte-identical streams.
"""

from __future__ import annotations

import numpy as np

from .base import Simulation


class GaussianEmulator(Simulation):
    """Sequential normal-distribution array emulator.

    Parameters
    ----------
    step_elements:
        Elements emitted per time-step.
    mean / std:
        Parameters of the normal distribution.
    seed:
        Base RNG seed; step ``t`` uses ``seed + t`` so any step can be
        regenerated independently (useful for offline baselines that
        re-read the stream).
    dims:
        When > 1, each element is a ``dims``-vector (the emulator emits
        ``step_elements * dims`` doubles reshaped flat); feature-vector
        analytics (k-means, logistic regression) use this.
    """

    def __init__(
        self,
        step_elements: int,
        mean: float = 0.0,
        std: float = 1.0,
        seed: int = 42,
        dims: int = 1,
    ):
        if step_elements < 1:
            raise ValueError(f"step_elements must be >= 1, got {step_elements}")
        if std <= 0:
            raise ValueError(f"std must be positive, got {std}")
        if dims < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        self.step_elements = int(step_elements)
        self.mean = float(mean)
        self.std = float(std)
        self.seed = int(seed)
        self.dims = int(dims)
        self._step = 0
        self._buf = np.empty(self.step_elements * self.dims, dtype=np.float64)

    @property
    def step(self) -> int:
        return self._step

    @property
    def partition_elements(self) -> int:
        return self.step_elements * self.dims

    @property
    def memory_nbytes(self) -> int:
        return self._buf.nbytes

    def advance(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed + self._step)
        self._buf[:] = rng.normal(self.mean, self.std, size=self._buf.shape)
        self._step += 1
        return self._buf

    def advance_into(self, out: np.ndarray) -> np.ndarray:
        """One time-step written straight into ``out`` (no ``_buf`` stop)."""
        rng = np.random.default_rng(self.seed + self._step)
        flat = out.reshape(-1)
        flat[:] = rng.normal(self.mean, self.std, size=flat.shape)
        self._step += 1
        return out

    def regenerate(self, step: int) -> np.ndarray:
        """Reproduce the output of an arbitrary past step (fresh array)."""
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        rng = np.random.default_rng(self.seed + step)
        return rng.normal(self.mean, self.std, size=self.step_elements * self.dims)

    def reset(self) -> None:
        self._step = 0
