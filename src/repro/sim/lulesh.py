"""LULESH-like explicit shock-hydrodynamics proxy (moderate-output sim).

The paper uses LULESH [ref 3] purely as a simulation whose per-step output
is *moderate* (< 100 MB/node) and whose memory consumption grows
*cubically* with the configured edge size (Section 5.5 varies ``edge``
from 100 to 233 to sweep memory pressure).  This proxy reproduces exactly
those externally visible properties with a Sedov-blast-flavoured explicit
update on an ``edge³`` cube per rank:

* state: internal energy ``e``, relative volume ``v``, pressure ``p``,
  and a node-centred velocity magnitude ``q`` (four float64 cubes —
  cubic memory growth);
* per step: pressure from an ideal-gas-like EOS, artificial-viscosity
  damped energy update, and a diffusion-like volume relaxation — each a
  handful of vectorized stencil operations, structurally similar to the
  Lagrangian leapfrog in LULESH;
* halo: one-plane z exchange with neighbouring ranks so multi-rank runs
  stay coupled like the real domain-decomposed code;
* output: the energy field only (one cube of the four), so output volume
  is a fraction of the working set — the 'moderate output' property.
"""

from __future__ import annotations

import numpy as np

from ..comm.interface import Communicator
from ..comm.local import LocalComm
from .base import Simulation

_TAG_UP = 201
_TAG_DOWN = 202


class LuleshProxy(Simulation):
    """Sedov-blast-style explicit hydro proxy on an ``edge³`` cube per rank.

    Parameters
    ----------
    edge:
        Elements per cube edge on this rank (the paper's Section 5.5 /
        5.7 sweep variable; memory grows as ``4 · 8 · edge³`` bytes).
    comm:
        Communicator; ranks are coupled along z like a 1-D pencil of
        subdomains, mirroring how LULESH tiles nodes.
    gamma:
        EOS exponent (ideal-gas-like closure).
    cfl:
        Time-step scale of the explicit updates; keep < 0.3 for bounded
        trajectories.
    """

    def __init__(
        self,
        edge: int,
        comm: Communicator | None = None,
        gamma: float = 1.4,
        cfl: float = 0.2,
        seed: int = 1234,
    ):
        if edge < 3:
            raise ValueError(f"edge must be >= 3, got {edge}")
        if not 0.0 < cfl < 0.5:
            raise ValueError(f"cfl must be in (0, 0.5), got {cfl}")
        self.comm = comm if comm is not None else LocalComm()
        self.edge = int(edge)
        self.gamma = float(gamma)
        self.cfl = float(cfl)
        self.seed = seed
        shape = (edge, edge, edge)
        self.e = np.zeros(shape)  # internal energy
        self.v = np.ones(shape)  # relative volume
        self.p = np.zeros(shape)  # pressure
        self.q = np.zeros(shape)  # viscosity/velocity proxy
        self._step = 0
        self._deposit_initial_energy()

    def _deposit_initial_energy(self) -> None:
        """Sedov initialization: a point energy deposit at the rank-0 origin
        corner plus a small random perturbation field (deterministic seed)
        so the analytics see non-degenerate data from step one."""
        rng = np.random.default_rng(self.seed + self.comm.rank)
        self.e += 1e-3 * rng.random(self.e.shape)
        if self.comm.rank == 0:
            self.e[0, 0, 0] = float(self.edge) ** 1.5  # scaled point blast

    # -- Simulation interface ---------------------------------------------
    @property
    def step(self) -> int:
        return self._step

    @property
    def partition_elements(self) -> int:
        return self.edge**3

    @property
    def memory_nbytes(self) -> int:
        return self.e.nbytes + self.v.nbytes + self.p.nbytes + self.q.nbytes

    def advance(self) -> np.ndarray:
        """One explicit step: EOS, viscosity, energy/volume update, halo.

        Returns the flattened energy field (a no-copy view).
        """
        dt = self.cfl / self.edge
        # Equation of state: p = (gamma - 1) * e / v  (ideal-gas closure).
        np.divide(self.e, self.v, out=self.p)
        self.p *= self.gamma - 1.0
        # Artificial viscosity proxy: local pressure curvature along each
        # axis (the role q plays in LULESH's shock capturing).
        lap = _laplacian(self.p)
        np.abs(lap, out=self.q)
        # Energy update: advection-free Lagrangian work term dissipates
        # pressure peaks into the neighbourhood (energy is conserved up to
        # the boundary flux, see tests).
        self.e += dt * lap
        np.maximum(self.e, 0.0, out=self.e)
        # Volume relaxation toward uniform (compression spreads out).
        self.v += dt * _laplacian(self.v)
        np.clip(self.v, 0.1, 10.0, out=self.v)
        self._exchange_halos()
        self._step += 1
        return self.e.reshape(-1)

    def fields(self) -> dict[str, np.ndarray]:
        """All simulated fields by name (views, not copies).

        Multi-variable analytics — e.g. mutual information between energy
        and pressure — read additional fields here; ``advance()`` returns
        only the energy field, the simulation's nominal output.
        """
        return {"energy": self.e, "volume": self.v, "pressure": self.p,
                "viscosity": self.q}

    def reset(self) -> None:
        self.e.fill(0.0)
        self.v.fill(1.0)
        self.p.fill(0.0)
        self.q.fill(0.0)
        self._step = 0
        self._deposit_initial_energy()

    # -- internals ----------------------------------------------------------
    def _exchange_halos(self) -> None:
        """Blend boundary energy planes with z neighbours (coupling term).

        The proxy keeps each rank's cube self-contained (as LULESH keeps a
        subdomain per rank) and exchanges boundary planes of the energy
        field, averaging the received plane into the local boundary.
        """
        comm = self.comm
        if comm.size == 1:
            return
        rank, size = comm.rank, comm.size
        if rank + 1 < size:
            comm.send(self.e[-1].copy(), dest=rank + 1, tag=_TAG_UP)
        if rank > 0:
            comm.send(self.e[0].copy(), dest=rank - 1, tag=_TAG_DOWN)
        if rank > 0:
            incoming = comm.recv(source=rank - 1, tag=_TAG_UP)
            self.e[0] = 0.5 * (self.e[0] + incoming)
        if rank + 1 < size:
            incoming = comm.recv(source=rank + 1, tag=_TAG_DOWN)
            self.e[-1] = 0.5 * (self.e[-1] + incoming)


def _laplacian(field: np.ndarray) -> np.ndarray:
    """6-neighbour Laplacian with reflecting edges, fully vectorized."""
    lap = -6.0 * field
    for axis in range(3):
        upper = np.concatenate(
            (np.take(field, range(1, field.shape[axis]), axis=axis),
             np.take(field, [-1], axis=axis)),
            axis=axis,
        )
        lower = np.concatenate(
            (np.take(field, [0], axis=axis),
             np.take(field, range(0, field.shape[axis] - 1), axis=axis)),
            axis=axis,
        )
        lap += upper + lower
    return lap
