"""Simulation substrates: Heat3D, a LULESH-like proxy, and the emulator."""

from .base import Simulation
from .decomposition import Slab, decompose_1d, partition_offsets
from .emulator import GaussianEmulator
from .heat3d import Heat3D, reference_heat3d_sequential
from .lulesh import LuleshProxy

__all__ = [
    "GaussianEmulator",
    "Heat3D",
    "LuleshProxy",
    "Simulation",
    "Slab",
    "decompose_1d",
    "partition_offsets",
    "reference_heat3d_sequential",
]
