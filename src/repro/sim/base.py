"""Simulation interface.

From Smart's perspective (paper Section 5.1) only two properties of the
upstream simulation matter: its memory requirement and the amount of data
it outputs per time-step.  Every simulation here exposes both, advances
one time-step at a time, and hands back the rank-local output partition as
a numpy array — the 'read pointer' time sharing processes in place.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class Simulation(ABC):
    """One rank's share of a scientific simulation.

    ``advance()`` runs one time-step and returns this rank's output
    partition.  Time-sharing analytics must consume the returned array
    before the next ``advance()`` call, which may overwrite the same
    memory (paper Figure 3); space sharing copies it into the circular
    buffer instead.
    """

    @abstractmethod
    def advance(self) -> np.ndarray:
        """Run one time-step; return the rank-local output partition."""

    def advance_into(self, out: np.ndarray) -> np.ndarray:
        """Run one time-step, writing the partition into ``out``.

        Double-buffered drivers pass an engine-resident buffer (an
        :meth:`~repro.core.engine.base.ExecutionEngine.step_buffer`
        slot) so the simulation's output lands directly where the
        analytics will read it — no staging copy.  The default adapts
        any ``advance()`` with one ``copyto``; simulations that can
        write into caller memory should override it to skip even that.
        Must produce bit-identical values to ``advance()``.
        """
        partition = self.advance()
        np.copyto(out.reshape(-1), partition.reshape(-1))
        return out

    @property
    @abstractmethod
    def step(self) -> int:
        """Number of completed time-steps."""

    @property
    @abstractmethod
    def partition_elements(self) -> int:
        """Elements in this rank's output partition per time-step."""

    @property
    def partition_nbytes(self) -> int:
        """Bytes output per time-step on this rank."""
        return self.partition_elements * 8  # float64 output everywhere

    @property
    @abstractmethod
    def memory_nbytes(self) -> int:
        """Approximate working-set bytes of the simulation on this rank."""

    def reset(self) -> None:
        """Return to the initial condition (optional; default unsupported)."""
        raise NotImplementedError(f"{type(self).__name__} does not support reset")
