"""Heat3D: explicit 3-D heat diffusion (the paper's large-output simulation).

The original Heat3D [paper ref 2] solves the transient heat equation on a
3-D grid with an explicit 7-point-stencil (FTCS) update, decomposed across
MPI ranks with halo exchange.  This implementation reproduces that
structure: z-axis slab decomposition over the communicator, one-plane
halos exchanged per step, fully vectorized numpy stencil (the guides'
first rule: no Python-level loops over grid points).

Per time-step each rank outputs its entire interior temperature field —
the 'large volumes of data per step' behaviour (e.g. 400 MB/node in the
paper) that Figures 1, 7, 9a and 11a rely on.
"""

from __future__ import annotations

import numpy as np

from ..comm.interface import Communicator
from ..comm.local import LocalComm
from .base import Simulation
from .decomposition import decompose_1d

_HALO_TAG_UP = 101
_HALO_TAG_DOWN = 102


class Heat3D(Simulation):
    """Rank-local slab of an explicit 3-D heat-diffusion simulation.

    Parameters
    ----------
    shape:
        Global grid ``(nz, ny, nx)``.  The z axis is decomposed across
        the communicator's ranks.
    comm:
        Communicator for halo exchange (default: single rank).
    alpha:
        Diffusion number ``α·Δt/Δx²``; must satisfy the explicit-scheme
        stability bound ``alpha <= 1/6`` in 3-D.
    hot_value / cold_value:
        Dirichlet boundary temperatures: the global z=0 face is held hot,
        every other face cold — a classic heated-plate configuration that
        produces evolving, spatially varying output for the analytics.
    """

    def __init__(
        self,
        shape: tuple[int, int, int],
        comm: Communicator | None = None,
        alpha: float = 0.1,
        hot_value: float = 100.0,
        cold_value: float = 0.0,
    ):
        nz, ny, nx = shape
        if min(nz, ny, nx) < 3:
            raise ValueError(f"grid must be at least 3 in every dimension, got {shape}")
        if not 0.0 < alpha <= 1.0 / 6.0:
            raise ValueError(f"alpha must be in (0, 1/6] for stability, got {alpha}")
        self.comm = comm if comm is not None else LocalComm()
        self.shape = (nz, ny, nx)
        self.alpha = float(alpha)
        self.hot_value = float(hot_value)
        self.cold_value = float(cold_value)
        self.slab = decompose_1d(nz, self.comm.size, self.comm.rank)
        # Local field with one halo plane on each z side.  Two buffers are
        # flip-flopped so the update never reads what it just wrote.
        local_nz = len(self.slab) + 2
        self._u = np.full((local_nz, ny, nx), cold_value, dtype=np.float64)
        self._u_next = self._u.copy()
        self._step = 0
        self._apply_boundary(self._u)
        self._apply_boundary(self._u_next)

    # -- Simulation interface ---------------------------------------------
    @property
    def step(self) -> int:
        return self._step

    @property
    def partition_elements(self) -> int:
        nz, ny, nx = self.shape
        return len(self.slab) * ny * nx

    @property
    def memory_nbytes(self) -> int:
        return self._u.nbytes + self._u_next.nbytes

    def advance(self) -> np.ndarray:
        """One FTCS step: halo exchange, stencil update, boundary refresh.

        Returns a flattened view of the interior (no copy — the read
        pointer of time-sharing mode).
        """
        self._exchange_halos()
        u, un = self._u, self._u_next
        a = self.alpha
        interior = u[1:-1, 1:-1, 1:-1]
        un[1:-1, 1:-1, 1:-1] = interior + a * (
            u[2:, 1:-1, 1:-1]
            + u[:-2, 1:-1, 1:-1]
            + u[1:-1, 2:, 1:-1]
            + u[1:-1, :-2, 1:-1]
            + u[1:-1, 1:-1, 2:]
            + u[1:-1, 1:-1, :-2]
            - 6.0 * interior
        )
        self._u, self._u_next = un, u
        self._apply_boundary(self._u)
        self._step += 1
        return self.interior.reshape(-1)

    def reset(self) -> None:
        self._u.fill(self.cold_value)
        self._u_next.fill(self.cold_value)
        self._apply_boundary(self._u)
        self._apply_boundary(self._u_next)
        self._step = 0

    # -- field access -------------------------------------------------------
    @property
    def interior(self) -> np.ndarray:
        """This rank's owned planes (halo planes stripped), as a 3-D view."""
        return self._u[1 : 1 + len(self.slab)]

    # -- internals ----------------------------------------------------------
    def _apply_boundary(self, u: np.ndarray) -> None:
        """Dirichlet faces: global z=0 hot, all other global faces cold.

        Only the faces this rank actually owns are touched; interior
        halo planes belong to neighbours.
        """
        cold, hot = self.cold_value, self.hot_value
        u[:, 0, :] = cold
        u[:, -1, :] = cold
        u[:, :, 0] = cold
        u[:, :, -1] = cold
        if not self.slab.has_lower_neighbor:
            u[0, :, :] = hot  # halo plane doubles as the global z=0 face
            u[1, :, :] = hot
        if not self.slab.has_upper_neighbor:
            u[-1, :, :] = cold
            u[-2, :, :] = cold

    def _exchange_halos(self) -> None:
        """Swap boundary planes with z neighbours (buffered send, then recv).

        Sends are buffered in this substrate (as with MPI_Bsend), so the
        symmetric send-then-receive order cannot deadlock.
        """
        comm, slab, u = self.comm, self.slab, self._u
        if slab.has_upper_neighbor:
            comm.send(u[-2].copy(), dest=comm.rank + 1, tag=_HALO_TAG_UP)
        if slab.has_lower_neighbor:
            comm.send(u[1].copy(), dest=comm.rank - 1, tag=_HALO_TAG_DOWN)
        if slab.has_lower_neighbor:
            u[0] = comm.recv(source=comm.rank - 1, tag=_HALO_TAG_UP)
        if slab.has_upper_neighbor:
            u[-1] = comm.recv(source=comm.rank + 1, tag=_HALO_TAG_DOWN)


def reference_heat3d_sequential(
    shape: tuple[int, int, int],
    steps: int,
    alpha: float = 0.1,
    hot_value: float = 100.0,
    cold_value: float = 0.0,
) -> np.ndarray:
    """Single-array reference solution used to validate the decomposed run.

    Runs the identical stencil on the full global grid (with the same
    implicit halo convention) and returns the final interior field.
    """
    sim = Heat3D(
        shape, LocalComm(), alpha=alpha, hot_value=hot_value, cold_value=cold_value
    )
    for _ in range(steps):
        sim.advance()
    return sim.interior.copy()
