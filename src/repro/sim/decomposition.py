"""Domain decomposition helpers.

Both bundled simulations use 1-D slab decomposition along the leading
(z) axis: rank *r* owns a contiguous band of planes, with one-plane halos
exchanged with the neighbouring ranks each step.  These helpers compute
the bands and validate them; the halo exchange itself lives with the
simulations (it is two ``send``/``recv`` pairs over the communicator).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Slab:
    """Rank-local band ``[start, stop)`` of the decomposed axis."""

    start: int
    stop: int
    axis_len: int

    def __post_init__(self) -> None:
        if not 0 <= self.start <= self.stop <= self.axis_len:
            raise ValueError(
                f"invalid slab [{self.start}, {self.stop}) of axis {self.axis_len}"
            )

    def __len__(self) -> int:
        return self.stop - self.start

    @property
    def has_lower_neighbor(self) -> bool:
        return self.start > 0

    @property
    def has_upper_neighbor(self) -> bool:
        return self.stop < self.axis_len


def decompose_1d(axis_len: int, size: int, rank: int) -> Slab:
    """Split ``axis_len`` planes into ``size`` near-equal contiguous slabs.

    The first ``axis_len % size`` ranks receive one extra plane, matching
    the usual MPI block distribution.  Every rank must receive at least
    one plane.
    """
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    if not 0 <= rank < size:
        raise ValueError(f"rank {rank} out of range [0, {size})")
    if axis_len < size:
        raise ValueError(
            f"cannot decompose {axis_len} planes over {size} ranks "
            "(every rank needs at least one plane)"
        )
    base, extra = divmod(axis_len, size)
    start = rank * base + min(rank, extra)
    stop = start + base + (1 if rank < extra else 0)
    return Slab(start, stop, axis_len)


def partition_offsets(axis_len: int, size: int) -> list[int]:
    """Global start offsets (in planes) of every rank's slab."""
    return [decompose_1d(axis_len, size, r).start for r in range(size)]
