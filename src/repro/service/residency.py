"""Refcounted shared-read residency for sim steps.

The in-situ contract is that a sim step is written once and read by
many analytics jobs.  :class:`SharedStepStore` makes that sharing
explicit at the service layer: the first :meth:`register` of a step
copies it once into a :class:`multiprocessing.shared_memory` segment,
and every job that names the step :meth:`attach`\\ es a read-only numpy
view over the *same* segment — N concurrent readers, one resident copy,
so dispatch bytes stay flat as tenants grow.

Lifetime is refcounted.  :meth:`release` (or the :class:`StepLease`
context manager) drops a reader; :meth:`retire` marks a step evictable,
but the segment is only closed and unlinked once the last reader has
released — eviction can never fire under a live reader.  Readers that
die without releasing (a crashed client process) are reclaimed by
:meth:`reap_dead_readers`, which probes each lease's owner pid with
``os.kill(pid, 0)`` — the same liveness test the PR 3 pool supervisor
uses on its workers — and releases leases whose owner is gone.

Telemetry lands in the ``engine.residency.shared_*`` namespace next to
the process engine's per-run residency counters:

* ``engine.residency.shared_copies`` / ``shared_copied_bytes`` — one
  per registered step (the single upload).
* ``engine.residency.shared_attaches`` / ``shared_bytes_saved`` — one
  per reader that did *not* need its own copy.
* ``engine.residency.shared_evict_deferred`` — retire() under readers.
* ``engine.residency.shared_reaped`` — leases reclaimed from dead pids.
* gauges ``engine.residency.shared_segments`` / ``shared_readers`` /
  ``shared_resident_bytes`` — live state.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from ..telemetry import Recorder

__all__ = ["SharedStepStore", "StepLease"]


def _pid_alive(pid: int) -> bool:
    """Is ``pid`` still running?  (Signal-0 probe, as in the PR 3
    supervisor: ``EPERM`` means alive-but-foreign, only ``ESRCH`` means
    gone.)"""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - foreign-uid pid
        return True
    return True


@dataclass
class _Step:
    shm: shared_memory.SharedMemory
    shape: tuple
    dtype: np.dtype
    nbytes: int
    #: lease id -> owner pid
    readers: dict[int, int] = field(default_factory=dict)
    retired: bool = False


class StepLease:
    """One reader's refcounted handle on a resident step.

    ``lease.data`` is a zero-copy **read-only** view over the shared
    segment; it must not be used after :meth:`release`.  Usable as a
    context manager (releases on exit).
    """

    def __init__(self, store: "SharedStepStore", step_id: str,
                 lease_id: int, data: np.ndarray, owner_pid: int):
        self._store = store
        self.step_id = step_id
        self.lease_id = lease_id
        self.data = data
        self.owner_pid = owner_pid
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self.data = None
        self._store._release(self.step_id, self.lease_id)

    def __enter__(self) -> "StepLease":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class SharedStepStore:
    """Refcounted shared-memory segments, one per registered sim step."""

    def __init__(self, telemetry: Recorder | None = None):
        self._lock = threading.Lock()
        self._steps: dict[str, _Step] = {}
        self._next_lease = 0
        self.telemetry = telemetry if telemetry is not None else Recorder()

    # -- registration --------------------------------------------------
    def register(self, step_id: str, data: np.ndarray) -> None:
        """Publish ``data`` as resident step ``step_id`` (one copy).

        Idempotent registration of a different array under a taken id is
        an error — a step is immutable once published.
        """
        data = np.ascontiguousarray(data)
        with self._lock:
            if step_id in self._steps:
                raise ValueError(f"step {step_id!r} is already resident")
            shm = shared_memory.SharedMemory(create=True, size=max(1, data.nbytes))
            np.ndarray(data.shape, dtype=data.dtype, buffer=shm.buf)[...] = data
            self._steps[step_id] = _Step(
                shm=shm, shape=data.shape, dtype=data.dtype, nbytes=data.nbytes)
            self.telemetry.inc("engine.residency.shared_copies")
            self.telemetry.inc("engine.residency.shared_copied_bytes", data.nbytes)
            self._update_gauges_locked()

    # -- leases --------------------------------------------------------
    def attach(self, step_id: str, owner_pid: int | None = None) -> StepLease:
        """Take a refcounted read-only view of a resident step.

        ``owner_pid`` names the process the lease belongs to (defaults
        to the caller); :meth:`reap_dead_readers` releases leases whose
        owner has died.
        """
        with self._lock:
            step = self._steps.get(step_id)
            if step is None:
                raise KeyError(f"step {step_id!r} is not resident")
            if step.retired:
                # Deferred eviction: the step accepts no new readers.
                raise KeyError(f"step {step_id!r} is retired")
            lease_id = self._next_lease
            self._next_lease += 1
            step.readers[lease_id] = os.getpid() if owner_pid is None else owner_pid
            view = np.ndarray(step.shape, dtype=step.dtype, buffer=step.shm.buf)
            view.flags.writeable = False
            self.telemetry.inc("engine.residency.shared_attaches")
            self.telemetry.inc("engine.residency.shared_bytes_saved", step.nbytes)
            self._update_gauges_locked()
            return StepLease(self, step_id, lease_id, view,
                             step.readers[lease_id])

    def _release(self, step_id: str, lease_id: int) -> None:
        with self._lock:
            step = self._steps.get(step_id)
            if step is None:
                return
            step.readers.pop(lease_id, None)
            if step.retired and not step.readers:
                self._evict_locked(step_id)
            self._update_gauges_locked()

    # -- eviction ------------------------------------------------------
    def retire(self, step_id: str) -> bool:
        """Mark a step evictable; evict now iff no reader holds a ref.

        Returns True if the segment was freed, False if eviction was
        deferred behind live readers (it will fire on the last release).
        """
        with self._lock:
            step = self._steps.get(step_id)
            if step is None:
                return True
            step.retired = True
            if step.readers:
                self.telemetry.inc("engine.residency.shared_evict_deferred")
                return False
            self._evict_locked(step_id)
            self._update_gauges_locked()
            return True

    def _evict_locked(self, step_id: str) -> None:
        step = self._steps.pop(step_id)
        assert not step.readers, "eviction under a live reader"
        try:
            step.shm.close()
        except BufferError:  # pragma: no cover - stale view still mapped
            pass
        try:
            step.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    # -- crash recovery ------------------------------------------------
    def reap_dead_readers(self) -> int:
        """Release every lease whose owner pid has died; return count.

        The service's dispatch loop calls this opportunistically so a
        reader that crashed mid-job cannot pin a retired step forever.
        """
        reaped = 0
        with self._lock:
            for step_id in list(self._steps):
                step = self._steps[step_id]
                dead = [lid for lid, pid in step.readers.items()
                        if not _pid_alive(pid)]
                for lid in dead:
                    del step.readers[lid]
                    reaped += 1
                if dead and step.retired and not step.readers:
                    self._evict_locked(step_id)
            if reaped:
                self.telemetry.inc("engine.residency.shared_reaped", reaped)
            self._update_gauges_locked()
        return reaped

    # -- introspection -------------------------------------------------
    def elements(self, step_id: str) -> int:
        """Element count of a resident step (no lease, no counters)."""
        with self._lock:
            step = self._steps.get(step_id)
            if step is None:
                raise KeyError(f"step {step_id!r} is not resident")
            return int(np.prod(step.shape, dtype=np.int64))

    def readers(self, step_id: str) -> int:
        with self._lock:
            step = self._steps.get(step_id)
            return len(step.readers) if step else 0

    def resident_steps(self) -> list[str]:
        with self._lock:
            return list(self._steps)

    def hit_rate(self) -> float:
        """Fraction of reads served by an existing resident copy."""
        hits = self.telemetry.counter("engine.residency.shared_attaches")
        copies = self.telemetry.counter("engine.residency.shared_copies")
        total = hits + copies
        return hits / total if total else 0.0

    def _update_gauges_locked(self) -> None:
        self.telemetry.set_gauge(
            "engine.residency.shared_segments", len(self._steps))
        self.telemetry.set_gauge(
            "engine.residency.shared_readers",
            sum(len(s.readers) for s in self._steps.values()))
        self.telemetry.set_gauge(
            "engine.residency.shared_resident_bytes",
            sum(s.nbytes for s in self._steps.values()))

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Force-free every segment (shutdown path; ignores refcounts)."""
        with self._lock:
            for step_id in list(self._steps):
                self._steps[step_id].readers.clear()
                self._evict_locked(step_id)
            self._update_gauges_locked()

    def __enter__(self) -> "SharedStepStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
