"""The in-process multi-tenant analytics service master.

``AnalyticsService`` multiplexes many tenants' analytics jobs over the
shared in-situ data plane:

* **queue** — submissions pass :class:`AdmissionController` (bounded
  queue, per-tenant quotas, engine-second budgets) and enter a
  :class:`DeficitRoundRobin` dispatcher;
* **fair dispatch** — a pool of worker threads pops jobs in DRR order,
  so no tenant's flood can starve another's head job past one quantum
  rotation;
* **shared residency** — every job attaches its sim step through the
  refcounted :class:`SharedStepStore`: N jobs against one step read one
  resident copy;
* **seats** — per-(tenant, workload, policy) schedulers are kept warm
  between jobs, so engine pools are built once and reused
  (``service.seats.created`` vs ``service.seats.reused``);
* **telemetry** — everything lands in per-tenant scoped namespaces
  (``service.tenant.<id>.*``) of one root :class:`Recorder`.

:func:`execute_workload` is the single job-execution code path — the
service's workers and the conformance solo oracle
(:mod:`repro.verify.service_check`) both call it, so a service run can
never drift from the oracle by construction of the comparison.
"""

from __future__ import annotations

import itertools
import threading
import time

import numpy as np

from ..core import ExecutionPolicy
from ..telemetry import Recorder
from ..verify.workloads import Workload, get_workload
from .admission import AdmissionController
from .dispatch import DeficitRoundRobin
from .residency import SharedStepStore
from .spec import AdmissionError, JobHandle, JobSpec, TenantQuota

__all__ = ["AnalyticsService", "execute_workload", "job_policy"]


def job_policy(workload: Workload, policy, data: np.ndarray) -> ExecutionPolicy:
    """Resolve a JobSpec policy field into a runnable ExecutionPolicy.

    ``None`` means the workload's canonical shape (serial engine,
    registry chunk/iteration counts); a string is parsed as a policy
    fingerprint.  A workload-derived ``extra_data`` (e.g. initial
    centroids) is grafted on exactly as the conformance oracle does, so
    service jobs and solo oracles always seed identically.
    """
    if policy is None:
        policy = ExecutionPolicy(chunk_size=workload.chunk_size,
                                 num_iters=workload.num_iters)
    elif isinstance(policy, str):
        policy = ExecutionPolicy.parse(policy)
    if policy.extra_data is None:
        extra = workload.extra(data)
        if extra is not None:
            policy = policy.evolve(extra_data=extra)
    return policy


def _run_app(app, workload: Workload, data: np.ndarray) -> dict:
    if workload.multi_key:
        out = np.full(workload.output_length(len(data)), np.nan)
        app.run2(data, out)
        return dict(workload.extract(app, out))
    app.run(data)
    return dict(workload.extract(app, None))


def execute_workload(
    workload: Workload | str,
    policy: ExecutionPolicy,
    data: np.ndarray,
    *,
    telemetry: Recorder | None = None,
) -> tuple[dict, dict[str, int]]:
    """Build, run once, close: (extracted result, counter snapshot).

    The one shared execution path for a service job and its solo
    oracle.  ``telemetry`` (typically a scoped child recorder) rebinds
    the scheduler before the engine exists.
    """
    w = workload if isinstance(workload, Workload) else get_workload(workload)
    app = w.build(policy, None)
    if telemetry is not None:
        app.use_telemetry(telemetry)
    with app:
        result = _run_app(app, w, data)
        counters = dict(app.telemetry_snapshot()["counters"])
    return result, counters


class _Seat:
    """A warm scheduler bound to one (tenant, workload, policy) shape."""

    def __init__(self, workload: Workload, policy: ExecutionPolicy,
                 recorder: Recorder):
        self.workload = workload
        self.app = workload.build(policy, None)
        self.app.use_telemetry(recorder)
        self.runs = 0

    def run(self, data: np.ndarray) -> tuple[dict, dict[str, int]]:
        self.app.reset()
        self.app.reset_stats()
        result = _run_app(self.app, self.workload, data)
        counters = dict(self.app.telemetry_snapshot()["counters"])
        self.runs += 1
        return result, counters

    def close(self) -> None:
        self.app.close()


class AnalyticsService:
    """Bounded queue → admission → DRR fair dispatch → shared residency.

    Submissions are accepted before :meth:`start` — queues simply
    accumulate until the worker pool spins up, which the starvation
    tests exploit to make dispatch order deterministic.
    """

    def __init__(
        self,
        workers: int = 4,
        *,
        max_queue_depth: int = 256,
        default_quota: TenantQuota | None = None,
        quantum: float = 4096.0,
        telemetry: Recorder | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.telemetry = telemetry if telemetry is not None else Recorder()
        self.admission = AdmissionController(
            max_queue_depth=max_queue_depth, default_quota=default_quota)
        self.store = SharedStepStore(self.telemetry)
        self._drr = DeficitRoundRobin(quantum=quantum)
        self._workers_wanted = workers
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._outstanding = 0
        self._job_ids = itertools.count(1)
        self._dispatch_ids = itertools.count(1)
        self._seat_ids = itertools.count(1)
        #: (tenant, workload, policy fingerprint) -> free warm seats
        self._seats: dict[tuple, list[_Seat]] = {}
        self._tenant_scopes: dict[str, Recorder] = {}
        self._closed = False

    # -- tenants -------------------------------------------------------
    def tenant_scope(self, tenant: str) -> Recorder:
        """The tenant's scoped telemetry namespace
        (``service.tenant.<id>.*``)."""
        with self._lock:
            scope = self._tenant_scopes.get(tenant)
            if scope is None:
                scope = self.telemetry.scoped(f"service.tenant.{tenant}")
                self._tenant_scopes[tenant] = scope
            return scope

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        self.admission.set_quota(tenant, quota)

    # -- data plane ----------------------------------------------------
    def register_step(self, step_id: str, data: np.ndarray) -> None:
        """Publish one sim step for shared-read residency (one copy)."""
        self.store.register(
            step_id, np.ascontiguousarray(data, dtype=np.float64))

    def retire_step(self, step_id: str) -> bool:
        """Mark a step evictable (freed once its last reader releases)."""
        return self.store.retire(step_id)

    def step_elements(self, step_id: str) -> int:
        return self.store.elements(step_id)

    # -- submission ----------------------------------------------------
    def submit(self, spec: JobSpec) -> JobHandle:
        """Admit one job; returns its handle or raises a structured
        :class:`~repro.service.AdmissionError`."""
        if self._closed:
            raise RuntimeError("service is closed")
        elements = self.store.elements(spec.step)  # fail fast: step must
        get_workload(spec.workload)                # be resident, workload known
        scope = self.tenant_scope(spec.tenant)
        try:
            self.admission.admit(spec)
        except AdmissionError as exc:
            scope.inc(f"rejected.{exc.kind}")
            self.telemetry.inc("service.rejected")
            raise
        cost = (spec.cost_hint if spec.cost_hint is not None
                else float(elements))
        handle = JobHandle(job_id=next(self._job_ids), spec=spec)
        with self._lock:
            self._outstanding += 1
        self._drr.push(handle, cost)
        scope.inc("submitted")
        self.telemetry.inc("service.submitted")
        self.telemetry.set_gauge("service.queue_depth",
                                 self.admission.queued())
        return handle

    # -- worker pool ---------------------------------------------------
    def start(self) -> "AnalyticsService":
        """Spin up the worker pool (idempotent)."""
        with self._lock:
            if self._threads or self._closed:
                return self
            for i in range(self._workers_wanted):
                t = threading.Thread(target=self._worker_loop,
                                     name=f"svc-worker-{i}", daemon=True)
                self._threads.append(t)
                t.start()
        return self

    def _worker_loop(self) -> None:
        while True:
            handle = self._drr.pop()
            if handle is None:
                return
            self._execute(handle)

    def _execute(self, handle: JobHandle) -> None:
        spec = handle.spec
        scope = self.tenant_scope(spec.tenant)
        self.admission.on_dispatch(spec.tenant)
        handle._mark_running(next(self._dispatch_ids))
        scope.inc("dispatched")
        self.telemetry.set_gauge("service.queue_depth",
                                 self.admission.queued())
        t0 = time.perf_counter()
        try:
            result, counters = self._run_job(handle)
        except BaseException as exc:  # noqa: BLE001 - delivered via handle
            seconds = time.perf_counter() - t0
            self.admission.on_complete(spec.tenant, seconds)
            scope.add_time("engine_seconds", seconds)
            scope.inc("jobs_failed")
            self.telemetry.inc("service.failed")
            handle._fail(exc, seconds)
        else:
            seconds = time.perf_counter() - t0
            self.admission.on_complete(spec.tenant, seconds)
            scope.add_time("engine_seconds", seconds)
            scope.inc("jobs_completed")
            self.telemetry.inc("service.completed")
            # Aggregate the job's run.* stats into the tenant namespace
            # (service.tenant.<id>.run.*) — per-tenant accounting without
            # per-job root-recorder growth.
            scope.merge_counters({name: value
                                  for name, value in counters.items()
                                  if name.startswith("run.")})
            handle._finish(result, counters, seconds)
        finally:
            self.store.reap_dead_readers()
            with self._lock:
                self._outstanding -= 1
                if self._outstanding == 0:
                    self._idle.notify_all()

    def _run_job(self, handle: JobHandle) -> tuple[dict, dict[str, int]]:
        spec = handle.spec
        w = get_workload(spec.workload)
        with self.store.attach(spec.step) as lease:
            data = lease.data
            policy = job_policy(w, spec.policy, data)
            if w.make_extra is not None:
                # Stateful seeding (e.g. centroids the run mutates):
                # build fresh under a job-unique scope, never reuse.
                scope = self.tenant_scope(spec.tenant).scoped(
                    f"job.{handle.job_id}")
                try:
                    return execute_workload(w, policy, data,
                                            telemetry=scope)
                finally:
                    scope.reset()  # captured already; keep the root bounded
            seat = self._checkout_seat(spec.tenant, w, policy)
            try:
                return seat.run(data)
            finally:
                self._checkin_seat(spec.tenant, w, policy, seat)

    # -- seat cache ----------------------------------------------------
    def _seat_key(self, tenant: str, w: Workload,
                  policy: ExecutionPolicy) -> tuple:
        return (tenant, w.name, policy.fingerprint())

    def _checkout_seat(self, tenant: str, w: Workload,
                       policy: ExecutionPolicy) -> _Seat:
        key = self._seat_key(tenant, w, policy)
        with self._lock:
            free = self._seats.get(key)
            if free:
                self.telemetry.inc("service.seats.reused")
                return free.pop()
            seat_id = next(self._seat_ids)
        self.telemetry.inc("service.seats.created")
        recorder = self.telemetry.scoped(
            f"service.tenant.{tenant}.seat.{seat_id}")
        return _Seat(w, policy, recorder)

    def _checkin_seat(self, tenant: str, w: Workload,
                      policy: ExecutionPolicy, seat: _Seat) -> None:
        key = self._seat_key(tenant, w, policy)
        with self._lock:
            if self._closed:
                seat.close()
                return
            self._seats.setdefault(key, []).append(seat)

    # -- lifecycle -----------------------------------------------------
    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted job finished; False on timeout."""
        deadline = (None if timeout is None
                    else time.perf_counter() + timeout)
        with self._idle:
            while self._outstanding:
                remaining = (None if deadline is None
                             else deadline - time.perf_counter())
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def close(self, timeout: float = 30.0) -> None:
        """Drain queued jobs, stop workers, free seats and segments."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._drr.close()
        for t in self._threads:
            t.join(timeout)
        with self._lock:
            seats = [s for free in self._seats.values() for s in free]
            self._seats.clear()
        for seat in seats:
            seat.close()
        self.store.close()

    def __enter__(self) -> "AnalyticsService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
