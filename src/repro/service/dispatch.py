"""Deficit-round-robin fair dispatch across tenant queues.

Classic DRR (Shreedhar & Varghese): each tenant owns a FIFO queue and a
deficit counter.  The dispatcher visits tenants in a fixed rotation;
each visit grants the tenant one ``quantum`` of credit, then serves jobs
from the head of its queue while their *cost* fits the accumulated
deficit.  A tenant flooding the service with cheap jobs therefore gets
at most one quantum of service per rotation — every other tenant's head
job is reached within one full rotation, which is the bounded-delay
property the starvation test asserts.

Cost is the job's step element count (work is linear in elements for
every registry workload), overridable per job via
``JobSpec.cost_hint``.  Jobs costlier than one quantum still run — the
deficit accumulates across rotations until it covers them.
"""

from __future__ import annotations

import threading
from collections import deque

from .spec import JobHandle

__all__ = ["DeficitRoundRobin"]


class DeficitRoundRobin:
    """Thread-safe DRR queue of :class:`JobHandle` s keyed by tenant."""

    def __init__(self, quantum: float = 4096.0):
        if quantum <= 0:
            raise ValueError(f"quantum must be > 0, got {quantum}")
        self.quantum = float(quantum)
        self._lock = threading.Condition()
        self._queues: dict[str, deque] = {}
        self._deficits: dict[str, float] = {}
        #: Rotation ring of tenant ids; _cursor indexes the next visit.
        self._ring: list[str] = []
        self._cursor = 0
        #: Whether the tenant under the cursor already received this
        #: visit's quantum (a visit spans several pops while its jobs
        #: keep fitting the deficit; the grant must fire once).
        self._visit_granted = False
        self._size = 0
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def pending(self, tenant: str) -> int:
        with self._lock:
            queue = self._queues.get(tenant)
            return len(queue) if queue else 0

    def push(self, handle: JobHandle, cost: float) -> None:
        """Enqueue a job for its tenant (cost in DRR credit units)."""
        tenant = handle.spec.tenant
        with self._lock:
            if self._closed:
                raise RuntimeError("dispatcher is closed")
            queue = self._queues.get(tenant)
            if queue is None:
                queue = self._queues[tenant] = deque()
                self._deficits[tenant] = 0.0
                self._ring.append(tenant)
            queue.append((handle, float(cost)))
            self._size += 1
            self._lock.notify()

    def pop(self, timeout: float | None = None) -> JobHandle | None:
        """Next job under DRR order; None on close or timeout.

        Visits tenants round-robin from the rotation cursor.  A visited
        tenant with queued work earns one quantum; its head job is served
        if the deficit covers the job's cost, and the *cursor stays on
        the tenant* so subsequent pops keep draining its deficit before
        the rotation moves on (one quantum per rotation, not per pop).
        """
        with self._lock:
            while True:
                if self._size:
                    handle = self._pop_locked()
                    if handle is not None:
                        return handle
                    # Every head job outran its deficit; quanta were
                    # granted this pass, so retry immediately — after
                    # ceil(cost/quantum) passes the head job fits.
                    continue
                if self._closed:
                    return None
                if not self._lock.wait(timeout):
                    return None

    def _advance_locked(self) -> None:
        self._cursor = (self._cursor + 1) % len(self._ring)
        self._visit_granted = False

    def _pop_locked(self) -> JobHandle | None:
        for _ in range(len(self._ring)):
            tenant = self._ring[self._cursor % len(self._ring)]
            queue = self._queues[tenant]
            if not queue:
                # Empty at its turn: forfeit accumulated credit (DRR
                # rule — deficits never bank across idle periods).
                self._deficits[tenant] = 0.0
                self._advance_locked()
                continue
            if not self._visit_granted:
                # One quantum per visit — NOT per pop: a flooding
                # tenant spends its grant, then the rotation moves on.
                self._deficits[tenant] += self.quantum
                self._visit_granted = True
            handle, cost = queue[0]
            if self._deficits[tenant] < cost:
                # Head job outruns the deficit; it accumulates across
                # rotations until it fits — no job waits forever.
                self._advance_locked()
                continue
            queue.popleft()
            self._deficits[tenant] -= cost
            if not queue:
                self._deficits[tenant] = 0.0
                self._advance_locked()
            self._size -= 1
            return handle
        return None

    def close(self) -> None:
        """Wake all poppers; pending jobs still drain before None."""
        with self._lock:
            self._closed = True
            self._lock.notify_all()
