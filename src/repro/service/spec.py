"""Job specifications, handles, quotas, and structured admission errors.

A :class:`JobSpec` names one analytics job a tenant wants executed: a
workload from the conformance registry, the resident sim step it reads,
and the :class:`~repro.core.policy.ExecutionPolicy` it runs under.  The
service answers a submission with a :class:`JobHandle` — a future-like
object the tenant waits on — or raises a structured
:class:`AdmissionError` subclass naming the tenant, the violated limit,
and the current usage, so a front-end can map rejections onto protocol
errors without parsing messages.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any

from ..core.policy import ExecutionPolicy

__all__ = [
    "AdmissionError",
    "BudgetExhaustedError",
    "JobHandle",
    "JobSpec",
    "QueueFullError",
    "QuotaExceededError",
    "TenantQuota",
]


@dataclass(frozen=True)
class JobSpec:
    """One analytics job: workload × resident step × policy × tenant.

    Parameters
    ----------
    tenant:
        The submitting tenant's id — the admission/quota and telemetry
        key (``service.tenant.<id>.*`` namespaces).
    workload:
        A :mod:`repro.verify.workloads` registry name (``histogram``,
        ``kmeans``, ...) — the analytics application to run.
    step:
        The id of a sim step previously published to the service with
        :meth:`~repro.service.AnalyticsService.register_step`.  All
        jobs naming the same step read one shared resident copy.
    policy:
        The run's :class:`~repro.core.policy.ExecutionPolicy`, a policy
        fingerprint string, or ``None`` for the workload's canonical
        shape (serial engine, registry chunk/iteration counts).  The
        policy fingerprint doubles as the admission cache key.
    cost_hint:
        Optional dispatch cost override for deficit-round-robin
        accounting; defaults to the step's element count.
    tag:
        Free-form client correlation tag (carried, never interpreted).
    """

    tenant: str
    workload: str
    step: str
    policy: ExecutionPolicy | str | None = None
    cost_hint: float | None = None
    tag: str = ""

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("JobSpec.tenant must be non-empty")
        if "." in self.tenant:
            # Tenant ids become dotted-telemetry namespace segments.
            raise ValueError(
                f"JobSpec.tenant must not contain '.', got {self.tenant!r}")


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits.

    ``max_queued`` bounds the tenant's jobs waiting for dispatch (not
    the running ones); ``max_engine_seconds`` bounds the tenant's total
    *measured* execution time — once the tenant's completed jobs have
    consumed the budget, further submissions are rejected until the
    operator raises it.  ``inf`` disables a limit.
    """

    max_queued: int = 16
    max_engine_seconds: float = math.inf

    def __post_init__(self) -> None:
        if self.max_queued < 1:
            raise ValueError(
                f"max_queued must be >= 1, got {self.max_queued}")
        if not self.max_engine_seconds > 0:
            raise ValueError(
                "max_engine_seconds must be > 0, got "
                f"{self.max_engine_seconds}")


class AdmissionError(RuntimeError):
    """A job submission the service refused, with structured context.

    Attributes
    ----------
    tenant: the submitting tenant.
    kind: machine-readable rejection kind (``queue-full``,
        ``tenant-quota``, ``budget-exhausted``).
    limit / current: the violated bound and the usage at rejection.
    """

    kind = "admission"

    def __init__(self, tenant: str, limit: float, current: float,
                 message: str):
        super().__init__(message)
        self.tenant = tenant
        self.limit = limit
        self.current = current

    def to_dict(self) -> dict:
        """Wire-ready rejection record (what a front-end would return)."""
        return {
            "error": type(self).__name__,
            "kind": self.kind,
            "tenant": self.tenant,
            "limit": self.limit,
            "current": self.current,
            "message": str(self),
        }


class QueueFullError(AdmissionError):
    """The service-wide bounded job queue is at capacity."""

    kind = "queue-full"


class QuotaExceededError(AdmissionError):
    """The tenant already has ``max_queued`` jobs waiting."""

    kind = "tenant-quota"


class BudgetExhaustedError(AdmissionError):
    """The tenant's engine-seconds budget is spent."""

    kind = "budget-exhausted"


#: Job lifecycle states (``REJECTED`` never reaches a handle — admission
#: raises instead — but appears in telemetry counters).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


@dataclass
class JobHandle:
    """A submitted job's future: status, result, error, accounting.

    Returned by :meth:`~repro.service.AnalyticsService.submit`; thread
    safe.  ``result()`` blocks until the job finishes and either
    returns the extracted name→array dict or re-raises the job's
    failure.
    """

    job_id: int
    spec: JobSpec
    status: str = QUEUED
    #: Global dispatch sequence number (order the DRR scheduler released
    #: the job to a worker), ``None`` until dispatched.
    dispatch_index: int | None = None
    #: Measured wall-clock execution time, charged to the tenant budget.
    engine_seconds: float = 0.0
    #: The job's own scoped-recorder counters, captured at completion.
    counters: dict[str, int] = field(default_factory=dict)
    error: BaseException | None = None
    _result: Any = None
    _done: threading.Event = field(default_factory=threading.Event)

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job finishes; False on timeout."""
        return self._done.wait(timeout)

    def result(self, timeout: float | None = None) -> Any:
        """The job's extracted result dict (blocks; re-raises failures)."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} ({self.spec.workload} for tenant "
                f"{self.spec.tenant!r}) not finished within {timeout}s")
        if self.error is not None:
            raise self.error
        return self._result

    # -- service-side transitions (not part of the client API) ---------
    def _mark_running(self, dispatch_index: int) -> None:
        self.status = RUNNING
        self.dispatch_index = dispatch_index

    def _finish(self, result: Any, counters: dict[str, int],
                seconds: float) -> None:
        self._result = result
        self.counters = counters
        self.engine_seconds = seconds
        self.status = DONE
        self._done.set()

    def _fail(self, error: BaseException, seconds: float = 0.0) -> None:
        self.error = error
        self.engine_seconds = seconds
        self.status = FAILED
        self._done.set()
