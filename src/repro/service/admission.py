"""Admission control: bounded queue, per-tenant quotas, engine budgets.

Every submission passes three gates, cheapest first:

1. **Service queue bound** — the master's total queued-job count may not
   exceed ``max_queue_depth`` (:class:`~repro.service.QueueFullError`).
2. **Per-tenant queue quota** — a tenant may hold at most
   ``TenantQuota.max_queued`` undis­patched jobs
   (:class:`~repro.service.QuotaExceededError`).
3. **Engine-seconds budget** — the tenant's accumulated measured
   execution time must be below ``TenantQuota.max_engine_seconds``
   (:class:`~repro.service.BudgetExhaustedError`).

Rejections raise structured :class:`~repro.service.AdmissionError`
subclasses carrying (tenant, kind, limit, current) and are tallied as
``service.tenant.<id>.rejected.<kind>`` counters so the fairness
harness can report rejection mixes per tenant.
"""

from __future__ import annotations

import threading

from .spec import (
    BudgetExhaustedError,
    JobSpec,
    QueueFullError,
    QuotaExceededError,
    TenantQuota,
)

__all__ = ["AdmissionController"]


class AdmissionController:
    """Tracks queue depth and per-tenant usage; gates submissions."""

    def __init__(self, max_queue_depth: int = 64,
                 default_quota: TenantQuota | None = None):
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}")
        self.max_queue_depth = max_queue_depth
        self.default_quota = default_quota or TenantQuota()
        self._lock = threading.Lock()
        self._quotas: dict[str, TenantQuota] = {}
        self._queued: dict[str, int] = {}
        self._engine_seconds: dict[str, float] = {}
        self._total_queued = 0

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        with self._lock:
            self._quotas[tenant] = quota

    def quota(self, tenant: str) -> TenantQuota:
        with self._lock:
            return self._quotas.get(tenant, self.default_quota)

    def engine_seconds(self, tenant: str) -> float:
        with self._lock:
            return self._engine_seconds.get(tenant, 0.0)

    def queued(self, tenant: str | None = None) -> int:
        with self._lock:
            if tenant is None:
                return self._total_queued
            return self._queued.get(tenant, 0)

    # -- the admission decision ---------------------------------------
    def admit(self, spec: JobSpec) -> None:
        """Gate one submission; raises an AdmissionError or reserves a
        queue slot for the tenant (released by :meth:`on_dispatch`)."""
        tenant = spec.tenant
        with self._lock:
            quota = self._quotas.get(tenant, self.default_quota)
            if self._total_queued >= self.max_queue_depth:
                raise QueueFullError(
                    tenant, self.max_queue_depth, self._total_queued,
                    f"service queue is full ({self._total_queued}/"
                    f"{self.max_queue_depth} jobs queued)")
            queued = self._queued.get(tenant, 0)
            if queued >= quota.max_queued:
                raise QuotaExceededError(
                    tenant, quota.max_queued, queued,
                    f"tenant {tenant!r} already has {queued} jobs queued "
                    f"(quota {quota.max_queued})")
            spent = self._engine_seconds.get(tenant, 0.0)
            if spent >= quota.max_engine_seconds:
                raise BudgetExhaustedError(
                    tenant, quota.max_engine_seconds, spent,
                    f"tenant {tenant!r} spent {spent:.3f}s of its "
                    f"{quota.max_engine_seconds:.3f}s engine budget")
            self._queued[tenant] = queued + 1
            self._total_queued += 1

    # -- usage accounting ---------------------------------------------
    def on_dispatch(self, tenant: str) -> None:
        """A queued job left the queue for a worker."""
        with self._lock:
            self._queued[tenant] = max(0, self._queued.get(tenant, 0) - 1)
            self._total_queued = max(0, self._total_queued - 1)

    def on_complete(self, tenant: str, engine_seconds: float) -> None:
        """Charge measured execution time against the tenant's budget."""
        with self._lock:
            self._engine_seconds[tenant] = (
                self._engine_seconds.get(tenant, 0.0) + float(engine_seconds))
