"""Multi-tenant job service over the resident in-situ data plane.

``AnalyticsService`` is the front-end ROADMAP item 1 asks for: many
tenants submit :class:`JobSpec` s, admission control enforces per-tenant
quotas and engine budgets, a deficit-round-robin dispatcher shares the
engine pool fairly, and every job against the same sim step reads one
refcounted resident copy (:class:`SharedStepStore`).  Each job's result
is bit-exact against running it alone — enforced by the conformance
``sharing`` axis and the ``tests/service`` stress suite.
"""

from .admission import AdmissionController
from .dispatch import DeficitRoundRobin
from .residency import SharedStepStore, StepLease
from .service import AnalyticsService, execute_workload, job_policy
from .spec import (
    AdmissionError,
    BudgetExhaustedError,
    JobHandle,
    JobSpec,
    QueueFullError,
    QuotaExceededError,
    TenantQuota,
)

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AnalyticsService",
    "BudgetExhaustedError",
    "DeficitRoundRobin",
    "JobHandle",
    "JobSpec",
    "QueueFullError",
    "QuotaExceededError",
    "SharedStepStore",
    "StepLease",
    "TenantQuota",
    "execute_workload",
    "job_policy",
]
