"""``python -m repro.harness conform`` — the differential conformance CLI.

Runs a pairwise-pruned configuration matrix (plus optional metamorphic
property checks and schedule fuzzing) against the serial/pickle oracle
and prints/serializes structured mismatch reports.  Exit status 1 on
any mismatch, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..core import ExecutionPolicy
from ..telemetry import Recorder
from ..verify import (
    Config,
    OracleCache,
    applicable_properties,
    axis_values,
    build_matrix,
    check_workload,
    fuzz_schedule,
    get_workload,
    run_autotune,
    run_fuzz,
    run_matrix,
    workload_names,
)
from .reporting import print_table

#: Workloads the smoke matrix exercises by default (fast, covers the
#: single-key, iterative, and windowed shapes).  ``--full`` runs all.
SMOKE_WORKLOADS = ("histogram", "minmax", "kmeans", "moving_average")

DEFAULT_REPORT = "CONFORM_report.json"


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness conform",
        description="differential conformance: engine × wire × residency "
                    "× fault matrix vs the serial oracle")
    parser.add_argument("--smoke", action="store_true",
                        help="pruned fast matrix (default)")
    parser.add_argument("--full", action="store_true",
                        help="all workloads, wider axis values")
    parser.add_argument("--workload", action="append", default=None,
                        choices=sorted(workload_names()),
                        help="restrict to these workloads (repeatable)")
    parser.add_argument("--seed", type=int, default=2015,
                        help="data seed pinned into every config")
    parser.add_argument("--max-configs", type=int, default=None,
                        help="truncate the greedy covering order")
    parser.add_argument("--config", action="append", default=None,
                        metavar="FINGERPRINT",
                        help="run exactly this config fingerprint "
                             "(repeatable; skips matrix generation)")
    parser.add_argument("--policy", action="append", default=None,
                        metavar="WORKLOAD@POLICY[@ranks=N]",
                        help="run a workload under an ExecutionPolicy "
                             "fingerprint (repeatable; e.g. "
                             "'histogram@engine=thread,threads=2')")
    parser.add_argument("--autotune", action="store_true",
                        help="also run every workload under "
                             "ExecutionPolicy.auto() advice plus one "
                             "mid-run combine-switch run")
    parser.add_argument("--properties", action="store_true",
                        help="also run the metamorphic property checks")
    parser.add_argument("--fuzz", type=int, default=0, metavar="N",
                        help="also fuzz N interleave schedules per workload")
    parser.add_argument("--fuzz-seed", type=int, default=None,
                        help="replay exactly one fuzz schedule seed")
    parser.add_argument("--report", type=Path, default=None,
                        help=f"write a JSON report (default {DEFAULT_REPORT} "
                             "on mismatch)")
    parser.add_argument("--list", action="store_true",
                        help="list workloads and axis values, then exit")
    return parser


def _policy_configs(tokens: list[str], seed: int) -> list[Config]:
    """``WORKLOAD@POLICY[@ranks=N]`` tokens → matrix configs.

    ``POLICY`` is an (optionally partial) :meth:`ExecutionPolicy.parse`
    token string; the workload's chunk/iteration shape is fixed by the
    registry, and ``ranks`` — not a policy axis — rides in its own
    ``@``-separated part.
    """
    configs = []
    for token in tokens:
        parts = [p.strip() for p in token.split("@")]
        if len(parts) < 2:
            raise SystemExit(
                f"--policy needs WORKLOAD@POLICY, got {token!r}")
        workload, ranks, policy_text = parts[0], 1, ""
        for part in parts[1:]:
            if part.startswith("ranks="):
                ranks = int(part[len("ranks="):])
            else:
                policy_text = part
        policy = ExecutionPolicy.parse(policy_text)
        get_workload(workload)  # fail fast on unknown names
        configs.append(Config(
            workload=workload,
            engine=policy.engine.backend,
            wire_format=policy.combine.wire_format,
            combine_algorithm=policy.combine.algorithm,
            residency=policy.engine.residency,
            map_path=policy.engine.map_path,
            num_threads=policy.engine.num_threads,
            block_size=policy.block_size or 0,
            vectorized=policy.vectorized,
            ranks=ranks,
            seed=seed,
        ))
    return configs


def _list_workloads() -> None:
    rows = []
    for name in workload_names():
        w = get_workload(name)
        rows.append((
            name,
            "multi" if w.multi_key else "single",
            "yes" if w.has_vector_path else "no",
            "yes" if w.has_batch_path else "no",
            ",".join(applicable_properties(w)) or "-",
            w.description,
        ))
    print_table("conformance workloads",
                ("workload", "keys", "vector", "batch", "invariants",
                 "description"),
                rows)
    axes = axis_values(smoke=True)
    print_table("smoke axis values", ("axis", "values"),
                [(axis, ", ".join(str(v) for v in values))
                 for axis, values in axes.items()])


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.list:
        _list_workloads()
        return 0

    smoke = not args.full
    names = tuple(args.workload) if args.workload else (
        SMOKE_WORKLOADS if smoke else workload_names())
    telemetry = Recorder()
    cache = OracleCache(telemetry)

    if args.config or args.policy:
        configs = [Config.parse(token) for token in (args.config or [])]
        configs.extend(_policy_configs(args.policy or [], args.seed))
    elif args.fuzz_seed is not None and args.fuzz == 0:
        configs = []
    else:
        configs = build_matrix(names, smoke=smoke, seed=args.seed,
                               max_configs=args.max_configs)

    report = run_matrix(configs, telemetry=telemetry, cache=cache)
    report.seed = args.seed

    if args.properties:
        for name in names:
            report.mismatches.extend(
                check_workload(name, args.seed, telemetry=telemetry))
    if args.fuzz_seed is not None:
        fuzz_targets = names if args.workload else names[:1]
        for name in fuzz_targets:
            report.mismatches.extend(fuzz_schedule(
                name, args.fuzz_seed, cache=cache, telemetry=telemetry))
    elif args.fuzz > 0:
        for name in names:
            report.mismatches.extend(run_fuzz(
                name, args.fuzz, cache=cache, telemetry=telemetry))
    if args.autotune:
        auto_report = run_autotune(seed=args.seed, telemetry=telemetry,
                                   cache=cache)
        report.configs.extend(auto_report.configs)
        report.policies.extend(auto_report.policies)
        report.mismatches.extend(auto_report.mismatches)
    report.counters = telemetry.counters("verify.")

    if report.configs:
        bad = {m.fingerprint for m in report.mismatches}
        rows = [(i, fp.replace(f",seed={args.seed}", ""),
                 "MISMATCH" if fp in bad else "ok")
                for i, fp in enumerate(report.configs)]
        print_table("conformance matrix", ("#", "config", "status"), rows)
        # The same runs named by the runtime configuration they actually
        # executed under — ExecutionPolicy fingerprints, `#` keyed to
        # the matrix table above.
        print_table("execution policies", ("#", "policy"),
                    list(enumerate(report.policies)))

    for mismatch in report.mismatches:
        print()
        print(mismatch.describe())

    counters = report.counters
    print()
    print(f"{len(report.configs)} configs, "
          f"{counters.get('verify.oracle_runs', 0)} oracle runs "
          f"({counters.get('verify.oracle_cache_hits', 0)} cached), "
          f"{counters.get('verify.property_checks', 0)} property checks, "
          f"{counters.get('verify.fuzz_schedules', 0)} fuzz schedules, "
          f"{len(report.mismatches)} mismatches")

    report_path = args.report
    if report_path is None and report.mismatches:
        report_path = Path(DEFAULT_REPORT)
    if report_path is not None:
        report.write(report_path)
        print(f"report written to {report_path}")

    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
