"""Multi-tenant service stress harness: ``python -m repro.harness service``.

Drives the :class:`repro.service.AnalyticsService` front-end at growing
tenant counts over one shared resident sim step and measures the three
claims the service makes:

* **throughput** — completed jobs per second as tenants grow (the
  admission/dispatch overhead stays small relative to kernels);
* **fairness** — Jain's index over per-tenant engine-seconds at the
  largest tenant count (deficit-round-robin keeps it near 1.0; the CI
  gate requires >= ``--min-fairness``, default 0.8);
* **shared residency** — every tier runs against exactly one resident
  shm segment regardless of tenant count, and the hit rate
  (attaches / (attaches + copies)) approaches 1 as tenants grow.

Every job's result is additionally verified bit-exact against a solo
run of the same workload on the same data (the service oracle), so the
benchmark doubles as a correctness stress.  Emits ``BENCH_service.json``
at the repo root; ``bench_diff.py`` gates the machine-stable ratios
(``summary.fairness_index``, ``summary.shared_hit_rate``,
``summary.bit_exact_fraction``).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from ..service import AnalyticsService, JobSpec, execute_workload, job_policy
from ..verify.workloads import get_workload
from .reporting import format_seconds, print_table

RESULT_PATH = Path(__file__).resolve().parents[3] / "BENCH_service.json"

SEED = 2015
#: chunk_size-1 workloads that can all share one generic N(0,1) step.
MIXED_WORKLOADS = ("histogram", "minmax", "grid_aggregation",
                   "moving_average")
DRAIN_TIMEOUT = 300.0


def fairness_index(values: list[float]) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²) — 1.0 is perfectly fair."""
    if not values:
        return 1.0
    arr = np.asarray(values, dtype=np.float64)
    denom = len(arr) * float(np.sum(arr * arr))
    if denom == 0.0:
        return 1.0
    return float(np.sum(arr)) ** 2 / denom


def _solo_oracles(data: np.ndarray) -> dict[str, tuple[dict, dict]]:
    """One solo (result, run.* counters) per mixed workload."""
    oracles = {}
    for name in MIXED_WORKLOADS:
        w = get_workload(name)
        result, counters = execute_workload(w, job_policy(w, None, data),
                                            data)
        oracles[name] = (result, {k: v for k, v in counters.items()
                                  if k.startswith("run.")})
    return oracles


def _bit_exact(oracle: tuple[dict, dict], result: dict,
               counters: dict) -> bool:
    solo_result, solo_run = oracle
    if set(solo_result) != set(result):
        return False
    for name in solo_result:
        e, a = np.asarray(solo_result[name]), np.asarray(result[name])
        if e.shape != a.shape or e.dtype != a.dtype:
            return False
        if not np.array_equal(e, a, equal_nan=np.issubdtype(
                e.dtype, np.floating)):
            return False
    return solo_run == {k: v for k, v in counters.items()
                        if k.startswith("run.")}


def _run_tier(tenants: int, jobs_per_tenant: int, data: np.ndarray,
              workers: int, oracles: dict) -> dict:
    svc = AnalyticsService(
        workers=workers,
        max_queue_depth=tenants * jobs_per_tenant + 8,
        quantum=float(data.size),
    )
    svc.register_step("step0", data)
    handles = []
    try:
        # Queue everything first, then start: throughput measures the
        # dispatch+execute pipeline, not the submission loop.
        for j in range(jobs_per_tenant):
            for t in range(tenants):
                workload = MIXED_WORKLOADS[(t + j) % len(MIXED_WORKLOADS)]
                handles.append(svc.submit(JobSpec(
                    tenant=f"t{t}", workload=workload, step="step0")))
        t0 = time.perf_counter()
        svc.start()
        if not svc.drain(timeout=DRAIN_TIMEOUT):
            raise RuntimeError(
                f"tier tenants={tenants} did not drain in {DRAIN_TIMEOUT}s")
        wall = time.perf_counter() - t0

        exact = sum(
            _bit_exact(oracles[h.spec.workload], h.result(), h.counters)
            for h in handles)
        per_tenant_seconds = [
            svc.telemetry.timer(f"service.tenant.t{t}.engine_seconds").seconds
            for t in range(tenants)]
        snap = svc.telemetry.snapshot()
        return {
            "tenants": tenants,
            "jobs": len(handles),
            "wall_seconds": wall,
            "throughput_jobs_per_s": len(handles) / wall if wall else 0.0,
            "fairness_index": fairness_index(per_tenant_seconds),
            "per_tenant_engine_seconds": per_tenant_seconds,
            "bit_exact_jobs": int(exact),
            "bit_exact_fraction": exact / len(handles),
            "shared_segments": snap["gauges"][
                "engine.residency.shared_segments"],
            "shared_hit_rate": svc.store.hit_rate(),
            "seats_created": snap["counters"].get("service.seats.created", 0),
            "seats_reused": snap["counters"].get("service.seats.reused", 0),
        }
    finally:
        svc.close()


def run(quick: bool = False, *, max_tenants: int | None = None,
        min_fairness: float = 0.8, workers: int = 4) -> dict:
    elements = 2048 if quick else 8192
    jobs_per_tenant = 4 if quick else 8
    tenant_counts = [1, 2, 4] if quick else [1, 2, 4, 8]
    if max_tenants is not None:
        tenant_counts = [t for t in tenant_counts if t <= max_tenants]
        if not tenant_counts or tenant_counts[-1] != max_tenants:
            tenant_counts.append(max_tenants)

    rng = np.random.default_rng(SEED)
    data = np.ascontiguousarray(rng.normal(size=elements))
    oracles = _solo_oracles(data)

    tiers = [_run_tier(t, jobs_per_tenant, data, workers, oracles)
             for t in tenant_counts]
    top = tiers[-1]
    summary = {
        "max_tenants": top["tenants"],
        "fairness_index": top["fairness_index"],
        "shared_hit_rate": top["shared_hit_rate"],
        "bit_exact_fraction": min(t["bit_exact_fraction"] for t in tiers),
        "throughput_jobs_per_s": top["throughput_jobs_per_s"],
    }
    gates = {
        "min_fairness": min_fairness,
        "fairness_ok": top["fairness_index"] >= min_fairness,
        "bit_exact_ok": summary["bit_exact_fraction"] == 1.0,
        "single_segment_ok": all(t["shared_segments"] == 1 for t in tiers),
    }
    gates["ok"] = all(v for k, v in gates.items() if k.endswith("_ok"))
    results = {"tiers": tiers, "summary": summary, "gates": gates,
               "workloads": list(MIXED_WORKLOADS), "elements": elements,
               "workers": workers}

    print_table(
        "Service: throughput / fairness / shared residency vs tenants",
        ["tenants", "jobs", "wall", "jobs/s", "fairness", "hit rate",
         "bit-exact"],
        [[t["tenants"], t["jobs"], format_seconds(t["wall_seconds"]),
          f"{t['throughput_jobs_per_s']:.1f}",
          f"{t['fairness_index']:.3f}", f"{t['shared_hit_rate']:.3f}",
          f"{t['bit_exact_jobs']}/{t['jobs']}"]
         for t in tiers],
    )
    print(f"gates: fairness {top['fairness_index']:.3f} >= {min_fairness} "
          f"-> {gates['fairness_ok']}, bit-exact -> {gates['bit_exact_ok']}, "
          f"one segment/tier -> {gates['single_segment_ok']}")

    RESULT_PATH.write_text(json.dumps(results, indent=2, default=float) + "\n")
    print(f"wrote {RESULT_PATH}")
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness service",
        description="multi-tenant service stress harness")
    parser.add_argument("--quick", action="store_true",
                        help="smaller steps, fewer jobs and tiers")
    parser.add_argument("--tenants", type=int, default=None,
                        help="cap (and force) the largest tenant tier")
    parser.add_argument("--min-fairness", type=float, default=0.8,
                        help="Jain fairness gate at the largest tier")
    parser.add_argument("--workers", type=int, default=4,
                        help="service worker threads")
    args = parser.parse_args(argv)
    results = run(quick=args.quick, max_tenants=args.tenants,
                  min_fairness=args.min_fairness, workers=args.workers)
    return 0 if results["gates"]["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
