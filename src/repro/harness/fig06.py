"""Figure 6: Smart vs. hand-written low-level analytics (+ Section 5.3 LoC).

The paper runs k-means and logistic regression over 1 TB on 8-64 nodes
and finds Smart within 9% (k-means) / indistinguishable (LR) of manual
MPI/OpenMP code, the difference being the serialization of noncontiguous
reduction objects during global combination.

Here the per-node compute is **measured** (Smart's vectorized kernel vs.
the low-level numpy kernel on identical data) and the node axis enters
through the **modeled** synchronization term: Smart serializes its
combination map (measured payload) through a gather+bcast tree, the
low-level code allreduces one contiguous buffer.  The Section 5.3
programmability table is computed from this repository's own sources.
"""

from __future__ import annotations

import time

import numpy as np

from ..analytics import KMeans, LogisticRegression
from ..baselines.lowlevel import lowlevel_kmeans, lowlevel_logreg
from ..core import SchedArgs
from ..core.serialization import WIRE_FORMATS, pack_map, serialize_map
from ..perfmodel import MULTICORE_CLUSTER, collective_seconds
from .programmability import default_rows
from .reporting import format_seconds, print_table


def _measure(fn, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _payloads(com_map) -> dict:
    """Wire bytes for a combination map under each format.

    The Section 5.3 gap is exactly this number: the low-level baseline
    allreduces one contiguous buffer, Smart ships its reduction map.  The
    columnar format packs the map into a keys array plus one structured
    records array, so its payload approaches the baseline's; pickle pays
    per-object overhead on top.
    """
    packed = pack_map(com_map)
    return {
        "pickle": float(len(serialize_map(com_map, "pickle"))),
        "columnar": float(len(serialize_map(com_map, "columnar"))),
        "allreduce_eligible": bool(packed is not None and packed.allreduce_eligible),
    }


def run(
    elements: int = 2_000_000,
    nodes: tuple[int, ...] = (8, 16, 32, 64),
    steps_equivalent: int = 100,
    wire_format: str = "pickle",
) -> dict:
    if wire_format not in WIRE_FORMATS:
        raise ValueError(f"wire_format must be one of {WIRE_FORMATS}")
    rng = np.random.default_rng(17)
    machine = MULTICORE_CLUSTER
    results: dict[str, dict] = {}

    # ---------------- k-means: k=8, 10 iters, 64 dims --------------------
    dims, k, iters = 64, 8, 10
    points = rng.normal(size=(max(elements // dims, 512), dims))
    flat = points.reshape(-1)
    init = points[:k].copy()
    km = KMeans(
        SchedArgs(chunk_size=dims, num_iters=iters, extra_data=init, vectorized=True),
        dims=dims,
    )
    t_smart = _measure(lambda: (km.reset(), km.run(flat)))
    t_low = _measure(lambda: lowlevel_kmeans(flat, init, iters))
    km_payloads = _payloads(km.get_combination_map())
    low_payload = float((k * dims + k) * 8)
    results["kmeans"] = dict(
        smart_compute=t_smart, low_compute=t_low,
        smart_payload=km_payloads[wire_format],
        smart_payload_pickle=km_payloads["pickle"],
        smart_payload_columnar=km_payloads["columnar"],
        allreduce_eligible=km_payloads["allreduce_eligible"],
        low_payload=low_payload, passes=iters,
    )

    # ---------------- logistic regression: 10 iters, 15 dims -------------
    dims, iters = 15, 10
    X = rng.normal(size=(max(elements // (dims + 1), 512), dims))
    y = (rng.random(X.shape[0]) < 0.5).astype(np.float64)
    flat = np.concatenate([X, y[:, None]], axis=1).reshape(-1)
    lr = LogisticRegression(
        SchedArgs(chunk_size=dims + 1, num_iters=iters, vectorized=True), dims=dims
    )
    t_smart = _measure(lambda: (lr.reset(), lr.run(flat)))
    t_low = _measure(lambda: lowlevel_logreg(flat, dims, iters))
    lr_payloads = _payloads(lr.get_combination_map())
    results["logistic_regression"] = dict(
        smart_compute=t_smart, low_compute=t_low,
        smart_payload=lr_payloads[wire_format],
        smart_payload_pickle=lr_payloads["pickle"],
        smart_payload_columnar=lr_payloads["columnar"],
        allreduce_eligible=lr_payloads["allreduce_eligible"],
        low_payload=float((dims + 1) * 8), passes=iters,
    )

    # ---------------- wire-format payload comparison ----------------------
    payload_rows = []
    for app, r in results.items():
        payload_rows.append(
            [
                app,
                f"{r['smart_payload_pickle']:.0f} B",
                f"{r['smart_payload_columnar']:.0f} B",
                f"{r['low_payload']:.0f} B",
                "yes" if r["allreduce_eligible"] else "no",
            ]
        )
    print_table(
        "Section 5.3: global-combination payload per pass "
        f"(sync model uses wire_format={wire_format!r})",
        ["app", "pickle", "columnar", "low-level allreduce", "allreduce-eligible"],
        payload_rows,
    )

    # ---------------- per-node-count overhead table ----------------------
    rows = []
    overheads: dict[str, dict[int, float]] = {}
    for app, r in results.items():
        overheads[app] = {}
        for n in nodes:
            smart_sync = (
                r["passes"]
                * steps_equivalent
                * collective_seconds(machine, n, r["smart_payload"])
            )
            low_sync = (
                r["passes"]
                * steps_equivalent
                * collective_seconds(machine, n, r["low_payload"])
            )
            smart_total = r["smart_compute"] * steps_equivalent + smart_sync
            low_total = r["low_compute"] * steps_equivalent + low_sync
            overhead = 100.0 * (smart_total - low_total) / low_total
            overheads[app][n] = overhead
            rows.append(
                [
                    app,
                    n,
                    format_seconds(smart_total),
                    format_seconds(low_total),
                    f"{overhead:+.1f}%",
                ]
            )
    print_table(
        "Figure 6: Smart vs hand-written low-level analytics "
        "(measured compute x modeled sync; paper: <= 9% overhead)",
        ["app", "nodes", "Smart", "low-level", "Smart overhead"],
        rows,
    )

    # ---------------- Section 5.3 programmability -------------------------
    prog_rows = []
    for row in default_rows():
        prog_rows.append(
            [
                row.app,
                row.lowlevel_total,
                row.lowlevel_parallel,
                row.smart_total,
                row.smart_parallel,
                f"{row.eliminated_or_sequentialized_pct:.0f}%",
            ]
        )
    print_table(
        "Section 5.3 programmability: parallel-aware lines eliminated or "
        "sequentialized by Smart (paper: 55%/69% of its verbose C++ MPI/OpenMP "
        "code; numpy baselines are already compact, so our % is lower)",
        ["app", "low LoC", "low parallel LoC", "Smart LoC", "Smart parallel LoC", "eliminated"],
        prog_rows,
    )
    results["overheads"] = overheads
    results["wire_format"] = wire_format
    return results
