"""Memory-footprint audit: Smart vs mini-Spark on identical workloads.

The paper's Section 5.2 memory claim — Spark holds >90% of a 12 GB node
while Smart's analytics state is ~16 MB — is a statement about *live
analytics state*.  This module measures that quantity for both engines
on the same data: Smart's is the reduction/combination maps (counted
exactly); mini-Spark's is the peak materialized partition plus shuffle
payloads (counted by the engine's own audit hooks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analytics import Histogram, KMeans, LogisticRegression
from ..baselines.minispark import (
    MiniSparkContext,
    spark_histogram,
    spark_kmeans,
    spark_logistic_regression,
)
from ..core import SchedArgs

#: Approximate live bytes of one materialized Python pair in a list
#: (tuple header + two boxed ints/floats + list slot).
PAIR_BYTES = 80


@dataclass(frozen=True)
class AuditRow:
    """Footprint comparison for one application on one dataset."""

    app: str
    input_bytes: int
    smart_state_bytes: int
    spark_peak_pair_bytes: int
    spark_serialized_bytes: int

    @property
    def spark_total_bytes(self) -> int:
        return self.spark_peak_pair_bytes + self.spark_serialized_bytes

    @property
    def ratio(self) -> float:
        """How many times larger mini-Spark's live state is than Smart's."""
        return self.spark_total_bytes / max(self.smart_state_bytes, 1)

    @property
    def smart_fraction_of_input(self) -> float:
        return self.smart_state_bytes / self.input_bytes


def audit_histogram(data: np.ndarray, buckets: int = 100) -> AuditRow:
    smart = Histogram(SchedArgs(vectorized=True), lo=-4, hi=4, num_buckets=buckets)
    smart.run(data)
    with MiniSparkContext(1) as ctx:
        spark_histogram(ctx, data, -4, 4, buckets)
        return AuditRow(
            app="histogram",
            input_bytes=data.nbytes,
            smart_state_bytes=smart.telemetry_snapshot()["counters"]["run.state_nbytes"],
            spark_peak_pair_bytes=PAIR_BYTES * ctx.peak_partition_elements,
            spark_serialized_bytes=ctx.serializer.bytes_serialized,
        )


def audit_kmeans(data: np.ndarray, k: int = 8, dims: int = 8, iters: int = 3) -> AuditRow:
    usable = (data.shape[0] // dims) * dims
    flat = data[:usable]
    init = flat.reshape(-1, dims)[:k].copy()
    smart = KMeans(
        SchedArgs(chunk_size=dims, num_iters=iters, extra_data=init, vectorized=True),
        dims=dims,
    )
    smart.run(flat)
    with MiniSparkContext(1) as ctx:
        spark_kmeans(ctx, flat, init, iters)
        return AuditRow(
            app="kmeans",
            input_bytes=flat.nbytes,
            smart_state_bytes=smart.telemetry_snapshot()["counters"]["run.state_nbytes"],
            spark_peak_pair_bytes=PAIR_BYTES * ctx.peak_partition_elements,
            spark_serialized_bytes=ctx.serializer.bytes_serialized,
        )


def audit_logreg(data: np.ndarray, dims: int = 15, iters: int = 3) -> AuditRow:
    row = dims + 1
    usable = (data.shape[0] // row) * row
    flat = data[:usable].copy()
    flat.reshape(-1, row)[:, dims] = flat.reshape(-1, row)[:, dims] > 0
    smart = LogisticRegression(
        SchedArgs(chunk_size=row, num_iters=iters, vectorized=True), dims=dims
    )
    smart.run(flat)
    with MiniSparkContext(1) as ctx:
        spark_logistic_regression(ctx, flat, dims, iters)
        return AuditRow(
            app="logistic_regression",
            input_bytes=flat.nbytes,
            smart_state_bytes=smart.telemetry_snapshot()["counters"]["run.state_nbytes"],
            spark_peak_pair_bytes=PAIR_BYTES * ctx.peak_partition_elements,
            spark_serialized_bytes=ctx.serializer.bytes_serialized,
        )


def audit_all(elements: int = 20_000, seed: int = 13) -> list[AuditRow]:
    """The Section-5.2 footprint comparison across the three applications."""
    data = np.random.default_rng(seed).normal(size=elements)
    return [audit_histogram(data), audit_kmeans(data), audit_logreg(data)]
