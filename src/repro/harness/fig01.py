"""Figure 1: in-situ vs. offline k-means on Heat3D (time sharing).

The paper processes 1 TB on 64 cores, varying the k-means iteration
count (1..10); offline analytics first writes every time-step to disk and
reads it back, so its total time carries the I/O overhead bar.  Here the
same pipeline runs at this host's scale with *real* (fsync'ed) file I/O;
the in-situ/offline ratio shrinks as iterations grow, exactly the
figure's shape.
"""

from __future__ import annotations

import numpy as np

from ..analytics import KMeans
from ..baselines.offline import OfflineDriver
from ..core import SchedArgs, TimeSharingDriver
from ..sim import Heat3D
from .reporting import format_ratio, format_seconds, print_table

DIMS = 4
K = 8


def _make_kmeans(num_iters: int, seed_data: np.ndarray) -> KMeans:
    init = seed_data.reshape(-1, DIMS)[:K].copy()
    args = SchedArgs(
        chunk_size=DIMS, num_iters=num_iters, extra_data=init, vectorized=True
    )
    return KMeans(args, dims=DIMS)


def run(
    iteration_counts: tuple[int, ...] = (1, 4, 7, 10),
    grid: tuple[int, int, int] = (24, 48, 48),
    num_steps: int = 8,
) -> dict:
    """Run both pipelines per iteration count; print the figure's rows."""
    rows = []
    data: dict[int, dict[str, float]] = {}
    probe = Heat3D(grid)
    seed_partition = probe.advance().copy()

    for iters in iteration_counts:
        insitu = TimeSharingDriver(Heat3D(grid), _make_kmeans(iters, seed_partition))
        r_in = insitu.run(num_steps)

        offline = OfflineDriver(Heat3D(grid), _make_kmeans(iters, seed_partition))
        r_off = offline.run(num_steps)

        ratio = r_off.total / r_in.total_seconds
        data[iters] = {
            "insitu_total": r_in.total_seconds,
            "offline_total": r_off.total,
            "offline_io": r_off.io_overhead,
            "speedup": ratio,
        }
        rows.append(
            [
                iters,
                format_seconds(r_in.total_seconds),
                format_seconds(r_off.total),
                format_seconds(r_off.io_overhead),
                format_ratio(ratio),
            ]
        )

    print_table(
        "Figure 1: In-situ vs offline k-means on Heat3D "
        f"(grid {grid}, {num_steps} steps, real fsync'ed I/O)",
        ["k-means iters", "in-situ total", "offline total", "offline I/O", "in-situ speedup"],
        rows,
    )
    best = max(v["speedup"] for v in data.values())
    print(f"max measured in-situ speedup: {best:.1f}x (paper: up to 10.4x at 1 TB)")
    data["modeled"] = _modeled_paper_scale(iteration_counts)
    return data


def _modeled_paper_scale(
    iteration_counts: tuple[int, ...],
    pfs_bandwidth_per_node: float = 50e6,
    total_bytes: float = 1e12,
    num_steps: int = 100,
    nodes: int = 8,
) -> dict:
    """The paper-scale ratio: 1 TB through a shared parallel filesystem.

    At this host's megabyte scale the local page cache hides most I/O
    cost; the paper's store-first-analyze-after baseline pushed 1 TB
    through a cluster PFS (~50 MB/s effective per node under
    contention), written once and read once.  Replaying the calibrated
    compute costs against that I/O volume reproduces the 10.4x headline.
    """
    from ..perfmodel import MULTICORE_CLUSTER, NodeWorkload, model_time_sharing
    from .profiles import app_model, sim_model

    machine = MULTICORE_CLUSTER
    heat3d = sim_model("heat3d")
    workload = NodeWorkload.from_total(total_bytes, num_steps, nodes)
    io_seconds = 2.0 * (total_bytes / nodes) / pfs_bandwidth_per_node
    rows, series = [], {}
    for iters in iteration_counts:
        app = app_model("kmeans", passes=iters)
        insitu = model_time_sharing(machine, nodes, 8, workload, heat3d, app)
        t_in = insitu.total_seconds
        t_off = t_in + io_seconds
        series[iters] = dict(insitu=t_in, offline=t_off, speedup=t_off / t_in)
        rows.append(
            [iters, format_seconds(t_in), format_seconds(t_off),
             format_seconds(io_seconds), format_ratio(t_off / t_in)]
        )
    print_table(
        "Figure 1 at paper scale (modeled: 1 TB, 64 cores, contended PFS at "
        "50 MB/s/node; paper: up to 10.4x)",
        ["k-means iters", "in-situ total", "offline total", "offline I/O", "in-situ speedup"],
        rows,
    )
    return series
