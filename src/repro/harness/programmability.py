"""Programmability comparison (paper Section 5.3).

The paper reports that, for k-means and logistic regression, 55% and 69%
of the lines of the hand-written OpenMP/MPI implementations are either
eliminated or converted into sequential code by Smart.  We measure the
analogous quantity on this repository's own code: for each application,
count the effective source lines of the low-level implementation and
classify the Smart version's lines into *parallel-aware* (anything that
touches the communicator, threads, partitions) and *sequential*
(the user callbacks, which are plain sequential code).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable

PARALLEL_MARKERS = (
    "comm",
    "Allreduce",
    "allreduce",
    "bcast",
    "gather",
    "scatter",
    "send(",
    "recv(",
    "barrier",
    "thread",
    "rank",
    "partition",
    "sendbuf",
    "recvbuf",
)


def effective_lines(obj: Callable | type) -> list[str]:
    """Source lines of ``obj`` minus blanks, comments, and docstrings."""
    source = inspect.getsource(obj)
    lines: list[str] = []
    in_doc = False
    for raw in source.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if in_doc:
            if line.endswith('"""') or line.endswith("'''"):
                in_doc = False
            continue
        if line.startswith(('"""', "'''")):
            # Single-line docstring closes on the same line.
            if not (len(line) > 3 and (line.endswith('"""') or line.endswith("'''"))):
                in_doc = True
            continue
        lines.append(line)
    return lines


def parallel_lines(lines: list[str]) -> list[str]:
    """Lines that mention parallelization machinery."""
    return [l for l in lines if any(marker in l for marker in PARALLEL_MARKERS)]


@dataclass
class ProgrammabilityRow:
    """LoC accounting for one application."""

    app: str
    lowlevel_total: int
    lowlevel_parallel: int
    smart_total: int
    smart_parallel: int

    @property
    def eliminated_or_sequentialized_pct(self) -> float:
        """Share of the low-level parallel-aware lines Smart removes or
        turns sequential (the paper's 55% / 69% metric)."""
        if self.lowlevel_parallel == 0:
            raise ValueError("low-level implementation has no parallel lines")
        return (
            100.0
            * max(self.lowlevel_parallel - self.smart_parallel, 0)
            / self.lowlevel_parallel
        )

    @property
    def smart_sequential(self) -> int:
        return self.smart_total - self.smart_parallel


def compare(app_name: str, lowlevel_fn: Callable, smart_cls: type) -> ProgrammabilityRow:
    low = effective_lines(lowlevel_fn)
    smart = effective_lines(smart_cls)
    return ProgrammabilityRow(
        app=app_name,
        lowlevel_total=len(low),
        lowlevel_parallel=len(parallel_lines(low)),
        smart_total=len(smart),
        smart_parallel=len(parallel_lines(smart)),
    )


def default_rows() -> list[ProgrammabilityRow]:
    """The paper's two Section-5.3 applications."""
    from ..analytics import KMeans, LogisticRegression
    from ..baselines.lowlevel import lowlevel_kmeans, lowlevel_logreg

    return [
        compare("kmeans", lowlevel_kmeans, KMeans),
        compare("logistic_regression", lowlevel_logreg, LogisticRegression),
    ]
