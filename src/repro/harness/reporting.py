"""ASCII table/series reporting for the experiment harness.

Every figure harness prints the same rows/series the paper's figure
shows, via these helpers, and returns the underlying numbers for tests
and EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Sequence


def format_seconds(seconds: float) -> str:
    if math.isinf(seconds):
        return "CRASH"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 120:
        return f"{seconds:.2f}s"
    return f"{seconds / 60:.1f}min"


def format_bytes(nbytes: float) -> str:
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    raise AssertionError("unreachable")


def format_ratio(ratio: float) -> str:
    if math.isinf(ratio):
        return "inf"
    return f"{ratio:.2f}x"


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    min_width: int = 8,
) -> None:
    """Print an aligned ASCII table."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [max(min_width, len(h)) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    bar = "-+-".join("-" * w for w in widths)
    print(f"\n== {title} ==")
    print(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print(bar)
    for row in rendered:
        print(" | ".join(c.ljust(w) for c, w in zip(row, widths)))


def print_series(title: str, x_label: str, series: dict[str, dict[Any, float]]) -> None:
    """Print multiple named series sharing an x axis (a line-plot figure)."""
    xs: list[Any] = sorted({x for points in series.values() for x in points})
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row: list[Any] = [x]
        for name in series:
            value = series[name].get(x)
            row.append("-" if value is None else format_seconds(value))
        rows.append(row)
    print_table(title, headers, rows)
