"""Experiment harness: regenerates every figure of the paper's evaluation.

``python -m repro.harness fig7`` prints Figure 7's rows; ``all`` runs the
whole evaluation.  Each ``figNN`` module documents what is measured on
this host versus replayed through the calibrated cluster model.
"""

from .figures import FIGURES, run_all, run_figure
from .programmability import ProgrammabilityRow, compare, default_rows
from .reporting import (
    format_bytes,
    format_ratio,
    format_seconds,
    print_series,
    print_table,
)

__all__ = [
    "FIGURES",
    "ProgrammabilityRow",
    "compare",
    "default_rows",
    "format_bytes",
    "format_ratio",
    "format_seconds",
    "print_series",
    "print_table",
    "run_all",
    "run_figure",
]
