"""Calibrated model profiles shared by the figure harnesses.

Calibration (running this repository's kernels) happens once per process
and is cached.  The memory factors below are the paper-scale working-set
parameters discussed in DESIGN.md/EXPERIMENTS.md: they describe the
*original* simulations' footprints (which the paper's crash points imply),
not our Python proxies' minimal state.
"""

from __future__ import annotations

from functools import lru_cache

from ..perfmodel import (
    AnalyticsModel,
    KernelCost,
    SimulationModel,
    calibrate_analytics,
    calibrate_simulations,
)

#: Default working-set factors (working set = factor x per-step output).
#: These describe our Python proxies' honest footprints: Heat3D keeps two
#: field buffers plus halo staging; the Lulesh proxy keeps four fields
#: plus transients.
HEAT3D_MEMORY_FACTOR = 3.0
LULESH_MEMORY_FACTOR = 4.5

#: Figure-9 fitted footprints of the paper's *original* codes.  Fig. 9a's
#: crash at a 2 GB/node step on a 12 GB node implies the real Heat3D (plus
#: the extra copy) holds ~6.5 step-sized arrays; Fig. 9b's cliff at edge
#: 233 implies real LULESH's ~dozens of element/node fields, ghost zones
#: and comm buffers total ~125x its single-field output.  Fitted once,
#: stated in EXPERIMENTS.md.
HEAT3D_MEMORY_FACTOR_FIG9 = 5.05
LULESH_MEMORY_FACTOR_FIG9 = 125.1

#: Fig. 9 per-step *compute* of the original codes relative to our
#: minimal proxies.  The paper's Fig. 9a per-step times (~5-7 s at a
#: 0.6 GB step) are ~25x our stencil proxy's; real LULESH runs ~50x more
#: flops per element than our four-field update.  Without these factors
#: the modeled steps are so fast that the extra memcpy alone dominates,
#: which is not what the paper measured.  Fitted once, stated in
#: EXPERIMENTS.md.
HEAT3D_COMPUTE_FACTOR_FIG9 = 25.0
LULESH_COMPUTE_FACTOR_FIG9 = 50.0

#: Fig. 11a: Heat3D footprint there (smaller run, 300 GB) fitted so the
#: trigger-less moving average crashes at a 1 GB/node step.
HEAT3D_MEMORY_FACTOR_FIG11 = 5.0

#: In-memory bytes of one window reduction object (C++ map node + key +
#: WinObj) when early emission is disabled — with the factor above, puts
#: the Fig. 11a crash at a 1 GB/node step.
WINDOW_OBJ_BYTES = 64.0

#: Same for the holistic moving-median object (map node + two vectors with
#: capacity slack + output slot); fitted to place Fig. 11b's blow-up at
#: edge 200.
MEDIAN_OBJ_BYTES = 1600.0


@lru_cache(maxsize=None)
def analytics_costs() -> dict[str, KernelCost]:
    return calibrate_analytics()


@lru_cache(maxsize=None)
def simulation_costs() -> dict[str, KernelCost]:
    return calibrate_simulations()


@lru_cache(maxsize=None)
def sim_model(name: str, memory_factor: float | None = None) -> SimulationModel:
    """Calibrated simulation model; ``memory_factor`` overrides the default
    (figures that sweep memory pressure pass their fitted factor)."""
    cost = simulation_costs()[name]
    factor = (
        memory_factor
        if memory_factor is not None
        else {
            "heat3d": HEAT3D_MEMORY_FACTOR,
            "lulesh": LULESH_MEMORY_FACTOR,
            "emulator": 1.0,
        }[name]
    )
    return SimulationModel(
        name=name,
        seconds_per_element=cost.seconds_per_element,
        memory_factor=factor,
        halo_bytes_per_step=0.0,
    )


#: Fitted thread-scaling saturation caps (documented in EXPERIMENTS.md):
#: ``speedup(t) = t / (1 + t / sat)``.  The first five applications are
#: stream-bound scans/folds that saturate node memory bandwidth early;
#: the window applications are compute-bound and saturate later.  Caps
#: are fitted so Fig. 8's blended (simulation + analytics) efficiencies
#: land near the paper's 59% / 79% averages at 8 threads.
SCAN_SATURATION = 2.8
WINDOW_SATURATION = 10.0


def app_model(name: str, passes: int = 1) -> AnalyticsModel:
    """AnalyticsModel from the calibrated cost of application ``name``."""
    cost = analytics_costs()[name]
    saturation = WINDOW_SATURATION if name in WINDOW_FOUR else SCAN_SATURATION
    return AnalyticsModel(
        name=name,
        seconds_per_element=cost.seconds_per_element,
        passes=passes,
        sync_payload_bytes=cost.sync_bytes,
        state_bytes_fixed=cost.state_bytes,
        saturation_speedup=saturation,
    )


#: Section 5.4 parameters: app name -> passes per time-step (num_iters).
SECTION54_PASSES = {
    "grid_aggregation": 1,
    "histogram": 1,
    "mutual_information": 1,
    "logistic_regression": 3,
    "kmeans": 10,
    "moving_average": 1,
    "moving_median": 1,
    "kernel_density": 1,
    "savgol": 1,
}

FIRST_FIVE = [
    "grid_aggregation",
    "histogram",
    "mutual_information",
    "logistic_regression",
    "kmeans",
]
WINDOW_FOUR = ["moving_average", "moving_median", "kernel_density", "savgol"]
ALL_NINE = FIRST_FIVE + WINDOW_FOUR
