"""In-transit chaos harness: the elastic staging tier under fire.

Runs the histogram analytic through :class:`~repro.core.ElasticTier`
(staging workers as separate supervised OS processes over the framed
TCP protocol) under deterministic fault schedules, and checks the
elastic recovery contract end to end:

* ``retry`` after a staging-worker **kill mid-step** recovers bit-exactly
  against an unfaulted local run (snapshot + ordered replay);
* a **hung** worker (heartbeats still flowing, acks stalled) is detected
  by ack-progress supervision and recovered bit-exactly;
* ``degrade`` excludes the dead worker, keeps its last consistency
  snapshot, and conserves mass exactly: observed mass plus the recorded
  ``elastic.elements_lost`` equals the submitted mass;
* the **wire path itself is cheap**: a full SPMD histogram over the TCP
  backend with an installed-but-empty fault plan stays within 1.3x of
  the same run over the in-process backend.

Emits ``BENCH_intransit.json`` at the repo root.  Registered as
``intransit`` in the figure registry:
``python -m repro.harness intransit``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from ..analytics.histogram import Histogram
from ..comm import spmd_launch
from ..core import ElasticTier, SchedArgs
from ..faults import FaultPlan, FaultPolicy, FaultSpec
from ..telemetry import Recorder
from .reporting import format_seconds, print_table

RESULT_PATH = Path(__file__).resolve().parents[3] / "BENCH_intransit.json"

SEED = 2015
BUCKETS = 32
#: Acceptance bound: empty-plan TCP overhead vs the in-process backend.
TCP_OVERHEAD_BOUND = 1.3


def _dataset(n_points: int) -> np.ndarray:
    rng = np.random.default_rng(SEED)
    return rng.normal(size=n_points)


def _factory():
    args = SchedArgs(num_threads=1)
    return Histogram(args, None, lo=-4.0, hi=4.0, num_buckets=BUCKETS)


def _counts(result) -> np.ndarray:
    return np.array([obj.count for _, obj in result.sorted_items()],
                    dtype=np.int64)


def _baseline(partitions: list[np.ndarray]) -> np.ndarray:
    """Unfaulted local reference: same partition sequence, no tier."""
    sched = _factory()
    sched.set_global_combination(False)
    with sched:
        for part in partitions:
            sched.run(part)
        counts = _counts(sched.get_combination_map())
    return counts


def _run_tier(
    partitions: list[np.ndarray],
    *,
    workers: int,
    policy,
    fault_plan: FaultPlan | None,
    telemetry: Recorder,
    snapshot_every: int = 4,
    worker_timeout: float = 5.0,
) -> np.ndarray:
    with ElasticTier(
        _factory,
        workers,
        policy=policy,
        fault_plan=fault_plan,
        telemetry=telemetry,
        snapshot_every=snapshot_every,
        worker_timeout=worker_timeout,
    ) as tier:
        for part in partitions:
            tier.submit(part)
        result = tier.drain()
    return _counts(result)


def _staging_scenarios(n_points: int, n_parts: int) -> dict:
    """Kill / hang / degrade a staging worker; check the exact contract."""
    points = _dataset(n_points)
    partitions = [np.ascontiguousarray(p) for p in np.array_split(points, n_parts)]
    base = _baseline(partitions)
    scenarios: dict[str, dict] = {}

    # Worker 1 killed mid-step (os._exit at its 3rd data frame): retry
    # respawns it, restores the last snapshot, replays the logged frames
    # in order — bit-exact against the unfaulted run.
    for name, spec in (
        ("staging_kill_retry",
         FaultSpec("comm", "crash", at_call=3, target=1)),
        ("staging_hang_retry",
         FaultSpec("comm", "delay", at_call=3, target=1, seconds=30.0)),
        ("staging_disconnect_retry",
         FaultSpec("network", "disconnect", at_call=3, target=1)),
    ):
        telemetry = Recorder()
        t0 = time.perf_counter()
        counts = _run_tier(
            partitions,
            workers=3,
            policy=FaultPolicy.retry(backoff=0.01, max_attempts=5),
            fault_plan=FaultPlan([spec], seed=SEED),
            telemetry=telemetry,
            worker_timeout=1.0,
        )
        elapsed = time.perf_counter() - t0
        snap = telemetry.snapshot()
        bit_exact = bool(np.array_equal(counts, base))
        scenarios[name] = {
            "bit_exact": bit_exact,
            "retries": snap["counters"].get("faults.retries", 0),
            "elapsed_seconds": elapsed,
            "counters": {k: v for k, v in snap["counters"].items()
                         if k.startswith(("faults.", "elastic."))},
        }
        assert bit_exact, f"{name}: retry must be bit-exact vs unfaulted run"
        assert snap["counters"].get("faults.retries", 0) >= 1

    # Degrade: the dead worker's last snapshot stands, post-snapshot
    # frames are dropped with exact accounting.
    telemetry = Recorder()
    counts = _run_tier(
        partitions,
        workers=3,
        policy=FaultPolicy.degrade(),
        fault_plan=FaultPlan(
            [FaultSpec("comm", "crash", at_call=3, target=1)], seed=SEED
        ),
        telemetry=telemetry,
        worker_timeout=1.0,
    )
    snap = telemetry.snapshot()
    lost = snap["counters"].get("elastic.elements_lost", 0)
    mass, base_mass = int(counts.sum()), int(base.sum())
    scenarios["staging_kill_degrade"] = {
        "observed_mass": mass,
        "submitted_mass": base_mass,
        "elements_lost": lost,
        "mass_conserved": bool(mass + lost == base_mass),
        "counters": {k: v for k, v in snap["counters"].items()
                     if k.startswith(("faults.", "elastic."))},
    }
    assert mass + lost == base_mass, (
        "degrade must account for every dropped element exactly")
    assert lost > 0, "the injected kill must actually drop frames"
    return scenarios


def _elastic_scale_scenario(n_points: int, n_parts: int) -> dict:
    """Grow then shrink the pool mid-stream; totals stay bit-exact."""
    points = _dataset(n_points)
    partitions = [np.ascontiguousarray(p) for p in np.array_split(points, n_parts)]
    base = _baseline(partitions)
    telemetry = Recorder()
    with ElasticTier(_factory, 2, telemetry=telemetry) as tier:
        third = len(partitions) // 3
        for part in partitions[:third]:
            tier.submit(part)
        tier.scale_to(4)  # grow between steps
        for part in partitions[third: 2 * third]:
            tier.submit(part)
        tier.scale_to(2)  # shrink: retired workers drain their maps
        for part in partitions[2 * third:]:
            tier.submit(part)
        counts = _counts(tier.drain())
    bit_exact = bool(np.array_equal(counts, base))
    assert bit_exact, "scale up/down must not change the result"
    return {
        "bit_exact": bit_exact,
        "counters": {k: v for k, v in telemetry.snapshot()["counters"].items()
                     if k.startswith("elastic.")},
    }


def _hist_rank(comm, part):
    sched = Histogram(SchedArgs(num_threads=1), comm,
                      lo=-4.0, hi=4.0, num_buckets=BUCKETS)
    out = np.zeros(BUCKETS)
    with sched:
        sched.run(part, out)
    return out


def _tcp_overhead(n_points: int, n_ranks: int, repeats: int) -> dict:
    """Wire cost: same SPMD histogram over sim threads vs real sockets,
    both with an installed-but-empty fault plan."""
    points = _dataset(n_points)
    args = [(p,) for p in np.array_split(points, n_ranks)]

    def timed(backend: str) -> tuple[float, np.ndarray]:
        best = np.inf
        outs = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            outs = spmd_launch(n_ranks, _hist_rank, args,
                               fault_plan=FaultPlan(),
                               comm_backend=backend)
            best = min(best, time.perf_counter() - t0)
        return best, outs[0]

    local_seconds, local_out = timed("sim")
    tcp_seconds, tcp_out = timed("tcp")
    assert np.array_equal(local_out, tcp_out), (
        "tcp backend must reproduce the local result bit-exactly")
    ratio = tcp_seconds / local_seconds if local_seconds else float("nan")
    return {
        "local_seconds": local_seconds,
        "tcp_seconds": tcp_seconds,
        "overhead_ratio": ratio,
        "bound": TCP_OVERHEAD_BOUND,
        "within_bound": bool(ratio <= TCP_OVERHEAD_BOUND),
    }


def run(quick: bool = False) -> dict:
    n_points = 24_000 if quick else 240_000
    n_parts = 12
    results = {
        "staging": _staging_scenarios(n_points=n_points, n_parts=n_parts),
        "elastic_scale": _elastic_scale_scenario(
            n_points=n_points, n_parts=n_parts),
        "tcp_overhead": _tcp_overhead(
            n_points=n_points, n_ranks=3, repeats=2 if quick else 5),
    }

    rows = []
    for name, info in results["staging"].items():
        rows.append([
            name,
            info.get("bit_exact", info.get("mass_conserved", "-")),
            format_seconds(info["elapsed_seconds"])
            if "elapsed_seconds" in info else "-",
        ])
    rows.append(["elastic_scale", results["elastic_scale"]["bit_exact"], "-"])
    print_table(
        "In-transit chaos: elastic tier recovery by policy",
        ["scenario", "exact", "elapsed"],
        rows,
    )
    overhead = results["tcp_overhead"]
    print(
        f"tcp overhead when healthy (empty plan): "
        f"{overhead['overhead_ratio']:.3f}x "
        f"({format_seconds(overhead['local_seconds'])} -> "
        f"{format_seconds(overhead['tcp_seconds'])}), "
        f"bound {TCP_OVERHEAD_BOUND}x"
    )

    RESULT_PATH.write_text(json.dumps(results, indent=2, default=float) + "\n")
    print(f"wrote {RESULT_PATH}")
    return results


if __name__ == "__main__":
    run()
