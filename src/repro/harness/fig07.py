"""Figure 7: node scaling on Heat3D (4-32 nodes, 8 threads, 1 TB, 100 steps).

The paper reports 93% average parallel efficiency across the nine
applications, with super-linear blips where adding nodes relieves memory
pressure.  This harness replays the calibrated per-element costs through
the cluster model over the paper's exact sweep.
"""

from __future__ import annotations

from ..perfmodel import MULTICORE_CLUSTER, NodeWorkload, model_time_sharing, parallel_efficiency
from .profiles import ALL_NINE, SECTION54_PASSES, app_model, sim_model
from .reporting import format_seconds, print_table

TOTAL_BYTES = 1e12  # 1 TB
NUM_STEPS = 100
THREADS = 8


def run(nodes: tuple[int, ...] = (4, 8, 16, 32)) -> dict:
    machine = MULTICORE_CLUSTER
    heat3d = sim_model("heat3d")
    results: dict[str, dict[int, float]] = {}
    efficiencies: dict[str, dict[int, float]] = {}

    for app_name in ALL_NINE:
        app = app_model(app_name, passes=SECTION54_PASSES[app_name])
        times: dict[int, float] = {}
        for n in nodes:
            workload = NodeWorkload.from_total(TOTAL_BYTES, NUM_STEPS, n)
            pred = model_time_sharing(machine, n, THREADS, workload, heat3d, app)
            times[n] = pred.total_seconds
        results[app_name] = times
        base = nodes[0]
        efficiencies[app_name] = {
            n: parallel_efficiency(base, times[base], n, times[n]) for n in nodes
        }

    rows = []
    for app_name in ALL_NINE:
        row: list = [app_name]
        for n in nodes:
            row.append(format_seconds(results[app_name][n]))
        for n in nodes:
            row.append(f"{efficiencies[app_name][n]:.2f}")
        rows.append(row)
    headers = (
        ["app"]
        + [f"T({n}n)" for n in nodes]
        + [f"eff({n}n)" for n in nodes]
    )
    print_table(
        "Figure 7: in-situ processing time scaling nodes on Heat3D "
        f"(modeled from calibrated kernels; 1 TB, {NUM_STEPS} steps, 8 threads)",
        headers,
        rows,
    )
    all_eff = [
        efficiencies[a][n] for a in ALL_NINE for n in nodes if n != nodes[0]
    ]
    avg = sum(all_eff) / len(all_eff)
    print(f"average parallel efficiency: {avg:.2%} (paper: 93%)")

    # Super-linearity demonstration (paper: "an extra speedup caused by
    # the reduction in memory requirements per node"): the same sweep with
    # a memory-pressured baseline configuration (the original Heat3D's
    # ~5x working set, Fig. 9a's fitted factor).
    pressured_sim = sim_model("heat3d", memory_factor=5.0)
    app = app_model("histogram")
    pressured: dict[int, float] = {}
    rows2 = []
    for n in nodes:
        workload = NodeWorkload.from_total(TOTAL_BYTES, NUM_STEPS, n)
        pred = model_time_sharing(machine, n, THREADS, workload, pressured_sim, app)
        pressured[n] = pred.total_seconds
    for n in nodes[1:]:
        half_ratio = pressured[n // 2] / pressured[n] if n // 2 in pressured else None
        rows2.append(
            [
                n,
                format_seconds(pressured[n]),
                f"{half_ratio:.2f}" if half_ratio else "-",
            ]
        )
    print_table(
        "Figure 7 super-linearity demo: histogram with a memory-pressured "
        "baseline (doubling nodes gains >2x while pressure persists)",
        ["nodes", "total time", "speedup vs half the nodes"],
        rows2,
    )
    return {
        "times": results,
        "efficiency": efficiencies,
        "average_efficiency": avg,
        "pressured": pressured,
    }
