"""Registry of experiment harnesses: one entry per paper figure."""

from __future__ import annotations

from typing import Callable

from . import (
    chaos,
    fig01,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    intransit,
    service,
)

FIGURES: dict[str, tuple[Callable[[], dict], str]] = {
    "fig1": (fig01.run, "in-situ vs offline k-means on Heat3D (measured, real I/O)"),
    "fig5": (fig05.run, "Smart vs mini-Spark: LR / k-means / histogram (measured + thread model)"),
    "fig6": (fig06.run, "Smart vs hand-written low-level analytics + LoC table"),
    "fig7": (fig07.run, "node scaling, Heat3D, nine applications (modeled)"),
    "fig8": (fig08.run, "thread scaling, Lulesh, nine applications (modeled)"),
    "fig9": (fig09.run, "time-sharing zero-copy vs extra-copy (modeled + measured micro)"),
    "fig10": (fig10.run, "time sharing vs space sharing on Xeon Phi (modeled + functional check)"),
    "fig11": (fig11.run, "early emission of reduction objects (measured + modeled)"),
    "chaos": (chaos.run, "seeded fault injection: retry bit-exactness, degrade, checkpoint fallback"),
    "intransit": (intransit.run, "elastic in-transit tier over TCP: staging kill/hang recovery, scaling, wire overhead"),
    "service": (service.run, "multi-tenant job service: throughput/fairness/shared residency vs tenant count"),
}


def run_figure(name: str) -> dict:
    """Run one figure harness by registry name (e.g. ``fig7``)."""
    key = name.lower()
    if key not in FIGURES:
        raise KeyError(
            f"unknown figure {name!r}; available: {', '.join(sorted(FIGURES))}"
        )
    fn, _ = FIGURES[key]
    return fn()


def run_all() -> dict[str, dict]:
    """Run every figure harness in order."""
    return {name: fn() for name, (fn, _) in FIGURES.items()}
