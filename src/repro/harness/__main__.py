"""Command-line entry point: ``python -m repro.harness [fig1|...|fig11|all]``."""

from __future__ import annotations

import sys

from .figures import FIGURES, run_all, run_figure


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if not args or args[0] in ("-h", "--help"):
        print("usage: python -m repro.harness <figure> [figure ...] | all")
        print("\navailable figures:")
        for name, (_, description) in FIGURES.items():
            print(f"  {name:7s} {description}")
        return 0
    if args == ["all"]:
        run_all()
        return 0
    for name in args:
        run_figure(name)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
