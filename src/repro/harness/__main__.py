"""Command-line entry point: ``python -m repro.harness [fig1|...|fig11|all]``."""

from __future__ import annotations

import sys

from .figures import FIGURES, run_all, run_figure


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if args and args[0] == "conform":
        from .conform import main as conform_main

        return conform_main(args[1:])
    if args and args[0] == "service" and len(args) > 1:
        # Bare ``service`` runs via the figure registry; any extra
        # arguments route through the harness's own CLI (gates, tiers).
        from .service import main as service_main

        return service_main(args[1:])
    if not args or args[0] in ("-h", "--help"):
        print("usage: python -m repro.harness <figure> [figure ...] | all")
        print("       python -m repro.harness conform [--smoke|--full] ...")
        print("       python -m repro.harness service [--quick] "
              "[--tenants N] [--min-fairness F] ...")
        print("\navailable figures:")
        for name, (_, description) in FIGURES.items():
            print(f"  {name:7s} {description}")
        print("\nconform: differential conformance matrix vs the serial "
              "oracle (see conform --help)")
        return 0
    if args == ["all"]:
        run_all()
        return 0
    for name in args:
        run_figure(name)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
