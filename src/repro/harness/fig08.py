"""Figure 8: thread scaling on Lulesh (64 nodes, 1-8 threads, 1 TB, 93 steps).

The paper reports 59% average parallel efficiency for the first five
applications and 79% for the four window-based ones — the window
applications being more compute-intensive, synchronization weighs less
and they scale better.  The model reproduces that separation directly
from the calibrated per-element costs.
"""

from __future__ import annotations

import numpy as np

from ..analytics import Histogram
from ..core import SchedArgs
from ..perfmodel import MULTICORE_CLUSTER, NodeWorkload, model_time_sharing
from .profiles import ALL_NINE, FIRST_FIVE, SECTION54_PASSES, WINDOW_FOUR, app_model, sim_model
from .reporting import format_seconds, print_table

TOTAL_BYTES = 1e12
NUM_STEPS = 93
NODES = 64


def run(threads: tuple[int, ...] = (1, 2, 4, 8)) -> dict:
    machine = MULTICORE_CLUSTER
    lulesh = sim_model("lulesh")
    workload = NodeWorkload.from_total(TOTAL_BYTES, NUM_STEPS, NODES)
    times: dict[str, dict[int, float]] = {}
    eff: dict[str, dict[int, float]] = {}

    for app_name in ALL_NINE:
        app = app_model(app_name, passes=SECTION54_PASSES[app_name])
        times[app_name] = {}
        for t in threads:
            pred = model_time_sharing(machine, NODES, t, workload, lulesh, app)
            times[app_name][t] = pred.total_seconds
        base = threads[0]
        eff[app_name] = {
            t: times[app_name][base] / (times[app_name][t] * t) for t in threads
        }

    rows = []
    for app_name in ALL_NINE:
        row: list = [app_name]
        row.extend(format_seconds(times[app_name][t]) for t in threads)
        row.extend(f"{eff[app_name][t]:.2f}" for t in threads)
        rows.append(row)
    headers = ["app"] + [f"T({t}t)" for t in threads] + [f"eff({t}t)" for t in threads]
    print_table(
        "Figure 8: in-situ processing time scaling threads on Lulesh "
        f"(modeled; 1 TB, {NUM_STEPS} steps, {NODES} nodes)",
        headers,
        rows,
    )

    t_max = threads[-1]
    first_five = sum(eff[a][t_max] for a in FIRST_FIVE) / len(FIRST_FIVE)
    window = sum(eff[a][t_max] for a in WINDOW_FOUR) / len(WINDOW_FOUR)
    print(
        f"avg efficiency at {t_max} threads - first five: {first_five:.0%} "
        f"(paper 59%), window-based: {window:.0%} (paper 79%)"
    )
    return {
        "times": times,
        "efficiency": eff,
        "first_five_avg": first_five,
        "window_avg": window,
    }


def run_measured(
    threads: tuple[int, ...] = (1, 2, 4),
    engines: tuple[str, ...] = ("serial", "thread", "process"),
    elements: int = 200_000,
    seed: int = 8,
) -> dict:
    """Measured companion to the modeled figure: the same thread sweep,
    but on this host's actual execution engines, read from the unified
    telemetry snapshot (``engine.split_seconds`` / ``engine.splits``)
    instead of the cluster model.  Numbers are honest for this machine —
    on a single-core host the pooled engines will not beat serial.

    Each configuration runs twice over the same partition so the process
    engine's steady state shows: the second run is a residency hit
    (``engine.residency.hits`` > 0, the input copy skipped) and its
    dispatch ships state deltas against the worker-cached core.
    """
    data = np.random.default_rng(seed).normal(size=elements)
    measured: dict[str, dict[int, dict]] = {}
    rows = []
    for engine in engines:
        measured[engine] = {}
        for t in threads:
            with Histogram(
                SchedArgs(num_threads=t, engine=engine, vectorized=True),
                lo=-4, hi=4, num_buckets=1200,
            ) as app:
                app.run(data)
                app.run(data)  # steady state: resident input, delta dispatch
                snap = app.telemetry_snapshot()
            # In-process engines time each split; the process engine
            # times whole blocks on the parent side of the pool.
            timers = snap["timers"]
            reduce_timer = timers.get("engine.split_seconds") or timers.get(
                "engine.block_seconds", {}
            )
            counters = snap["counters"]
            cell = {
                "engine": snap["engine"],
                "splits": counters.get("engine.splits", 0),
                "split_seconds": reduce_timer.get("seconds", 0.0),
                "chunks": counters["run.chunks_processed"],
                "residency_hits": counters.get("engine.residency.hits", 0),
                "residency_bytes_saved": counters.get(
                    "engine.residency.bytes_saved", 0
                ),
            }
            measured[engine][t] = cell
            rows.append(
                [
                    engine,
                    str(t),
                    str(cell["splits"]),
                    f"{cell['split_seconds'] * 1e3:.2f} ms",
                    str(cell["chunks"]),
                    str(cell["residency_hits"]),
                    f"{cell['residency_bytes_saved'] / 1e6:.1f} MB",
                ]
            )
    print_table(
        f"Figure 8 (measured): engine thread sweep on this host "
        f"(histogram, {elements} elements, 2 runs/config)",
        ["engine", "threads", "splits", "split time", "chunks",
         "res. hits", "res. saved"],
        rows,
    )
    return measured
