"""Figure 8: thread scaling on Lulesh (64 nodes, 1-8 threads, 1 TB, 93 steps).

The paper reports 59% average parallel efficiency for the first five
applications and 79% for the four window-based ones — the window
applications being more compute-intensive, synchronization weighs less
and they scale better.  The model reproduces that separation directly
from the calibrated per-element costs.
"""

from __future__ import annotations

from ..perfmodel import MULTICORE_CLUSTER, NodeWorkload, model_time_sharing
from .profiles import ALL_NINE, FIRST_FIVE, SECTION54_PASSES, WINDOW_FOUR, app_model, sim_model
from .reporting import format_seconds, print_table

TOTAL_BYTES = 1e12
NUM_STEPS = 93
NODES = 64


def run(threads: tuple[int, ...] = (1, 2, 4, 8)) -> dict:
    machine = MULTICORE_CLUSTER
    lulesh = sim_model("lulesh")
    workload = NodeWorkload.from_total(TOTAL_BYTES, NUM_STEPS, NODES)
    times: dict[str, dict[int, float]] = {}
    eff: dict[str, dict[int, float]] = {}

    for app_name in ALL_NINE:
        app = app_model(app_name, passes=SECTION54_PASSES[app_name])
        times[app_name] = {}
        for t in threads:
            pred = model_time_sharing(machine, NODES, t, workload, lulesh, app)
            times[app_name][t] = pred.total_seconds
        base = threads[0]
        eff[app_name] = {
            t: times[app_name][base] / (times[app_name][t] * t) for t in threads
        }

    rows = []
    for app_name in ALL_NINE:
        row: list = [app_name]
        row.extend(format_seconds(times[app_name][t]) for t in threads)
        row.extend(f"{eff[app_name][t]:.2f}" for t in threads)
        rows.append(row)
    headers = ["app"] + [f"T({t}t)" for t in threads] + [f"eff({t}t)" for t in threads]
    print_table(
        "Figure 8: in-situ processing time scaling threads on Lulesh "
        f"(modeled; 1 TB, {NUM_STEPS} steps, {NODES} nodes)",
        headers,
        rows,
    )

    t_max = threads[-1]
    first_five = sum(eff[a][t_max] for a in FIRST_FIVE) / len(FIRST_FIVE)
    window = sum(eff[a][t_max] for a in WINDOW_FOUR) / len(WINDOW_FOUR)
    print(
        f"avg efficiency at {t_max} threads - first five: {first_five:.0%} "
        f"(paper 59%), window-based: {window:.0%} (paper 79%)"
    )
    return {
        "times": times,
        "efficiency": eff,
        "first_five_avg": first_five,
        "window_avg": window,
    }
