"""Figure 9: time-sharing memory efficiency (zero-copy vs. extra-copy).

(a) Logistic regression on Heat3D, 4 nodes, per-node time-step 0.6-1.8 GB
    — the copying implementation degrades up to 11% as the node fills and
    crashes at a 2 GB step.
(b) Mutual information on Lulesh, 64 nodes, cube edge 100-233 — little
    difference (< 7%) until edge ~220, then a ~5x cliff as the copy
    pushes the node to its memory bound.

The sweep axes are multi-GB per-node allocations, so both curves come
from the cluster model (calibrated compute + the memory-pressure curve);
a *measured* micro-benchmark of the pure copy cost (same code path,
megabyte scale, real arrays) is reported alongside.
"""

from __future__ import annotations

import time

import numpy as np

from ..analytics import LogisticRegression
from ..core import SchedArgs
from ..perfmodel import MULTICORE_CLUSTER, MemoryModel, NodeWorkload, model_time_sharing
from .profiles import (
    HEAT3D_COMPUTE_FACTOR_FIG9,
    HEAT3D_MEMORY_FACTOR_FIG9,
    LULESH_COMPUTE_FACTOR_FIG9,
    LULESH_MEMORY_FACTOR_FIG9,
    app_model,
    sim_model,
)
from .reporting import format_ratio, format_seconds, print_table

GIB = 1024**3

#: Pressure curves fitted to Fig. 9's behaviour.  9a: little degradation
#: until ~88% utilization, then a steep climb (runs fine at a 1.8 GB step,
#: dead at 2 GB).  9b: LULESH's footprint alone nearly fills the node at
#: edge 233, and the single extra output-sized copy is <1% of capacity —
#: the observed 5x can only be a swap-thrash knee immediately below
#: capacity, so 9b uses a very sharp curve.
FIG9A_MEMORY = MemoryModel(threshold=0.88, severity=4.2)
FIG9B_MEMORY = MemoryModel(threshold=0.985, severity=30.0)


def _scaled_compute(sim, factor: float):
    """The original simulations' per-step compute relative to our proxies
    (see profiles.HEAT3D/LULESH_COMPUTE_FACTOR_FIG9)."""
    from dataclasses import replace

    return replace(sim, seconds_per_element=sim.seconds_per_element * factor)


def _fig9a(step_gib: tuple[float, ...]) -> dict:
    machine = MULTICORE_CLUSTER
    heat3d = _scaled_compute(
        sim_model("heat3d", memory_factor=HEAT3D_MEMORY_FACTOR_FIG9),
        HEAT3D_COMPUTE_FACTOR_FIG9,
    )
    app = app_model("logistic_regression", passes=3)
    rows, series = [], {}
    for gib in step_gib:
        elements = int(gib * GIB / 8)
        workload = NodeWorkload(elements, num_steps=100)
        nocopy = model_time_sharing(
            machine, 4, 8, workload, heat3d, app, memory=FIG9A_MEMORY
        )
        copy = model_time_sharing(
            machine, 4, 8, workload, heat3d, app, copy_input=True, memory=FIG9A_MEMORY
        )
        gain = copy.total_seconds / nocopy.total_seconds
        series[gib] = dict(
            nocopy=nocopy.total_seconds, copy=copy.total_seconds,
            copy_crashed=copy.crashed, gain=gain,
        )
        rows.append(
            [
                f"{gib:.1f} GB",
                format_seconds(nocopy.total_seconds),
                format_seconds(copy.total_seconds),
                "CRASH" if copy.crashed else format_ratio(gain),
            ]
        )
    print_table(
        "Figure 9a: logistic regression on Heat3D, 4 nodes (modeled; paper: "
        "up to 11% gain, crash at 2 GB)",
        ["step size/node", "Smart (no copy)", "with extra copy", "copy/no-copy"],
        rows,
    )
    return series


def _fig9b(edges: tuple[int, ...]) -> dict:
    machine = MULTICORE_CLUSTER
    lulesh = _scaled_compute(
        sim_model("lulesh", memory_factor=LULESH_MEMORY_FACTOR_FIG9),
        LULESH_COMPUTE_FACTOR_FIG9,
    )
    app = app_model("mutual_information", passes=1)
    rows, series = [], {}
    for edge in edges:
        elements = edge**3
        workload = NodeWorkload(elements, num_steps=93)
        nocopy = model_time_sharing(
            machine, 64, 8, workload, lulesh, app, memory=FIG9B_MEMORY
        )
        copy = model_time_sharing(
            machine, 64, 8, workload, lulesh, app, copy_input=True, memory=FIG9B_MEMORY
        )
        gain = copy.total_seconds / nocopy.total_seconds
        series[edge] = dict(
            nocopy=nocopy.total_seconds, copy=copy.total_seconds,
            copy_crashed=copy.crashed, gain=gain,
        )
        rows.append(
            [
                edge,
                f"{elements * 8 / 2**20:.0f} MiB",
                format_seconds(nocopy.total_seconds),
                format_seconds(copy.total_seconds),
                "CRASH" if copy.crashed else format_ratio(gain),
            ]
        )
    print_table(
        "Figure 9b: mutual information on Lulesh, 64 nodes (modeled; paper: "
        "<= 7% until edge 220, 5x at 233)",
        ["edge", "step/node", "Smart (no copy)", "with extra copy", "copy/no-copy"],
        rows,
    )
    return series


def _measured_copy_overhead(mib: int = 32) -> dict:
    """Measured zero-copy vs copy_input at megabyte scale (no pressure)."""
    data = np.random.default_rng(0).normal(size=mib * 2**20 // 8)
    dims = 15
    usable = (len(data) // (dims + 1)) * (dims + 1)
    data = data[:usable]
    data.reshape(-1, dims + 1)[:, dims] = (data.reshape(-1, dims + 1)[:, dims] > 0)

    def run_once(copy_input: bool) -> float:
        lr = LogisticRegression(
            SchedArgs(chunk_size=dims + 1, num_iters=3, vectorized=True,
                      copy_input=copy_input),
            dims=dims,
        )
        t0 = time.perf_counter()
        lr.run(data)
        return time.perf_counter() - t0

    t_nocopy = min(run_once(False) for _ in range(3))
    t_copy = min(run_once(True) for _ in range(3))
    print(
        f"measured copy overhead at {mib} MiB (no memory pressure): "
        f"no-copy {format_seconds(t_nocopy)} vs copy {format_seconds(t_copy)} "
        f"({(t_copy / t_nocopy - 1) * 100:+.1f}%)"
    )
    return dict(nocopy=t_nocopy, copy=t_copy)


def run(
    step_gib: tuple[float, ...] = (0.6, 1.0, 1.4, 1.8, 2.0),
    edges: tuple[int, ...] = (100, 140, 180, 220, 233),
) -> dict:
    a = _fig9a(step_gib)
    b = _fig9b(edges)
    measured = _measured_copy_overhead()
    return {"fig9a": a, "fig9b": b, "measured_copy": measured}
