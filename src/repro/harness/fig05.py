"""Figure 5: Smart vs. Spark (mini-Spark) on LR / k-means / histogram.

The paper's setup (Section 5.2): a sequential emulator outputs normally
distributed doubles; both engines analyze the same stream on one node;
threads vary 1-8.  Parameters: LR 10 iters × 15 dims; k-means k=8, 10
iters, 64 dims; histogram 100 buckets.

What is measured here vs. modeled:

* The engine-vs-engine time ratio is **measured** at one thread on this
  host.  Smart's vectorized path stands in for the paper's compiled C++
  runtime; mini-Spark structurally reproduces Spark's materialize/
  shuffle/serialize pipeline.  (The pure-interpreter scalar path is also
  reported, as the apples-to-apples interpreted comparison.)
* The 1-8 thread curves are **modeled** with Amdahl fractions: Smart
  parallelizes everything but final combination (paper speedup 7.95-7.96
  at 8 threads → f≈0.999); Spark's extra driver/communication threads
  steal a core and its task overhead is serial (paper's flattening at 8
  threads → f≈0.95 plus one stolen core).
* Memory: Smart's audited analytics state vs. mini-Spark's peak
  materialized pairs and serialized bytes (paper: 16 MB vs >90% of
  12 GB).
"""

from __future__ import annotations

import time

import numpy as np

from ..analytics import Histogram, KMeans, LogisticRegression
from ..baselines.minispark import (
    MiniSparkContext,
    spark_histogram,
    spark_kmeans,
    spark_logistic_regression,
)
from ..core import SchedArgs
from ..sim import GaussianEmulator
from .reporting import format_bytes, format_ratio, format_seconds, print_table

SMART_PARALLEL_FRACTION = 0.999
SPARK_PARALLEL_FRACTION = 0.95
SPARK_STOLEN_CORES = 0.8  # driver + shuffle service threads at 8 workers


def _amdahl(threads: float, fraction: float) -> float:
    return 1.0 / ((1.0 - fraction) + fraction / max(threads, 1e-9))


def _measure(fn, repeats: int = 1) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run(elements: int = 60_000, threads: tuple[int, ...] = (1, 2, 4, 8)) -> dict:
    emulator = GaussianEmulator(elements, seed=123)
    stream = emulator.advance().copy()
    results: dict[str, dict] = {}

    # ---------------- histogram (100 buckets) ----------------
    smart_hist = Histogram(
        SchedArgs(vectorized=True), lo=-4.0, hi=4.0, num_buckets=100
    )
    t_smart = _measure(lambda: (smart_hist.reset(), smart_hist.run(stream)))
    smart_scalar = Histogram(SchedArgs(), lo=-4.0, hi=4.0, num_buckets=100)
    t_scalar = _measure(lambda: (smart_scalar.reset(), smart_scalar.run(stream)))
    with MiniSparkContext(1) as ctx:
        t_spark = _measure(lambda: spark_histogram(ctx, stream, -4.0, 4.0, 100))
        spark_mem = ctx.serializer.bytes_serialized + 80 * ctx.peak_partition_elements
    results["histogram"] = dict(
        smart=t_smart, smart_scalar=t_scalar, spark=t_spark,
        smart_mem=float(smart_hist.current_state_nbytes()), spark_mem=float(spark_mem),
    )

    # ---------------- k-means (k=8, 10 iters, 64 dims) ----------------
    dims, k, iters = 64, 8, 10
    n_points = max(elements // dims, 256)
    rng = np.random.default_rng(5)
    points = rng.normal(size=(n_points, dims))
    flat = points.reshape(-1)
    init = points[:k].copy()
    km = KMeans(
        SchedArgs(chunk_size=dims, num_iters=iters, extra_data=init, vectorized=True),
        dims=dims,
    )
    t_smart = _measure(lambda: (km.reset(), km.run(flat)))
    with MiniSparkContext(1) as ctx:
        t_spark = _measure(lambda: spark_kmeans(ctx, flat, init, iters))
        spark_mem = ctx.serializer.bytes_serialized + 80 * ctx.peak_partition_elements
    results["kmeans"] = dict(
        smart=t_smart, smart_scalar=None, spark=t_spark,
        smart_mem=float(km.current_state_nbytes()), spark_mem=float(spark_mem),
    )

    # ---------------- logistic regression (10 iters, 15 dims) -------------
    dims, iters = 15, 10
    n_samples = max(elements // (dims + 1), 256)
    X = rng.normal(size=(n_samples, dims))
    y = (rng.random(n_samples) < 0.5).astype(np.float64)
    flat = np.concatenate([X, y[:, None]], axis=1).reshape(-1)
    lr = LogisticRegression(
        SchedArgs(chunk_size=dims + 1, num_iters=iters, vectorized=True), dims=dims
    )
    t_smart = _measure(lambda: (lr.reset(), lr.run(flat)))
    with MiniSparkContext(1) as ctx:
        t_spark = _measure(lambda: spark_logistic_regression(ctx, flat, dims, iters))
        spark_mem = ctx.serializer.bytes_serialized + 80 * ctx.peak_partition_elements
    results["logistic_regression"] = dict(
        smart=t_smart, smart_scalar=None, spark=t_spark,
        smart_mem=float(lr.current_state_nbytes()), spark_mem=float(spark_mem),
    )

    # ---------------- report ----------------
    rows = []
    for app, r in results.items():
        rows.append(
            [
                app,
                format_seconds(r["smart"]),
                format_seconds(r["spark"]),
                format_ratio(r["spark"] / r["smart"]),
                format_bytes(r["smart_mem"]),
                format_bytes(r["spark_mem"]),
            ]
        )
    print_table(
        f"Figure 5 (measured, 1 thread, {elements} emulator elements): "
        "Smart vs mini-Spark",
        ["app", "Smart", "mini-Spark", "Smart speedup", "Smart state", "Spark footprint"],
        rows,
    )
    if results["histogram"]["smart_scalar"]:
        scalar = results["histogram"]["smart_scalar"]
        print(
            "interpreted-vs-interpreted control (histogram, scalar chunk loop): "
            f"Smart {format_seconds(scalar)} vs mini-Spark "
            f"{format_seconds(results['histogram']['spark'])} "
            f"({format_ratio(results['histogram']['spark'] / scalar)})"
        )

    # Thread-scaling model (the figure's x axis).
    scaling_rows = []
    for t in threads:
        smart_speed = _amdahl(t, SMART_PARALLEL_FRACTION)
        spark_threads = t if t < 8 else t - SPARK_STOLEN_CORES
        spark_speed = _amdahl(spark_threads, SPARK_PARALLEL_FRACTION)
        scaling_rows.append([t, f"{smart_speed:.2f}", f"{spark_speed:.2f}"])
        for app in results:
            results[app].setdefault("smart_threads", {})[t] = results[app]["smart"] / smart_speed
            results[app].setdefault("spark_threads", {})[t] = results[app]["spark"] / spark_speed
    print_table(
        "Figure 5 thread-speedup model (Amdahl; paper measures 7.95/7.71/7.96 "
        "for Smart at 8 threads, Spark flattens)",
        ["threads", "Smart speedup", "Spark speedup"],
        scaling_rows,
    )
    return results
