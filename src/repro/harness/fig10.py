"""Figure 10: time sharing vs. space sharing on the Xeon Phi cluster.

1 TB of Lulesh output on 8 Phi nodes (60 usable cores each); space
sharing schemes ``n_m`` split the cores between simulation and analytics.
Paper outcomes to reproduce:

* histogram — best space scheme (50_10) is still ~4% *slower* than time
  sharing (tiny compute, relatively high synchronization that space
  sharing must serialize with the simulation's message passing);
* k-means — 50_10 beats time sharing by ~10%;
* moving median — 30_30 beats time sharing by ~48% (heavy analytics
  compute hides under the simulation, which scales poorly past ~30
  threads).

The sweep is modeled (Phi machine description + calibrated kernels).  A
functional micro-run of the real :class:`SpaceSharingDriver` (threads,
circular buffer, blocking) is executed first to validate the machinery.
"""

from __future__ import annotations


from ..analytics import Histogram
from ..core import (
    CoreSplit,
    PipelinedTimeSharingDriver,
    SchedArgs,
    SpaceSharingDriver,
    TimeSharingDriver,
)
from ..perfmodel import (
    MemoryModel,
    NodeWorkload,
    XEON_PHI_CLUSTER,
    model_simulation_only,
    model_space_sharing,
    model_time_sharing,
)
from ..sim import LuleshProxy
from ..perfmodel import AnalyticsModel
from .profiles import SCAN_SATURATION, WINDOW_SATURATION, analytics_costs, sim_model
from .reporting import format_seconds, print_table

TOTAL_BYTES = 1e12
NUM_STEPS = 93
NODES = 8
SPLITS = [CoreSplit(50, 10), CoreSplit(40, 20), CoreSplit(30, 30),
          CoreSplit(20, 40), CoreSplit(10, 50)]
#: Fitted analytics-to-simulation work ratios (single-thread seconds of
#: the whole analytics per step, including all iterations, relative to one
#: simulation step).  The paper gives no per-step cost breakdown for this
#: cluster; these ratios are chosen once so the sharing-mode crossovers
#: land where Fig. 10 reports them (histogram's analytics is a trivial
#: scan; k-means runs 10 Lloyd passes; moving median's holistic windows
#: rival the simulation itself).  Saturation classes follow profiles.py.
APP_RATIOS = {"histogram": 0.027, "kmeans": 0.063, "moving_median": 0.77}

#: The paper ran ~1.3 GB/node steps on 8 GB Phi nodes without reporting
#: pressure effects; keep the curve out of the way for this figure.
FIG10_MEMORY = MemoryModel(threshold=0.93, severity=2.0)


def _functional_check() -> dict:
    """Real concurrent producer/consumer run through the circular buffer."""
    sim = LuleshProxy(12)
    hist = Histogram(
        SchedArgs(vectorized=True, buffer_capacity=3), lo=-1.0, hi=60.0,
        num_buckets=32,
    )
    driver = SpaceSharingDriver(sim, hist, CoreSplit(1, 1))
    result = driver.run(num_steps=6)
    total = int(hist.counts().sum())
    expected = 6 * sim.partition_elements
    assert total == expected, f"space sharing lost data: {total} != {expected}"
    print(
        f"space-sharing functional check: 6 steps through a 3-cell buffer, "
        f"{total} elements analyzed, producer blocked {result.producer_blocks}x, "
        f"consumer blocked {result.consumer_blocks}x"
    )
    pipelined = _pipelined_check()
    return dict(producer_blocks=result.producer_blocks,
                consumer_blocks=result.consumer_blocks, elements=total,
                pipelined=pipelined)


def _pipelined_check() -> dict:
    """Real overlapped time-sharing run: simulation of step ``t+1``
    concurrent with analytics of step ``t`` through engine-resident
    double buffers, checked bit-exact against the serial driver."""
    def counts(driver_cls):
        sim = LuleshProxy(12)
        hist = Histogram(
            SchedArgs(vectorized=True), lo=-1.0, hi=60.0, num_buckets=32
        )
        with hist:
            result = driver_cls(sim, hist).run(6)
            return hist.counts().copy(), result

    serial_counts, _ = counts(TimeSharingDriver)
    piped_counts, piped = counts(PipelinedTimeSharingDriver)
    assert (serial_counts == piped_counts).all(), "pipelined run diverged"
    print(
        f"pipelined time-sharing functional check: 6 steps double-buffered, "
        f"bit-exact with serial, {piped.overlap_seconds * 1e3:.1f} ms of "
        f"simulate/analyze overlap reclaimed"
    )
    return dict(overlap_seconds=piped.overlap_seconds,
                elements=int(piped_counts.sum()))


def run() -> dict:
    functional = _functional_check()
    machine = XEON_PHI_CLUSTER
    lulesh = sim_model("lulesh")
    workload = NodeWorkload.from_total(TOTAL_BYTES, NUM_STEPS, NODES)
    sim_only = model_simulation_only(
        machine, NODES, 60, workload, lulesh, memory=FIG10_MEMORY
    )

    out: dict[str, dict] = {"functional": functional}
    for app_name, ratio in APP_RATIOS.items():
        cost = analytics_costs()[app_name]
        saturation = (
            WINDOW_SATURATION if app_name == "moving_median" else SCAN_SATURATION
        )
        app = AnalyticsModel(
            name=app_name,
            seconds_per_element=ratio * lulesh.seconds_per_element,
            passes=1,
            sync_payload_bytes=cost.sync_bytes,
            state_bytes_fixed=cost.state_bytes,
            saturation_speedup=saturation,
        )
        time_sharing = model_time_sharing(
            machine, NODES, 60, workload, lulesh, app, memory=FIG10_MEMORY
        )
        rows = [
            ["simulation-only", format_seconds(sim_only.total_seconds), "-"],
            ["time sharing (60 threads)",
             format_seconds(time_sharing.total_seconds), "1.00"],
        ]
        scheme_totals: dict[str, float] = {}
        for split in SPLITS:
            pred = model_space_sharing(
                machine, NODES, split, workload, lulesh, app,
                buffer_cells=1, memory=FIG10_MEMORY,
            )
            scheme_totals[split.label] = pred.total_seconds
            rows.append(
                [
                    f"space {split.label}",
                    format_seconds(pred.total_seconds),
                    f"{pred.total_seconds / time_sharing.total_seconds:.2f}",
                ]
            )
        best_label = min(scheme_totals, key=scheme_totals.get)
        improvement = (
            1.0 - scheme_totals[best_label] / time_sharing.total_seconds
        ) * 100
        print_table(
            f"Figure 10 ({app_name}): 1 TB Lulesh on 8 Xeon Phi nodes (modeled)",
            ["configuration", "total time", "vs time sharing"],
            rows,
        )
        print(
            f"best space scheme for {app_name}: {best_label} "
            f"({improvement:+.1f}% vs time sharing)"
        )
        out[app_name] = dict(
            time_sharing=time_sharing.total_seconds,
            sim_only=sim_only.total_seconds,
            schemes=scheme_totals,
            best=best_label,
            improvement_pct=improvement,
        )
    return out
