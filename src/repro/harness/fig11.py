"""Figure 11: effect of early emission of reduction objects.

(a) Moving average on Heat3D, 4 nodes, 300 GB, window 7, per-node step
    0.5-1 GB: up to 5.6x speedup; the trigger-less implementation
    crashes at a 1 GB step.
(b) Moving median on Lulesh, 64 nodes, 1 TB, window 11, edge 60-200: up
    to 5.2x; trigger-less crashes at edge 200.

Two layers:

* **measured** — both variants run for real at this host's scale on the
  actual simulations; early emission's effect on the *peak number of
  reduction objects* (the paper's "decreased by 1,000,000 times" claim
  scales with input size) and the end-to-end result equality are shown;
* **modeled** — the paper-scale sweep, where the trigger-less variant's
  per-element object state drives the node into memory pressure and
  finally past capacity.
"""

from __future__ import annotations

import numpy as np

from ..analytics import MovingAverage
from ..core import SchedArgs, TimeSharingDriver
from ..perfmodel import MULTICORE_CLUSTER, MemoryModel, NodeWorkload, model_time_sharing
from ..sim import Heat3D
from .profiles import (
    HEAT3D_MEMORY_FACTOR_FIG11,
    MEDIAN_OBJ_BYTES,
    WINDOW_OBJ_BYTES,
    app_model,
    sim_model,
)

from .reporting import format_ratio, format_seconds, print_table

GIB = 1024**3

#: Pressure curve for the early-emission figure: the trigger-less variant
#: rides deep into paging territory before dying, so the climb is steeper
#: than the default.
FIG11_MEMORY = MemoryModel(threshold=0.70, severity=6.0)


def _measured(win_size: int = 7, steps: int = 4) -> dict:
    """Run both variants for real on Heat3D output and compare."""
    grid = (16, 32, 32)

    def one(disable: bool) -> tuple[float, int, np.ndarray]:
        sim = Heat3D(grid)
        ma = MovingAverage(
            SchedArgs(disable_early_emission=disable), win_size=win_size
        )
        driver = TimeSharingDriver(
            sim,
            ma,
            multi_key=True,
            out_factory=lambda part: np.full(part.shape[0], np.nan),
            per_step=lambda i, s, o: s.reset(),
        )
        result = driver.run(steps)
        return result.total_seconds, ma.stats.peak_red_objects, result.output

    t_off, peak_off, out_off = one(disable=True)
    t_on, peak_on, out_on = one(disable=False)
    assert np.allclose(out_on, out_off), "early emission changed results"
    print(
        f"measured (Heat3D {grid}, window {win_size}): trigger ON peak objects "
        f"{peak_on} vs OFF {peak_off} ({peak_off / peak_on:.0f}x reduction; "
        f"paper reports up to 1,000,000x at 1 TB); times {format_seconds(t_on)} "
        f"vs {format_seconds(t_off)}"
    )
    return dict(peak_on=peak_on, peak_off=peak_off, t_on=t_on, t_off=t_off)


def _fig11a(step_gib: tuple[float, ...]) -> dict:
    machine = MULTICORE_CLUSTER
    heat3d = sim_model("heat3d", memory_factor=HEAT3D_MEMORY_FACTOR_FIG11)
    base = app_model("moving_average")
    rows, series = [], {}
    for gib in step_gib:
        workload = NodeWorkload(int(gib * GIB / 8), num_steps=75)
        on = model_time_sharing(
            machine, 4, 8, workload, heat3d,
            base.with_early_emission(True, WINDOW_OBJ_BYTES),
            memory=FIG11_MEMORY,
        )
        off = model_time_sharing(
            machine, 4, 8, workload, heat3d,
            base.with_early_emission(False, WINDOW_OBJ_BYTES),
            memory=FIG11_MEMORY,
        )
        speedup = off.total_seconds / on.total_seconds
        series[gib] = dict(on=on.total_seconds, off=off.total_seconds,
                           off_crashed=off.crashed, speedup=speedup)
        rows.append(
            [
                f"{gib:.2f} GB",
                format_seconds(on.total_seconds),
                format_seconds(off.total_seconds),
                "CRASH" if off.crashed else format_ratio(speedup),
            ]
        )
    print_table(
        "Figure 11a: moving average on Heat3D, 4 nodes, window 7 (modeled; "
        "paper: up to 5.6x, crash at 1 GB without trigger)",
        ["step size/node", "with early emission", "without", "speedup"],
        rows,
    )
    return series


def _fig11b(edges: tuple[int, ...]) -> dict:
    machine = MULTICORE_CLUSTER
    lulesh = sim_model("lulesh")
    base = app_model("moving_median")
    rows, series = [], {}
    for edge in edges:
        workload = NodeWorkload(edge**3, num_steps=93)
        on = model_time_sharing(
            machine, 64, 8, workload, lulesh,
            base.with_early_emission(True, MEDIAN_OBJ_BYTES),
            memory=FIG11_MEMORY,
        )
        off = model_time_sharing(
            machine, 64, 8, workload, lulesh,
            base.with_early_emission(False, MEDIAN_OBJ_BYTES),
            memory=FIG11_MEMORY,
        )
        speedup = off.total_seconds / on.total_seconds
        series[edge] = dict(on=on.total_seconds, off=off.total_seconds,
                            off_crashed=off.crashed, speedup=speedup)
        rows.append(
            [
                edge,
                format_seconds(on.total_seconds),
                format_seconds(off.total_seconds),
                "CRASH" if off.crashed else format_ratio(speedup),
            ]
        )
    print_table(
        "Figure 11b: moving median on Lulesh, 64 nodes, window 11 (modeled; "
        "paper: up to 5.2x, crash at edge 200 without trigger)",
        ["edge", "with early emission", "without", "speedup"],
        rows,
    )
    return series


def run(
    step_gib: tuple[float, ...] = (0.5, 0.65, 0.8, 0.9, 1.0),
    edges: tuple[int, ...] = (60, 100, 140, 186, 195, 200),
) -> dict:
    measured = _measured()
    a = _fig11a(step_gib)
    b = _fig11b(edges)
    return {"measured": measured, "fig11a": a, "fig11b": b}
