"""Chaos harness: seeded fault schedules against the whole runtime.

Runs k-means and histogram under deterministic :class:`~repro.faults.FaultPlan`
schedules across the execution engines and the SPMD comm substrate, and
checks the recovery contract end to end:

* ``retry`` reproduces the fault-free results **bit-exactly** (one-shot
  fault specs do not re-fire, and reduction is deterministic);
* ``degrade`` completes with the dropped contributions recorded in
  ``faults.*`` telemetry, and the output stays consistent with the
  surviving inputs (histogram mass equals the surviving partitions);
* ``fail_fast`` still raises (``SpmdError`` / ``EngineFaultError``);
* a corrupted checkpoint falls back to the newest verifying rotation;
* with **no plan installed** every hook is a no-op — the harness measures
  the overhead of an installed-but-empty plan against the healthy path.

Emits ``BENCH_chaos.json`` at the repo root with recovery latencies and
the overhead measurement.  Registered as ``chaos`` in the figure
registry: ``python -m repro.harness chaos``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

from ..analytics.histogram import Histogram
from ..analytics.kmeans import KMeans
from ..comm import SpmdError, spmd_launch, supervised_launch
from ..core import SchedArgs, load_checkpoint, save_checkpoint
from ..faults import EngineFaultError, FaultPlan, FaultPolicy, FaultSpec
from ..telemetry import Recorder
from .reporting import format_seconds, print_table

RESULT_PATH = Path(__file__).resolve().parents[3] / "BENCH_chaos.json"

SEED = 2015
DIMS = 3
CLUSTERS = 4
BUCKETS = 32


def _dataset(n_points: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(SEED)
    points = rng.normal(size=(n_points, DIMS)).ravel()
    centroids = rng.normal(size=(CLUSTERS, DIMS))
    return points, centroids


def _kmeans_rank(comm, part, centroids, engine):
    args = SchedArgs(
        num_threads=2,
        chunk_size=DIMS,
        extra_data=centroids,
        num_iters=3,
        engine=engine,
    )
    sched = KMeans(args, comm, dims=DIMS)
    with sched:
        result = sched.run(part)
    return np.stack([result[k].centroid for k in sorted(result.keys())])


def _hist_rank(comm, part, engine):
    args = SchedArgs(num_threads=2, chunk_size=1, engine=engine)
    sched = Histogram(args, comm, lo=-4.0, hi=4.0, num_buckets=BUCKETS)
    out = np.zeros(BUCKETS)
    with sched:
        sched.run(part, out)
    return out


def _crash_plan(at_call: int = 2) -> FaultPlan:
    """Rank 1 dies at its ``at_call``-th communication call (deterministic)."""
    return FaultPlan(
        [FaultSpec("comm", "crash", at_call=at_call, target=1)], seed=SEED
    )


def _comm_scenarios(n_ranks: int, n_points: int) -> dict:
    """SimCluster rank crash: retry is bit-exact, degrade is bounded."""
    points, centroids = _dataset(n_points)
    parts = np.array_split(points.reshape(-1, DIMS), n_ranks)
    km_args = [(p.ravel(), centroids, "thread") for p in parts]
    hist_parts = np.array_split(points, n_ranks)

    scenarios: dict[str, dict] = {}

    # k-means, thread engine: fault-free reference, then retry under crash.
    clean = spmd_launch(n_ranks, _kmeans_rank, km_args)
    telemetry = Recorder()
    retried = supervised_launch(
        n_ranks,
        _kmeans_rank,
        km_args,
        policy=FaultPolicy.retry(backoff=0.01),
        telemetry=telemetry,
        fault_plan=_crash_plan(),
    )
    snap = telemetry.snapshot()
    bit_exact = all(np.array_equal(c, r) for c, r in zip(clean, retried))
    scenarios["kmeans_crash_retry"] = {
        "bit_exact": bool(bit_exact),
        "counters": snap["counters"],
        "recovery_seconds": snap["timers"]
        .get("faults.recovery_seconds", {})
        .get("seconds"),
    }
    assert bit_exact, "retry after rank crash must be bit-exact"

    # histogram, serial engine: degrade drops rank 1's partition; the
    # surviving mass must be conserved exactly.
    hist_args = [(p, "serial") for p in hist_parts]
    telemetry = Recorder()
    degraded = supervised_launch(
        n_ranks,
        _hist_rank,
        hist_args,
        policy=FaultPolicy.degrade(),
        telemetry=telemetry,
        # histogram runs one global combination, so rank 1's very first
        # comm call is the only deterministic crash site
        fault_plan=_crash_plan(at_call=0),
    )
    snap = telemetry.snapshot()
    dropped = snap["counters"].get("faults.ranks_dropped", 0)
    surviving_mass = sum(
        len(p) for r, p in enumerate(hist_parts) if r != 1
    )
    mass = float(degraded[0].sum())
    scenarios["histogram_crash_degrade"] = {
        "ranks_dropped": dropped,
        "surviving_mass": surviving_mass,
        "observed_mass": mass,
        "counters": snap["counters"],
        "recovery_seconds": snap["timers"]
        .get("faults.recovery_seconds", {})
        .get("seconds"),
    }
    assert dropped == 1
    assert mass == surviving_mass, "degrade must conserve the surviving mass"

    # fail_fast: the crash must propagate as SpmdError.
    try:
        spmd_launch(n_ranks, _hist_rank, hist_args, fault_plan=_crash_plan(at_call=0))
    except SpmdError as err:
        scenarios["histogram_crash_fail_fast"] = {"raised": str(err)[:160]}
    else:  # pragma: no cover - contract violation
        raise AssertionError("fail_fast must raise SpmdError on a rank crash")
    return scenarios


def _engine_scenarios(n_points: int) -> dict:
    """ProcessEngine worker kill/hang: supervisor respawn + replay."""
    points, centroids = _dataset(n_points)

    def run_kmeans(plan, policy):
        args = SchedArgs(
            num_threads=2,
            chunk_size=DIMS,
            extra_data=centroids,
            num_iters=3,
            engine="process",
            fault_policy=policy,
        )
        sched = KMeans(args, dims=DIMS)
        sched.fault_plan = plan
        with sched:
            result = sched.run(points)
        snap = sched.telemetry_snapshot()
        cents = np.stack([result[k].centroid for k in sorted(result.keys())])
        return cents, snap

    clean, _ = run_kmeans(None, "fail_fast")
    scenarios: dict[str, dict] = {}
    for kind, policy in (
        ("kill", FaultPolicy.retry(backoff=0.01)),
        ("hang", FaultPolicy.retry(backoff=0.01, task_deadline=0.5)),
    ):
        plan = FaultPlan(
            [FaultSpec("engine", kind, at_call=3, seconds=30.0)], seed=SEED
        )
        cents, snap = run_kmeans(plan, policy)
        bit_exact = np.array_equal(clean, cents)
        scenarios[f"kmeans_worker_{kind}_retry"] = {
            "bit_exact": bool(bit_exact),
            "counters": {
                k: v
                for k, v in snap["counters"].items()
                if k.startswith("faults.")
            },
            "recovery_seconds": snap["timers"]
            .get("faults.recovery_seconds", {})
            .get("seconds"),
        }
        assert bit_exact, f"worker {kind} + retry must be bit-exact"

    plan = FaultPlan([FaultSpec("engine", "kill", at_call=3)], seed=SEED)
    cents, snap = run_kmeans(plan, "degrade")
    scenarios["kmeans_worker_kill_degrade"] = {
        "dropped_splits": snap["counters"].get("faults.dropped_splits", 0),
        "completed": True,
    }
    assert snap["counters"].get("faults.dropped_splits", 0) >= 1

    plan = FaultPlan([FaultSpec("engine", "kill", at_call=3)], seed=SEED)
    try:
        run_kmeans(plan, "fail_fast")
    except EngineFaultError as err:
        scenarios["kmeans_worker_kill_fail_fast"] = {"raised": str(err)[:160]}
    else:  # pragma: no cover - contract violation
        raise AssertionError("fail_fast must raise EngineFaultError")
    return scenarios


def _storage_scenario(n_points: int) -> dict:
    """Checkpoint corruption: restore falls back to a verifying rotation."""
    points, centroids = _dataset(n_points)
    args = SchedArgs(
        num_threads=1, chunk_size=DIMS, extra_data=centroids, num_iters=1
    )
    results = {}
    with TemporaryDirectory() as tmp:
        ckpt = Path(tmp) / "state.ckpt"
        sched = KMeans(args, dims=DIMS)
        with sched:
            # Two healthy generations, then a save the plan truncates.
            sched.run(points)
            save_checkpoint(sched, ckpt, {"gen": 0}, keep=3)
            sched.run(points)
            save_checkpoint(sched, ckpt, {"gen": 1}, keep=3)
            # Snapshot gen-1 centroids by value: the map is live and the
            # next run mutates it.
            good = {
                k: np.array(obj.centroid)
                for k, obj in sched.get_combination_map().items()
            }
            plan = FaultPlan(
                [FaultSpec("storage", "truncate", at_call=0)], seed=SEED
            )
            sched.run(points)
            save_checkpoint(sched, ckpt, {"gen": 2}, keep=3, fault_plan=plan)

        restored = KMeans(args, dims=DIMS)
        meta = load_checkpoint(restored, ckpt)
        fallbacks = restored.telemetry.snapshot()["counters"].get(
            "faults.checkpoint_fallbacks", 0
        )
        same = sorted(restored.combination_map_.keys()) == sorted(good.keys()) and all(
            np.array_equal(restored.combination_map_[k].centroid, good[k])
            for k in good.keys()
        )
        results = {
            "restored_generation": meta.get("gen"),
            "checkpoint_fallbacks": fallbacks,
            "matches_last_good": bool(same),
        }
        assert fallbacks == 1 and meta.get("gen") == 1 and same
    return results


def _overhead_when_healthy(n_points: int, repeats: int) -> dict:
    """Hook cost: no plan vs an installed-but-empty plan (process engine)."""
    points, _ = _dataset(n_points)

    def timed(plan) -> float:
        args = SchedArgs(num_threads=2, chunk_size=1, engine="process")
        sched = Histogram(args, lo=-4.0, hi=4.0, num_buckets=BUCKETS)
        sched.fault_plan = plan
        out = np.zeros(BUCKETS)
        with sched:
            sched.run(points, out)  # warm the pool outside the timing
            best = np.inf
            for _ in range(repeats):
                t0 = time.perf_counter()
                sched.run(points, out)
                best = min(best, time.perf_counter() - t0)
        return best

    no_plan = timed(None)
    empty_plan = timed(FaultPlan())
    return {
        "no_plan_seconds": no_plan,
        "empty_plan_seconds": empty_plan,
        "overhead_ratio": empty_plan / no_plan if no_plan else float("nan"),
    }


def run(quick: bool = False) -> dict:
    n_points = 2_000 if quick else 12_000
    results = {
        "comm": _comm_scenarios(n_ranks=3, n_points=n_points),
        "engine": _engine_scenarios(n_points=n_points),
        "storage": _storage_scenario(n_points=n_points),
        "overhead": _overhead_when_healthy(
            n_points=n_points, repeats=2 if quick else 5
        ),
    }

    rows = []
    for layer in ("comm", "engine"):
        for name, info in results[layer].items():
            rec = info.get("recovery_seconds")
            rows.append(
                [
                    f"{layer}/{name}",
                    info.get("bit_exact", "-"),
                    format_seconds(rec) if rec else "-",
                ]
            )
    print_table(
        "Chaos: seeded faults, recovery by policy",
        ["scenario", "bit_exact", "recovery"],
        rows,
    )
    overhead = results["overhead"]
    print(
        f"overhead when healthy (empty plan / no plan): "
        f"{overhead['overhead_ratio']:.3f}x "
        f"({format_seconds(overhead['no_plan_seconds'])} -> "
        f"{format_seconds(overhead['empty_plan_seconds'])})"
    )

    RESULT_PATH.write_text(json.dumps(results, indent=2, default=float) + "\n")
    print(f"wrote {RESULT_PATH}")
    return results


if __name__ == "__main__":
    run()
