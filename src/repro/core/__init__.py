"""Smart core runtime — the paper's primary contribution.

Public surface:

* :class:`Scheduler` — subclass to write an analytics application
  (override ``gen_key``/``gen_keys``, ``accumulate``, ``merge``, and
  optionally ``process_extra_data``, ``post_combine``, ``convert``,
  ``trigger`` on the reduction object).
* :class:`SchedArgs` — runtime configuration (Table 1, function 1).
* :class:`RedObj` — reduction object base class.
* :class:`TimeSharingDriver` / :class:`SpaceSharingDriver` — the two
  in-situ modes (:class:`PipelinedTimeSharingDriver` adds the
  double-buffered overlapped variant of the former).
* :class:`SmartPipeline` — chained Smart jobs with local-only stages.
"""

from .batch import HAVE_NUMBA, ColumnarAccumulator, maybe_njit
from .checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from .chunk import Chunk, Split, iter_blocks, make_splits
from .engine import (
    ExecutionEngine,
    ProcessEngine,
    SerialEngine,
    ThreadEngine,
    create_engine,
)
from .elastic import ElasticTier, StagingWorkerError
from .in_transit import InTransitDriver, Placement, split_staging_comm
from .circular_buffer import BufferClosed, CircularBuffer
from .maps import KeyedMap
from .pipeline import PipelineStage, SmartPipeline
from .policy import (
    COMBINE_ALGORITHMS,
    ENGINE_BACKENDS,
    MAP_PATHS,
    RESIDENCY_MODES,
    CombinePolicy,
    EnginePolicy,
    ExecutionPolicy,
)
from .red_obj import Field, RedObj, ensure_red_obj
from .sched_args import SchedArgs
from .scheduler import RunStats, Scheduler, merge_distributed_output
from .serialization import (
    WIRE_FORMATS,
    WIRE_VERSION,
    PackedMap,
    deserialize_map,
    global_combine,
    pack_map,
    serialize_map,
)
from .space_sharing import CoreSplit, SpaceSharingDriver, SpaceSharingResult
from .time_sharing import (
    PipelinedTimeSharingDriver,
    StepTiming,
    TimeSharingDriver,
    TimeSharingResult,
)

# Imported last: autotune reaches into repro.perfmodel, whose package
# init imports analytics (and, through it, names bound above in this
# partially initialized package).
from .autotune import CombineSwitch, PolicyAdvisor  # noqa: E402

__all__ = [
    "BufferClosed",
    "CheckpointError",
    "load_checkpoint",
    "save_checkpoint",
    "Chunk",
    "CircularBuffer",
    "ColumnarAccumulator",
    "CombinePolicy",
    "CombineSwitch",
    "COMBINE_ALGORITHMS",
    "CoreSplit",
    "ENGINE_BACKENDS",
    "EnginePolicy",
    "ExecutionEngine",
    "ExecutionPolicy",
    "Field",
    "HAVE_NUMBA",
    "KeyedMap",
    "MAP_PATHS",
    "maybe_njit",
    "PolicyAdvisor",
    "RESIDENCY_MODES",
    "PackedMap",
    "WIRE_FORMATS",
    "WIRE_VERSION",
    "pack_map",
    "ProcessEngine",
    "SerialEngine",
    "ThreadEngine",
    "create_engine",
    "PipelinedTimeSharingDriver",
    "PipelineStage",
    "RedObj",
    "RunStats",
    "SchedArgs",
    "Scheduler",
    "SmartPipeline",
    "SpaceSharingDriver",
    "SpaceSharingResult",
    "Split",
    "StepTiming",
    "TimeSharingDriver",
    "TimeSharingResult",
    "deserialize_map",
    "ensure_red_obj",
    "ElasticTier",
    "StagingWorkerError",
    "InTransitDriver",
    "Placement",
    "split_staging_comm",
    "global_combine",
    "iter_blocks",
    "make_splits",
    "merge_distributed_output",
    "serialize_map",
]
