"""The Smart runtime scheduler (paper Sections 3.1, 3.4; Algorithms 1-2).

A :class:`Scheduler` subclass *is* an analytics application: the user
overrides the seven callbacks of the paper's Table 1 ("functions
implemented by the user") and the runtime provides the nine launch
functions ("functions provided by the runtime") — here folded into
:meth:`run` / :meth:`run2` (time sharing takes data explicitly; space
sharing feeds data via :meth:`feed` and calls ``run``/``run2`` with
``data=None``).

Execution flow per :meth:`run` (Algorithm 1):

1. ``process_extra_data`` initializes the combination map if needed.
2. For each iteration: reduction maps are (optionally) seeded from the
   combination map, the partition is processed block by block, each block
   split across threads, each split chunk by chunk —
   ``gen_key``/``gen_keys`` then ``accumulate`` (no intermediate key-value
   pair is ever materialized).
3. Early emission (Algorithm 2): after each accumulate, ``trigger()`` may
   finalize the reduction object straight into the output and drop it
   from the reduction map.
4. Local combination merges the per-thread reduction maps into the local
   combination map; global combination merges local maps across ranks
   (serialize → gather to master → merge → broadcast back).
5. ``post_combine`` updates state between iterations; ``convert`` writes
   the remaining combination map into the output array.

Python adaptation of the C++ signatures: references cannot be passed, so
``accumulate`` *returns* the (possibly newly allocated) reduction object
and ``merge`` *returns* the combined object; ``convert`` receives the
output array plus the key instead of ``out[key]``.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

import numpy as np

from ..comm.interface import Communicator
from ..comm.local import LocalComm
from ..comm.reduce_ops import NANOVERLAY
from ..faults import EngineFaultError, FaultPlan
from ..telemetry import Recorder
from .batch import ColumnarAccumulator
from .chunk import Chunk, Split, iter_blocks, make_splits
from .circular_buffer import CircularBuffer
from .engine import ExecutionEngine, create_engine
from .maps import KeyedMap
from .policy import ExecutionPolicy
from .red_obj import RedObj, ensure_red_obj
from .sched_args import SchedArgs
from .serialization import global_combine


def _run_counter(name: str) -> property:
    """A RunStats attribute backed by the ``run.<name>`` telemetry counter."""
    key = f"run.{name}"

    def getter(self: "RunStats") -> int:
        return self.recorder.counter(key)

    def setter(self: "RunStats", value: int) -> None:
        self.recorder.set_counter(key, value)

    return property(getter, setter)


class RunStats:
    """Counters maintained by the scheduler across :meth:`Scheduler.run` calls.

    Back-compat view over the scheduler's unified telemetry
    :class:`~repro.telemetry.Recorder`: every attribute reads and writes
    the ``run.*`` counter of the same name, so ``scheduler.stats`` and
    ``scheduler.telemetry_snapshot()`` can never disagree.

    ``peak_red_objects`` is the memory-efficiency headline number: the
    maximum simultaneous count of reduction objects held across all
    thread-local reduction maps plus the combination map (paper Sections
    4.1-4.2 reason entirely in these units).
    """

    __slots__ = ("recorder", "extra")

    chunks_processed = _run_counter("chunks_processed")
    accumulate_calls = _run_counter("accumulate_calls")
    vector_reduce_calls = _run_counter("vector_reduce_calls")
    batch_reduce_calls = _run_counter("batch_reduce_calls")
    early_emissions = _run_counter("early_emissions")
    iterations_run = _run_counter("iterations_run")
    runs = _run_counter("runs")
    peak_red_objects = _run_counter("peak_red_objects")
    global_combinations = _run_counter("global_combinations")

    def __init__(self, recorder: Recorder | None = None, **initial: int):
        self.recorder = recorder if recorder is not None else Recorder()
        self.extra: dict[str, Any] = {}
        for name, value in initial.items():
            setattr(self, name, value)

    def observe_objects(self, count: int) -> None:
        self.recorder.observe_max("run.peak_red_objects", count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(
            f"{name}={getattr(self, name)}"
            for name in (
                "chunks_processed", "accumulate_calls", "vector_reduce_calls",
                "early_emissions", "iterations_run", "runs", "peak_red_objects",
                "global_combinations",
            )
        )
        return f"RunStats({fields})"


#: Scheduler attributes that never ship to engine workers: parent-owned
#: infrastructure (locks, pools, arrays viewed through shared memory) and
#: state the process engine transfers through its own channels (the
#: combination map and the layout context travel in the per-iteration
#: delta; the input partition travels through shared memory).
_ENGINE_LOCAL_ATTRS = frozenset(
    {
        "args",
        "policy",
        "policy_adaptor",
        "comm",
        "combination_map_",
        "telemetry",
        "stats",
        "fault_plan",
        "data_",
        "out_",
        "global_offset_",
        "total_len_",
        "_engine",
        "_fed",
        "_data_version",
        "_batch_export",
    }
)


class Scheduler:
    """Base class for Smart analytics applications.

    Parameters
    ----------
    args:
        Runtime configuration: an
        :class:`~repro.core.policy.ExecutionPolicy` (preferred) or the
        deprecated flat :class:`~repro.core.sched_args.SchedArgs`
        facade, which lowers onto one.  Either way the scheduler runs
        off :attr:`policy`; the :attr:`args` property remains as a flat
        compatibility view.
    comm:
        Communicator for global combination.  Defaults to a single-rank
        :class:`~repro.comm.local.LocalComm`; in-situ SPMD programs pass
        their rank's communicator (paper Listing 1/2).

    Class attributes subclasses may set
    -----------------------------------
    seed_reduction_maps:
        When True (iterative applications such as k-means), every
        reduction map is seeded with a clone of the combination map at
        the start of each iteration — Algorithm 1 line 6.  Requires the
        identity-after-``post_combine`` contract documented on
        :class:`~repro.core.red_obj.RedObj`.
    """

    seed_reduction_maps: bool = False

    def __init__(
        self,
        args: SchedArgs | ExecutionPolicy,
        comm: Communicator | None = None,
    ):
        #: The layered runtime configuration this scheduler executes.
        #: Immutable; replaced wholesale by a mid-run ``policy_adaptor``.
        self.policy: ExecutionPolicy = ExecutionPolicy.coerce(args)
        #: Optional mid-run adaptation hook (e.g.
        #: :class:`~repro.core.autotune.CombineSwitch`).  Called as
        #: ``observe(scheduler, iteration)`` after ``post_combine`` of
        #: every iteration; may replace :attr:`policy`.
        self.policy_adaptor = None
        self.comm: Communicator = comm if comm is not None else LocalComm()
        self.combination_map_ = KeyedMap()
        self.telemetry = Recorder()
        self.stats = RunStats(self.telemetry)
        #: Optional :class:`~repro.faults.FaultPlan` consulted by the
        #: execution engine (worker kill/hang injection).  ``None`` — the
        #: default — keeps every injection hook a no-op.
        self.fault_plan: FaultPlan | None = None
        self._engine: ExecutionEngine | None = None
        self._global_combination = True
        self._fed: CircularBuffer | None = None
        self._extra_processed = False
        # Input-residency token: bumped by notify_data_changed() so the
        # process engine can tell "same array, same contents" (skip the
        # shared-memory copy) from "same array, rewritten in place".
        self._data_version = 0
        # Set by _reduce_split_batch when the split's accumulator still
        # holds the complete reduction-map state: the process engine then
        # ships its columns straight onto the columnar wire instead of
        # repacking objects.
        self._batch_export: ColumnarAccumulator | None = None
        # Per-run context visible to user callbacks (paper exposes the same
        # names with trailing underscores).
        self.data_: np.ndarray | None = None
        self.out_: np.ndarray | None = None
        self.global_offset_: int = 0
        self.total_len_: int = 0

    @property
    def args(self) -> ExecutionPolicy:
        """Compatibility view of :attr:`policy`.

        The policy exposes every flat ``SchedArgs`` attribute name
        (``num_threads``, ``wire_format``, ``resolved_engine``, ...), so
        code written against ``scheduler.args`` keeps reading the live
        configuration unchanged.
        """
        return self.policy

    # ------------------------------------------------------------------
    # API implemented by the user (paper Table 1, lower half)
    # ------------------------------------------------------------------
    def gen_key(
        self, chunk: Chunk, data: np.ndarray, combination_map: KeyedMap
    ) -> int:
        """Generate the single key for a unit chunk.

        Default: key 0 — single-reduction-object applications (e.g.
        logistic regression) need not override.
        """
        return 0

    def gen_keys(
        self,
        chunk: Chunk,
        data: np.ndarray,
        keys: list[int],
        combination_map: KeyedMap,
    ) -> None:
        """Generate multiple keys for a unit chunk (``run2`` path).

        Default: delegates to :meth:`gen_key`, so ``run2`` degrades to
        ``run`` for single-key applications.
        """
        keys.append(self.gen_key(chunk, data, combination_map))

    def accumulate(
        self, chunk: Chunk, data: np.ndarray, red_obj: RedObj | None, key: int
    ) -> RedObj:
        """Accumulate the unit chunk onto a reduction object.

        ``red_obj`` is ``None`` when the key has no object yet (and the
        application does not seed reduction maps); implementations must
        create and return one in that case.

        Python adaptation note: the C++ API locates the object by key
        before calling ``accumulate`` and passes only the object
        reference; here the key is passed along too, which window
        applications with key-dependent weights (Savitzky-Golay, Gaussian
        kernel) use to know which window position they are contributing
        to.
        """
        raise NotImplementedError

    def merge(self, red_obj: RedObj, com_obj: RedObj) -> RedObj:
        """Merge ``red_obj`` into ``com_obj``; return the combined object."""
        raise NotImplementedError

    def process_extra_data(self, extra_data: Any, combination_map: KeyedMap) -> None:
        """Initialize the combination map from the extra input (optional)."""

    def post_combine(self, combination_map: KeyedMap) -> None:
        """Update reduction objects after the combination phase (optional)."""

    def convert(self, red_obj: RedObj, out: np.ndarray, key: int) -> None:
        """Write ``red_obj``'s final value into ``out`` at ``key`` (optional).

        Required only when :meth:`run` is given an output array or when
        early emission is used.
        """
        raise NotImplementedError(
            f"{type(self).__name__} received an output array but does not "
            "implement convert()"
        )

    # Optional vectorized fast path -------------------------------------
    def converged(self, combination_map: KeyedMap, iteration: int) -> bool:
        """Early-termination test for iterative applications (optional).

        Called after ``post_combine`` of every iteration with the
        (globally combined, identical-on-all-ranks) combination map and
        the 0-based iteration index.  Returning True ends the iteration
        loop before ``SchedArgs.num_iters`` — e.g. k-means stopping once
        centroids move less than a tolerance.  Because the map is
        identical on every rank, any deterministic predicate keeps the
        SPMD ranks in lockstep.  Default: never converge early.
        """
        return False

    def vector_reduce(
        self, data: np.ndarray, start: int, stop: int, red_map: KeyedMap
    ) -> None:
        """Numpy fast path equivalent to the chunk loop over ``[start, stop)``.

        Applications may override; enabled via ``SchedArgs.vectorized``.
        Must produce exactly the state the scalar loop would (tests in
        this repository assert the equivalence for every bundled
        application).
        """
        raise NotImplementedError

    @property
    def has_vector_path(self) -> bool:
        return type(self).vector_reduce is not Scheduler.vector_reduce

    # Optional batch fast path ------------------------------------------
    def make_accumulator(self, start: int, stop: int) -> ColumnarAccumulator:
        """Build the :class:`~repro.core.batch.ColumnarAccumulator` for a
        split covering local elements ``[start, stop)``.

        Applications implementing :meth:`batch_reduce` must override this
        to declare the key window their kernel scatters into (e.g. all
        histogram buckets, or the grid cells a split's positions touch)
        and to supply a freshly constructed reduction object as the row
        prototype: ``ColumnarAccumulator(CountObj(), 0, num_buckets)``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} implements batch_reduce() but not "
            "make_accumulator(); the batch map path needs the key window "
            "and row prototype"
        )

    def batch_reduce(
        self, data: np.ndarray, start: int, stop: int, acc: ColumnarAccumulator
    ) -> None:
        """Batch fast path over ``[start, stop)``: scatter the whole split
        into preallocated columns — zero per-element ``gen_key`` /
        ``accumulate`` calls, zero reduction-map dict writes.

        Kernels update ``acc.column(name)`` with ``np.bincount`` /
        ``np.add.at``-style scatters and must record every touched key in
        ``acc.contrib``.  Must produce exactly the state the scalar loop
        would: present contributions to each key in ascending element
        order (``np.bincount`` and ``np.add.at`` apply updates in input
        order, so this also fixes the float grouping).  Enabled via
        ``EnginePolicy(map_path="batch")`` or the policy advisor; the
        conformance kit diffs it against the scalar oracle.
        """
        raise NotImplementedError

    @property
    def has_batch_path(self) -> bool:
        return type(self).batch_reduce is not Scheduler.batch_reduce

    def _resolve_map_path(self) -> str:
        """The map-phase implementation this run uses for each split.

        ``"auto"`` preserves the historical dispatch — the vector path
        when ``policy.vectorized`` and the application provides one,
        else the scalar loop; batch is opt-in (forced here, or advised
        by :class:`~repro.core.autotune.PolicyAdvisor`).  Forcing a path
        the application does not implement fails with the subclass
        named.
        """
        path = self.policy.engine.map_path
        if path == "auto":
            if self.policy.vectorized and self.has_vector_path:
                return "vector"
            return "scalar"
        if path == "vector" and not self.has_vector_path:
            raise TypeError(
                f"map_path='vector' but {type(self).__name__} does not "
                "implement vector_reduce()"
            )
        if path == "batch" and not self.has_batch_path:
            raise TypeError(
                f"map_path='batch' but {type(self).__name__} does not "
                "implement batch_reduce()"
            )
        return path

    # Optional state-delta hooks ----------------------------------------
    def mutable_state(self) -> dict:
        """Iteration-mutable scheduler state shipped to engine workers.

        The process engine splits worker dispatch into an immutable
        *core* (callbacks, ``SchedArgs``, constants — published once per
        worker lifetime through shared memory and cached worker-side by
        version) and a small per-iteration *delta* carrying the
        combination map plus this dictionary.  The default ships every
        instance attribute that is not parent-owned infrastructure —
        always correct, at the cost of re-shipping everything each
        iteration.  Iterative applications whose ``post_combine``
        mutates little outside the combination map (k-means) override
        this together with :meth:`load_state` to ship only that state.
        Overrides must cover **everything** worker callbacks read that
        changes between iterations; anything omitted is frozen at its
        value when the core was published.
        """
        return {
            name: value
            for name, value in self.__dict__.items()
            if name not in _ENGINE_LOCAL_ATTRS
        }

    def load_state(self, state: dict) -> None:
        """Install a :meth:`mutable_state` payload (worker side)."""
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # API provided by the runtime (paper Table 1, upper half)
    # ------------------------------------------------------------------
    def set_global_combination(self, flag: bool) -> None:
        """Enable/disable global combination (enabled by default).

        Disabling it turns this job into a per-partition preprocessing
        stage whose local output feeds the next Smart job in a pipeline
        (paper Section 3.1).
        """
        self._global_combination = bool(flag)

    def get_combination_map(self) -> KeyedMap:
        """The combination map (global result after a combined run)."""
        return self.combination_map_

    def feed(self, data: np.ndarray) -> None:
        """Space-sharing producer call: copy one time-step's output in.

        Blocks while the circular buffer is full, exactly like the paper's
        producer/consumer coupling (Section 3.2).
        """
        arr = np.array(data, copy=True)  # space sharing requires its own copy
        self._feed_buffer().put(arr)

    def close_feed(self) -> None:
        """Signal that no further time-steps will be fed."""
        self._feed_buffer().close()

    def run(
        self,
        data: np.ndarray | Sequence | None = None,
        out: np.ndarray | None = None,
        *,
        global_offset: int | None = None,
        total_len: int | None = None,
    ) -> Any:
        """Run the analytics, generating a single key per unit chunk.

        Time sharing passes the simulation partition as ``data`` (the
        runtime processes it through a read pointer — no copy unless
        ``SchedArgs.copy_input``).  Space sharing passes ``data=None`` to
        consume the next fed partition.

        Returns ``out`` when provided, else the combination map.
        """
        return self._run_impl(data, out, False, global_offset, total_len)

    def run2(
        self,
        data: np.ndarray | Sequence | None = None,
        out: np.ndarray | None = None,
        *,
        global_offset: int | None = None,
        total_len: int | None = None,
    ) -> Any:
        """Run the analytics, generating multiple keys per unit chunk.

        The window-based applications use this path (``gen_keys`` maps an
        element to every window position it contributes to).
        """
        return self._run_impl(data, out, True, global_offset, total_len)

    def reset(self) -> None:
        """Clear accumulated analytics state (combination map) and context.

        Statistics are preserved; use :meth:`reset_stats` for those.
        """
        self.combination_map_ = KeyedMap()
        self._extra_processed = False
        self.data_ = None
        self.out_ = None

    def reset_stats(self) -> None:
        """Zero the ``run.*`` counters (engine-lifetime counters persist)."""
        self.telemetry.reset(prefix="run.")

    def current_state_nbytes(self) -> int:
        """Approximate bytes held in the combination map right now."""
        return self.combination_map_.state_nbytes()

    def notify_data_changed(self) -> None:
        """Declare that a previously-run input array was rewritten in place.

        The process engine keeps the last partition resident in shared
        memory and skips the copy when :meth:`run` receives the *same,
        unchanged* array again (``SchedArgs.residency``).  An in-place
        producer (a simulation overwriting its output buffer, paper
        Figure 3) must call this between steps so the engine re-copies;
        :class:`~repro.core.time_sharing.TimeSharingDriver` does it
        automatically.  Arrays handed out by the engine's own
        ``step_buffer`` slots need no notification — the engine detects
        those directly and bumps the slot's data epoch itself.
        """
        self._data_version += 1

    # ------------------------------------------------------------------
    # Execution engine + telemetry
    # ------------------------------------------------------------------
    @property
    def engine(self) -> ExecutionEngine:
        """The intra-rank execution engine (created lazily, started once).

        The backend is chosen by the policy's
        :class:`~repro.core.policy.EnginePolicy` at first use and lives
        for the scheduler's lifetime — pooled engines create exactly one
        worker pool (telemetry counter ``engine.pools_created``).  Call
        :meth:`close` to release it.
        """
        if self._engine is None:
            self._engine = create_engine(
                self.policy.engine, telemetry=self.telemetry
            )
            self._engine.start()
        return self._engine

    def close(self) -> None:
        """Shut down the execution engine (worker pools).  Idempotent.

        A closed scheduler may run again: the next run recreates the
        engine (and its pool) from the policy.
        """
        if self._engine is not None:
            self._engine.shutdown()
            self._engine = None

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def use_telemetry(self, recorder: Recorder) -> None:
        """Rebind this scheduler's telemetry to ``recorder``.

        The multi-tenant service hands each job a scoped child recorder
        (:meth:`repro.telemetry.Recorder.scoped`) so concurrent jobs
        sharing one root recorder cannot collide on ``run.*`` names.
        Must be called before the execution engine exists — the engine
        captures the recorder at creation, and a half-rebound scheduler
        would split its counters across two sinks.
        """
        if self._engine is not None:
            raise RuntimeError(
                "use_telemetry() after the engine was created; close() "
                "the scheduler first so the engine rebinds too"
            )
        self.telemetry = recorder
        self.stats = RunStats(recorder)

    def telemetry_snapshot(self) -> dict:
        """One structured snapshot of every runtime statistic.

        Merges the scheduler's recorder (``run.*`` counters,
        ``engine.*`` counters and timers) with the communicator's
        traffic profiler (as ``comm.*`` ops) and live state gauges, so
        harnesses, calibration, and benchmarks read a single view.
        """
        snap = self.telemetry.snapshot()
        snap["engine"] = (
            self._engine.name if self._engine is not None
            else self.policy.engine.backend
        )
        snap["policy"] = self.policy.fingerprint()
        snap["counters"]["run.state_nbytes"] = self.combination_map_.state_nbytes()
        snap["counters"]["run.state_objects"] = len(self.combination_map_)
        profiler = getattr(self.comm, "profiler", None)
        if profiler is not None:
            for op, (calls, nbytes) in profiler.snapshot().items():
                snap["ops"][f"comm.{op}"] = {"calls": calls, "bytes": nbytes}
        return snap

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _feed_buffer(self) -> CircularBuffer:
        if self._fed is None:
            self._fed = CircularBuffer(self.policy.buffer_capacity)
        return self._fed

    def _resolve_layout(
        self, n: int, global_offset: int | None, total_len: int | None, multi_key: bool
    ) -> tuple[int, int]:
        """Determine this partition's global offset and the global length.

        Window-based (multi-key) analytics need positional context.  When
        the caller does not supply it, it is derived collectively from the
        partition sizes (an allgather), matching how in-situ partitions
        are laid out rank by rank.
        """
        if global_offset is not None and total_len is not None:
            return global_offset, total_len
        if self.comm.size == 1:
            return (global_offset or 0), (total_len if total_len is not None else n)
        if not multi_key and global_offset is None and total_len is None:
            # Single-key analytics never read positions globally.
            return 0, n
        sizes = self.comm.allgather(n)
        offset = sum(sizes[: self.comm.rank]) if global_offset is None else global_offset
        total = sum(sizes) if total_len is None else total_len
        return offset, total

    def _run_impl(
        self,
        data: np.ndarray | Sequence | None,
        out: np.ndarray | None,
        multi_key: bool,
        global_offset: int | None,
        total_len: int | None,
    ) -> Any:
        if data is None:
            data = self._feed_buffer().get()
        arr = np.asarray(data)
        if arr.ndim != 1:
            arr = arr.reshape(-1)
        if self.policy.copy_input:
            # Fig. 9 comparison point: an implementation involving an
            # extra copy of the simulation output.
            arr = arr.copy()
        n = int(arr.shape[0])
        offset, total = self._resolve_layout(n, global_offset, total_len, multi_key)
        self.data_ = arr
        self.out_ = out
        self.global_offset_ = offset
        self.total_len_ = total
        self.stats.runs += 1

        policy = self.policy
        self.process_extra_data(policy.extra_data, self.combination_map_)

        engine = self.engine
        engine.begin_run(self, arr, out, multi_key)
        # Scoped per iteration: a key early-emitted in one iteration may be
        # rebuilt by a later one, and only the *final* iteration decides
        # whether the convert sweep below must still write it.
        emitted: set[int] = set()
        fault_policy = policy.resolved_fault_policy
        try:
            for iteration in range(policy.num_iters):
                self.telemetry.inc("run.iterations_run")
                # Replay loop: a worker lost mid-iteration surfaces as
                # EngineFaultError *after* the supervisor respawned the
                # pool.  The combination map is only mutated below, once
                # every block completes, so restarting the iteration from
                # fresh reduction maps is consistent (and, reduction being
                # deterministic, bit-exact with a fault-free run).
                attempt = 1
                while True:
                    emitted = set()
                    red_maps = self._make_reduction_maps()
                    try:
                        for bstart, bstop in iter_blocks(n, policy.block_size):
                            splits = make_splits(
                                bstart, bstop, policy.num_threads, policy.chunk_size
                            )
                            emitted.update(engine.map_splits(splits, red_maps))
                            self.stats.observe_objects(
                                sum(len(m) for m in red_maps)
                                + len(self.combination_map_)
                            )
                    except EngineFaultError:
                        self.telemetry.inc("faults.engine_failures")
                        if (
                            fault_policy.mode != "retry"
                            or attempt >= fault_policy.max_attempts
                        ):
                            raise
                        self.telemetry.inc("faults.replays")
                        time.sleep(fault_policy.backoff_for(attempt))
                        attempt += 1
                        continue
                    break
                # Local combination: per-thread reduction maps fold into the
                # local combination map (Algorithm 1 lines 11-17).
                for red_map in red_maps:
                    self.combination_map_.merge_map(red_map, self.merge)
                # Global combination + redistribution (lines 3-4 of the next
                # iteration happen here as the broadcast back).
                if self._global_combination and self.comm.size > 1:
                    # Read the combine policy fresh each iteration: a
                    # mid-run adaptor may have replaced it below.
                    self.combination_map_ = global_combine(
                        self.comm, self.combination_map_, self.merge,
                        combine=self.policy.combine,
                    )
                    self.telemetry.inc("run.global_combinations")
                self.post_combine(self.combination_map_)
                engine.invalidate_state()
                self.stats.observe_objects(len(self.combination_map_))
                if self.policy_adaptor is not None:
                    # Mid-run adaptation (repro.core.autotune): observes
                    # post-combine state that is identical on every rank,
                    # so any policy replacement happens in lockstep and
                    # takes effect at the next iteration's combination.
                    self.policy_adaptor.observe(self, iteration)
                if self.converged(self.combination_map_, iteration):
                    # The map is identical on all ranks after global
                    # combination, so every rank breaks together.
                    break
        finally:
            engine.end_run()

        if out is not None:
            out_len = out.shape[0]
            for key, red_obj in self.combination_map_.sorted_items():
                if 0 <= key < out_len and key not in emitted:
                    self.convert(red_obj, out, key)
            return out
        return self.combination_map_

    def _make_reduction_maps(self) -> list[KeyedMap]:
        maps: list[KeyedMap] = []
        for _ in range(self.policy.num_threads):
            if self.seed_reduction_maps:
                maps.append(self.combination_map_.clone())
            else:
                maps.append(KeyedMap())
        return maps

    def _reduce_split(
        self,
        split: Split,
        red_map: KeyedMap,
        data: np.ndarray,
        out: np.ndarray | None,
        multi_key: bool,
        emitted_objs: list[tuple[int, RedObj]] | None = None,
    ) -> list[int]:
        """Reduce one split chunk by chunk (Algorithm 2); return emitted keys.

        ``emitted_objs`` is the process engine's capture hook: when given,
        early-emitted objects are appended to it instead of converted here
        (the parent process converts them into its output array).
        """
        self._batch_export = None
        path = self._resolve_map_path()
        if path == "batch":
            return self._reduce_split_batch(split, red_map, data, out, emitted_objs)
        if path == "vector":
            return self._reduce_split_vectorized(split, red_map, data, out, emitted_objs)
        com_map = self.combination_map_
        emitted: list[int] = []
        key_buf: list[int] = []
        # Hot loop: stats are batched per split and map writes skip the
        # dict update when accumulate mutated the existing object in place
        # (the overwhelmingly common case) — a measured ~25% win on the
        # scalar path without changing semantics.
        chunks_n = 0
        accumulates_n = 0
        allow_emission = not self.policy.disable_early_emission
        get_existing = red_map.get
        for chunk in split.chunks(self.policy.chunk_size):
            chunks_n += 1
            if multi_key:
                key_buf.clear()
                self.gen_keys(chunk, data, key_buf, com_map)
                keys: Sequence[int] = key_buf
            else:
                keys = (self.gen_key(chunk, data, com_map),)
            for key in keys:
                existing = get_existing(key)
                red_obj = self.accumulate(chunk, data, existing, key)
                if red_obj is None:
                    raise TypeError(
                        f"{type(self).__name__}.accumulate() returned None "
                        f"for key {key}; accumulate() must return the "
                        "(possibly newly created) reduction object"
                    )
                if red_obj is not existing:
                    red_map[key] = ensure_red_obj(red_obj)
                accumulates_n += 1
                if allow_emission and red_obj.trigger():
                    # Early emission (Algorithm 2 lines 5-7).
                    if emitted_objs is not None:
                        emitted_objs.append((key, red_obj))
                    elif out is not None:
                        self.convert(red_obj, out, key)
                    del red_map[key]
                    emitted.append(key)
        self.telemetry.inc("run.chunks_processed", chunks_n)
        self.telemetry.inc("run.accumulate_calls", accumulates_n)
        if emitted:
            self.telemetry.inc("run.early_emissions", len(emitted))
        return emitted

    def _reduce_split_vectorized(
        self,
        split: Split,
        red_map: KeyedMap,
        data: np.ndarray,
        out: np.ndarray | None,
        emitted_objs: list[tuple[int, RedObj]] | None = None,
    ) -> list[int]:
        """Vectorized fast path: app-provided bulk reduction + trigger sweep."""
        self.vector_reduce(data, split.start, split.stop, red_map)
        n_chunks = -(-len(split) // self.policy.chunk_size)
        self.telemetry.inc("run.chunks_processed", n_chunks)
        # One bulk vector_reduce call covered the whole split; counting it
        # as n_chunks accumulate calls would fake scalar-path activity.
        # Publishing the counter at 0 lets telemetry consumers tell "no
        # scalar work ran" from "counter never recorded".
        self.telemetry.inc("run.vector_reduce_calls")
        self.telemetry.inc("run.accumulate_calls", 0)
        emitted: list[int] = []
        if self.policy.disable_early_emission:
            return emitted
        for key in [k for k, obj in red_map.items() if obj.trigger()]:
            if emitted_objs is not None:
                emitted_objs.append((key, red_map[key]))
            elif out is not None:
                self.convert(red_map[key], out, key)
            del red_map[key]
            emitted.append(key)
        if emitted:
            self.telemetry.inc("run.early_emissions", len(emitted))
        return emitted

    def _reduce_split_batch(
        self,
        split: Split,
        red_map: KeyedMap,
        data: np.ndarray,
        out: np.ndarray | None,
        emitted_objs: list[tuple[int, RedObj]] | None = None,
    ) -> list[int]:
        """Batch fast path: scatter the whole split into a preallocated
        columnar accumulator, then fold touched rows back into the map.

        Bit-exactness: the accumulator is seeded from ``red_map`` before
        the kernel runs, so in-order scatters continue from prior totals
        exactly like scalar in-place mutation, and the fold *replaces*
        touched entries rather than merging subtotals (merging would
        regroup the float additions).  Early emission sweeps the touched
        keys only — the same keys the scalar loop could newly trigger.
        """
        acc = self.make_accumulator(split.start, split.stop)
        acc.load_from(red_map)
        self.batch_reduce(data, split.start, split.stop, acc)
        n_chunks = -(-len(split) // self.policy.chunk_size)
        self.telemetry.inc("run.chunks_processed", n_chunks)
        self.telemetry.inc("run.batch_reduce_calls")
        self.telemetry.inc("run.batch_elements", len(split))
        # Explicit zero: no scalar accumulate() ran on this path (same
        # telemetry contract as the vectorized path above).
        self.telemetry.inc("run.accumulate_calls", 0)
        touched = acc.fold_into(red_map)
        # When the window covered every pre-existing key, the columns now
        # hold the complete post-fold map state; the process engine can
        # ship them onto the columnar wire without repacking objects.
        self._batch_export = acc if acc.complete else None
        emitted: list[int] = []
        if self.policy.disable_early_emission:
            return emitted
        for key in touched.tolist():
            obj = red_map.get(key)
            if obj is not None and obj.trigger():
                if emitted_objs is not None:
                    emitted_objs.append((key, obj))
                elif out is not None:
                    self.convert(obj, out, key)
                del red_map[key]
                emitted.append(key)
        if emitted:
            self.telemetry.inc("run.early_emissions", len(emitted))
        return emitted


def merge_distributed_output(comm: Communicator, out: np.ndarray) -> np.ndarray:
    """Assemble a complete output array from per-rank partial outputs.

    Window-based analytics with early emission write most results into the
    local output of the rank that owned the window (paper Section 4.2);
    only boundary keys flow through global combination.  This helper
    merges every rank's partial output — positions a rank did not write
    must be NaN — and every rank receives the full array.

    The merge is a NaN-aware elementwise allreduce (reduce to the master,
    broadcast back) through :data:`~repro.comm.reduce_ops.NANOVERLAY`:
    partials overlay in rank order, so written positions win exactly as
    they did under the previous sequential overlay of a full allgather.
    The allgather moved O(P·N) per rank; this path moves O(N), and the
    modeled per-rank savings are recorded as the ``merge_output_saved``
    comm op.
    """
    if comm.size == 1:
        return out
    merged = comm.reduce(out, op=NANOVERLAY, root=0)
    merged = comm.bcast(merged, root=0)
    profiler = getattr(comm, "profiler", None)
    if profiler is not None:
        saved = max(comm.size - 2, 0) * int(np.asarray(out).nbytes)
        if saved:
            profiler.record("merge_output_saved", nbytes=saved)
    return merged
