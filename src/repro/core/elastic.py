"""Elastic in-transit tier: a supervised staging *process* pool.

`core.in_transit` maps the paper's Section 6 staging placement onto
ranks of one SPMD communicator — staging dies with the job.  This
module is the elastic upgrade (ROADMAP item 2, modelled on
ElasticBroker's decoupled analytics tier): staging workers are separate
OS processes connected to the simulation side over the framed TCP
protocol of :mod:`repro.comm.tcp`, so they can crash, hang, be killed,
be respawned, and be added or removed between steps without touching
the simulation.

Data path
---------
The simulation side holds an :class:`ElasticTier` and calls
:meth:`~ElasticTier.submit` once per partition.  Frames route
round-robin over the live workers; **credit-based backpressure** bounds
the per-worker in-flight window (``credits`` unacknowledged frames):
``submit`` blocks until the target worker acknowledges, so a slow tier
throttles the simulation instead of buffering unboundedly.

Each worker owns a rank-local :class:`~repro.core.scheduler.Scheduler`
(global combination off) and accumulates every received partition into
its combination map.  Every ``snapshot_every`` processed frames it ships
a **consistency snapshot** (serialized map + frame count) back; the
coordinator keeps the latest CRC-good snapshot per worker plus a replay
log of every frame sent after it.

Recovery state machine (DESIGN.md section 13)
---------------------------------------------
``LIVE -> SUSPECT`` on a closed connection, a stale heartbeat, or an
acknowledgement stall; then, per :class:`~repro.faults.FaultPolicy`:

* ``fail_fast`` — raise :class:`StagingWorkerError`.
* ``retry`` — respawn the process, ``LOAD`` the last snapshot, replay
  the logged frames in their original order, and continue
  (``SUSPECT -> RECOVERING -> LIVE``).  Replay preserves the exact
  per-worker frame sequence, so results are bit-exact with the
  unfaulted run.
* ``degrade`` — exclude the worker (``SUSPECT -> EXCLUDED``): its last
  snapshot stands as its final contribution, the post-snapshot frames
  are dropped with exact accounting (``elastic.frames_lost`` /
  ``elastic.elements_lost``), and subsequent frames rebalance over the
  survivors.

Fault injection: each worker consults the plan per received data frame
— ``comm:crash`` kills the process mid-step, ``comm:delay`` models a
hang, ``network:disconnect`` drops its connection, ``network:slowlink``
slows processing, and ``network:truncate`` corrupts its next snapshot
frame (the coordinator discards it on CRC and falls back to the older
one).

Workers are forked, so ``scheduler_factory`` may be any callable (it is
inherited, not pickled); the fault plan crosses the fork as its
fingerprint string and is re-parsed in the child, keeping injection
deterministic per worker id.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import socket
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from ..comm.tcp import pack_frame, recv_frame
from ..faults import FaultError, FaultPolicy
from .maps import KeyedMap
from .serialization import deserialize_map, serialize_map

if TYPE_CHECKING:  # pragma: no cover
    from ..faults import FaultPlan
    from ..telemetry import Recorder
    from .scheduler import Scheduler

# Frame kinds >= 16: the elastic tier's protocol over the tcp header.
K_W_HELLO = 16  #: worker -> coordinator: registration (source = worker id)
K_W_LOAD = 17  #: coordinator -> worker: install a snapshot (or empty state)
K_W_DATA = 18  #: coordinator -> worker: one partition (tag = frame seq)
K_W_ACK = 19  #: worker -> coordinator: frame processed (tag = frame seq)
K_W_SNAPSHOT = 20  #: worker -> coordinator: consistency snapshot (tag = frames)
K_W_DRAIN = 21  #: coordinator -> worker: request the final map
K_W_FINAL = 22  #: worker -> coordinator: final map payload
K_W_HEARTBEAT = 23  #: worker -> coordinator: liveness probe
K_W_BYE = 24  #: coordinator -> worker: shut down cleanly

#: Default bound on unacknowledged in-flight frames per worker.
DEFAULT_CREDITS = 8
#: Default frames between consistency snapshots.
DEFAULT_SNAPSHOT_EVERY = 4
#: Seconds between worker heartbeat probes.
WORKER_HEARTBEAT_INTERVAL = 0.25
#: Seconds without heartbeat/ack before a worker is declared suspect.
WORKER_TIMEOUT = 5.0
#: Seconds to wait for a (re)spawned worker to register.
SPAWN_TIMEOUT = 15.0
#: Poll interval while blocked on credits or worker registration.
CREDIT_POLL = 0.05

_LIVE = "live"
_STARTING = "starting"
_SUSPECT = "suspect"
_EXCLUDED = "excluded"
_RETIRED = "retired"


class StagingWorkerError(FaultError):
    """A staging worker died or hung and the policy forbids recovery."""


# -- worker process body -----------------------------------------------------


def _worker_main(
    worker_id: int,
    port: int,
    scheduler_factory: Callable[[], "Scheduler"],
    plan_fingerprint: str | None,
    snapshot_every: int,
    heartbeat_interval: float,
    prior_faults: int = 0,
) -> None:
    """Entry point of one staging worker process."""
    from ..faults import FaultPlan, InjectedRankCrash

    plan = FaultPlan.parse(plan_fingerprint) if plan_fingerprint else None
    if plan is not None and prior_faults:
        # A respawned incarnation starts with fresh plan counters;
        # charging the firings that killed its predecessors keeps the
        # fault budget global per worker, so replay converges instead of
        # re-dying at the same frame forever.
        plan.charge(prior_faults, target=worker_id)
    sched = scheduler_factory()
    sched.set_global_combination(False)
    sock = socket.create_connection(("127.0.0.1", port))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    wlock = threading.Lock()
    closing = threading.Event()
    corrupt_next = [False]

    def send(kind: int, tag: int = 0, payload: bytes = b"") -> None:
        frame = pack_frame(kind, worker_id, -1, tag, payload)
        if corrupt_next[0] and payload:
            # Injected truncate: flip the last payload byte after the
            # CRC was computed, so the coordinator's check trips.
            frame = frame[:-1] + bytes([frame[-1] ^ 0xFF])
            corrupt_next[0] = False
        with wlock:
            sock.sendall(frame)

    def beat() -> None:
        while not closing.wait(heartbeat_interval):
            try:
                send(K_W_HEARTBEAT)
            except OSError:
                return

    def consult_plan() -> None:
        if plan is None:
            return
        spec = plan.comm_fault(worker_id, op="frame")
        if spec is not None:
            if spec.kind == "crash":
                os._exit(1)  # simulated process death, no cleanup
            if spec.kind == "delay":
                time.sleep(spec.seconds)
        spec = plan.network_fault(worker_id, op="frame")
        if spec is None:
            return
        if spec.kind == "disconnect":
            sock.close()
            os._exit(2)
        if spec.kind in ("slowlink", "partition"):
            time.sleep(spec.seconds)
        elif spec.kind == "truncate":
            corrupt_next[0] = True

    send(K_W_HELLO)
    threading.Thread(target=beat, name=f"elastic-hb-{worker_id}", daemon=True).start()
    frames_done = 0
    try:
        while True:
            kind, _source, _dest, tag, payload, crc_ok = recv_frame(sock)
            if not crc_ok:
                continue  # corrupt inbound frame: skip, coordinator replays
            if kind == K_W_LOAD:
                state = pickle.loads(payload)
                frames_done = state["frames"]
                restored = (
                    deserialize_map(state["map"]) if state["map"] else KeyedMap()
                )
                sched.combination_map_.replace_contents(restored)
            elif kind == K_W_DATA:
                try:
                    consult_plan()
                except InjectedRankCrash:  # pragma: no cover - defensive
                    os._exit(1)
                sched.run(pickle.loads(payload))
                frames_done += 1
                send(K_W_ACK, tag=tag)
                if snapshot_every and frames_done % snapshot_every == 0:
                    snap = pickle.dumps(
                        {
                            "frames": frames_done,
                            "map": serialize_map(
                                sched.get_combination_map(),
                                sched.policy.wire_format,
                            ),
                        },
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                    send(K_W_SNAPSHOT, tag=frames_done, payload=snap)
            elif kind == K_W_DRAIN:
                final = pickle.dumps(
                    {
                        "frames": frames_done,
                        "map": serialize_map(
                            sched.get_combination_map(), sched.policy.wire_format
                        ),
                    },
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                send(K_W_FINAL, tag=frames_done, payload=final)
            elif kind == K_W_BYE:
                return
    except (ConnectionError, OSError):
        return  # coordinator gone
    finally:
        closing.set()
        try:
            sock.close()
        except OSError:
            pass


# -- coordinator -------------------------------------------------------------


class _Worker:
    """Coordinator-side state for one staging worker."""

    def __init__(self, worker_id: int):
        self.id = worker_id
        self.proc: multiprocessing.process.BaseProcess | None = None
        self.conn: socket.socket | None = None
        self.wlock = threading.Lock()
        self.state = _STARTING
        self.sent = 0  # frames handed to this worker (its local seq)
        self.acked = 0  # frames it has acknowledged
        self.log: deque[tuple[int, bytes, int]] = deque()  # (seq, payload, n_elems)
        self.snap_bytes: bytes | None = None  # latest CRC-good snapshot map
        self.snap_frames = 0  # frames covered by that snapshot
        self.final: bytes | None = None
        self.last_beat = time.monotonic()
        self.deaths = 0  # prior incarnations lost to injected faults


class ElasticTier:
    """Coordinator for an elastic, fault-supervised staging pool.

    Parameters
    ----------
    scheduler_factory:
        Zero-argument callable building a worker's rank-local
        :class:`~repro.core.scheduler.Scheduler` (over a
        :class:`~repro.comm.local.LocalComm`).  Called once in each
        worker process and once on the coordinator (for merging).
    num_workers:
        Initial pool size (grow/shrink later with :meth:`scale_to`).
    policy:
        :class:`~repro.faults.FaultPolicy` (or mode string) governing
        worker recovery; its backoff knobs drive respawn pacing.
    fault_plan:
        Optional plan whose fingerprint is re-parsed inside each worker
        (deterministic per-worker injection) — see the module docstring
        for the kind semantics.
    telemetry:
        Optional recorder: ``elastic.*`` data-path counters and the
        ``faults.*`` recovery counters land here.
    credits:
        Max unacknowledged in-flight frames per worker (backpressure).
    snapshot_every:
        Frames between worker consistency snapshots (0 disables; then
        recovery replays from the beginning).
    """

    def __init__(
        self,
        scheduler_factory: Callable[[], "Scheduler"],
        num_workers: int,
        *,
        policy: "FaultPolicy | str | None" = None,
        fault_plan: "FaultPlan | None" = None,
        telemetry: "Recorder | None" = None,
        credits: int = DEFAULT_CREDITS,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        worker_timeout: float = WORKER_TIMEOUT,
        heartbeat_interval: float = WORKER_HEARTBEAT_INTERVAL,
    ):
        if num_workers < 1:
            raise ValueError(f"need >= 1 worker, got {num_workers}")
        if credits < 1:
            raise ValueError(f"credits must be >= 1, got {credits}")
        self.scheduler_factory = scheduler_factory
        self.policy = (
            FaultPolicy.parse(policy) if policy is not None else FaultPolicy.fail_fast()
        )
        self.fault_plan = fault_plan
        self.telemetry = telemetry
        self.credits = credits
        self.snapshot_every = snapshot_every
        self.worker_timeout = worker_timeout
        self.heartbeat_interval = heartbeat_interval
        self._mp = multiprocessing.get_context("fork")
        self._merge_sched = scheduler_factory()  # merge fn + wire format
        self._server = socket.create_server(("127.0.0.1", 0))
        self._port = self._server.getsockname()[1]
        self._cond = threading.Condition()
        self._workers: dict[int, _Worker] = {}
        self._seq = 0  # global submit counter (routing)
        self._closing = False
        threading.Thread(
            target=self._accept_loop, name="elastic-accept", daemon=True
        ).start()
        for wid in range(num_workers):
            self._workers[wid] = _Worker(wid)
            self._spawn(self._workers[wid])
        self._await_registration(list(self._workers.values()))
        self._gauge()

    # -- pool wiring -------------------------------------------------------
    def _gauge(self) -> None:
        if self.telemetry is not None:
            self.telemetry.set_gauge("elastic.workers", len(self._routable()))

    def _spawn(self, worker: _Worker) -> None:
        plan_fp = self.fault_plan.fingerprint() if self.fault_plan is not None else None
        proc = self._mp.Process(
            target=_worker_main,
            args=(
                worker.id,
                self._port,
                self.scheduler_factory,
                plan_fp,
                self.snapshot_every,
                self.heartbeat_interval,
                worker.deaths,
            ),
            name=f"elastic-worker-{worker.id}",
            daemon=True,
        )
        proc.start()
        with self._cond:
            worker.proc = proc
            worker.state = _STARTING
            if self.telemetry is not None:
                self.telemetry.inc("elastic.spawns")

    def _await_registration(self, workers: list[_Worker]) -> None:
        limit = time.monotonic() + SPAWN_TIMEOUT
        with self._cond:
            while any(w.state == _STARTING for w in workers):
                if time.monotonic() > limit:
                    stuck = [w.id for w in workers if w.state == _STARTING]
                    raise StagingWorkerError(
                        f"staging worker(s) {stuck} never registered within "
                        f"{SPAWN_TIMEOUT}s"
                    )
                self._cond.wait(CREDIT_POLL)

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=self._attach, args=(conn,), name="elastic-attach", daemon=True
            ).start()

    def _attach(self, conn: socket.socket) -> None:
        try:
            kind, source, _dest, _tag, _payload, _crc = recv_frame(conn)
        except (ConnectionError, OSError):
            conn.close()
            return
        if kind != K_W_HELLO:
            conn.close()
            return
        with self._cond:
            worker = self._workers.get(source)
            if worker is None:
                conn.close()
                return
            worker.conn = conn
            worker.state = _LIVE
            worker.last_beat = time.monotonic()
            self._cond.notify_all()
        self._reader_loop(worker, conn)

    def _reader_loop(self, worker: _Worker, conn: socket.socket) -> None:
        try:
            while True:
                kind, _source, _dest, tag, payload, crc_ok = recv_frame(conn)
                with self._cond:
                    if kind == K_W_ACK:
                        worker.acked = max(worker.acked, tag + 1)
                        worker.last_beat = time.monotonic()
                    elif kind == K_W_SNAPSHOT:
                        if crc_ok:
                            state = pickle.loads(payload)
                            worker.snap_bytes = state["map"]
                            worker.snap_frames = state["frames"]
                            while worker.log and worker.log[0][0] < worker.snap_frames:
                                worker.log.popleft()
                            if self.telemetry is not None:
                                self.telemetry.inc("elastic.snapshots")
                        elif self.telemetry is not None:
                            self.telemetry.inc("elastic.snapshots_corrupt")
                    elif kind == K_W_FINAL and crc_ok:
                        worker.final = payload
                    elif kind == K_W_HEARTBEAT:
                        worker.last_beat = time.monotonic()
                    self._cond.notify_all()
        except (ConnectionError, OSError):
            pass
        finally:
            with self._cond:
                if worker.conn is conn and worker.state == _LIVE:
                    worker.state = _SUSPECT
                self._cond.notify_all()

    # -- liveness and recovery ---------------------------------------------
    def _stale(self, worker: _Worker) -> bool:
        if worker.proc is not None and not worker.proc.is_alive():
            return True
        return (time.monotonic() - worker.last_beat) > self.worker_timeout

    def _routable(self) -> list[_Worker]:
        return [
            w
            for w in sorted(self._workers.values(), key=lambda w: w.id)
            if w.state in (_LIVE, _STARTING, _SUSPECT)
        ]

    def _recover(self, worker: _Worker) -> None:
        """Apply the fault policy to a suspect worker."""
        started = time.perf_counter()
        if self.telemetry is not None:
            self.telemetry.inc("faults.launch_failures")
        if worker.proc is not None and worker.proc.is_alive():
            worker.proc.terminate()  # hung: reclaim the process
            worker.proc.join(timeout=2.0)
        worker.deaths += 1
        if self.policy.mode == "retry":
            # The attempt budget is per worker across its whole lifetime,
            # not per recovery call: a worker that keeps dying between
            # recoveries must exhaust max_attempts, not loop forever.
            while True:
                if worker.deaths >= self.policy.max_attempts:
                    raise StagingWorkerError(
                        f"staging worker {worker.id} failed and "
                        f"{self.policy.max_attempts} attempts are exhausted"
                    )
                if self.telemetry is not None:
                    self.telemetry.inc("faults.retries")
                delay = self.policy.backoff_for(worker.deaths)
                if self.telemetry is not None:
                    self.telemetry.add_time("faults.backoff_seconds", delay)
                time.sleep(delay)
                try:
                    self._respawn_and_replay(worker)
                    break
                except StagingWorkerError:
                    worker.deaths += 1
            if self.telemetry is not None:
                self.telemetry.add_time(
                    "faults.recovery_seconds", time.perf_counter() - started
                )
            return
        if self.policy.mode == "degrade":
            with self._cond:
                worker.state = _EXCLUDED
                lost_frames = len(worker.log)
                lost_elems = sum(n for _seq, _payload, n in worker.log)
                worker.log.clear()
                worker.sent = worker.acked = worker.snap_frames
            if self.telemetry is not None:
                self.telemetry.inc("elastic.workers_dropped")
                self.telemetry.inc("elastic.frames_lost", lost_frames)
                self.telemetry.inc("elastic.elements_lost", lost_elems)
            self._gauge()
            if not self._routable():
                raise StagingWorkerError("every staging worker has been excluded")
            return
        raise StagingWorkerError(
            f"staging worker {worker.id} died or hung (policy: fail_fast)"
        )

    def _respawn_and_replay(self, worker: _Worker) -> None:
        """Respawn ``worker``, restore its snapshot, replay its log."""
        self._spawn(worker)
        self._await_registration([worker])
        with self._cond:
            load = pickle.dumps(
                {"frames": worker.snap_frames, "map": worker.snap_bytes},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            worker.acked = worker.snap_frames
            worker.sent = worker.snap_frames + len(worker.log)
            replay = list(worker.log)
        try:
            self._send_raw(worker, K_W_LOAD, 0, load)
            for seq, payload, _n in replay:
                self._send_raw(worker, K_W_DATA, seq, payload)
        except OSError as exc:
            raise StagingWorkerError(
                f"staging worker {worker.id} died again during replay"
            ) from exc
        if self.telemetry is not None:
            self.telemetry.inc("elastic.replays")
            self.telemetry.inc("elastic.frames_replayed", len(replay))

    def _send_raw(self, worker: _Worker, kind: int, tag: int, payload: bytes) -> None:
        with self._cond:
            conn = worker.conn
        if conn is None:
            raise OSError("worker has no connection")
        with worker.wlock:
            conn.sendall(pack_frame(kind, -1, worker.id, tag, payload))

    # -- data path ---------------------------------------------------------
    def submit(self, partition: np.ndarray) -> None:
        """Forward one partition to the tier (blocks on credits)."""
        arr = np.asarray(partition)
        payload = pickle.dumps(arr, protocol=pickle.HIGHEST_PROTOCOL)
        seq = self._seq
        self._seq += 1
        while True:
            routable = self._routable()
            if not routable:
                raise StagingWorkerError("no staging workers left to route to")
            worker = routable[seq % len(routable)]
            try:
                self._send_with_credits(worker, payload, int(arr.size))
                if self.telemetry is not None:
                    self.telemetry.inc("elastic.frames_forwarded")
                    self.telemetry.inc("elastic.bytes_forwarded", len(payload))
                return
            except _WorkerDown:
                self._recover(worker)  # then re-route this partition

    def _send_with_credits(self, worker: _Worker, payload: bytes, n_elems: int) -> None:
        waited = 0.0
        last_progress = time.monotonic()
        seen_acked = -1
        with self._cond:
            while (
                worker.state == _LIVE
                and worker.sent - worker.acked >= self.credits
            ):
                t0 = time.monotonic()
                self._cond.wait(CREDIT_POLL)
                waited += time.monotonic() - t0
                if worker.acked != seen_acked:
                    # Ack progress is the liveness signal that matters: a
                    # hung worker's heartbeat thread keeps beating, but
                    # its frame loop stops acknowledging.
                    seen_acked = worker.acked
                    last_progress = time.monotonic()
                elif time.monotonic() - last_progress > self.worker_timeout:
                    worker.state = _SUSPECT
                if self._stale(worker):
                    worker.state = _SUSPECT
            if worker.state != _LIVE:
                raise _WorkerDown(worker.id)
            seq = worker.sent
            worker.sent += 1
            worker.log.append((seq, payload, n_elems))
        if waited and self.telemetry is not None:
            self.telemetry.add_time("elastic.credit_wait_seconds", waited)
        try:
            self._send_raw(worker, K_W_DATA, seq, payload)
        except OSError:
            with self._cond:
                if worker.state == _LIVE:
                    worker.state = _SUSPECT
            raise _WorkerDown(worker.id) from None

    def _await_quiescent(self, worker: _Worker) -> None:
        """Block until ``worker`` has acknowledged everything sent."""
        limit = time.monotonic() + self.worker_timeout
        with self._cond:
            while worker.state == _LIVE and worker.acked < worker.sent:
                self._cond.wait(CREDIT_POLL)
                if self._stale(worker):
                    worker.state = _SUSPECT
                if time.monotonic() > limit and worker.acked < worker.sent:
                    worker.state = _SUSPECT
            if worker.state != _LIVE:
                raise _WorkerDown(worker.id)

    # -- elasticity --------------------------------------------------------
    def scale_to(self, n: int) -> None:
        """Grow or shrink the live pool to ``n`` workers (between steps).

        Growing spawns fresh (empty) workers that join the routing set;
        shrinking drains the highest-id live workers — their final maps
        are retained and merged at :meth:`drain` — and removes them from
        routing.
        """
        if n < 1:
            raise ValueError(f"need >= 1 worker, got {n}")
        if self.telemetry is not None:
            self.telemetry.inc("elastic.scale_events")
        current = [w for w in self._routable()]
        if n > len(current):
            fresh = []
            next_id = max(self._workers) + 1
            for wid in range(next_id, next_id + (n - len(current))):
                worker = _Worker(wid)
                self._workers[wid] = worker
                self._spawn(worker)
                fresh.append(worker)
            self._await_registration(fresh)
        elif n < len(current):
            for worker in sorted(current, key=lambda w: w.id)[n:]:
                self._retire(worker)
        self._gauge()

    def _retire(self, worker: _Worker) -> None:
        while True:
            try:
                self._await_quiescent(worker)
                worker.final = None
                self._send_raw(worker, K_W_DRAIN, 0, b"")
                self._await_final(worker)
            except (_WorkerDown, OSError):
                self._recover(worker)
                if worker.state == _EXCLUDED:
                    return  # degrade: snapshot stands as its contribution
                continue
            break
        with self._cond:
            worker.state = _RETIRED
        try:
            self._send_raw(worker, K_W_BYE, 0, b"")
        except OSError:
            pass

    def _await_final(self, worker: _Worker) -> None:
        limit = time.monotonic() + self.worker_timeout
        with self._cond:
            while worker.state == _LIVE and worker.final is None:
                self._cond.wait(CREDIT_POLL)
                if self._stale(worker) or time.monotonic() > limit:
                    if worker.final is None:
                        worker.state = _SUSPECT
            if worker.final is None:
                raise _WorkerDown(worker.id)

    # -- results -----------------------------------------------------------
    def drain(self) -> KeyedMap:
        """Collect every contribution and merge deterministically.

        Live workers are drained (with supervision: a death mid-drain is
        recovered per the policy); excluded workers contribute their
        last snapshot; retired workers their stored final.  Merging runs
        in worker-id order, so the result is independent of completion
        timing.
        """
        for worker in sorted(self._workers.values(), key=lambda w: w.id):
            if worker.state not in (_LIVE, _SUSPECT, _STARTING):
                continue
            while True:
                try:
                    self._await_quiescent(worker)
                    worker.final = None
                    self._send_raw(worker, K_W_DRAIN, 0, b"")
                    self._await_final(worker)
                except (_WorkerDown, OSError):
                    self._recover(worker)
                    if worker.state == _EXCLUDED:
                        break
                    continue
                break
        result = KeyedMap()
        merge = self._merge_sched.merge
        for worker in sorted(self._workers.values(), key=lambda w: w.id):
            contribution: bytes | None
            if worker.state == _EXCLUDED:
                contribution = worker.snap_bytes
            else:
                state = pickle.loads(worker.final) if worker.final else None
                contribution = state["map"] if state else None
            if contribution:
                result.merge_map(deserialize_map(contribution), merge)
        self._merge_sched.post_combine(result)
        return result

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        self._closing = True
        for worker in self._workers.values():
            try:
                self._send_raw(worker, K_W_BYE, 0, b"")
            except OSError:
                pass
        try:
            self._server.close()
        except OSError:
            pass
        for worker in self._workers.values():
            if worker.proc is not None:
                worker.proc.join(timeout=2.0)
                if worker.proc.is_alive():
                    worker.proc.terminate()
            if worker.conn is not None:
                try:
                    worker.conn.close()
                except OSError:
                    pass
        self._merge_sched.close()

    def __enter__(self) -> "ElasticTier":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class _WorkerDown(Exception):
    """Internal: the targeted worker is not live (triggers recovery)."""

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        super().__init__(f"worker {worker_id} down")
