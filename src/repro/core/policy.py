"""Layered runtime configuration policies.

The runtime's configuration surface is a composition of small
per-concern policy objects rather than one flat knob bag:

* :class:`EnginePolicy` — *where* the intra-rank reduction runs: the
  execution backend, its worker count, and the process engine's
  input-residency mode.
* :class:`CombinePolicy` — *how* global combination moves and merges
  maps: the combination algorithm and the wire format.
* :class:`ExecutionPolicy` — the complete runtime configuration: an
  engine policy, a combine policy, a
  :class:`~repro.faults.FaultPolicy`, and the iteration/block shape
  (chunk size, iterations, block size, vectorization, the space-sharing
  buffer capacity, and the paper's Fig-9/Fig-11 comparison toggles).

Every policy owns its own ``validate()`` / ``fingerprint()`` /
``parse()``; validity rules live here and **only** here — the
:class:`~repro.core.sched_args.SchedArgs` facade and the conformance
matrix (:mod:`repro.verify.matrix`) both lower onto these objects, so
a knob value rejected anywhere is rejected everywhere with the same
message.

Fingerprints are flat ``key=value`` comma token strings using the same
vocabulary as the conformance matrix (``engine=``, ``threads=``,
``wire=``, ``algo=``, ``residency=``, ``fault=``, ...), and
``ExecutionPolicy.parse(policy.fingerprint())`` round-trips exactly
(``extra_data`` is the one field a fingerprint cannot carry — it is an
arbitrary application object and is excluded by contract).

:meth:`ExecutionPolicy.auto` closes the perfmodel→telemetry→config
loop: it asks :class:`repro.core.autotune.PolicyAdvisor` — backed by
:mod:`repro.perfmodel.costmodel` — to choose the engine, combine
algorithm, and wire format for a described workload instead of the user
hand-picking them.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Any

from ..faults import FaultPolicy

__all__ = [
    "COMBINE_ALGORITHMS",
    "ENGINE_BACKENDS",
    "MAP_PATHS",
    "RESIDENCY_MODES",
    "WIRE_FORMATS",
    "CombinePolicy",
    "EnginePolicy",
    "ExecutionPolicy",
    "fault_fingerprint",
    "parse_fault",
    "reset_warn_once",
    "warn_once",
]

#: Execution backends accepted by :attr:`EnginePolicy.backend`.
ENGINE_BACKENDS = ("serial", "thread", "process")
#: Process-engine input-residency modes.
RESIDENCY_MODES = ("auto", "off")
#: Map-phase execution paths (:attr:`EnginePolicy.map_path`).
MAP_PATHS = ("auto", "scalar", "vector", "batch")
#: Global-combination algorithms.
COMBINE_ALGORITHMS = ("gather", "tree", "allreduce")
#: Map wire formats (the single source; ``repro.core.serialization``
#: imports this constant).
WIRE_FORMATS = ("pickle", "columnar")


# ----------------------------------------------------------------------
# Once-per-process deprecation warnings
# ----------------------------------------------------------------------
_WARNED: set[str] = set()


def warn_once(
    key: str,
    message: str,
    category: type[Warning] = DeprecationWarning,
    stacklevel: int = 3,
) -> None:
    """Emit ``message`` at most once per process per ``key``.

    Deprecations on hot construction paths (``SchedArgs`` is built once
    per config in a thousand-config conformance run) must not spam; one
    process-lifetime warning is enough to steer a migration.
    """
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, category, stacklevel=stacklevel)


def reset_warn_once() -> None:
    """Forget which once-per-process warnings already fired (test hook)."""
    _WARNED.clear()


# ----------------------------------------------------------------------
# Fault-policy fingerprints
# ----------------------------------------------------------------------
_FAULT_DEFAULT = FaultPolicy()


def fault_fingerprint(policy: FaultPolicy) -> str:
    """Compact text form of a :class:`~repro.faults.FaultPolicy`.

    ``mode`` alone when every knob is default, else
    ``mode:attempts=N:backoff=F:factor=F:deadline=F`` with
    default-valued parts omitted.  ``parse_fault`` round-trips it.
    """
    parts = [policy.mode]
    if policy.max_attempts != _FAULT_DEFAULT.max_attempts:
        parts.append(f"attempts={policy.max_attempts}")
    if policy.backoff != _FAULT_DEFAULT.backoff:
        parts.append(f"backoff={policy.backoff:g}")
    if policy.backoff_factor != _FAULT_DEFAULT.backoff_factor:
        parts.append(f"factor={policy.backoff_factor:g}")
    if policy.backoff_cap != _FAULT_DEFAULT.backoff_cap:
        parts.append(f"cap={policy.backoff_cap:g}")
    if policy.backoff_jitter != _FAULT_DEFAULT.backoff_jitter:
        parts.append(f"jitter={policy.backoff_jitter:g}")
    if policy.backoff_seed != _FAULT_DEFAULT.backoff_seed:
        parts.append(f"bseed={policy.backoff_seed}")
    if policy.task_deadline is not None:
        parts.append(f"deadline={policy.task_deadline:g}")
    return ":".join(parts)


def parse_fault(token: str) -> FaultPolicy:
    """Inverse of :func:`fault_fingerprint`."""
    head, *rest = token.strip().split(":")
    kwargs: dict[str, Any] = {}
    names = {
        "attempts": ("max_attempts", int),
        "backoff": ("backoff", float),
        "factor": ("backoff_factor", float),
        "cap": ("backoff_cap", float),
        "jitter": ("backoff_jitter", float),
        "bseed": ("backoff_seed", int),
        "deadline": ("task_deadline", float),
    }
    for part in rest:
        key, _, value = part.partition("=")
        if key not in names:
            raise ValueError(f"unknown fault-policy knob {key!r} in {token!r}")
        name, cast = names[key]
        kwargs[name] = cast(value)
    return FaultPolicy(mode=head, **kwargs)


# ----------------------------------------------------------------------
# Per-concern policies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EnginePolicy:
    """Where the intra-rank reduction runs.

    Parameters
    ----------
    backend:
        ``"serial"`` (in-order loop, deterministic — the default),
        ``"thread"`` (persistent thread pool), or ``"process"``
        (persistent process pool over shared-memory input).
    num_threads:
        Workers per pool — the reduction phase's split count.
    residency:
        Process-engine input residency: ``"auto"`` keeps partition
        segments resident across runs; ``"off"`` restores
        segment-per-run.
    map_path:
        Which map-phase implementation reduces a split: ``"auto"``
        (the default — the scheduler picks the fastest path the
        application implements, honouring ``vectorized``),
        ``"scalar"`` (the paper's per-chunk ``gen_key``/``accumulate``
        loop), ``"vector"`` (the application's ``vector_reduce`` numpy
        path), or ``"batch"`` (the application's ``batch_reduce``
        scatter kernels over a preallocated
        :class:`~repro.core.batch.ColumnarAccumulator` — zero
        per-element emission).  Forcing a path the application does not
        implement raises at run time with the subclass named.
    """

    backend: str = "serial"
    num_threads: int = 1
    residency: str = "auto"
    map_path: str = "auto"

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ValueError` on any out-of-domain knob."""
        if self.backend not in ENGINE_BACKENDS:
            raise ValueError(
                f"engine must be one of {ENGINE_BACKENDS}, got {self.backend!r}"
            )
        if self.num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {self.num_threads}")
        if self.residency not in RESIDENCY_MODES:
            raise ValueError(
                f"residency must be 'auto' or 'off', got {self.residency!r}"
            )
        if self.map_path not in MAP_PATHS:
            raise ValueError(
                f"map_path must be one of {MAP_PATHS}, got {self.map_path!r}"
            )

    def fingerprint(self) -> str:
        return (
            f"engine={self.backend},threads={self.num_threads},"
            f"residency={self.residency},map={self.map_path}"
        )

    @classmethod
    def parse(cls, text: str) -> "EnginePolicy":
        kwargs = _tokens(text, {
            "engine": ("backend", str),
            "threads": ("num_threads", int),
            "residency": ("residency", str),
            "map": ("map_path", str),
        })
        return cls(**kwargs)


@dataclass(frozen=True)
class CombinePolicy:
    """How global combination moves and merges combination maps.

    Parameters
    ----------
    algorithm:
        ``"gather"`` (merge-on-master), ``"tree"`` (binomial reduce), or
        ``"allreduce"`` (contiguous elementwise reduce of packed
        records; falls back to gather when the schema is ineligible).
    wire_format:
        ``"pickle"`` (per-object payloads, the paper's design point) or
        ``"columnar"`` (contiguous keys + records arrays with per-field
        ufunc merges; schemaless maps fall back to pickle).
    """

    algorithm: str = "gather"
    wire_format: str = "pickle"

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ValueError` on any out-of-domain knob."""
        if self.algorithm not in COMBINE_ALGORITHMS:
            raise ValueError(
                f"combine_algorithm must be 'gather', 'tree', or 'allreduce', "
                f"got {self.algorithm!r}"
            )
        if self.wire_format not in WIRE_FORMATS:
            raise ValueError(
                f"wire_format must be 'pickle' or 'columnar', "
                f"got {self.wire_format!r}"
            )

    def fingerprint(self) -> str:
        return f"algo={self.algorithm},wire={self.wire_format}"

    @classmethod
    def parse(cls, text: str) -> "CombinePolicy":
        kwargs = _tokens(text, {
            "algo": ("algorithm", str),
            "wire": ("wire_format", str),
        })
        return cls(**kwargs)


@dataclass(frozen=True)
class ExecutionPolicy:
    """The complete runtime configuration, composed of layered policies.

    The scheduler, the execution engines, the combine paths, and the
    in-situ drivers all consume this object (``Scheduler(policy)``);
    :class:`~repro.core.sched_args.SchedArgs` remains as a thin facade
    that lowers onto it.

    Flat read-only views (``num_threads``, ``wire_format``,
    ``resolved_engine``, ...) mirror the facade's attribute names so
    code written against ``SchedArgs`` reads a policy unchanged.
    """

    engine: EnginePolicy = field(default_factory=EnginePolicy)
    combine: CombinePolicy = field(default_factory=CombinePolicy)
    fault: FaultPolicy = field(default_factory=FaultPolicy)
    chunk_size: int = 1
    num_iters: int = 1
    block_size: int | None = None
    extra_data: Any = None
    vectorized: bool = False
    buffer_capacity: int = 4
    copy_input: bool = False
    disable_early_emission: bool = False

    def __post_init__(self) -> None:
        # Normalize the fault field (a mode string is accepted sugar) so
        # two equal policies compare equal however they were spelled.
        object.__setattr__(self, "fault", FaultPolicy.parse(self.fault))
        self.validate()

    # -- validation (the single source of the runtime's validity rules)
    def validate(self) -> None:
        """Raise :class:`ValueError` on any out-of-domain knob, at any layer."""
        self.engine.validate()
        self.combine.validate()
        FaultPolicy.parse(self.fault)  # raises on an unknown mode
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.num_iters < 1:
            raise ValueError(f"num_iters must be >= 1, got {self.num_iters}")
        if self.block_size is not None and self.block_size < 1:
            raise ValueError(
                f"block_size must be >= 1 or None, got {self.block_size}"
            )
        if self.buffer_capacity < 1:
            raise ValueError(
                f"buffer_capacity must be >= 1, got {self.buffer_capacity}"
            )

    # -- fingerprint / parse -------------------------------------------
    def fingerprint(self) -> str:
        """Flat ``key=value`` token string; ``parse`` round-trips it.

        ``extra_data`` is excluded by contract (an arbitrary application
        object has no canonical text form); every other field is
        carried.
        """
        return ",".join((
            self.engine.fingerprint(),
            self.combine.fingerprint(),
            f"fault={fault_fingerprint(FaultPolicy.parse(self.fault))}",
            f"chunk={self.chunk_size}",
            f"iters={self.num_iters}",
            f"block={self.block_size if self.block_size is not None else 0}",
            f"vec={int(self.vectorized)}",
            f"capacity={self.buffer_capacity}",
            f"copy={int(self.copy_input)}",
            f"hold={int(self.disable_early_emission)}",
        ))

    @classmethod
    def parse(cls, text: str) -> "ExecutionPolicy":
        """Inverse of :meth:`fingerprint` (unknown keys are rejected)."""
        engine: dict[str, Any] = {}
        combine: dict[str, Any] = {}
        top: dict[str, Any] = {}
        casts = {
            "engine": (engine, "backend", str),
            "threads": (engine, "num_threads", int),
            "residency": (engine, "residency", str),
            "map": (engine, "map_path", str),
            "algo": (combine, "algorithm", str),
            "wire": (combine, "wire_format", str),
            "fault": (top, "fault", parse_fault),
            "chunk": (top, "chunk_size", int),
            "iters": (top, "num_iters", int),
            "block": (top, "block_size", lambda v: int(v) or None),
            "vec": (top, "vectorized", _parse_bool),
            "capacity": (top, "buffer_capacity", int),
            "copy": (top, "copy_input", _parse_bool),
            "hold": (top, "disable_early_emission", _parse_bool),
        }
        for token in text.replace(";", ",").split(","):
            token = token.strip()
            if not token:
                continue
            key, _, value = token.partition("=")
            key = key.strip()
            if key not in casts:
                raise ValueError(f"unknown policy axis {key!r} in {text!r}")
            table, name, cast = casts[key]
            table[name] = cast(value.strip())
        return cls(
            engine=EnginePolicy(**engine),
            combine=CombinePolicy(**combine),
            **top,
        )

    # -- construction helpers ------------------------------------------
    @classmethod
    def coerce(cls, value: "ExecutionPolicy | Any") -> "ExecutionPolicy":
        """An :class:`ExecutionPolicy` from a policy or anything that
        lowers to one (``SchedArgs`` exposes ``to_policy()``)."""
        if isinstance(value, cls):
            return value
        to_policy = getattr(value, "to_policy", None)
        if to_policy is not None:
            return to_policy()
        raise TypeError(
            "expected an ExecutionPolicy or an object with to_policy() "
            f"(e.g. SchedArgs), got {type(value).__name__}"
        )

    @classmethod
    def auto(cls, **hints: Any) -> "ExecutionPolicy":
        """Let the cost model pick the engine / combine / wire knobs.

        Delegates to :class:`repro.core.autotune.PolicyAdvisor` — see
        its ``advise()`` for the accepted workload hints (``elements``,
        ``ranks``, ``threads``, ``key_estimate``, ``schema_mergeable``,
        ``has_vector_path``, ...).
        """
        from .autotune import PolicyAdvisor  # deferred: autotune imports perfmodel

        telemetry = hints.pop("telemetry", None)
        machine = hints.pop("machine", None)
        return PolicyAdvisor(machine=machine, telemetry=telemetry).advise(**hints)

    def evolve(self, **changes: Any) -> "ExecutionPolicy":
        """A copy with ``changes`` applied (validated on construction)."""
        return replace(self, **changes)

    # -- flat compatibility views (the SchedArgs vocabulary) -----------
    @property
    def num_threads(self) -> int:
        return self.engine.num_threads

    @property
    def residency(self) -> str:
        return self.engine.residency

    @property
    def map_path(self) -> str:
        return self.engine.map_path

    @property
    def resolved_engine(self) -> str:
        """The effective backend name (facade-compatible spelling)."""
        return self.engine.backend

    @property
    def combine_algorithm(self) -> str:
        return self.combine.algorithm

    @property
    def wire_format(self) -> str:
        return self.combine.wire_format

    @property
    def fault_policy(self) -> FaultPolicy:
        return self.fault

    @property
    def resolved_fault_policy(self) -> FaultPolicy:
        """The effective fault policy (facade-compatible spelling)."""
        return FaultPolicy.parse(self.fault)

    def to_policy(self) -> "ExecutionPolicy":
        """Self (so ``coerce`` treats policies and facades uniformly)."""
        return self


def _parse_bool(value: str) -> bool:
    return value not in ("0", "False", "false")


def _tokens(text: str, casts: dict) -> dict:
    """Parse a ``key=value`` comma token string through a cast table."""
    kwargs: dict[str, Any] = {}
    for token in text.replace(";", ",").split(","):
        token = token.strip()
        if not token:
            continue
        key, _, value = token.partition("=")
        key = key.strip()
        if key not in casts:
            raise ValueError(f"unknown policy axis {key!r} in {text!r}")
        name, cast = casts[key]
        kwargs[name] = cast(value.strip())
    return kwargs


def _policy_field_names() -> tuple[str, ...]:  # pragma: no cover - introspection aid
    return tuple(f.name for f in fields(ExecutionPolicy))
