"""Pluggable intra-rank execution engines (``SchedArgs.engine``).

* :class:`SerialEngine` — deterministic in-order loop (the reference).
* :class:`ThreadEngine` — persistent thread pool, one per scheduler
  lifetime (the paper's OpenMP thread-team analogue).
* :class:`ProcessEngine` — persistent process pool over a
  shared-memory view of the partition (GIL-free).

All three produce bit-identical combination maps and outputs; the
equivalence matrix in ``tests/core/test_engines.py`` asserts it for
every bundled analytics.
"""

from .base import ExecutionEngine, ReduceFn, create_engine
from .process import ProcessEngine
from .serial import SerialEngine
from .thread import ThreadEngine

__all__ = [
    "ExecutionEngine",
    "ProcessEngine",
    "ReduceFn",
    "SerialEngine",
    "ThreadEngine",
    "create_engine",
]
