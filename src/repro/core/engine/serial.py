"""Serial engine: the deterministic in-order reduction path."""

from __future__ import annotations

from typing import Iterable

from ..chunk import Split
from ..maps import KeyedMap
from .base import ExecutionEngine


class SerialEngine(ExecutionEngine):
    """Reduce splits sequentially on the calling thread.

    The reference backend: deterministic split order, no pool, no
    synchronization — appropriate on single-core hosts and the baseline
    every other engine is checked against for bit-identical results.

    Input residency is trivially free here: the reduction reads the
    caller's array through the read pointer, so the base
    :meth:`~repro.core.engine.base.ExecutionEngine.step_buffer` slots
    (plain resident numpy arrays) already give double-buffered drivers
    their zero-copy steady state.
    """

    name = "serial"
    deterministic = True

    def map_splits(self, splits: Iterable[Split], red_maps: list[KeyedMap]) -> set[int]:
        reduce_fn = self._reduce_fn()
        emitted: set[int] = set()
        for split in splits:
            emitted.update(self._timed_reduce(reduce_fn, split, red_maps[split.thread_id]))
        return emitted
