"""Process engine: GIL-free reduction over shared-memory input.

Workers are a persistent ``multiprocessing`` pool (created once per
scheduler lifetime, like the thread engine's pool).  Per run, the
partition is placed in ``multiprocessing.shared_memory`` exactly once;
each worker reduces zero-copy numpy views of that segment — only the
per-split reduction maps and the (small) scheduler state cross the
process boundary, serialized with the same wire format global
combination uses.  This is the first backend that bypasses the GIL for
the scalar chunk loop and the vectorized path alike.

Protocol per block:

1. the parent serializes a stripped scheduler clone (callbacks +
   combination map, no data/comm/telemetry) and each split's reduction
   map (with the scheduler's configured wire format — columnar maps
   cross the process boundary as contiguous packed buffers);
2. each worker attaches to the shared segment, rebuilds the scheduler,
   runs the ordinary ``_reduce_split`` over its split, and returns the
   updated reduction map, any early-emitted reduction objects, and its
   telemetry counter deltas.  Large return payloads travel through a
   worker-created shared-memory segment (the parent copies and unlinks
   it) instead of the pool's result pipe;
3. the parent folds the maps back into ``red_maps`` via the trusted
   bulk path, converts emitted objects into the output array
   (emission-at-combination semantics are preserved bit for bit), and
   merges the counters into the unified recorder.

Supervision: when a :class:`~repro.faults.FaultPlan` is installed on the
scheduler or ``SchedArgs.fault_policy`` is not ``fail_fast``, dispatch
switches from ``pool.map`` to a supervised ``apply_async`` loop.  The
supervisor watches pool health (worker pids/exit codes) and per-worker
heartbeat timestamps; a dead or hung worker triggers pool respawn, and
the outcome follows the policy — ``retry`` raises
:class:`~repro.faults.EngineFaultError` so the scheduler replays the
iteration from the last consistent combination map, ``degrade`` folds
the completed splits and records the dropped ones, ``fail_fast``
raises.  With no plan and the default policy the fast ``pool.map`` path
is byte-for-byte the unsupervised one, so healthy runs pay nothing.
"""

from __future__ import annotations

import copy
import itertools
import multiprocessing as mp
import os
import pickle
import time
from contextlib import contextmanager
from multiprocessing import shared_memory
from pathlib import Path
from typing import Iterable

import numpy as np

from ...faults import EngineFaultError, FaultPlan, FaultPolicy
from ...telemetry import Recorder
from ..chunk import Split
from ..maps import KeyedMap
from ..serialization import deserialize_map, serialize_map, wire_format_of
from .base import ExecutionEngine

#: Return payloads at least this large travel via a shared-memory segment
#: instead of the pool's result pipe (pipe transfers re-copy through the
#: pickle layer; shm is one bulk copy each side).
_SHM_RETURN_MIN = 1 << 16

#: Prefix of worker-created return segments: ``smartret-<pid>-<seq>``.
#: Naming them lets the parent reap orphans left by a killed worker
#: (segments exported but never returned through the result pipe).
_RETURN_PREFIX = "smartret"

#: Supervisor poll interval while tasks are outstanding.
_POLL_SECONDS = 0.005

#: After damage is detected, how long to keep draining without any new
#: completion before in-flight tasks are declared lost.
_GRACE_SECONDS = 0.2


@contextmanager
def _untracked_shm():
    """Suppress resource-tracker registration for a SharedMemory call.

    Segment lifetimes here are owned explicitly (the parent unlinks its
    input segment in ``end_run``; return segments are unlinked by the
    parent as soon as they are drained).  On Python < 3.13 creating or
    attaching would also register the segment with the resource tracker,
    which would then warn about — and try to re-unlink — segments it
    does not own.
    """
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        yield
    finally:
        resource_tracker.register = original_register


#: Process-local cache of attached shared-memory segments, keyed by name.
#: A worker serves many splits of the same run; re-attaching per task
#: would churn file descriptors.  Replaced whenever a new segment name
#: arrives (one run is in flight at a time per engine).
_worker_segments: dict[str, shared_memory.SharedMemory] = {}

#: Worker-side heartbeat array (shared with the parent) and this
#: worker's slot in it, bound by the pool initializer.
_worker_heartbeats = None
_worker_slot = 0

#: Worker-side sequence for unique return-segment names.
_return_seq = itertools.count()


def _worker_init(heartbeats) -> None:
    """Pool initializer: bind the shared heartbeat array to this worker."""
    global _worker_heartbeats, _worker_slot
    _worker_heartbeats = heartbeats
    identity = mp.current_process()._identity
    _worker_slot = (identity[0] - 1) % len(heartbeats) if identity else 0


def _beat() -> None:
    if _worker_heartbeats is not None:
        _worker_heartbeats[_worker_slot] = time.monotonic()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    segment = _worker_segments.get(name)
    if segment is None:
        for stale in _worker_segments.values():
            stale.close()
        _worker_segments.clear()
        with _untracked_shm():
            segment = shared_memory.SharedMemory(name=name)
        _worker_segments[name] = segment
    return segment


def _export_payload(payload: bytes):
    """Worker side: hand a payload to the parent, via shm when large."""
    if len(payload) < _SHM_RETURN_MIN:
        return ("raw", payload)
    name = f"{_RETURN_PREFIX}-{os.getpid()}-{next(_return_seq)}"
    with _untracked_shm():
        segment = shared_memory.SharedMemory(name=name, create=True, size=len(payload))
    segment.buf[: len(payload)] = payload
    segment.close()  # the parent unlinks after draining
    return ("shm", name, len(payload))


def _import_payload(ref) -> bytes:
    """Parent side: drain a worker payload reference (unlinking shm)."""
    if ref[0] == "raw":
        return ref[1]
    _kind, name, length = ref
    with _untracked_shm():
        segment = shared_memory.SharedMemory(name=name)
    try:
        payload = bytes(segment.buf[:length])
    finally:
        segment.close()
        segment.unlink()
    return payload


def _discard_payload(ref) -> None:
    """Parent side: release a worker payload we will never fold (no leak)."""
    if ref and ref[0] == "shm":
        try:
            _import_payload(ref)
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass


def _run_split_task(task: tuple) -> tuple:
    """Worker side: reduce one split against the shared partition."""
    (
        sched_bytes,
        shm_name,
        dtype,
        n_elems,
        split,
        red_map_bytes,
        multi_key,
        wants_emitted,
        fault,
    ) = task
    _beat()
    if fault is not None:
        kind, seconds = fault
        if kind == "kill":
            os._exit(1)  # simulated worker crash: no cleanup, no result
        time.sleep(seconds)  # "hang": stall well past the task deadline
    sched = pickle.loads(sched_bytes)
    sched.telemetry = Recorder()
    from ..scheduler import RunStats  # deferred: scheduler imports this module's package

    sched.stats = RunStats(sched.telemetry)
    segment = _attach_segment(shm_name)
    data = np.ndarray((n_elems,), dtype=np.dtype(dtype), buffer=segment.buf)
    sched.data_ = data
    red_map = deserialize_map(red_map_bytes)
    emitted_objs: list = []
    sched._reduce_split(split, red_map, data, None, multi_key, emitted_objs=emitted_objs)
    emitted_keys = [key for key, _ in emitted_objs]
    emitted_payload = (
        pickle.dumps([obj for _, obj in emitted_objs], protocol=pickle.HIGHEST_PROTOCOL)
        if wants_emitted and emitted_objs
        else b""
    )
    map_payload = serialize_map(red_map, sched.args.wire_format)
    _beat()
    return (
        _export_payload(map_payload),
        emitted_keys,
        emitted_payload,
        sched.telemetry.snapshot()["counters"],
    )


class ProcessEngine(ExecutionEngine):
    """Reduce splits on a persistent process pool with shared-memory input."""

    name = "process"

    def __init__(self, num_workers, telemetry):
        super().__init__(num_workers, telemetry)
        self._pool: mp.pool.Pool | None = None
        self._shm: shared_memory.SharedMemory | None = None
        self._payload: bytes | None = None
        self._heartbeats = None
        self._fault_plan: FaultPlan | None = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._pool is None:
            if self._heartbeats is None:
                self._heartbeats = mp.get_context().Array(
                    "d", self.num_workers, lock=False
                )
            self._pool = mp.get_context().Pool(
                processes=self.num_workers,
                initializer=_worker_init,
                initargs=(self._heartbeats,),
            )
            self.telemetry.inc("engine.pools_created")

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        self._release_segment()

    def __del__(self):  # pragma: no cover - interpreter-exit safety net
        if self._pool is not None:
            self._pool.terminate()
            self._pool = None
        self._release_segment()

    def begin_run(self, scheduler, data, out, multi_key) -> None:
        super().begin_run(scheduler, data, out, multi_key)
        self._fault_plan = getattr(scheduler, "fault_plan", None)
        self._release_segment()
        nbytes = int(data.nbytes)
        self._shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        if nbytes:
            view = np.ndarray(data.shape, dtype=data.dtype, buffer=self._shm.buf)
            np.copyto(view, data)
            del view
        self._payload = None

    def end_run(self) -> None:
        self._release_segment()
        self._payload = None
        super().end_run()

    def invalidate_state(self) -> None:
        """Forget the cached scheduler payload (combination map changed)."""
        self._payload = None

    def _release_segment(self) -> None:
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already reclaimed
                pass
            self._shm = None

    # -- supervision -------------------------------------------------------
    def _pool_pids(self) -> list[int]:
        assert self._pool is not None
        return [p.pid for p in self._pool._pool]

    def _pool_damaged(self, baseline_pids: list[int]) -> bool:
        """Did any worker die since dispatch?  (mp.Pool repopulates dead
        workers, so compare pids against the dispatch-time baseline as
        well as scanning exit codes.)"""
        assert self._pool is not None
        procs = self._pool._pool
        if any(p.exitcode is not None for p in procs):
            return True
        return [p.pid for p in procs] != baseline_pids

    def _respawn_pool(self, dead_pids: list[int], keep_names: set[str]) -> None:
        """Tear down the damaged pool, reap orphans, and start a fresh one."""
        with self.telemetry.span("faults.recovery_seconds"):
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None
            self._reap_orphan_segments(dead_pids, keep_names)
            self.start()

    @staticmethod
    def _reap_orphan_segments(pids: Iterable[int], keep_names: set[str]) -> None:
        """Unlink return segments a killed worker exported but never
        handed back (their names never reached the parent), identified by
        the worker-pid component of the segment name.  Segments whose
        refs the parent *does* hold (``keep_names``) are left for the
        normal drain path."""
        shm_dir = Path("/dev/shm")
        if not shm_dir.is_dir():  # pragma: no cover - non-Linux fallback
            return
        wanted = {f"{_RETURN_PREFIX}-{pid}-" for pid in pids}
        for entry in shm_dir.iterdir():
            name = entry.name
            if name in keep_names or not name.startswith(_RETURN_PREFIX):
                continue
            if any(name.startswith(prefix) for prefix in wanted):
                try:
                    entry.unlink()
                except OSError:  # pragma: no cover - raced with drain
                    pass

    def _supervised_map(
        self, tasks: list[tuple], policy: FaultPolicy
    ) -> list[tuple | None]:
        """Dispatch tasks with worker supervision; ``None`` marks a
        dropped task (degrade mode).

        Detection: pool damage (a worker's exit code is set, or the pid
        set changed — ``mp.Pool`` auto-repopulates, which would silently
        lose the dead worker's task) or a task outliving
        ``policy.task_deadline`` with a stale newest heartbeat.
        """
        assert self._pool is not None
        results: list[tuple | None] = [None] * len(tasks)
        done = [False] * len(tasks)
        baseline_pids = self._pool_pids()
        dispatched = time.monotonic()
        async_results = [
            self._pool.apply_async(_run_split_task, (task,)) for task in tasks
        ]

        def drain_ready() -> None:
            for i, ar in enumerate(async_results):
                if not done[i] and ar.ready():
                    results[i] = ar.get()  # worker exceptions re-raise here
                    done[i] = True

        def undrained_shm_names() -> set[str]:
            return {
                r[0][1]
                for r in results
                if r is not None and r[0] and r[0][0] == "shm"
            }

        while True:
            drain_ready()
            if all(done):
                return results
            failure = None
            if self._pool_damaged(baseline_pids):
                failure = "faults.detected.worker_dead"
            elif (
                policy.task_deadline is not None
                and time.monotonic() - dispatched > policy.task_deadline
            ):
                newest_beat = max(self._heartbeats) if self._heartbeats else 0.0
                stale = time.monotonic() - newest_beat > policy.task_deadline
                failure = "faults.detected.worker_hung" if stale else None
                if failure is None:
                    # Workers are alive and beating: genuinely slow, not
                    # hung.  Extend the window rather than killing work.
                    dispatched = time.monotonic()
            if failure is None:
                time.sleep(_POLL_SECONDS)
                continue
            # Grace drain: tasks in flight on *healthy* workers finish in
            # the normal course — keep collecting until completions stop
            # arriving, so only the dead worker's tasks count as lost.
            idle_since = time.monotonic()
            while not all(done) and time.monotonic() - idle_since < _GRACE_SECONDS:
                before = sum(done)
                drain_ready()
                if sum(done) > before:
                    idle_since = time.monotonic()
                time.sleep(_POLL_SECONDS)
            self.telemetry.inc(failure)
            dead_pids = baseline_pids
            self._respawn_pool(dead_pids, undrained_shm_names())
            pending = [i for i in range(len(tasks)) if not done[i]]
            if policy.mode == "degrade":
                self.telemetry.inc("faults.dropped_splits", len(pending))
                return results
            # fail_fast / retry: release everything we collected (the
            # iteration will be replayed or abandoned — never folded), so
            # no worker return segment leaks.
            for i, r in enumerate(results):
                if r is not None:
                    _discard_payload(r[0])
                    results[i] = None
            raise EngineFaultError(
                f"{len(pending)} split task(s) lost to a "
                f"{'dead' if failure.endswith('dead') else 'hung'} worker "
                f"(pool respawned)"
            )

    # -- execution ---------------------------------------------------------
    def _scheduler_payload(self) -> bytes:
        """Pickle the scheduler minus everything workers must not share.

        The clone keeps the user callbacks, ``SchedArgs``, the current
        combination map (``gen_key`` may consult it — k-means centroids),
        and the positional context; it drops the input array (workers
        view it through shared memory), the output array, the feed
        buffer, the communicator, the engine, the telemetry recorder
        (all lock-bearing or parent-owned), and the fault plan (parent-
        side injection state).  Rebuilt after every combination phase,
        when the map's contents change.
        """
        if self._payload is None:
            sched = self._sched
            assert sched is not None
            clone = copy.copy(sched)
            clone.data_ = None
            clone.out_ = None
            clone.comm = None
            clone._fed = None
            clone._engine = None
            clone.telemetry = None
            clone.stats = None
            clone.fault_plan = None
            self._payload = pickle.dumps(clone, protocol=pickle.HIGHEST_PROTOCOL)
        return self._payload

    def map_splits(self, splits: Iterable[Split], red_maps: list[KeyedMap]) -> set[int]:
        splits = list(splits)
        if not splits:
            return set()
        assert self._pool is not None, "map_splits before start()"
        assert self._shm is not None and self._data is not None
        payload = self._scheduler_payload()
        wants_emitted = self._out is not None
        sched = self._sched
        assert sched is not None
        wire_format = sched.args.wire_format
        plan = self._fault_plan
        policy = sched.args.resolved_fault_policy
        tasks = []
        for split in splits:
            map_payload = serialize_map(red_maps[split.thread_id], wire_format)
            self.telemetry.record_op(
                f"engine.wire.{wire_format_of(map_payload)}", len(map_payload)
            )
            fault = None
            if plan is not None:
                spec = plan.engine_fault()
                if spec is not None:
                    fault = (spec.kind, spec.seconds)
                    self.telemetry.inc(f"faults.injected.engine.{spec.kind}")
            tasks.append(
                (
                    payload,
                    self._shm.name,
                    self._data.dtype.str,
                    int(self._data.shape[0]),
                    split,
                    map_payload,
                    self._multi_key,
                    wants_emitted,
                    fault,
                )
            )
        supervised = plan is not None or policy.mode != "fail_fast"
        with self.telemetry.span("engine.block_seconds"):
            if supervised:
                results = self._supervised_map(tasks, policy)
            else:
                # Fast path: identical to the unsupervised engine — zero
                # overhead when no plan is installed.
                results = self._pool.map(_run_split_task, tasks)
        emitted: set[int] = set()
        for split, result in zip(splits, results):
            if result is None:  # dropped under degrade
                continue
            map_ref, emitted_keys, emitted_payload, counters = result
            map_bytes = _import_payload(map_ref)
            self.telemetry.record_op(
                f"engine.wire.{wire_format_of(map_bytes)}", len(map_bytes)
            )
            red_maps[split.thread_id].replace_contents(deserialize_map(map_bytes))
            self.telemetry.merge_counters(counters)
            self.telemetry.inc("engine.splits")
            if wants_emitted and emitted_keys:
                for key, obj in zip(emitted_keys, pickle.loads(emitted_payload)):
                    sched.convert(obj, self._out, key)
            emitted.update(emitted_keys)
        return emitted
