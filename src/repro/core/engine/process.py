"""Process engine: GIL-free reduction over resident shared-memory input.

Workers are a persistent ``multiprocessing`` pool (created once per
scheduler lifetime, like the thread engine's pool).  The data plane is
built for the *steady state* of in-situ analytics — iterative runs over
an unchanged partition and per-step time-sharing loops — so the costs
that the naive protocol pays every ``run()`` are paid once and amortized:

* **Input residency** — the partition lives in parent-owned
  ``multiprocessing.shared_memory`` segments that survive across runs.
  ``begin_run`` copies data in only on a *miss*; when the incoming array
  is the same unchanged buffer as a resident copy (tracked by the
  scheduler's data version), or is itself a view of a resident
  ``step_buffer`` slot a double-buffered driver filled directly, the
  copy is skipped and only the segment's data epoch advances.  Workers
  reduce zero-copy numpy views of the segments.
* **Scheduler-state deltas** — the pickled scheduler is split into an
  immutable *core* (callbacks, ``SchedArgs``, constants), published once
  per scheduler through a named shared-memory segment and cached
  worker-side by version, and a small per-iteration *delta* (layout
  context, combination map in the configured wire format, and the
  application's ``mutable_state()``).  Per-task dispatch ships the delta
  plus a split's reduction map — kilobytes, not the whole object graph.

Protocol per block:

1. the parent ensures the core is published (``engine.state.core``),
   builds the iteration delta once (``engine.state.delta`` — rebuilt
   when ``invalidate_state`` reports a combination phase), and
   serializes each split's reduction map with the scheduler's wire
   format;
2. each worker rebuilds a per-task scheduler as a shallow copy of its
   cached core, installs the delta, attaches the input segment, runs the
   ordinary ``_reduce_split`` over its split, and returns the updated
   reduction map, any early-emitted reduction objects, and its telemetry
   counter deltas.  Large return payloads travel through a
   worker-created shared-memory segment (the parent copies and unlinks
   it) instead of the pool's result pipe;
3. the parent folds the maps back into ``red_maps`` via the trusted
   bulk path, converts emitted objects into the output array
   (emission-at-combination semantics are preserved bit for bit), and
   merges the counters into the unified recorder.

Supervision: when a :class:`~repro.faults.FaultPlan` is installed on the
scheduler or ``SchedArgs.fault_policy`` is not ``fail_fast``, dispatch
switches from ``pool.map`` to a supervised ``apply_async`` loop.  The
supervisor watches pool health (worker pids/exit codes) and per-worker
heartbeat timestamps; a dead or hung worker triggers pool respawn —
which also republishes the scheduler core under a fresh version
(``engine.residency.invalidations``), so relaunched workers can never
alias stale cached state — and the outcome follows the policy:
``retry`` raises :class:`~repro.faults.EngineFaultError` so the
scheduler replays the iteration from the last consistent combination
map, ``degrade`` folds the completed splits and records the dropped
ones, ``fail_fast`` raises.  With no plan and the default policy the
fast ``pool.map`` path is byte-for-byte the unsupervised one, so healthy
runs pay nothing.
"""

from __future__ import annotations

import copy
import itertools
import math
import multiprocessing as mp
import os
import pickle
import threading
import time
from contextlib import contextmanager
from multiprocessing import shared_memory
from pathlib import Path
from typing import Iterable

import numpy as np

from ...faults import EngineFaultError, FaultPlan, FaultPolicy
from ...telemetry import Recorder
from ..chunk import Split
from ..maps import KeyedMap
from ..serialization import deserialize_map, serialize_map, wire_format_of
from .base import ExecutionEngine

#: Return payloads at least this large travel via a shared-memory segment
#: instead of the pool's result pipe (pipe transfers re-copy through the
#: pickle layer; shm is one bulk copy each side).
_SHM_RETURN_MIN = 1 << 16

#: Prefix of worker-created return segments: ``smartret-<pid>-<seq>``.
#: Naming them lets the parent reap orphans left by a killed worker
#: (segments exported but never returned through the result pipe).
_RETURN_PREFIX = "smartret"

#: Prefix of parent-published scheduler-core segments:
#: ``smartcore-<pid>-<version>``.  Never reaped by the orphan sweep (the
#: parent owns their lifetime explicitly).
_CORE_PREFIX = "smartcore"

#: Resident input segments kept per engine: two double-buffer slots plus
#: one steady-state partition copy.
_MAX_RESIDENT_SEGMENTS = 3

#: Attached segments cached per worker process (core + resident inputs).
_MAX_WORKER_SEGMENTS = 4

#: Elements sampled for the in-place-rewrite tripwire on steady-state
#: residency hits (a strided fingerprint, not a full content check).
_FINGERPRINT_SAMPLES = 64

#: Supervisor poll interval while tasks are outstanding.
_POLL_SECONDS = 0.005

#: After damage is detected, how long to keep draining without any new
#: completion before in-flight tasks are declared lost.
_GRACE_SECONDS = 0.2


@contextmanager
def _untracked_shm():
    """Suppress resource-tracker registration for a SharedMemory call.

    Segment lifetimes here are owned explicitly (the parent unlinks its
    resident input and core segments on shutdown; return segments are
    unlinked by the parent as soon as they are drained).  On Python <
    3.13 creating or attaching would also register the segment with the
    resource tracker, which would then warn about — and try to re-unlink
    — segments it does not own.
    """
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        yield
    finally:
        resource_tracker.register = original_register


#: Process-local cache of attached shared-memory segments, keyed by name
#: in attach order.  A worker serves many tasks against the same resident
#: segments (two slots + a steady-state partition + the scheduler core);
#: re-attaching per task would churn file descriptors.  Bounded: the
#: oldest attachment is dropped when the cache is full, so segments the
#: parent has already replaced do not pin memory.
_worker_segments: dict[str, shared_memory.SharedMemory] = {}

#: Worker-side cached scheduler core: ``(segment_name, version, scheduler)``.
#: Replaced whenever a task carries a different version — including after
#: a pool respawn, where fresh workers start empty and rebuild from the
#: (republished) core segment.
_worker_core: tuple[str, int, object] | None = None

#: Worker-side heartbeat array (shared with the parent) and this
#: worker's slot in it, bound by the pool initializer.
_worker_heartbeats = None
_worker_slot = 0

#: Worker-side sequence for unique return-segment names.
_return_seq = itertools.count()

#: Parent-side sequence for unique core-segment names (shared across all
#: engines in the process so two schedulers never collide).
_core_seq = itertools.count(1)


def _worker_init(heartbeats) -> None:
    """Pool initializer: bind the shared heartbeat array to this worker."""
    global _worker_heartbeats, _worker_slot
    _worker_heartbeats = heartbeats
    identity = mp.current_process()._identity
    _worker_slot = (identity[0] - 1) % len(heartbeats) if identity else 0


def _beat() -> None:
    if _worker_heartbeats is not None:
        _worker_heartbeats[_worker_slot] = time.monotonic()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    segment = _worker_segments.get(name)
    if segment is None:
        while len(_worker_segments) >= _MAX_WORKER_SEGMENTS:
            oldest = next(iter(_worker_segments))
            _worker_segments.pop(oldest).close()
        with _untracked_shm():
            segment = shared_memory.SharedMemory(name=name)
        _worker_segments[name] = segment
    return segment


def _core_scheduler(core_name: str, core_version: int, core_len: int):
    """Worker side: the immutable scheduler core, cached by version."""
    global _worker_core
    cached = _worker_core
    if cached is not None and cached[0] == core_name and cached[1] == core_version:
        return cached[2]
    segment = _attach_segment(core_name)
    sched = pickle.loads(bytes(segment.buf[:core_len]))
    _worker_core = (core_name, core_version, sched)
    return sched


def _export_payload(payload: bytes):
    """Worker side: hand a payload to the parent, via shm when large."""
    if len(payload) < _SHM_RETURN_MIN:
        return ("raw", payload)
    name = f"{_RETURN_PREFIX}-{os.getpid()}-{next(_return_seq)}"
    with _untracked_shm():
        segment = shared_memory.SharedMemory(name=name, create=True, size=len(payload))
    segment.buf[: len(payload)] = payload
    segment.close()  # the parent unlinks after draining
    return ("shm", name, len(payload))


def _import_payload(ref) -> bytes:
    """Parent side: drain a worker payload reference (unlinking shm)."""
    if ref[0] == "raw":
        return ref[1]
    _kind, name, length = ref
    with _untracked_shm():
        segment = shared_memory.SharedMemory(name=name)
    try:
        payload = bytes(segment.buf[:length])
    finally:
        segment.close()
        segment.unlink()
    return payload


def _discard_payload(ref) -> None:
    """Parent side: release a worker payload we will never fold (no leak)."""
    if ref and ref[0] == "shm":
        try:
            _import_payload(ref)
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass


def _run_split_task(task: tuple) -> tuple:
    """Worker side: reduce one split against the shared partition."""
    (
        core_name,
        core_version,
        core_len,
        delta_bytes,
        shm_name,
        dtype,
        n_elems,
        data_offset,
        split,
        red_map_bytes,
        multi_key,
        wants_emitted,
        fault,
    ) = task
    _beat()
    if fault is not None:
        kind, seconds = fault
        if kind == "kill":
            os._exit(1)  # simulated worker crash: no cleanup, no result
        time.sleep(seconds)  # "hang": stall well past the task deadline
    core = _core_scheduler(core_name, core_version, core_len)
    sched = copy.copy(core)  # per-task instance over the shared core
    sched.telemetry = Recorder()
    from ..scheduler import RunStats  # deferred: scheduler imports this module's package

    sched.stats = RunStats(sched.telemetry)
    global_offset, total_len, com_map_bytes, state = pickle.loads(delta_bytes)
    sched.combination_map_ = deserialize_map(com_map_bytes)
    sched.load_state(state)
    sched.global_offset_ = global_offset
    sched.total_len_ = total_len
    segment = _attach_segment(shm_name)
    data = np.ndarray(
        (n_elems,), dtype=np.dtype(dtype), buffer=segment.buf, offset=data_offset
    )
    sched.data_ = data
    red_map = deserialize_map(red_map_bytes)
    emitted_objs: list = []
    sched._reduce_split(split, red_map, data, None, multi_key, emitted_objs=emitted_objs)
    emitted_keys = [key for key, _ in emitted_objs]
    emitted_payload = (
        pickle.dumps([obj for _, obj in emitted_objs], protocol=pickle.HIGHEST_PROTOCOL)
        if wants_emitted and emitted_objs
        else b""
    )
    export = getattr(sched, "_batch_export", None)
    if (
        export is not None
        and sched.policy.wire_format == "columnar"
        and len(red_map)
    ):
        # Batch-map zero-copy handoff: the split's accumulator columns
        # already hold the complete post-fold map state in PackedMap
        # layout, so encode them directly — byte-identical to packing
        # the materialized objects, without the object round-trip.
        keys = np.fromiter(sorted(red_map.keys()), dtype=np.int64,
                           count=len(red_map))
        map_payload = export.to_packed(keys).to_bytes()
        sched.telemetry.inc("run.batch_wire_exports")
    else:
        map_payload = serialize_map(red_map, sched.policy.wire_format)
    _beat()
    return (
        _export_payload(map_payload),
        emitted_keys,
        emitted_payload,
        sched.telemetry.snapshot()["counters"],
    )


def _fingerprint(data: np.ndarray) -> np.ndarray:
    """A small strided sample of ``data`` (the steady-state tripwire)."""
    flat = data.reshape(-1)
    stride = max(1, flat.shape[0] // _FINGERPRINT_SAMPLES)
    return flat[::stride][: _FINGERPRINT_SAMPLES].copy()


def _fingerprints_match(a: np.ndarray | None, b: np.ndarray) -> bool:
    if a is None or a.shape != b.shape or a.dtype != b.dtype:
        return False
    if a.dtype.kind == "f":
        return bool(np.array_equal(a, b, equal_nan=True))
    return bool(np.array_equal(a, b))


class _ResidentSegment:
    """One parent-owned shared-memory segment holding partition bytes.

    Tracks everything the residency protocol needs: the data *epoch*
    (advanced whenever the segment's contents change — a copy-in or a
    direct in-place rewrite through a ``step_buffer`` view), the source
    array a steady-state hit is checked against (held strongly, so the
    identity test can never alias a recycled ``id``), and the
    ``step_buffer`` slot pinned to the segment, if any (pinned segments
    are never evicted: the driver holds live views of them).
    """

    __slots__ = (
        "shm",
        "addr",
        "capacity",
        "epoch",
        "slot",
        "source",
        "source_version",
        "source_print",
        "nbytes",
        "dtype",
        "last_used",
    )

    def __init__(self, shm: shared_memory.SharedMemory):
        self.shm = shm
        self.capacity = shm.size
        self.addr = np.frombuffer(shm.buf, dtype=np.uint8).__array_interface__["data"][0]
        self.epoch = 0
        self.slot: int | None = None
        self.source: np.ndarray | None = None
        self.source_version = -1
        self.source_print: np.ndarray | None = None
        self.nbytes = 0
        self.dtype: str | None = None
        self.last_used = 0


class ProcessEngine(ExecutionEngine):
    """Reduce splits on a persistent process pool over resident shm input."""

    name = "process"

    def __init__(self, num_workers, telemetry):
        super().__init__(num_workers, telemetry)
        self._pool: mp.pool.Pool | None = None
        self._heartbeats = None
        self._fault_plan: FaultPlan | None = None
        # Input residency (guarded by _segments_lock: a pipelined driver's
        # producer thread requests step buffers while the consumer runs).
        self._segments_lock = threading.Lock()
        self._residents: list[_ResidentSegment] = []
        self._active: _ResidentSegment | None = None
        self._active_offset = 0
        self._active_len = 0
        self._active_dtype = "<f8"
        self._use_seq = itertools.count(1)
        self._resident_enabled = True
        # Scheduler core/delta state.
        self._core_shm: shared_memory.SharedMemory | None = None
        self._core_version = 0
        self._core_len = 0
        self._core_sched_id: int | None = None
        self._delta: bytes | None = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._pool is None:
            if self._heartbeats is None:
                self._heartbeats = mp.get_context().Array(
                    "d", self.num_workers, lock=False
                )
            self._pool = mp.get_context().Pool(
                processes=self.num_workers,
                initializer=_worker_init,
                initargs=(self._heartbeats,),
            )
            self.telemetry.inc("engine.pools_created")

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        self._release_all_segments()
        self._release_core()
        super().shutdown()

    def __del__(self):  # pragma: no cover - interpreter-exit safety net
        if self._pool is not None:
            self._pool.terminate()
            self._pool = None
        self._release_all_segments()
        self._release_core()

    def begin_run(self, scheduler, data, out, multi_key) -> None:
        super().begin_run(scheduler, data, out, multi_key)
        self._fault_plan = getattr(scheduler, "fault_plan", None)
        self._delta = None
        self._resident_enabled = scheduler.policy.residency != "off"
        nbytes = int(data.nbytes)
        data_version = getattr(scheduler, "_data_version", 0)
        with self._segments_lock:
            seg, offset = self._bind_segment(data, nbytes, data_version)
            seg.last_used = next(self._use_seq)
            self._active = seg
            self._active_offset = offset
            self._active_len = int(data.shape[0])
            self._active_dtype = data.dtype.str
            self.telemetry.set_gauge("engine.residency.epoch", seg.epoch)

    def _bind_segment(
        self, data: np.ndarray, nbytes: int, data_version: int
    ) -> tuple[_ResidentSegment, int]:
        """Resolve ``data`` to a resident segment (lock held).

        Hit paths, tried in order:

        1. *direct* — ``data`` is a view of a resident segment (the
           producer wrote a ``step_buffer`` slot in place).  No copy;
           the slot's epoch advances because its contents changed.
        2. *steady-state* — ``data`` is the very array copied in before,
           and the scheduler's data version says it was not rewritten
           (``notify_data_changed``).  No copy, epoch unchanged.  A
           strided content fingerprint backstops the contract: an
           unannounced in-place rewrite that changes any sampled element
           is demoted to a miss (``engine.residency.guard_trips``).

        Anything else is a miss: copy into a reusable resident segment,
        or a fresh one.
        """
        if self._resident_enabled and self._residents:
            direct = self._find_direct(data)
            if direct is not None:
                seg, offset = direct
                seg.epoch += 1  # contents rewritten in place by the producer
                seg.source = None
                seg.source_print = None
                self.telemetry.inc("engine.residency.hits")
                self.telemetry.inc("engine.residency.direct_hits")
                self.telemetry.inc("engine.residency.bytes_saved", nbytes)
                return seg, offset
            seg = self._find_steady(data, data_version)
            if seg is not None:
                self.telemetry.inc("engine.residency.hits")
                self.telemetry.inc("engine.residency.bytes_saved", nbytes)
                return seg, 0
        seg = self._install(data, nbytes, data_version)
        self.telemetry.inc("engine.residency.misses")
        return seg, 0

    def _find_direct(self, data: np.ndarray) -> tuple[_ResidentSegment, int] | None:
        if not data.flags["C_CONTIGUOUS"]:
            return None
        addr = data.__array_interface__["data"][0]
        for seg in self._residents:
            if seg.addr <= addr and addr + int(data.nbytes) <= seg.addr + seg.capacity:
                return seg, addr - seg.addr
        return None

    def _find_steady(
        self, data: np.ndarray, data_version: int
    ) -> _ResidentSegment | None:
        for seg in self._residents:
            if (
                seg.source is data
                and seg.source_version == data_version
                and seg.nbytes == int(data.nbytes)
                and seg.dtype == data.dtype.str
            ):
                if not _fingerprints_match(seg.source_print, _fingerprint(data)):
                    # Rewritten in place without notify_data_changed():
                    # safety net, not a licensed code path.
                    self.telemetry.inc("engine.residency.guard_trips")
                    return None
                return seg
        return None

    def _install(
        self, data: np.ndarray, nbytes: int, data_version: int
    ) -> _ResidentSegment:
        seg = self._reusable_segment(data, nbytes)
        if seg is None:
            seg = self._new_segment(max(nbytes, 1))
        if nbytes:
            view = np.ndarray(data.shape, dtype=data.dtype, buffer=seg.shm.buf)
            np.copyto(view, data)
            del view
        seg.epoch += 1
        seg.nbytes = nbytes
        seg.dtype = data.dtype.str
        if self._resident_enabled:
            seg.source = data  # strong ref: identity check can never alias
            seg.source_version = data_version
            seg.source_print = _fingerprint(data) if nbytes else None
        else:
            seg.source = None
            seg.source_print = None
        self.telemetry.inc("engine.residency.copied_bytes", nbytes)
        return seg

    def _reusable_segment(
        self, data: np.ndarray, nbytes: int
    ) -> _ResidentSegment | None:
        candidates = [
            seg
            for seg in self._residents
            if seg.slot is None and seg is not self._active and seg.capacity >= nbytes
        ]
        if not candidates:
            return None
        for seg in candidates:
            if seg.source is data:  # recopy of a notified array: keep its home
                return seg
        return min(candidates, key=lambda seg: seg.last_used)

    def _new_segment(self, capacity: int) -> _ResidentSegment:
        evictable = [
            seg
            for seg in self._residents
            if seg.slot is None and seg is not self._active
        ]
        while len(self._residents) >= _MAX_RESIDENT_SEGMENTS and evictable:
            victim = min(evictable, key=lambda seg: seg.last_used)
            evictable.remove(victim)
            self._release_segment(victim)
        shm = shared_memory.SharedMemory(create=True, size=capacity)
        seg = _ResidentSegment(shm)
        self._residents.append(seg)
        self._update_resident_gauge()
        return seg

    def _release_segment(self, seg: _ResidentSegment) -> None:
        if seg in self._residents:
            self._residents.remove(seg)
        seg.source = None
        try:
            seg.shm.close()
        except BufferError:  # pragma: no cover - caller still holds a view
            # A step_buffer view is still alive; the mapping is reclaimed
            # when the last view dies.  Unlinking below still removes the
            # /dev/shm name, so nothing leaks past the process.
            pass
        try:
            seg.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass
        self._update_resident_gauge()

    def _release_all_segments(self) -> None:
        with self._segments_lock:
            for seg in list(self._residents):
                self._release_segment(seg)
            self._active = None

    def _update_resident_gauge(self) -> None:
        self.telemetry.set_gauge(
            "engine.residency.resident_bytes",
            sum(seg.capacity for seg in self._residents),
        )

    def step_buffer(self, slot: int, shape, dtype) -> np.ndarray:
        """A writable view of a resident segment pinned to ``slot``.

        Double-buffered drivers fill alternating slots with simulation
        output; a partition passed to ``run`` out of a slot is a
        *direct* residency hit — workers attach the segment, nothing is
        copied anywhere.  Slot segments are never evicted while pinned
        (the caller holds live views); they are released on shutdown or
        when the slot is re-requested with a larger footprint.
        """
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        nbytes = math.prod(shape) * dtype.itemsize
        with self._segments_lock:
            seg = next((s for s in self._residents if s.slot == slot), None)
            if seg is not None and seg.capacity < nbytes:
                self._release_segment(seg)
                seg = None
            if seg is None:
                seg = self._new_segment(max(nbytes, 1))
                seg.slot = slot
            seg.source = None
            seg.source_print = None
            seg.last_used = next(self._use_seq)
            return np.ndarray(shape, dtype=dtype, buffer=seg.shm.buf)

    def end_run(self) -> None:
        if not self._resident_enabled:
            # residency="off": restore segment-per-run hygiene (slot
            # segments stay — the driver still holds views of them).
            with self._segments_lock:
                for seg in [s for s in self._residents if s.slot is None]:
                    self._release_segment(seg)
                self._active = None
        else:
            with self._segments_lock:
                self._active = None
        self._delta = None
        super().end_run()

    def invalidate_state(self) -> None:
        """Forget the iteration delta (the combination phase ran)."""
        self._delta = None

    # -- supervision -------------------------------------------------------
    def _pool_pids(self) -> list[int]:
        assert self._pool is not None
        return [p.pid for p in self._pool._pool]

    def _pool_damaged(self, baseline_pids: list[int]) -> bool:
        """Did any worker die since dispatch?  (mp.Pool repopulates dead
        workers, so compare pids against the dispatch-time baseline as
        well as scanning exit codes.)"""
        assert self._pool is not None
        procs = self._pool._pool
        if any(p.exitcode is not None for p in procs):
            return True
        return [p.pid for p in procs] != baseline_pids

    def _respawn_pool(self, dead_pids: list[int], keep_names: set[str]) -> None:
        """Tear down the damaged pool, reap orphans, and start a fresh one.

        The scheduler core is republished under a fresh version: the new
        workers start with empty caches anyway, but a monotone version
        guarantees no stale core can ever be aliased — the residency
        invalidation the fault layer documents.
        """
        with self.telemetry.span("faults.recovery_seconds"):
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None
            self._reap_orphan_segments(dead_pids, keep_names)
            self._release_core()
            self.telemetry.inc("engine.residency.invalidations")
            self.start()

    @staticmethod
    def _reap_orphan_segments(pids: Iterable[int], keep_names: set[str]) -> None:
        """Unlink return segments a killed worker exported but never
        handed back (their names never reached the parent), identified by
        the worker-pid component of the segment name.  Segments whose
        refs the parent *does* hold (``keep_names``) are left for the
        normal drain path."""
        shm_dir = Path("/dev/shm")
        if not shm_dir.is_dir():  # pragma: no cover - non-Linux fallback
            return
        wanted = {f"{_RETURN_PREFIX}-{pid}-" for pid in pids}
        for entry in shm_dir.iterdir():
            name = entry.name
            if name in keep_names or not name.startswith(_RETURN_PREFIX):
                continue
            if any(name.startswith(prefix) for prefix in wanted):
                try:
                    entry.unlink()
                except OSError:  # pragma: no cover - raced with drain
                    pass

    def _supervised_map(
        self, tasks: list[tuple], policy: FaultPolicy
    ) -> list[tuple | None]:
        """Dispatch tasks with worker supervision; ``None`` marks a
        dropped task (degrade mode).

        Detection: pool damage (a worker's exit code is set, or the pid
        set changed — ``mp.Pool`` auto-repopulates, which would silently
        lose the dead worker's task) or a task outliving
        ``policy.task_deadline`` with a stale newest heartbeat.
        """
        assert self._pool is not None
        results: list[tuple | None] = [None] * len(tasks)
        done = [False] * len(tasks)
        baseline_pids = self._pool_pids()
        dispatched = time.monotonic()
        async_results = [
            self._pool.apply_async(_run_split_task, (task,)) for task in tasks
        ]

        def drain_ready() -> None:
            for i, ar in enumerate(async_results):
                if not done[i] and ar.ready():
                    results[i] = ar.get()  # worker exceptions re-raise here
                    done[i] = True

        def undrained_shm_names() -> set[str]:
            return {
                r[0][1]
                for r in results
                if r is not None and r[0] and r[0][0] == "shm"
            }

        while True:
            drain_ready()
            if all(done):
                return results
            failure = None
            if self._pool_damaged(baseline_pids):
                failure = "faults.detected.worker_dead"
            elif (
                policy.task_deadline is not None
                and time.monotonic() - dispatched > policy.task_deadline
            ):
                newest_beat = max(self._heartbeats) if self._heartbeats else 0.0
                stale = time.monotonic() - newest_beat > policy.task_deadline
                failure = "faults.detected.worker_hung" if stale else None
                if failure is None:
                    # Workers are alive and beating: genuinely slow, not
                    # hung.  Extend the window rather than killing work.
                    dispatched = time.monotonic()
            if failure is None:
                time.sleep(_POLL_SECONDS)
                continue
            # Grace drain: tasks in flight on *healthy* workers finish in
            # the normal course — keep collecting until completions stop
            # arriving, so only the dead worker's tasks count as lost.
            idle_since = time.monotonic()
            while not all(done) and time.monotonic() - idle_since < _GRACE_SECONDS:
                before = sum(done)
                drain_ready()
                if sum(done) > before:
                    idle_since = time.monotonic()
                time.sleep(_POLL_SECONDS)
            self.telemetry.inc(failure)
            dead_pids = baseline_pids
            self._respawn_pool(dead_pids, undrained_shm_names())
            pending = [i for i in range(len(tasks)) if not done[i]]
            if policy.mode == "degrade":
                self.telemetry.inc("faults.dropped_splits", len(pending))
                return results
            # fail_fast / retry: release everything we collected (the
            # iteration will be replayed or abandoned — never folded), so
            # no worker return segment leaks.
            for i, r in enumerate(results):
                if r is not None:
                    _discard_payload(r[0])
                    results[i] = None
            raise EngineFaultError(
                f"{len(pending)} split task(s) lost to a "
                f"{'dead' if failure.endswith('dead') else 'hung'} worker "
                f"(pool respawned)"
            )

    # -- scheduler core/delta ---------------------------------------------
    def _ensure_core(self) -> None:
        """Publish the immutable scheduler core through shared memory.

        The core is the pickled scheduler minus everything workers must
        not share (arrays, communicator, engine, telemetry, fault plan)
        *and* minus everything the per-iteration delta re-ships (the
        combination map, the layout context, ``mutable_state()``
        attributes are simply overwritten worker-side).  Published once
        per scheduler lifetime — workers cache the unpickled core by
        version — and republished only when the scheduler object changes
        or a pool respawn invalidates residency.
        """
        sched = self._sched
        assert sched is not None
        if self._core_shm is not None and self._core_sched_id == id(sched):
            return
        clone = copy.copy(sched)
        clone.data_ = None
        clone.out_ = None
        clone.comm = None
        clone._fed = None
        clone._engine = None
        clone.telemetry = None
        clone.stats = None
        clone.fault_plan = None
        clone.combination_map_ = None  # travels in the per-iteration delta
        payload = pickle.dumps(clone, protocol=pickle.HIGHEST_PROTOCOL)
        self._release_core()
        self._core_version = next(_core_seq)
        name = f"{_CORE_PREFIX}-{os.getpid()}-{self._core_version}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(len(payload), 1)
        )
        shm.buf[: len(payload)] = payload
        self._core_shm = shm
        self._core_len = len(payload)
        self._core_sched_id = id(sched)
        self.telemetry.record_op("engine.state.core", len(payload))

    def _release_core(self) -> None:
        self._core_sched_id = None
        if self._core_shm is not None:
            self._core_shm.close()
            try:
                self._core_shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already reclaimed
                pass
            self._core_shm = None

    def _delta_payload(self) -> bytes:
        """The per-iteration mutable-state payload (cached until
        ``invalidate_state`` reports a combination phase)."""
        if self._delta is None:
            sched = self._sched
            assert sched is not None
            com_map_bytes = serialize_map(sched.combination_map_, sched.policy.wire_format)
            self._delta = pickle.dumps(
                (
                    sched.global_offset_,
                    sched.total_len_,
                    com_map_bytes,
                    sched.mutable_state(),
                ),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            self.telemetry.record_op("engine.state.delta", len(self._delta))
        return self._delta

    # -- execution ---------------------------------------------------------
    def map_splits(self, splits: Iterable[Split], red_maps: list[KeyedMap]) -> set[int]:
        splits = list(splits)
        if not splits:
            return set()
        assert self._pool is not None, "map_splits before start()"
        assert self._active is not None and self._data is not None
        self._ensure_core()
        assert self._core_shm is not None
        delta = self._delta_payload()
        wants_emitted = self._out is not None
        sched = self._sched
        assert sched is not None
        wire_format = sched.policy.wire_format
        plan = self._fault_plan
        policy = sched.policy.resolved_fault_policy
        tasks = []
        for split in splits:
            map_payload = serialize_map(red_maps[split.thread_id], wire_format)
            self.telemetry.record_op(
                f"engine.wire.{wire_format_of(map_payload)}", len(map_payload)
            )
            self.telemetry.record_op("engine.dispatch", len(delta) + len(map_payload))
            fault = None
            if plan is not None:
                spec = plan.engine_fault()
                if spec is not None:
                    fault = (spec.kind, spec.seconds)
                    self.telemetry.inc(f"faults.injected.engine.{spec.kind}")
            tasks.append(
                (
                    self._core_shm.name,
                    self._core_version,
                    self._core_len,
                    delta,
                    self._active.shm.name,
                    self._active_dtype,
                    self._active_len,
                    self._active_offset,
                    split,
                    map_payload,
                    self._multi_key,
                    wants_emitted,
                    fault,
                )
            )
        supervised = plan is not None or policy.mode != "fail_fast"
        with self.telemetry.span("engine.block_seconds"):
            if supervised:
                results = self._supervised_map(tasks, policy)
            else:
                # Fast path: identical to the unsupervised engine — zero
                # overhead when no plan is installed.
                results = self._pool.map(_run_split_task, tasks)
        emitted: set[int] = set()
        for split, result in zip(splits, results):
            if result is None:  # dropped under degrade
                continue
            map_ref, emitted_keys, emitted_payload, counters = result
            map_bytes = _import_payload(map_ref)
            self.telemetry.record_op(
                f"engine.wire.{wire_format_of(map_bytes)}", len(map_bytes)
            )
            red_maps[split.thread_id].replace_contents(deserialize_map(map_bytes))
            self.telemetry.merge_counters(counters)
            self.telemetry.inc("engine.splits")
            if wants_emitted and emitted_keys:
                for key, obj in zip(emitted_keys, pickle.loads(emitted_payload)):
                    sched.convert(obj, self._out, key)
            emitted.update(emitted_keys)
        return emitted
