"""Process engine: GIL-free reduction over shared-memory input.

Workers are a persistent ``multiprocessing`` pool (created once per
scheduler lifetime, like the thread engine's pool).  Per run, the
partition is placed in ``multiprocessing.shared_memory`` exactly once;
each worker reduces zero-copy numpy views of that segment — only the
per-split reduction maps and the (small) scheduler state cross the
process boundary, serialized with the same wire format global
combination uses.  This is the first backend that bypasses the GIL for
the scalar chunk loop and the vectorized path alike.

Protocol per block:

1. the parent serializes a stripped scheduler clone (callbacks +
   combination map, no data/comm/telemetry) and each split's reduction
   map (with the scheduler's configured wire format — columnar maps
   cross the process boundary as contiguous packed buffers);
2. each worker attaches to the shared segment, rebuilds the scheduler,
   runs the ordinary ``_reduce_split`` over its split, and returns the
   updated reduction map, any early-emitted reduction objects, and its
   telemetry counter deltas.  Large return payloads travel through a
   worker-created shared-memory segment (the parent copies and unlinks
   it) instead of the pool's result pipe;
3. the parent folds the maps back into ``red_maps`` via the trusted
   bulk path, converts emitted objects into the output array
   (emission-at-combination semantics are preserved bit for bit), and
   merges the counters into the unified recorder.
"""

from __future__ import annotations

import copy
import multiprocessing as mp
import pickle
from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import Iterable

import numpy as np

from ...telemetry import Recorder
from ..chunk import Split
from ..maps import KeyedMap
from ..serialization import deserialize_map, serialize_map, wire_format_of
from .base import ExecutionEngine

#: Return payloads at least this large travel via a shared-memory segment
#: instead of the pool's result pipe (pipe transfers re-copy through the
#: pickle layer; shm is one bulk copy each side).
_SHM_RETURN_MIN = 1 << 16


@contextmanager
def _untracked_shm():
    """Suppress resource-tracker registration for a SharedMemory call.

    Segment lifetimes here are owned explicitly (the parent unlinks its
    input segment in ``end_run``; return segments are unlinked by the
    parent as soon as they are drained).  On Python < 3.13 creating or
    attaching would also register the segment with the resource tracker,
    which would then warn about — and try to re-unlink — segments it
    does not own.
    """
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        yield
    finally:
        resource_tracker.register = original_register


#: Process-local cache of attached shared-memory segments, keyed by name.
#: A worker serves many splits of the same run; re-attaching per task
#: would churn file descriptors.  Replaced whenever a new segment name
#: arrives (one run is in flight at a time per engine).
_worker_segments: dict[str, shared_memory.SharedMemory] = {}


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    segment = _worker_segments.get(name)
    if segment is None:
        for stale in _worker_segments.values():
            stale.close()
        _worker_segments.clear()
        with _untracked_shm():
            segment = shared_memory.SharedMemory(name=name)
        _worker_segments[name] = segment
    return segment


def _export_payload(payload: bytes):
    """Worker side: hand a payload to the parent, via shm when large."""
    if len(payload) < _SHM_RETURN_MIN:
        return ("raw", payload)
    with _untracked_shm():
        segment = shared_memory.SharedMemory(create=True, size=len(payload))
    segment.buf[: len(payload)] = payload
    name = segment.name
    segment.close()  # the parent unlinks after draining
    return ("shm", name, len(payload))


def _import_payload(ref) -> bytes:
    """Parent side: drain a worker payload reference (unlinking shm)."""
    if ref[0] == "raw":
        return ref[1]
    _kind, name, length = ref
    with _untracked_shm():
        segment = shared_memory.SharedMemory(name=name)
    try:
        payload = bytes(segment.buf[:length])
    finally:
        segment.close()
        segment.unlink()
    return payload


def _run_split_task(task: tuple) -> tuple:
    """Worker side: reduce one split against the shared partition."""
    (sched_bytes, shm_name, dtype, n_elems, split, red_map_bytes, multi_key, wants_emitted) = task
    sched = pickle.loads(sched_bytes)
    sched.telemetry = Recorder()
    from ..scheduler import RunStats  # deferred: scheduler imports this module's package

    sched.stats = RunStats(sched.telemetry)
    segment = _attach_segment(shm_name)
    data = np.ndarray((n_elems,), dtype=np.dtype(dtype), buffer=segment.buf)
    sched.data_ = data
    red_map = deserialize_map(red_map_bytes)
    emitted_objs: list = []
    sched._reduce_split(split, red_map, data, None, multi_key, emitted_objs=emitted_objs)
    emitted_keys = [key for key, _ in emitted_objs]
    emitted_payload = (
        pickle.dumps([obj for _, obj in emitted_objs], protocol=pickle.HIGHEST_PROTOCOL)
        if wants_emitted and emitted_objs
        else b""
    )
    map_payload = serialize_map(red_map, sched.args.wire_format)
    return (
        _export_payload(map_payload),
        emitted_keys,
        emitted_payload,
        sched.telemetry.snapshot()["counters"],
    )


class ProcessEngine(ExecutionEngine):
    """Reduce splits on a persistent process pool with shared-memory input."""

    name = "process"

    def __init__(self, num_workers, telemetry):
        super().__init__(num_workers, telemetry)
        self._pool: mp.pool.Pool | None = None
        self._shm: shared_memory.SharedMemory | None = None
        self._payload: bytes | None = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._pool is None:
            self._pool = mp.get_context().Pool(processes=self.num_workers)
            self.telemetry.inc("engine.pools_created")

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        self._release_segment()

    def __del__(self):  # pragma: no cover - interpreter-exit safety net
        if self._pool is not None:
            self._pool.terminate()
            self._pool = None
        self._release_segment()

    def begin_run(self, scheduler, data, out, multi_key) -> None:
        super().begin_run(scheduler, data, out, multi_key)
        self._release_segment()
        nbytes = int(data.nbytes)
        self._shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        if nbytes:
            view = np.ndarray(data.shape, dtype=data.dtype, buffer=self._shm.buf)
            np.copyto(view, data)
            del view
        self._payload = None

    def end_run(self) -> None:
        self._release_segment()
        self._payload = None
        super().end_run()

    def invalidate_state(self) -> None:
        """Forget the cached scheduler payload (combination map changed)."""
        self._payload = None

    def _release_segment(self) -> None:
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already reclaimed
                pass
            self._shm = None

    # -- execution ---------------------------------------------------------
    def _scheduler_payload(self) -> bytes:
        """Pickle the scheduler minus everything workers must not share.

        The clone keeps the user callbacks, ``SchedArgs``, the current
        combination map (``gen_key`` may consult it — k-means centroids),
        and the positional context; it drops the input array (workers
        view it through shared memory), the output array, the feed
        buffer, the communicator, the engine, and the telemetry recorder
        (all lock-bearing or parent-owned).  Rebuilt after every
        combination phase, when the map's contents change.
        """
        if self._payload is None:
            sched = self._sched
            assert sched is not None
            clone = copy.copy(sched)
            clone.data_ = None
            clone.out_ = None
            clone.comm = None
            clone._fed = None
            clone._engine = None
            clone.telemetry = None
            clone.stats = None
            self._payload = pickle.dumps(clone, protocol=pickle.HIGHEST_PROTOCOL)
        return self._payload

    def map_splits(self, splits: Iterable[Split], red_maps: list[KeyedMap]) -> set[int]:
        splits = list(splits)
        if not splits:
            return set()
        assert self._pool is not None, "map_splits before start()"
        assert self._shm is not None and self._data is not None
        payload = self._scheduler_payload()
        wants_emitted = self._out is not None
        sched = self._sched
        assert sched is not None
        wire_format = sched.args.wire_format
        tasks = []
        for split in splits:
            map_payload = serialize_map(red_maps[split.thread_id], wire_format)
            self.telemetry.record_op(
                f"engine.wire.{wire_format_of(map_payload)}", len(map_payload)
            )
            tasks.append(
                (
                    payload,
                    self._shm.name,
                    self._data.dtype.str,
                    int(self._data.shape[0]),
                    split,
                    map_payload,
                    self._multi_key,
                    wants_emitted,
                )
            )
        with self.telemetry.span("engine.block_seconds"):
            results = self._pool.map(_run_split_task, tasks)
        emitted: set[int] = set()
        for split, (map_ref, emitted_keys, emitted_payload, counters) in zip(
            splits, results
        ):
            map_bytes = _import_payload(map_ref)
            self.telemetry.record_op(
                f"engine.wire.{wire_format_of(map_bytes)}", len(map_bytes)
            )
            red_maps[split.thread_id].replace_contents(deserialize_map(map_bytes))
            self.telemetry.merge_counters(counters)
            self.telemetry.inc("engine.splits")
            if wants_emitted and emitted_keys:
                for key, obj in zip(emitted_keys, pickle.loads(emitted_payload)):
                    sched.convert(obj, self._out, key)
            emitted.update(emitted_keys)
        return emitted
