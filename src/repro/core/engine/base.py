"""The execution-engine interface: *how* splits are reduced.

The paper separates what an analytics computes (Table 1 callbacks) from
how the runtime executes it (OpenMP threads within a rank, MPI across
ranks).  The scheduler owns the *what* — blocks, splits, reduction maps,
combination — and delegates the *how* to an :class:`ExecutionEngine`,
the intra-rank analogue of the pluggable communicator backends in
``repro.comm``: the same Algorithm-1 structure runs over a serial loop,
a persistent thread pool, or a process pool with shared-memory input,
selected by ``SchedArgs.engine``.

Lifecycle: an engine is created lazily on the scheduler's first run and
lives for the scheduler's lifetime (``start`` once, ``shutdown`` once —
asserted by the ``engine.pools_created`` telemetry counter).  Engines
hold a strong reference to their scheduler only between ``begin_run``
and ``end_run``, so dropping the scheduler drops the engine and its
worker pool with it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from ..chunk import Split
from ..maps import KeyedMap

if TYPE_CHECKING:  # pragma: no cover
    from ...telemetry import Recorder
    from ..scheduler import Scheduler

#: ``reduce_fn(split, red_map) -> emitted keys`` — the scheduler-side
#: callable an in-process engine applies to each split.
ReduceFn = Callable[[Split, KeyedMap], "list[int]"]


class ExecutionEngine(ABC):
    """Maps splits onto an execution substrate and collects emitted keys.

    Per-engine telemetry (written into the scheduler's recorder):

    * ``engine.pools_created`` — worker pools created over the engine's
      lifetime (1 for the pooled engines, 0 for serial).
    * ``engine.splits`` — splits executed.
    * ``engine.split_seconds`` timer — per-split wall-clock.
    """

    name: str = "?"
    #: True when the backend reduces splits in a fixed order on one
    #: thread — the property the conformance oracle requires of its
    #: reference execution (``repro.verify`` refuses a non-deterministic
    #: oracle engine).
    deterministic: bool = False

    def __init__(self, num_workers: int, telemetry: "Recorder"):
        self.num_workers = int(num_workers)
        self.telemetry = telemetry
        self._sched: "Scheduler | None" = None
        self._data: np.ndarray | None = None
        self._out: np.ndarray | None = None
        self._multi_key = False
        self._step_buffers: dict[int, np.ndarray] = {}

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Acquire execution resources (worker pools).  Idempotent."""

    def shutdown(self) -> None:
        """Release execution resources.  Idempotent.

        Subclasses that override this must call ``super().shutdown()``
        so engine-resident buffers are released with the pools.
        """
        self._step_buffers.clear()

    def step_buffer(self, slot: int, shape, dtype) -> np.ndarray:
        """A resident per-slot array the caller may fill in place.

        Double-buffered in-situ drivers write simulation output directly
        into alternating slots and hand the filled buffer to
        ``Scheduler.run`` — the zero-extra-copy steady state.  The base
        implementation returns cached plain numpy arrays (in-process
        engines read the caller's memory anyway); the process engine
        overrides this to return views of resident shared-memory
        segments, so a slot-filled partition reaches workers with no
        copy at all.  Requesting a slot again with a different shape or
        dtype reallocates it, invalidating previously returned views of
        that slot.
        """
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        buf = self._step_buffers.get(slot)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._step_buffers[slot] = buf
        return buf

    def begin_run(
        self,
        scheduler: "Scheduler",
        data: np.ndarray,
        out: np.ndarray | None,
        multi_key: bool,
    ) -> None:
        """Bind one partition's context for the duration of a run."""
        self._sched = scheduler
        self._data = data
        self._out = out
        self._multi_key = multi_key

    def end_run(self) -> None:
        """Drop the per-run context (breaks the scheduler reference cycle)."""
        self._sched = None
        self._data = None
        self._out = None

    def invalidate_state(self) -> None:
        """Scheduler state changed mid-run (combination phase ran).

        In-process engines see the change for free; the process engine
        overrides this to re-ship scheduler state to its workers.
        """

    # -- execution ---------------------------------------------------------
    @abstractmethod
    def map_splits(self, splits: Iterable[Split], red_maps: list[KeyedMap]) -> set[int]:
        """Reduce every split of one block; return the early-emitted keys.

        Each split is reduced against ``red_maps[split.thread_id]``
        (mutated in place).  In-process engines apply the scheduler's
        ``reduce_fn`` directly; the process engine runs the same
        reduction in workers and folds the results back.
        """

    # -- helpers for subclasses -------------------------------------------
    def _reduce_fn(self) -> ReduceFn:
        sched, data, out, multi_key = self._sched, self._data, self._out, self._multi_key
        assert sched is not None, "map_splits outside begin_run/end_run"

        def reduce_fn(split: Split, red_map: KeyedMap) -> list[int]:
            return sched._reduce_split(split, red_map, data, out, multi_key)

        return reduce_fn

    def _timed_reduce(self, reduce_fn: ReduceFn, split: Split, red_map: KeyedMap) -> list[int]:
        with self.telemetry.span("engine.split_seconds"):
            emitted = reduce_fn(split, red_map)
        self.telemetry.inc("engine.splits")
        return emitted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.num_workers})"


def create_engine(
    spec, num_workers: int | None = None, telemetry: "Recorder | None" = None
) -> ExecutionEngine:
    """Instantiate an execution engine.

    ``spec`` is an :class:`~repro.core.policy.EnginePolicy` (preferred —
    carries the backend name and worker count together) or a bare
    backend name string.  ``num_workers`` overrides the policy's worker
    count; with a string spec it defaults to 1.
    """
    from .process import ProcessEngine
    from .serial import SerialEngine
    from .thread import ThreadEngine

    if isinstance(spec, str):
        name = spec
        workers = 1 if num_workers is None else num_workers
    else:
        name = spec.backend
        workers = spec.num_threads if num_workers is None else num_workers
    if telemetry is None:
        from ...telemetry import Recorder

        telemetry = Recorder()
    engines = {"serial": SerialEngine, "thread": ThreadEngine, "process": ProcessEngine}
    try:
        cls = engines[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; choose from {sorted(engines)}"
        ) from None
    return cls(workers, telemetry)
