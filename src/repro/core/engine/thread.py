"""Persistent-thread engine: one pool per scheduler lifetime.

The seed implementation tore down and rebuilt a ``ThreadPoolExecutor``
for every block — thread spawn/join on the hot path of every time-step.
This engine creates the pool once in :meth:`start` and reuses it across
blocks, iterations, and runs (the ``engine.pools_created`` telemetry
counter stays at 1), the intra-rank analogue of the paper's persistent
OpenMP thread team.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Iterable

from ..chunk import Split
from ..maps import KeyedMap
from .base import ExecutionEngine


class ThreadEngine(ExecutionEngine):
    """Reduce splits on a persistent thread pool.

    Each split writes only its own thread-private reduction map
    (``red_maps[split.thread_id]``), so no locking is needed beyond the
    telemetry recorder's.  Python threads still share the GIL; the win
    is real for the vectorized paths (numpy releases the GIL) and for
    eliminating per-block executor churn on the scalar path.
    """

    name = "thread"

    def __init__(self, num_workers, telemetry):
        super().__init__(num_workers, telemetry)
        self._pool: ThreadPoolExecutor | None = None

    def start(self) -> None:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_workers, thread_name_prefix="smart-engine"
            )
            self.telemetry.inc("engine.pools_created")

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        super().shutdown()

    def __del__(self):  # pragma: no cover - interpreter-exit safety net
        self.shutdown()

    def map_splits(self, splits: Iterable[Split], red_maps: list[KeyedMap]) -> set[int]:
        splits = list(splits)
        reduce_fn = self._reduce_fn()
        emitted: set[int] = set()
        if len(splits) <= 1 or self.num_workers <= 1:
            # Nothing to parallelize; skip the dispatch overhead.
            for split in splits:
                emitted.update(self._timed_reduce(reduce_fn, split, red_maps[split.thread_id]))
            return emitted
        assert self._pool is not None, "map_splits before start()"
        futures = [
            self._pool.submit(self._timed_reduce, reduce_fn, split, red_maps[split.thread_id])
            for split in splits
        ]
        for future in futures:
            emitted.update(future.result())
        return emitted
