"""Space-sharing in-situ mode (paper Section 3.2, Figure 4; Listing 2).

Simulation and analytics run *concurrently* on two disjoint core groups of
each node.  The simulation task feeds each finished time-step into the
scheduler's circular buffer (copying it — unlike time sharing, the
producer immediately moves on and may overwrite its own buffers); the
analytics task drains and processes the cells.  This module reproduces
Listing 2's two-OpenMP-task structure with two Python threads.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from .scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.base import Simulation


@dataclass
class CoreSplit:
    """How a node's cores are divided between the two tasks.

    The paper's Figure 10 labels schemes ``n_m``: ``n`` simulation threads
    and ``m`` analytics threads.
    """

    sim_threads: int
    analytics_threads: int

    def __post_init__(self) -> None:
        if self.sim_threads < 1 or self.analytics_threads < 1:
            raise ValueError(
                f"both core groups need >= 1 core, got "
                f"{self.sim_threads}_{self.analytics_threads}"
            )

    @property
    def label(self) -> str:
        return f"{self.sim_threads}_{self.analytics_threads}"

    @property
    def total(self) -> int:
        return self.sim_threads + self.analytics_threads


@dataclass
class SpaceSharingResult:
    """Outcome of a space-sharing run."""

    elapsed_seconds: float = 0.0
    producer_seconds: float = 0.0
    consumer_seconds: float = 0.0
    steps: int = 0
    producer_blocks: int = 0
    consumer_blocks: int = 0
    output: Any = None


class SpaceSharingDriver:
    """Run simulation and analytics concurrently through the circular buffer.

    Parameters
    ----------
    simulation:
        Object with ``advance() -> np.ndarray``.
    scheduler:
        The analytics application; its ``SchedArgs.buffer_capacity`` sizes
        the circular buffer and ``num_threads`` is the analytics core
        group (``CoreSplit.analytics_threads``).
    core_split:
        The ``n_m`` scheme.  Informational on this single-core host, but
        recorded so the performance model can replay the run on the
        paper's Xeon Phi node model.
    multi_key / out_factory / per_step:
        As in :class:`~repro.core.time_sharing.TimeSharingDriver`.
    """

    def __init__(
        self,
        simulation: "Simulation",
        scheduler: Scheduler,
        core_split: CoreSplit,
        *,
        multi_key: bool = False,
        out_factory: Callable[[np.ndarray], np.ndarray] | None = None,
        per_step: Callable[[int, Scheduler, np.ndarray | None], None] | None = None,
    ):
        self.simulation = simulation
        self.scheduler = scheduler
        self.core_split = core_split
        self.multi_key = multi_key
        self.out_factory = out_factory
        self.per_step = per_step

    def run(self, num_steps: int) -> SpaceSharingResult:
        """Execute the two tasks of Listing 2 and join them."""
        result = SpaceSharingResult(steps=num_steps)
        errors: list[BaseException] = []

        def simulation_task() -> None:
            t0 = time.perf_counter()
            try:
                for _ in range(num_steps):
                    partition = self.simulation.advance()
                    self.scheduler.feed(partition)
            except BaseException as exc:  # noqa: BLE001 - surfaced after join
                errors.append(exc)
                self.scheduler.close_feed()
            finally:
                result.producer_seconds = time.perf_counter() - t0

        def analytics_task() -> None:
            t0 = time.perf_counter()
            out = None
            try:
                for step in range(num_steps):
                    partition = None  # consume from the circular buffer
                    out = None
                    if self.out_factory is not None:
                        # Output shape may depend on the partition, which is
                        # only known after get(); pull manually in that case.
                        partition = self.scheduler._feed_buffer().get()
                        out = self.out_factory(partition)
                    runner = self.scheduler.run2 if self.multi_key else self.scheduler.run
                    runner(partition, out)
                    if self.per_step is not None:
                        self.per_step(step, self.scheduler, out)
                result.output = (
                    out if out is not None else self.scheduler.get_combination_map()
                )
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                result.consumer_seconds = time.perf_counter() - t0

        t_start = time.perf_counter()
        producer = threading.Thread(target=simulation_task, name="smart-sim-task")
        consumer = threading.Thread(target=analytics_task, name="smart-analytics-task")
        producer.start()
        consumer.start()
        producer.join()
        consumer.join()
        result.elapsed_seconds = time.perf_counter() - t_start

        buffer = self.scheduler._feed_buffer()
        result.producer_blocks = buffer.producer_blocks
        result.consumer_blocks = buffer.consumer_blocks
        if errors:
            raise errors[0]
        return result
