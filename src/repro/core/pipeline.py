"""Smart job pipelines (paper Section 3.1, last paragraph).

In-situ analytics tasks are often deployed as a MapReduce pipeline: a
preprocessing stage (smoothing, filtering, reorganization) produces a
*local* output on each partition — global combination is turned off — and
that output feeds the next Smart job in the parallel code region.

:class:`SmartPipeline` chains schedulers that way.  Each stage declares
how its result becomes the next stage's input via ``emit``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from .maps import KeyedMap
from .scheduler import Scheduler


@dataclass
class PipelineStage:
    """One job of a pipeline.

    Parameters
    ----------
    scheduler:
        The Smart application for this stage.
    emit:
        ``emit(scheduler, data) -> np.ndarray`` turning the stage's state
        (typically its local combination map) into the next stage's input
        partition.  ``data`` is the input this stage consumed.  The final
        stage may omit ``emit``.
    multi_key:
        Whether the stage uses ``run2``.
    local_only:
        Turn off global combination for this stage (the default for every
        stage but the last, matching the paper's description).
    """

    scheduler: Scheduler
    emit: Callable[[Scheduler, np.ndarray], np.ndarray] | None = None
    multi_key: bool = False
    local_only: bool = True


class SmartPipeline:
    """Run a sequence of Smart jobs over each partition.

    The final stage keeps global combination on (unless configured
    otherwise), so after :meth:`run` the caller reads the global result
    from the last scheduler's combination map, exactly as with a single
    job.
    """

    def __init__(self, stages: Sequence[PipelineStage]):
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = list(stages)
        for i, stage in enumerate(self.stages):
            is_last = i == len(self.stages) - 1
            if not is_last and stage.emit is None:
                raise ValueError(f"stage {i} is not last and has no emit()")
            stage.scheduler.set_global_combination(
                not stage.local_only or is_last
            )

    def run(self, data: np.ndarray, out: np.ndarray | None = None) -> Any:
        """Feed ``data`` through every stage; return the last stage's result."""
        current = np.asarray(data)
        result: Any = None
        for i, stage in enumerate(self.stages):
            is_last = i == len(self.stages) - 1
            runner = stage.scheduler.run2 if stage.multi_key else stage.scheduler.run
            result = runner(current, out if is_last else None)
            if not is_last:
                assert stage.emit is not None
                current = np.asarray(stage.emit(stage.scheduler, current))
        return result

    @property
    def final_map(self) -> KeyedMap:
        return self.stages[-1].scheduler.get_combination_map()
