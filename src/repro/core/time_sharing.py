"""Time-sharing in-situ mode (paper Section 3.2, Figure 3; Listing 1).

Simulation and analytics run *in turns* on the same cores.  When a
time-step's output partition is ready, Smart sets a read pointer on that
memory (here: processes the numpy array view directly, no copy) and the
analytics must finish before the simulation resumes and overwrites it.

:class:`TimeSharingDriver` wires a simulation and a scheduler into that
loop and records the per-phase timings the evaluation figures need.  Two
steady-state extensions ride on the execution engine's resident
buffers:

* **Double buffering** (``TimeSharingDriver(double_buffer=True)``) — the
  simulation writes each step straight into one of two alternating
  engine ``step_buffer`` slots.  On the process engine those slots are
  resident shared-memory segments, so the partition reaches the worker
  pool with *zero* copies (the serial loop pays one copy per step:
  simulation buffer into the per-run segment).
* **Pipelining** (:class:`PipelinedTimeSharingDriver`) — simulation of
  step ``t+1`` overlaps analytics of step ``t``, bounded by the same
  two slots: the producer can run at most one step ahead, so a slot is
  never overwritten while the analytics still reads it (the Figure-3
  torn-read hazard is excluded by construction, not by discipline).
  Results are bit-exact with the serial driver — steps are analyzed in
  order against the same byte streams.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from .circular_buffer import BufferClosed, CircularBuffer
from .scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.base import Simulation


@dataclass
class StepTiming:
    """Wall-clock seconds of one time-step, split by phase.

    ``overlap_seconds`` is the portion of this step's simulate phase that
    ran concurrently with analytics of the previous step (always 0 for
    the serial drivers); ``total`` is the step's contribution to
    wall-clock, i.e. the overlapped time is counted once, not twice.
    """

    simulate: float
    analyze: float
    overlap_seconds: float = 0.0

    @property
    def total(self) -> float:
        return self.simulate + self.analyze - self.overlap_seconds


@dataclass
class TimeSharingResult:
    """Outcome of a time-sharing run."""

    steps: list[StepTiming] = field(default_factory=list)
    output: Any = None

    @property
    def simulate_seconds(self) -> float:
        return sum(s.simulate for s in self.steps)

    @property
    def analyze_seconds(self) -> float:
        return sum(s.analyze for s in self.steps)

    @property
    def overlap_seconds(self) -> float:
        """Seconds of simulate/analyze concurrency reclaimed by pipelining."""
        return sum(s.overlap_seconds for s in self.steps)

    @property
    def total_seconds(self) -> float:
        return sum(s.total for s in self.steps)


class TimeSharingDriver:
    """Run a simulation with in-situ analytics, alternating per time-step.

    Parameters
    ----------
    simulation:
        Any object with ``advance() -> np.ndarray`` returning this rank's
        output partition for the next time-step (see
        :class:`repro.sim.base.Simulation`).
    scheduler:
        The analytics application.  Its ``SchedArgs.copy_input`` decides
        whether the partition is processed through the read pointer
        (paper's design) or via an extra copy (Fig. 9's comparison).
    multi_key:
        Use ``run2``/``gen_keys`` (window-based analytics).
    out_factory:
        Optional callable ``(partition) -> np.ndarray`` building the output
        array for each step; required for early-emission analytics.
    per_step:
        Optional callback ``(step_index, scheduler, out)`` observed after
        every analytics run — e.g. to reset state or snapshot results.
    double_buffer:
        Write simulation output directly into two alternating
        engine-resident ``step_buffer`` slots (via
        :meth:`~repro.sim.base.Simulation.advance_into`) instead of the
        simulation's own buffer.  On the process engine each step is then
        a *direct* residency hit — no copy-in.  Off by default: the plain
        mode matches the paper's Listing 1 exactly.
    """

    def __init__(
        self,
        simulation: "Simulation",
        scheduler: Scheduler,
        *,
        multi_key: bool = False,
        out_factory: Callable[[np.ndarray], np.ndarray] | None = None,
        per_step: Callable[[int, Scheduler, np.ndarray | None], None] | None = None,
        double_buffer: bool = False,
    ):
        self.simulation = simulation
        self.scheduler = scheduler
        self.multi_key = multi_key
        self.out_factory = out_factory
        self.per_step = per_step
        self.double_buffer = double_buffer

    def _advance(self, step: int) -> np.ndarray:
        """One simulation step, honouring the buffering mode."""
        if self.double_buffer:
            buf = self.scheduler.engine.step_buffer(
                step % 2, (self.simulation.partition_elements,), np.float64
            )
            return self.simulation.advance_into(buf)
        partition = self.simulation.advance()
        # The simulation may reuse its output buffer in place (Figure 3);
        # tell the residency layer so the engine re-copies this step.
        self.scheduler.notify_data_changed()
        return partition

    def run(self, num_steps: int) -> TimeSharingResult:
        """Alternate ``num_steps`` simulate/analyze rounds (Listing 1 loop)."""
        result = TimeSharingResult()
        out = None
        for step in range(num_steps):
            t0 = time.perf_counter()
            partition = self._advance(step)
            t1 = time.perf_counter()
            out = self.out_factory(partition) if self.out_factory else None
            runner = self.scheduler.run2 if self.multi_key else self.scheduler.run
            # Read pointer: the partition array itself is handed to the
            # analytics; the simulation is *not* advanced again until run
            # returns, so the shared memory is never torn (Figure 3).
            runner(partition, out)
            if self.per_step is not None:
                self.per_step(step, self.scheduler, out)
            t2 = time.perf_counter()
            result.steps.append(StepTiming(simulate=t1 - t0, analyze=t2 - t1))
        result.output = out if out is not None else self.scheduler.get_combination_map()
        return result


class PipelinedTimeSharingDriver(TimeSharingDriver):
    """Overlap simulation of step ``t+1`` with analytics of step ``t``.

    A producer thread advances the simulation into engine-resident
    ``step_buffer`` slots; the calling thread drains them in order and
    runs the analytics.  The pipeline depth (default 2 — classic double
    buffering) bounds how far the producer may run ahead: a slot is only
    recycled after its analytics completes, so the in-place-overwrite
    hazard of plain time sharing cannot occur.

    Determinism: steps are analyzed strictly in order against exactly the
    bytes ``advance_into`` produced, so the output is bit-exact with
    ``TimeSharingDriver`` over the same simulation (the tests assert it
    for every engine backend).

    Telemetry (written into the scheduler's recorder): the
    ``pipeline.steps`` counter, ``pipeline.overlap_seconds`` /
    ``pipeline.producer_wait_seconds`` / ``pipeline.consumer_wait_seconds``
    timers, and the ``pipeline.buffer_high_water`` gauge.  Per-step
    :attr:`StepTiming.overlap_seconds` reports how much of each simulate
    phase was hidden behind the previous step's analytics.

    Note: with an in-process engine on a single core, a CPU-bound
    simulation and CPU-bound analytics serialize on the GIL or the core
    itself; pipelining pays off when the simulation has wait phases
    (halo exchange, I/O, accelerator kernels) or the analytics runs on
    the process engine.
    """

    def __init__(
        self,
        simulation: "Simulation",
        scheduler: Scheduler,
        *,
        multi_key: bool = False,
        out_factory: Callable[[np.ndarray], np.ndarray] | None = None,
        per_step: Callable[[int, Scheduler, np.ndarray | None], None] | None = None,
        depth: int = 2,
    ):
        if depth < 2:
            raise ValueError(f"pipeline depth must be >= 2, got {depth}")
        super().__init__(
            simulation,
            scheduler,
            multi_key=multi_key,
            out_factory=out_factory,
            per_step=per_step,
            double_buffer=True,
        )
        self.depth = depth

    def run(self, num_steps: int) -> TimeSharingResult:
        result = TimeSharingResult()
        out = None
        telemetry = self.scheduler.telemetry
        engine = self.scheduler.engine  # created on this thread, once
        elements = self.simulation.partition_elements
        free: CircularBuffer = CircularBuffer(self.depth)
        ready: CircularBuffer = CircularBuffer(self.depth)
        for slot in range(self.depth):
            free.put(slot)
        failure: list[BaseException] = []

        def produce() -> None:
            try:
                for _ in range(num_steps):
                    with telemetry.span("pipeline.producer_wait_seconds"):
                        slot = free.get()
                    buf = engine.step_buffer(slot, (elements,), np.float64)
                    s0 = time.perf_counter()
                    partition = self.simulation.advance_into(buf)
                    s1 = time.perf_counter()
                    ready.put((slot, partition, s0, s1))
            except BufferClosed:  # consumer bailed out early
                pass
            except BaseException as exc:  # surfaced on the consumer thread
                failure.append(exc)
            finally:
                ready.close()

        producer = threading.Thread(target=produce, name="smart-pipeline-sim")
        producer.start()
        prev_analyze: tuple[float, float] | None = None
        try:
            for step in range(num_steps):
                try:
                    with telemetry.span("pipeline.consumer_wait_seconds"):
                        slot, partition, s0, s1 = ready.get()
                except BufferClosed:  # producer died; failure holds why
                    break
                a0 = time.perf_counter()
                out = self.out_factory(partition) if self.out_factory else None
                runner = self.scheduler.run2 if self.multi_key else self.scheduler.run
                runner(partition, out)
                if self.per_step is not None:
                    self.per_step(step, self.scheduler, out)
                a1 = time.perf_counter()
                free.put(slot)
                # This step's simulate phase overlapped the previous
                # step's analyze phase; the intersection is wall-clock
                # the pipeline reclaimed.
                overlap = 0.0
                if prev_analyze is not None:
                    overlap = max(
                        0.0, min(s1, prev_analyze[1]) - max(s0, prev_analyze[0])
                    )
                prev_analyze = (a0, a1)
                result.steps.append(
                    StepTiming(
                        simulate=s1 - s0, analyze=a1 - a0, overlap_seconds=overlap
                    )
                )
                telemetry.add_time("pipeline.overlap_seconds", overlap)
                telemetry.inc("pipeline.steps")
        finally:
            free.close()
            producer.join()
            telemetry.set_gauge("pipeline.buffer_high_water", ready.high_water)
        if failure:
            raise failure[0]
        result.output = out if out is not None else self.scheduler.get_combination_map()
        return result
