"""Time-sharing in-situ mode (paper Section 3.2, Figure 3; Listing 1).

Simulation and analytics run *in turns* on the same cores.  When a
time-step's output partition is ready, Smart sets a read pointer on that
memory (here: processes the numpy array view directly, no copy) and the
analytics must finish before the simulation resumes and overwrites it.

:class:`TimeSharingDriver` wires a simulation and a scheduler into that
loop and records the per-phase timings the evaluation figures need.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from .scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.base import Simulation


@dataclass
class StepTiming:
    """Wall-clock seconds of one time-step, split by phase."""

    simulate: float
    analyze: float

    @property
    def total(self) -> float:
        return self.simulate + self.analyze


@dataclass
class TimeSharingResult:
    """Outcome of a time-sharing run."""

    steps: list[StepTiming] = field(default_factory=list)
    output: Any = None

    @property
    def simulate_seconds(self) -> float:
        return sum(s.simulate for s in self.steps)

    @property
    def analyze_seconds(self) -> float:
        return sum(s.analyze for s in self.steps)

    @property
    def total_seconds(self) -> float:
        return self.simulate_seconds + self.analyze_seconds


class TimeSharingDriver:
    """Run a simulation with in-situ analytics, alternating per time-step.

    Parameters
    ----------
    simulation:
        Any object with ``advance() -> np.ndarray`` returning this rank's
        output partition for the next time-step (see
        :class:`repro.sim.base.Simulation`).
    scheduler:
        The analytics application.  Its ``SchedArgs.copy_input`` decides
        whether the partition is processed through the read pointer
        (paper's design) or via an extra copy (Fig. 9's comparison).
    multi_key:
        Use ``run2``/``gen_keys`` (window-based analytics).
    out_factory:
        Optional callable ``(partition) -> np.ndarray`` building the output
        array for each step; required for early-emission analytics.
    per_step:
        Optional callback ``(step_index, scheduler, out)`` observed after
        every analytics run — e.g. to reset state or snapshot results.
    """

    def __init__(
        self,
        simulation: "Simulation",
        scheduler: Scheduler,
        *,
        multi_key: bool = False,
        out_factory: Callable[[np.ndarray], np.ndarray] | None = None,
        per_step: Callable[[int, Scheduler, np.ndarray | None], None] | None = None,
    ):
        self.simulation = simulation
        self.scheduler = scheduler
        self.multi_key = multi_key
        self.out_factory = out_factory
        self.per_step = per_step

    def run(self, num_steps: int) -> TimeSharingResult:
        """Alternate ``num_steps`` simulate/analyze rounds (Listing 1 loop)."""
        result = TimeSharingResult()
        out = None
        for step in range(num_steps):
            t0 = time.perf_counter()
            partition = self.simulation.advance()
            t1 = time.perf_counter()
            out = self.out_factory(partition) if self.out_factory else None
            runner = self.scheduler.run2 if self.multi_key else self.scheduler.run
            # Read pointer: the partition array itself is handed to the
            # analytics; the simulation is *not* advanced again until run
            # returns, so the shared memory is never torn (Figure 3).
            runner(partition, out)
            if self.per_step is not None:
                self.per_step(step, self.scheduler, out)
            t2 = time.perf_counter()
            result.steps.append(StepTiming(simulate=t1 - t0, analyze=t2 - t1))
        result.output = out if out is not None else self.scheduler.get_combination_map()
        return result
