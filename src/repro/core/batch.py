"""Batch-map execution path: preallocated columnar accumulators.

The paper's Algorithm 2 map loop calls ``gen_key``/``accumulate`` once
per unit chunk.  Reproduced literally in Python, every element pays an
interpreter round-trip plus a ``KeyedMap`` dict write — orders of
magnitude more than the arithmetic itself.  PR 2 already vectorized the
*merge* side (:class:`~repro.core.serialization.PackedMap`); this module
finishes the job on the *map* side, following the shape of "Optimizing
the MapReduce Framework on Intel Xeon Phi" (PAPERS.md): eliminate the
intermediate per-element key-value emission entirely and scatter whole
splits into preallocated, SIMD-friendly columns.

Applications opt in by implementing
:meth:`~repro.core.scheduler.Scheduler.batch_reduce`, which receives a
:class:`ColumnarAccumulator` — one dense row per key in a declared key
window, one numpy column per :class:`~repro.core.red_obj.Field` of the
application's reduction-object schema — and updates it with
``np.bincount`` / ``np.add.at``-style scatter kernels.  Zero per-element
``gen_key``/``accumulate`` calls, zero ``KeyedMap`` dict writes on the
hot path; the scheduler folds touched rows back into the reduction map
(or ships them straight onto the columnar wire) afterwards.

Bit-exactness contract: ``np.bincount`` and ``np.add.at`` apply their
updates sequentially in input order, so per-key floating-point sums are
bit-identical to the scalar element-order loop as long as the kernel
presents elements to each key in ascending element order.  Rows are
initialized from a freshly constructed reduction object (exactly what
the scalar loop's ``accumulate(..., existing=None, ...)`` starts from)
and seeded from the incoming reduction map, so accumulation continues
from prior totals with the same float grouping as scalar in-place
mutation.

An optional numba ``@njit`` hook (:func:`maybe_njit`) compiles scatter
kernels when numba is importable and degrades to the pure-numpy callable
otherwise — no hard dependency; set ``REPRO_NO_NUMBA=1`` to force the
fallback even when numba is installed.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable

import numpy as np

from .red_obj import RedObj
from .serialization import PackedMap, _schema_dtype

__all__ = [
    "HAVE_NUMBA",
    "ColumnarAccumulator",
    "maybe_njit",
]

try:  # pragma: no cover - exercised only where numba is installed
    if os.environ.get("REPRO_NO_NUMBA"):
        raise ImportError("numba disabled by REPRO_NO_NUMBA")
    import numba as _numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the baked-in path on this image
    _numba = None
    HAVE_NUMBA = False


def maybe_njit(fn: Callable | None = None, **options) -> Callable:
    """``numba.njit`` when numba is importable, identity otherwise.

    Usable bare (``@maybe_njit``) or with options
    (``@maybe_njit(cache=True)``).  Kernels decorated with it must be
    written in the numpy subset numba compiles *and* remain correct as
    plain Python — the fallback runs them uncompiled.
    """

    def decorate(func: Callable) -> Callable:
        if not HAVE_NUMBA:
            return func
        return _numba.njit(**options)(func)  # pragma: no cover

    if fn is not None:
        return decorate(fn)
    return decorate


class ColumnarAccumulator:
    """Dense per-key columns over a key window ``[key_lo, key_hi)``.

    Row ``k - key_lo`` holds key ``k``'s reduction state as one record of
    the application's :class:`~repro.core.red_obj.Field` schema — the
    same structured dtype :func:`~repro.core.serialization.pack_map`
    produces, so a finished accumulator converts to a
    :class:`~repro.core.serialization.PackedMap` without copying through
    objects.

    ``batch_reduce`` kernels read/write columns via :meth:`column` (a
    writable ndarray view) and must record every key they touch in
    :attr:`contrib` (``np.add.at(acc.contrib, rel_keys, 1)`` or a
    bincount add) — fold-back and early-emission sweeps only visit rows
    with ``contrib > 0``.

    Every row starts as a freshly constructed reduction object (the
    ``prototype``), which is exactly the state the scalar loop's
    ``accumulate(..., existing=None, ...)`` call begins from; ``"keep"``
    fields (e.g. a window size) thereby carry the prototype's value in
    every row.  :meth:`load_from` then overwrites rows for keys already
    present in the reduction map, so scatters continue from prior totals
    with scalar-identical float grouping.
    """

    __slots__ = (
        "cls",
        "fields",
        "key_lo",
        "key_hi",
        "records",
        "contrib",
        "_seeded",
        "complete",
    )

    def __init__(self, prototype: RedObj, key_lo: int, key_hi: int):
        fields = prototype.fields()
        if not fields:
            raise TypeError(
                f"{type(prototype).__name__} is schemaless (fields() returned "
                "None/empty); the batch map path needs a Field schema"
            )
        if key_hi < key_lo:
            raise ValueError(f"empty key window [{key_lo}, {key_hi})")
        self.cls = type(prototype)
        self.fields = tuple(fields)
        self.key_lo = int(key_lo)
        self.key_hi = int(key_hi)
        n = self.key_hi - self.key_lo
        proto = np.empty(1, dtype=_schema_dtype(fields))
        prototype.pack_into(proto[0])
        self.records = np.empty(n, dtype=proto.dtype)
        self.records[:] = proto[0]
        #: Contributions scattered into each row by ``batch_reduce``.
        self.contrib = np.zeros(n, dtype=np.int64)
        self._seeded = np.zeros(n, dtype=bool)
        #: True while every key of the source reduction map lies inside
        #: the window (set by :meth:`load_from`); only then does the
        #: accumulator hold the *complete* map state and qualify for the
        #: zero-copy wire export.
        self.complete = True

    def __len__(self) -> int:
        return self.key_hi - self.key_lo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarAccumulator({self.cls.__name__}, "
            f"[{self.key_lo}, {self.key_hi}), "
            f"{int(np.count_nonzero(self.contrib))} touched)"
        )

    def column(self, name: str) -> np.ndarray:
        """Writable column view for schema field ``name`` (row ``i`` is
        key ``key_lo + i``)."""
        return self.records[name]

    # -- seeding --------------------------------------------------------
    def load_from(self, red_map) -> None:
        """Seed rows from an existing reduction map.

        Keys inside the window overwrite their row (so subsequent
        scatters continue from the prior total exactly like scalar
        in-place mutation); any key outside the window clears
        :attr:`complete` — the accumulator then no longer represents the
        whole map and the scheduler folds through objects instead of
        exporting columns wholesale.
        """
        lo, hi = self.key_lo, self.key_hi
        records = self.records
        seeded = self._seeded
        for key, obj in red_map.items():
            if lo <= key < hi:
                obj.pack_into(records[key - lo])
                seeded[key - lo] = True
            else:
                self.complete = False

    # -- fold-back ------------------------------------------------------
    def touched_keys(self) -> np.ndarray:
        """Sorted int64 keys that received contributions this split."""
        return np.nonzero(self.contrib)[0] + self.key_lo

    def make_objects(self, keys: np.ndarray) -> list[RedObj]:
        """Materialize reduction objects for ``keys`` (bulk, C-speed
        column extraction — the :meth:`PackedMap.to_map` technique)."""
        rel = np.asarray(keys, dtype=np.int64) - self.key_lo
        records = self.records[rel]
        cls = self.cls
        n = len(records)
        if cls.unpack_from.__func__ is RedObj.unpack_from.__func__:
            names = records.dtype.names
            columns = []
            for name in names:
                col = records[name]
                columns.append(col.tolist() if col.ndim == 1 else list(col.copy()))
            objs = []
            new = cls.__new__
            for i in range(n):
                obj = new(cls)
                for name, col in zip(names, columns):
                    setattr(obj, name, col[i])
                objs.append(obj)
            return objs
        return [cls.unpack_from(records[i]) for i in range(n)]

    def fold_into(self, red_map) -> np.ndarray:
        """Replace ``red_map`` entries for every touched key.

        Replacement — not merging — is deliberate: the row accumulated
        *from* the seeded prior value in element order, so it already
        holds exactly what scalar in-place mutation would; merging a
        subtotal instead would regroup the float additions.  Returns the
        touched keys (sorted).
        """
        keys = self.touched_keys()
        if len(keys):
            red_map.replace_items(
                keys.tolist(), self.make_objects(keys))
        return keys

    # -- zero-copy wire export ------------------------------------------
    def to_packed(self, keys: Iterable[int] | np.ndarray) -> PackedMap:
        """A :class:`PackedMap` over ``keys`` straight from the columns.

        ``keys`` must be the reduction map's sorted key list; the result
        is byte-identical to ``pack_map(red_map)`` after
        :meth:`fold_into`, letting the process engine ship the split's
        result onto the columnar wire without materializing objects.
        """
        keys = np.asarray(
            keys if not isinstance(keys, np.ndarray) else keys, dtype=np.int64
        )
        records = self.records[keys - self.key_lo].copy()
        return PackedMap(
            self.cls, keys, records, [f.merge for f in self.fields]
        )
