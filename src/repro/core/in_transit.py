"""In-transit and hybrid processing (extension; paper Section 6).

The paper positions Smart as deployable beyond pure in-situ placement:
*in-transit* platforms (PreDatA, GLEAN, JITStager, NESSIE) move analytics
to dedicated staging nodes, and *hybrid* platforms (ActiveSpaces,
DataSpaces, FlexIO) split work between simulation and staging nodes —
"our system can be incorporated into these platforms to support
in-transit or hybrid processing."  This module is that incorporation for
this reproduction's substrate.

The world communicator is split by role:

* **simulation ranks** run the simulation; depending on the mode they
  either forward raw partitions to their staging rank (in-transit) or run
  the reduction locally and forward their *local combination map*
  (hybrid — far fewer bytes on the wire, the usual motivation for hybrid
  placement);
* **staging ranks** own the Scheduler: they reduce incoming raw data (or
  merge incoming maps), then combine globally among themselves.

Roles are assigned by rank: the last ``num_staging`` ranks stage, the
rest simulate; simulation rank *i* forwards to staging rank
``i % num_staging``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..comm.interface import Communicator
from .maps import KeyedMap
from .scheduler import Scheduler
from .serialization import deserialize_map, serialize_map

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.base import Simulation

_TAG_DATA = 301
_TAG_MAP = 302


@dataclass(frozen=True)
class Placement:
    """Role assignment for one rank of an in-transit/hybrid job."""

    world_rank: int
    world_size: int
    num_staging: int

    def __post_init__(self) -> None:
        if not 1 <= self.num_staging < self.world_size:
            raise ValueError(
                f"need 1 <= staging ranks < world size, got {self.num_staging} "
                f"of {self.world_size}"
            )

    @property
    def num_simulation(self) -> int:
        return self.world_size - self.num_staging

    @property
    def is_staging(self) -> bool:
        return self.world_rank >= self.num_simulation

    @property
    def staging_index(self) -> int:
        """This staging rank's index among the staging ranks."""
        if not self.is_staging:
            raise ValueError(f"rank {self.world_rank} is a simulation rank")
        return self.world_rank - self.num_simulation

    @property
    def my_staging_rank(self) -> int:
        """The staging rank a simulation rank forwards to."""
        if self.is_staging:
            raise ValueError(f"rank {self.world_rank} is a staging rank")
        return self.num_simulation + (self.world_rank % self.num_staging)

    def producers_for(self, staging_index: int) -> list[int]:
        """Simulation ranks forwarding to the given staging rank."""
        return [
            r for r in range(self.num_simulation) if r % self.num_staging == staging_index
        ]


class InTransitDriver:
    """Run simulation and analytics on disjoint rank groups.

    Parameters
    ----------
    comm:
        The world communicator (every rank of the job).
    num_staging:
        How many trailing ranks are dedicated to analytics.
    mode:
        ``"in_transit"`` ships raw partitions to staging ranks;
        ``"hybrid"`` reduces locally on simulation ranks and ships the
        (much smaller) serialized local combination maps.

    Usage: every rank constructs the driver; simulation ranks call
    :meth:`run_simulation_side` with their simulation (and, in hybrid
    mode, a local scheduler); staging ranks build their sub-communicator
    with :func:`split_staging_comm`, construct the scheduler over it, and
    call :meth:`run_staging_side`.
    """

    def __init__(
        self,
        comm: Communicator,
        num_staging: int,
        *,
        mode: str = "in_transit",
    ):
        if mode not in ("in_transit", "hybrid"):
            raise ValueError(f"unknown mode {mode!r}")
        self.comm = comm
        self.placement = Placement(comm.rank, comm.size, num_staging)
        self.mode = mode

    # -- the SPMD entry points -------------------------------------------
    def run_simulation_side(
        self,
        simulation: "Simulation",
        num_steps: int,
        *,
        local_scheduler: Scheduler | None = None,
        multi_key: bool = False,
    ) -> int:
        """Simulation-rank body: advance and forward every time-step.

        In hybrid mode ``local_scheduler`` performs the rank-local
        reduction (its global combination must be off); the serialized
        local map is forwarded instead of the raw partition.

        Returns the number of payload bytes shipped (for the ablation
        bench comparing the two modes).
        """
        placement = self.placement
        if placement.is_staging:
            raise RuntimeError("run_simulation_side called on a staging rank")
        if self.mode == "hybrid":
            if local_scheduler is None:
                raise ValueError("hybrid mode needs a local_scheduler")
            local_scheduler.set_global_combination(False)
        dest = placement.my_staging_rank
        tag = _TAG_DATA if self.mode == "in_transit" else _TAG_MAP
        shipped = 0
        for _ in range(num_steps):
            partition = simulation.advance()
            if self.mode == "in_transit":
                payload = np.array(partition, copy=True)
                shipped += payload.nbytes
            else:
                runner = local_scheduler.run2 if multi_key else local_scheduler.run
                runner(partition)
                payload = serialize_map(
                    local_scheduler.get_combination_map(),
                    local_scheduler.policy.wire_format,
                )
                local_scheduler.reset()
                shipped += len(payload)
            self.comm.send(payload, dest=dest, tag=tag)
        self.comm.send(None, dest=dest, tag=tag)  # end-of-stream sentinel
        return shipped

    def run_staging_side(
        self,
        scheduler: Scheduler,
        *,
        multi_key: bool = False,
    ) -> KeyedMap:
        """Staging-rank body: consume forwarded steps until every producer
        signals completion, then return the combination map.

        The scheduler's communicator must be the staging group's
        sub-communicator so its global combination spans staging ranks
        only.
        """
        placement = self.placement
        if not placement.is_staging:
            raise RuntimeError("run_staging_side called on a simulation rank")
        producers = placement.producers_for(placement.staging_index)
        live = set(producers)
        tag = _TAG_DATA if self.mode == "in_transit" else _TAG_MAP
        # Round-robin over producers: per (source, tag) delivery is FIFO,
        # so each recv sees that producer's next step or its sentinel.
        while live:
            for source in list(live):
                payload = self.comm.recv(source=source, tag=tag)
                if payload is None:
                    live.discard(source)
                    continue
                if self.mode == "in_transit":
                    runner = scheduler.run2 if multi_key else scheduler.run
                    # Per-step reduction stays staging-local; the global
                    # combination across staging ranks happens once at the
                    # end.
                    scheduler.set_global_combination(False)
                    runner(payload)
                else:
                    scheduler.get_combination_map().merge_map(
                        deserialize_map(payload), scheduler.merge
                    )
        # Final global combination across staging ranks.
        scheduler.set_global_combination(True)
        from .serialization import global_combine

        scheduler.combination_map_ = global_combine(
            scheduler.comm, scheduler.combination_map_, scheduler.merge,
            combine=scheduler.policy.combine,
        )
        scheduler.post_combine(scheduler.combination_map_)
        return scheduler.combination_map_


def split_staging_comm(comm: Communicator, num_staging: int) -> Communicator | None:
    """Build the staging-group communicator (collective over all ranks).

    Returns the sub-communicator on staging ranks, ``None`` on simulation
    ranks.  A thin wrapper over :func:`repro.comm.subgroup.split_comm`:
    staging ranks form one color, simulation ranks none.
    """
    from ..comm.subgroup import split_comm

    placement = Placement(comm.rank, comm.size, num_staging)
    color = "staging" if placement.is_staging else None
    return split_comm(comm, color, key=comm.rank)
