"""Scheduler arguments (paper Table 1, runtime function 1).

``SchedArgs(int num_threads, size_t chunk_size, const void* extra_data,
int num_iters)`` from the C++ API, extended with the knobs this
reproduction adds (block streaming, real threading, vectorized fast path,
space-sharing buffer capacity, and the Fig-9 extra-copy toggle).

.. deprecated::
    ``SchedArgs`` is now a thin facade over the layered
    :class:`~repro.core.policy.ExecutionPolicy`: construction lowers the
    flat knobs onto per-concern policies (:meth:`SchedArgs.to_policy`),
    which own all validation, fingerprints, and defaults.  Every
    existing ``SchedArgs(...)`` spelling keeps working and produces a
    bit-identical run; new code should construct policies directly (see
    the migration table in docs/API.md).  A single
    ``PendingDeprecationWarning`` per process marks the facade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..faults import FaultPolicy
from .policy import (
    ENGINE_BACKENDS,
    CombinePolicy,
    EnginePolicy,
    ExecutionPolicy,
    warn_once,
)

#: Engine backends accepted by :attr:`SchedArgs.engine` (the policy
#: layer's :data:`~repro.core.policy.ENGINE_BACKENDS`).
ENGINE_NAMES = ENGINE_BACKENDS


@dataclass
class SchedArgs:
    """Configuration for a :class:`~repro.core.scheduler.Scheduler`.

    Parameters
    ----------
    num_threads:
        Threads per process for the reduction phase.  To maximize
        analytics performance this should equal the simulation's thread
        count in time-sharing mode (paper Listing 1 discussion).
    chunk_size:
        Elements per unit chunk — often the feature-vector length of the
        analytics (1 for histogram, ``num_dims`` for k-means).
    extra_data:
        Additional analytics input (e.g. initial k-means centroids),
        handed to ``process_extra_data``.  Default ``None``.
    num_iters:
        Iterations for iterative processing (k-means, logistic
        regression).  Default 1.
    block_size:
        Elements per scheduler block; the runtime processes a partition
        block by block.  ``None`` processes the whole partition as one
        block.
    engine:
        Execution backend for the reduction phase: ``"serial"`` (in-order
        loop, deterministic — the default), ``"thread"`` (persistent
        thread pool owned by the scheduler), or ``"process"``
        (persistent process pool over shared-memory input, GIL-free).
        ``None`` derives the backend from the deprecated ``use_threads``
        flag.  All backends produce identical results.
    use_threads:
        Deprecated alias: ``use_threads=True`` maps to
        ``engine="thread"``.  Prefer ``engine=``.
    vectorized:
        Use the application's numpy ``vector_reduce`` fast path when it
        provides one (semantically identical to the chunk loop; tests
        assert the equivalence).
    map_path:
        Map-phase implementation selector (``"auto"``, ``"scalar"``,
        ``"vector"``, or ``"batch"``) — see
        :attr:`repro.core.policy.EnginePolicy.map_path`.
    buffer_capacity:
        Cells in the space-sharing circular buffer (paper Figure 4).
    copy_input:
        Time-sharing only: make an extra copy of the simulation output
        before analytics instead of processing through the read pointer.
        Exists solely to reproduce the paper's Figure 9 comparison.
    disable_early_emission:
        Ignore reduction-object triggers, holding every object until the
        combination phase — the unoptimized implementation the paper's
        Figure 11 compares against.
    combine_algorithm:
        Global-combination algorithm: ``"gather"`` (the paper's
        merge-on-master), ``"tree"`` (binomial reduce, merging work
        spread across ranks), or ``"allreduce"`` (contiguous elementwise
        reduce of packed records — the hand-written-MPI shape of the
        paper's Section 5.3; requires every schema field to declare a
        merge ufunc, otherwise falls back to ``"gather"``).
    wire_format:
        Global-combination wire format: ``"pickle"`` (the paper's
        design point — reduction objects serialized noncontiguously,
        the overhead Section 5.3 measures) or ``"columnar"`` (maps with
        a :class:`~repro.core.red_obj.Field` schema travel as one
        contiguous keys-array plus one structured records-array and are
        merged with per-field ufuncs; schemaless maps still fall back
        to pickle).
    residency:
        Process-engine input residency: ``"auto"`` (the default) keeps
        the partition's shared-memory segment alive across ``run()``
        calls and skips the copy-in when the incoming array is the same
        unchanged buffer (iterative analytics re-running one partition)
        or an engine ``step_buffer`` slot the producer filled directly
        (double-buffered drivers); ``"off"`` restores the
        segment-per-run behaviour — allocate, copy, release every run.
        Contract for ``"auto"``: a caller that rewrites a previously-run
        array *in place* must call ``Scheduler.notify_data_changed()``
        (the time-sharing drivers do) so the engine re-copies.
    fault_policy:
        How the runtime reacts to a detected fault (a dead or hung
        process-engine worker): ``"fail_fast"`` (the default — the
        failure propagates as :class:`~repro.faults.EngineFaultError`),
        ``"retry"`` (the supervisor respawns the pool and the scheduler
        replays the current iteration from the last consistent
        combination map, with exponential backoff — bit-exact results),
        or ``"degrade"`` (the failed workers' split contributions are
        dropped for that iteration and recorded in ``faults.*``
        telemetry).  Accepts a mode name or a configured
        :class:`~repro.faults.FaultPolicy` (e.g.
        ``FaultPolicy.retry(max_attempts=5, task_deadline=2.0)``).
    """

    num_threads: int = 1
    chunk_size: int = 1
    extra_data: Any = None
    num_iters: int = 1
    block_size: int | None = None
    engine: str | None = None
    use_threads: bool = False
    vectorized: bool = False
    map_path: str = "auto"
    buffer_capacity: int = 4
    copy_input: bool = False
    disable_early_emission: bool = False
    combine_algorithm: str = "gather"
    wire_format: str = "pickle"
    residency: str = "auto"
    fault_policy: str | FaultPolicy = "fail_fast"

    def __post_init__(self) -> None:
        # The one check the policy layer cannot express: the facade's
        # nullable engine field (None = "derive from use_threads").
        if self.engine is not None and self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"engine must be one of {ENGINE_NAMES} or None, got {self.engine!r}"
            )
        if self.use_threads:
            warn_once(
                "sched_args.use_threads",
                "SchedArgs(use_threads=True) is deprecated; pass engine='thread'",
                DeprecationWarning,
                stacklevel=3,
            )
        warn_once(
            "sched_args.facade",
            "SchedArgs is a facade over repro.core.policy.ExecutionPolicy; "
            "prefer constructing policies directly (see docs/API.md)",
            PendingDeprecationWarning,
            stacklevel=3,
        )
        # Lowering validates every knob exactly once, in the policy layer
        # — the single home of the runtime's validity rules.
        self._policy = self.to_policy()

    def to_policy(self) -> ExecutionPolicy:
        """Lower the flat knobs onto the layered policy object."""
        backend = (
            self.engine
            if self.engine is not None
            else ("thread" if self.use_threads else "serial")
        )
        return ExecutionPolicy(
            engine=EnginePolicy(
                backend=backend,
                num_threads=self.num_threads,
                residency=self.residency,
                map_path=self.map_path,
            ),
            combine=CombinePolicy(
                algorithm=self.combine_algorithm,
                wire_format=self.wire_format,
            ),
            fault=FaultPolicy.parse(self.fault_policy),
            chunk_size=self.chunk_size,
            num_iters=self.num_iters,
            block_size=self.block_size,
            extra_data=self.extra_data,
            vectorized=self.vectorized,
            buffer_capacity=self.buffer_capacity,
            copy_input=self.copy_input,
            disable_early_emission=self.disable_early_emission,
        )

    @property
    def policy(self) -> ExecutionPolicy:
        """The :class:`~repro.core.policy.ExecutionPolicy` this facade
        lowered to at construction."""
        return self._policy

    @property
    def resolved_engine(self) -> str:
        """The effective backend name (``engine`` or the legacy alias)."""
        return self._policy.resolved_engine

    @property
    def resolved_fault_policy(self) -> FaultPolicy:
        """The effective :class:`~repro.faults.FaultPolicy` object."""
        return self._policy.resolved_fault_policy
