"""Scheduler arguments (paper Table 1, runtime function 1).

``SchedArgs(int num_threads, size_t chunk_size, const void* extra_data,
int num_iters)`` from the C++ API, extended with the knobs this
reproduction adds (block streaming, real threading, vectorized fast path,
space-sharing buffer capacity, and the Fig-9 extra-copy toggle).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any

from ..faults import FaultPolicy

#: Engine backends accepted by :attr:`SchedArgs.engine`.
ENGINE_NAMES = ("serial", "thread", "process")


@dataclass
class SchedArgs:
    """Configuration for a :class:`~repro.core.scheduler.Scheduler`.

    Parameters
    ----------
    num_threads:
        Threads per process for the reduction phase.  To maximize
        analytics performance this should equal the simulation's thread
        count in time-sharing mode (paper Listing 1 discussion).
    chunk_size:
        Elements per unit chunk — often the feature-vector length of the
        analytics (1 for histogram, ``num_dims`` for k-means).
    extra_data:
        Additional analytics input (e.g. initial k-means centroids),
        handed to ``process_extra_data``.  Default ``None``.
    num_iters:
        Iterations for iterative processing (k-means, logistic
        regression).  Default 1.
    block_size:
        Elements per scheduler block; the runtime processes a partition
        block by block.  ``None`` processes the whole partition as one
        block.
    engine:
        Execution backend for the reduction phase: ``"serial"`` (in-order
        loop, deterministic — the default), ``"thread"`` (persistent
        thread pool owned by the scheduler), or ``"process"``
        (persistent process pool over shared-memory input, GIL-free).
        ``None`` derives the backend from the deprecated ``use_threads``
        flag.  All backends produce identical results.
    use_threads:
        Deprecated alias: ``use_threads=True`` maps to
        ``engine="thread"``.  Prefer ``engine=``.
    vectorized:
        Use the application's numpy ``vector_reduce`` fast path when it
        provides one (semantically identical to the chunk loop; tests
        assert the equivalence).
    buffer_capacity:
        Cells in the space-sharing circular buffer (paper Figure 4).
    copy_input:
        Time-sharing only: make an extra copy of the simulation output
        before analytics instead of processing through the read pointer.
        Exists solely to reproduce the paper's Figure 9 comparison.
    disable_early_emission:
        Ignore reduction-object triggers, holding every object until the
        combination phase — the unoptimized implementation the paper's
        Figure 11 compares against.
    combine_algorithm:
        Global-combination algorithm: ``"gather"`` (the paper's
        merge-on-master), ``"tree"`` (binomial reduce, merging work
        spread across ranks), or ``"allreduce"`` (contiguous elementwise
        reduce of packed records — the hand-written-MPI shape of the
        paper's Section 5.3; requires every schema field to declare a
        merge ufunc, otherwise falls back to ``"gather"``).
    wire_format:
        Global-combination wire format: ``"pickle"`` (the paper's
        design point — reduction objects serialized noncontiguously,
        the overhead Section 5.3 measures) or ``"columnar"`` (maps with
        a :class:`~repro.core.red_obj.Field` schema travel as one
        contiguous keys-array plus one structured records-array and are
        merged with per-field ufuncs; schemaless maps still fall back
        to pickle).
    residency:
        Process-engine input residency: ``"auto"`` (the default) keeps
        the partition's shared-memory segment alive across ``run()``
        calls and skips the copy-in when the incoming array is the same
        unchanged buffer (iterative analytics re-running one partition)
        or an engine ``step_buffer`` slot the producer filled directly
        (double-buffered drivers); ``"off"`` restores the
        segment-per-run behaviour — allocate, copy, release every run.
        Contract for ``"auto"``: a caller that rewrites a previously-run
        array *in place* must call ``Scheduler.notify_data_changed()``
        (the time-sharing drivers do) so the engine re-copies.
    fault_policy:
        How the runtime reacts to a detected fault (a dead or hung
        process-engine worker): ``"fail_fast"`` (the default — the
        failure propagates as :class:`~repro.faults.EngineFaultError`),
        ``"retry"`` (the supervisor respawns the pool and the scheduler
        replays the current iteration from the last consistent
        combination map, with exponential backoff — bit-exact results),
        or ``"degrade"`` (the failed workers' split contributions are
        dropped for that iteration and recorded in ``faults.*``
        telemetry).  Accepts a mode name or a configured
        :class:`~repro.faults.FaultPolicy` (e.g.
        ``FaultPolicy.retry(max_attempts=5, task_deadline=2.0)``).
    """

    num_threads: int = 1
    chunk_size: int = 1
    extra_data: Any = None
    num_iters: int = 1
    block_size: int | None = None
    engine: str | None = None
    use_threads: bool = False
    vectorized: bool = False
    buffer_capacity: int = 4
    copy_input: bool = False
    disable_early_emission: bool = False
    combine_algorithm: str = "gather"
    wire_format: str = "pickle"
    residency: str = "auto"
    fault_policy: str | FaultPolicy = "fail_fast"

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {self.num_threads}")
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.num_iters < 1:
            raise ValueError(f"num_iters must be >= 1, got {self.num_iters}")
        if self.block_size is not None and self.block_size < 1:
            raise ValueError(f"block_size must be >= 1 or None, got {self.block_size}")
        if self.buffer_capacity < 1:
            raise ValueError(f"buffer_capacity must be >= 1, got {self.buffer_capacity}")
        if self.combine_algorithm not in ("gather", "tree", "allreduce"):
            raise ValueError(
                f"combine_algorithm must be 'gather', 'tree', or 'allreduce', "
                f"got {self.combine_algorithm!r}"
            )
        if self.wire_format not in ("pickle", "columnar"):
            raise ValueError(
                f"wire_format must be 'pickle' or 'columnar', "
                f"got {self.wire_format!r}"
            )
        if self.residency not in ("auto", "off"):
            raise ValueError(
                f"residency must be 'auto' or 'off', got {self.residency!r}"
            )
        FaultPolicy.parse(self.fault_policy)  # raises on unknown mode
        if self.engine is not None and self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"engine must be one of {ENGINE_NAMES} or None, got {self.engine!r}"
            )
        if self.use_threads:
            warnings.warn(
                "SchedArgs(use_threads=True) is deprecated; pass engine='thread'",
                DeprecationWarning,
                stacklevel=3,
            )

    @property
    def resolved_engine(self) -> str:
        """The effective backend name (``engine`` or the legacy alias)."""
        if self.engine is not None:
            return self.engine
        return "thread" if self.use_threads else "serial"

    @property
    def resolved_fault_policy(self) -> FaultPolicy:
        """The effective :class:`~repro.faults.FaultPolicy` object."""
        return FaultPolicy.parse(self.fault_policy)
