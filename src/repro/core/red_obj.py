"""Reduction objects — Smart's replacement for intermediate key-value pairs.

A reduction object (paper Section 3.1) represents the accumulated value of
every input element that maps to one key.  Updating it *in place* during
the reduction phase — rather than emitting a key-value pair per element —
is the core memory-efficiency idea of Smart: state never exceeds one
object per distinct key.

Subclasses define the application state (e.g. ``count`` for a histogram
bucket, ``(centroid, sum, size)`` for a k-means cluster) and may override
:meth:`RedObj.trigger` to opt into early emission (paper Section 4,
Algorithm 2).
"""

from __future__ import annotations

import copy
import pickle
import sys
from typing import Any


class RedObj:
    """Base reduction object.

    Contract (enforced by the scheduler's data-processing mechanism,
    paper Algorithm 1):

    * ``Scheduler.merge(a, b)`` must treat the state accumulated into
      reduction objects as associative and commutative.
    * For iterative applications that seed reduction maps from the
      combination map (``Scheduler.seed_reduction_maps = True``), every
      field touched by ``merge`` must be at its identity value after
      ``post_combine`` (e.g. k-means resets ``sum``/``size`` when it
      recomputes centroids), otherwise seeding would multiply-count it.
    """

    __slots__ = ()

    def trigger(self) -> bool:
        """Early-emission condition (Algorithm 2, line 5).

        Returns True when this object's value is final and it can be
        converted to output and dropped from the reduction map before the
        combination phase.  Default: never (no early emission).
        """
        return False

    def clone(self) -> "RedObj":
        """Deep copy; used to seed reduction maps from the combination map."""
        return copy.deepcopy(self)

    def nbytes(self) -> int:
        """Approximate in-memory footprint, for the memory audit.

        Subclasses with large payloads (e.g. the Θ(W) moving-median
        object) should override with an exact count.
        """
        total = sys.getsizeof(self)
        for slot_holder in type(self).__mro__:
            for name in getattr(slot_holder, "__slots__", ()):
                try:
                    total += sys.getsizeof(getattr(self, name))
                except AttributeError:
                    pass
        if hasattr(self, "__dict__"):
            total += sum(sys.getsizeof(v) for v in self.__dict__.values())
        return total

    # -- serialization (global combination wire format) -------------------
    def to_bytes(self) -> bytes:
        """Serialize for global combination.

        The default pickles the object.  The paper (Section 5.3) notes
        that serializing noncontiguous reduction objects is the overhead
        Smart pays over a contiguous ``MPI_Allreduce``; overriding this
        with a compact encoding narrows that overhead.
        """
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "RedObj":
        obj = pickle.loads(payload)
        if not isinstance(obj, RedObj):
            raise TypeError(f"deserialized {type(obj).__name__}, expected a RedObj")
        return obj


def ensure_red_obj(obj: Any, what: str = "reduction object") -> RedObj:
    """Runtime type check used at user-callback boundaries."""
    if not isinstance(obj, RedObj):
        raise TypeError(
            f"{what} must be a RedObj, got {type(obj).__name__}; did accumulate() "
            "forget to return the (possibly newly created) reduction object?"
        )
    return obj
