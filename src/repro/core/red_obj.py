"""Reduction objects — Smart's replacement for intermediate key-value pairs.

A reduction object (paper Section 3.1) represents the accumulated value of
every input element that maps to one key.  Updating it *in place* during
the reduction phase — rather than emitting a key-value pair per element —
is the core memory-efficiency idea of Smart: state never exceeds one
object per distinct key.

Subclasses define the application state (e.g. ``count`` for a histogram
bucket, ``(centroid, sum, size)`` for a k-means cluster) and may override
:meth:`RedObj.trigger` to opt into early emission (paper Section 4,
Algorithm 2).
"""

from __future__ import annotations

import copy
import pickle
import sys
from typing import Any, NamedTuple


class Field(NamedTuple):
    """One column of a reduction object's columnar wire-format schema.

    Parameters
    ----------
    name:
        Attribute name on the reduction object; the default
        :meth:`RedObj.pack_into` / :meth:`RedObj.unpack_from` copy the
        attribute of the same name into/out of the packed record.
    dtype:
        NumPy dtype-like for the column (e.g. ``np.float64``).
    merge:
        How two packed values of this field combine during global
        combination: a ufunc name (``"sum"``, ``"min"``, ``"max"``,
        ``"prod"``), ``"keep"`` (keep the combination-side value — for
        fields that are identical on every rank, such as a window size
        or the current k-means centroid), or ``None`` (no columnar
        merge; the map falls back to the Python ``merge()`` callback).
        When *every* field of a schema names a true ufunc, global
        combination can short-circuit to a contiguous allreduce — the
        hand-written-MPI shape of the paper's Section 5.3.
    shape:
        Subarray shape for vector-valued fields (e.g. ``(dims,)`` for a
        k-means centroid); ``()`` for scalars.
    """

    name: str
    dtype: Any
    merge: str | None = None
    shape: tuple[int, ...] = ()


class RedObj:
    """Base reduction object.

    Contract (enforced by the scheduler's data-processing mechanism,
    paper Algorithm 1):

    * ``Scheduler.merge(a, b)`` must treat the state accumulated into
      reduction objects as associative and commutative.
    * For iterative applications that seed reduction maps from the
      combination map (``Scheduler.seed_reduction_maps = True``), every
      field touched by ``merge`` must be at its identity value after
      ``post_combine`` (e.g. k-means resets ``sum``/``size`` when it
      recomputes centroids), otherwise seeding would multiply-count it.
    """

    __slots__ = ()

    def trigger(self) -> bool:
        """Early-emission condition (Algorithm 2, line 5).

        Returns True when this object's value is final and it can be
        converted to output and dropped from the reduction map before the
        combination phase.  Default: never (no early emission).
        """
        return False

    def clone(self) -> "RedObj":
        """Deep copy; used to seed reduction maps from the combination map."""
        return copy.deepcopy(self)

    def nbytes(self) -> int:
        """Approximate in-memory footprint, for the memory audit.

        Subclasses with large payloads (e.g. the Θ(W) moving-median
        object) should override with an exact count.
        """
        total = sys.getsizeof(self)
        for slot_holder in type(self).__mro__:
            for name in getattr(slot_holder, "__slots__", ()):
                try:
                    total += sys.getsizeof(getattr(self, name))
                except AttributeError:
                    pass
        if hasattr(self, "__dict__"):
            total += sum(sys.getsizeof(v) for v in self.__dict__.values())
        return total

    # -- columnar wire-format schema (paper Section 5.3 optimization) ------
    def fields(self) -> tuple[Field, ...] | None:
        """Columnar schema: one :class:`Field` per packed attribute.

        Returning ``None`` (the default) marks the object *schemaless*:
        maps holding it serialize through pickle, reproducing the
        noncontiguous-object overhead the paper measures.  Objects with
        fixed-layout state should return a schema so combination maps
        can travel as one contiguous keys-array plus one structured
        records-array, and merges can run as per-field ufuncs instead of
        per-object Python calls.

        The schema may depend on instance state (e.g. the feature
        dimensionality of a k-means centroid), but every object sharing
        a map must produce the same dtype or the codec falls back to
        pickle.
        """
        return None

    def pack_into(self, rec) -> None:
        """Write this object's schema fields into one structured record.

        The default copies each schema field's attribute of the same
        name; override only when the packed layout differs from the
        attribute layout.
        """
        fields = self.fields()
        assert fields is not None, "pack_into on a schemaless RedObj"
        for field in fields:
            rec[field.name] = getattr(self, field.name)

    @classmethod
    def unpack_from(cls, rec) -> "RedObj":
        """Rebuild an object from one structured record (inverse of
        :meth:`pack_into`).  The default bypasses ``__init__`` and sets
        each field's attribute directly, converting numpy scalars back
        to Python numbers so unpacked objects are indistinguishable from
        ones that never crossed the wire."""
        obj = cls.__new__(cls)
        for name in rec.dtype.names:
            value = rec[name]
            setattr(obj, name, value.item() if value.ndim == 0 else value.copy())
        return obj

    # -- serialization (global combination wire format) -------------------
    def to_bytes(self) -> bytes:
        """Serialize for global combination.

        The default pickles the object.  The paper (Section 5.3) notes
        that serializing noncontiguous reduction objects is the overhead
        Smart pays over a contiguous ``MPI_Allreduce``; overriding this
        with a compact encoding narrows that overhead.
        """
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "RedObj":
        obj = pickle.loads(payload)
        if not isinstance(obj, RedObj):
            raise TypeError(f"deserialized {type(obj).__name__}, expected a RedObj")
        return obj


def ensure_red_obj(obj: Any, what: str = "reduction object") -> RedObj:
    """Runtime type check used at user-callback boundaries."""
    if not isinstance(obj, RedObj):
        raise TypeError(
            f"{what} must be a RedObj, got {type(obj).__name__}; did accumulate() "
            "forget to return the (possibly newly created) reduction object?"
        )
    return obj
