"""Wire format for global combination.

The paper (Section 5.3) attributes Smart's small overhead versus
hand-written MPI code to exactly this step: reduction objects live
noncontiguously in a map, so the global combination must serialize them
before communicating, whereas the manual implementation calls
``MPI_Allreduce`` on one contiguous array.  We reproduce that design point
faithfully: combination maps are pickled into a single bytes payload per
rank, moved through the communicator, and merged on the master.  The
traffic profiler therefore sees realistic byte volumes, and Fig. 6's
overhead experiment measures this code path.
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING

from .maps import KeyedMap, MergeFn

if TYPE_CHECKING:  # pragma: no cover
    from ..comm.interface import Communicator


def serialize_map(com_map: KeyedMap) -> bytes:
    """Encode a combination map as ``[(key, RedObj)]`` pickle payload."""
    return pickle.dumps(list(com_map.items()), protocol=pickle.HIGHEST_PROTOCOL)


def deserialize_map(payload: bytes) -> KeyedMap:
    """Inverse of :func:`serialize_map`."""
    fresh = KeyedMap()
    for key, obj in pickle.loads(payload):
        fresh[key] = obj
    return fresh


def global_combine(
    comm: "Communicator",
    local_map: KeyedMap,
    merge: MergeFn,
    algorithm: str = "gather",
) -> KeyedMap:
    """Combine every rank's local combination map into the global one.

    Two algorithms are provided (both end with every rank holding the
    identical global map — the redistribution of Algorithm 1 lines 3-4):

    * ``"gather"`` — the paper's description: local maps are gathered to
      the master (rank 0), merged there in rank order, and broadcast
      back.  Master-side work scales with the rank count.
    * ``"tree"`` — recursive-halving merge: ranks pairwise-merge maps up
      a binomial tree (log2 rounds, merging work parallelized across
      ranks), then the root broadcasts.  The classic MPI_Reduce shape;
      preferable when maps are large or ranks are many.

    Returns the global combination map (on every rank).
    """
    if comm.size == 1:
        return local_map
    if algorithm == "gather":
        return _combine_gather(comm, local_map, merge)
    if algorithm == "tree":
        return _combine_tree(comm, local_map, merge)
    raise ValueError(f"unknown combination algorithm {algorithm!r}")


def _combine_gather(
    comm: "Communicator", local_map: KeyedMap, merge: MergeFn
) -> KeyedMap:
    payload = serialize_map(local_map)
    gathered = comm.gather(payload, root=0)
    if comm.is_master:
        assert gathered is not None
        merged = deserialize_map(gathered[0])
        for rank_payload in gathered[1:]:
            merged.merge_map(deserialize_map(rank_payload), merge)
        out_payload = serialize_map(merged)
    else:
        merged = None
        out_payload = None
    out_payload = comm.bcast(out_payload, root=0)
    if merged is None:
        merged = deserialize_map(out_payload)
    return merged


_TREE_TAG = 271


def _combine_tree(
    comm: "Communicator", local_map: KeyedMap, merge: MergeFn
) -> KeyedMap:
    """Binomial-tree reduction: at round ``r`` ranks whose low ``r+1`` bits
    are zero receive from the partner ``rank + 2**r`` (when it exists) and
    merge; senders drop out.  Rank order of merges is preserved within
    each subtree, so results match the gather algorithm for associative,
    commutative merges."""
    rank, size = comm.rank, comm.size
    acc = local_map
    stride = 1
    while stride < size:
        if rank % (2 * stride) == 0:
            partner = rank + stride
            if partner < size:
                payload = comm.recv(source=partner, tag=_TREE_TAG)
                acc.merge_map(deserialize_map(payload), merge)
        elif rank % stride == 0:
            comm.send(serialize_map(acc), dest=rank - stride, tag=_TREE_TAG)
        stride *= 2
    out_payload = comm.bcast(serialize_map(acc) if rank == 0 else None, root=0)
    if rank != 0:
        acc = deserialize_map(out_payload)
    return acc
