"""Wire formats for global combination.

The paper (Section 5.3) attributes Smart's small overhead versus
hand-written MPI code to exactly this step: reduction objects live
noncontiguously in a map, so the global combination must serialize them
before communicating, whereas the manual implementation calls
``MPI_Allreduce`` on one contiguous array.  Two wire formats reproduce
both sides of that comparison:

* ``"pickle"`` (default) — the design point the paper measures:
  combination maps are pickled object by object into one payload per
  rank, moved through the communicator, and merged on the master with
  per-object Python ``merge()`` calls.  Fig. 6's overhead experiment
  measures this path.
* ``"columnar"`` — the optimization that closes the gap: a map whose
  reduction objects declare a :class:`~repro.core.red_obj.Field` schema
  is packed into one contiguous ``int64`` keys-array plus one structured
  records-array (:class:`PackedMap`).  Merging aligns keys with
  ``np.searchsorted`` and combines each field with its merge ufunc —
  no per-object Python calls — and when *every* field names a true
  ufunc, the gather algorithm short-circuits to a contiguous allreduce
  through :mod:`repro.comm.reduce_ops`, the exact shape of the paper's
  hand-written baseline.  Schemaless or heterogeneous maps fall back to
  pickle transparently.

Payloads are self-describing (columnar ones carry a magic prefix), so
``deserialize_map`` accepts either format — including pickle payloads
written by older checkpoints.
"""

from __future__ import annotations

import pickle
import struct
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..comm.reduce_ops import MERGE_UFUNCS, merge_identity, structured_reduce_op
from .maps import KeyedMap, MergeFn
from .policy import COMBINE_ALGORITHMS, WIRE_FORMATS, CombinePolicy
from .red_obj import RedObj

if TYPE_CHECKING:  # pragma: no cover
    from ..comm.interface import Communicator

__all__ = [
    "PackedMap",
    "WIRE_FORMATS",
    "WIRE_VERSION",
    "deserialize_map",
    "global_combine",
    "pack_map",
    "serialize_map",
    "wire_format_of",
]

#: Version of the map wire format (bumped whenever the byte layout of
#: :func:`serialize_map` output changes incompatibly).  Stamped into
#: checkpoint headers so a restore from a stale layout fails loudly
#: instead of deserializing garbage.
WIRE_VERSION = 1

_COLUMNAR_MAGIC = b"SMCOL1\n"
_COLUMNAR_HEADER = struct.Struct("<II")  # (schema-header length, record count)


def _schema_dtype(fields) -> np.dtype:
    return np.dtype(
        [
            (f.name, f.dtype) if not f.shape else (f.name, f.dtype, f.shape)
            for f in fields
        ]
    )


class PackedMap:
    """A combination map as two contiguous arrays: keys plus records.

    ``keys`` is a sorted ``int64`` array; ``records`` is a structured
    array of the reduction-object schema, row ``i`` packing the object
    under ``keys[i]``.  ``merges`` names each field's combination rule
    (see :class:`~repro.core.red_obj.Field`).  This is the contiguous
    representation the paper's hand-written MPI code reduces directly.
    """

    __slots__ = ("cls", "keys", "records", "merges")

    def __init__(
        self,
        cls: type,
        keys: np.ndarray,
        records: np.ndarray,
        merges: Sequence[str | None],
    ):
        self.cls = cls
        self.keys = keys
        self.records = records
        self.merges = tuple(merges)

    def __len__(self) -> int:
        return len(self.keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedMap({self.cls.__name__}, {len(self.keys)} keys)"

    def nbytes(self) -> int:
        return int(self.keys.nbytes + self.records.nbytes)

    @property
    def vector_mergeable(self) -> bool:
        """True when every field declares a columnar merge rule."""
        return all(m in MERGE_UFUNCS or m == "keep" for m in self.merges)

    @property
    def allreduce_eligible(self) -> bool:
        """True when every field merges by a true ufunc (no ``keep``),
        so global combination can be one contiguous allreduce."""
        return all(m in MERGE_UFUNCS for m in self.merges)

    def mergeable_with(self, other: "PackedMap") -> bool:
        return (
            other.cls is self.cls
            and other.records.dtype == self.records.dtype
            and other.merges == self.merges
            and self.vector_mergeable
        )

    # -- vectorized combination kernel ---------------------------------
    def merge_from(self, other: "PackedMap") -> None:
        """Merge ``other`` in (``other`` plays the red side: ``keep``
        fields retain *this* map's values on matched keys).

        Key alignment is one ``searchsorted``; each field merges with
        one ufunc call over all matched keys; unmatched keys move in
        wholesale — the columnar equivalent of Algorithm 1 lines 12-16.
        """
        if not self.mergeable_with(other):
            raise ValueError(
                f"cannot columnar-merge {other!r} into {self!r}: schema mismatch"
            )
        b_keys = other.keys
        if not len(b_keys):
            return
        a_keys = self.keys
        if not len(a_keys):
            self.keys = b_keys.copy()
            self.records = other.records.copy()
            return
        idx = np.searchsorted(a_keys, b_keys)
        safe = np.minimum(idx, len(a_keys) - 1)
        matched = a_keys[safe] == b_keys
        if matched.any():
            targets = safe[matched]
            for name, merge in zip(self.records.dtype.names, self.merges):
                ufunc = MERGE_UFUNCS.get(merge)
                if ufunc is None:  # "keep": combination side wins
                    continue
                col = self.records[name]
                col[targets] = ufunc(col[targets], other.records[name][matched])
        fresh = ~matched
        if fresh.any():
            keys = np.concatenate([a_keys, b_keys[fresh]])
            records = np.concatenate([self.records, other.records[fresh]])
            order = np.argsort(keys, kind="stable")
            self.keys = keys[order]
            self.records = records[order]

    def expand_to(self, union_keys: np.ndarray) -> np.ndarray:
        """Records over ``union_keys``, identity-padded where this map
        has no entry — the pre-allreduce contribution buffer."""
        records = _identity_records(self.records.dtype, self.merges, len(union_keys))
        if len(self.keys):
            records[np.searchsorted(union_keys, self.keys)] = self.records
        return records

    # -- object materialization ----------------------------------------
    def to_map(self) -> KeyedMap:
        """Materialize reduction objects (trusted bulk construction)."""
        cls = self.cls
        records = self.records
        n = len(records)
        if cls.unpack_from.__func__ is RedObj.unpack_from.__func__:
            # Default attribute-mapped unpacking: extract each column once
            # (C-speed) instead of introspecting per record.
            names = records.dtype.names
            columns = []
            for name in names:
                col = records[name]
                columns.append(col.tolist() if col.ndim == 1 else list(col.copy()))
            objs = []
            new = cls.__new__
            for i in range(n):
                obj = new(cls)
                for name, col in zip(names, columns):
                    setattr(obj, name, col[i])
                objs.append(obj)
        else:
            objs = [cls.unpack_from(records[i]) for i in range(n)]
        return KeyedMap.from_trusted_items(zip(self.keys.tolist(), objs))

    # -- wire encoding --------------------------------------------------
    def to_bytes(self) -> bytes:
        header = pickle.dumps(
            (self.cls, self.records.dtype, self.merges),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        return b"".join(
            [
                _COLUMNAR_MAGIC,
                _COLUMNAR_HEADER.pack(len(header), len(self.keys)),
                header,
                np.ascontiguousarray(self.keys).tobytes(),
                np.ascontiguousarray(self.records).tobytes(),
            ]
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "PackedMap":
        base = len(_COLUMNAR_MAGIC)
        header_len, n = _COLUMNAR_HEADER.unpack_from(payload, base)
        offset = base + _COLUMNAR_HEADER.size
        red_cls, dtype, merges = pickle.loads(payload[offset : offset + header_len])
        offset += header_len
        keys = np.frombuffer(payload, dtype=np.int64, count=n, offset=offset)
        offset += keys.nbytes
        records = np.frombuffer(payload, dtype=dtype, count=n, offset=offset)
        # frombuffer views over bytes are read-only; merging needs writable.
        return cls(red_cls, keys.copy(), records.copy(), merges)


def _identity_records(dtype: np.dtype, merges, n: int) -> np.ndarray:
    records = np.zeros(n, dtype=dtype)
    for name, merge in zip(dtype.names, merges):
        records[name] = merge_identity(merge, dtype.fields[name][0].base)
    return records


def pack_map(com_map: KeyedMap) -> PackedMap | None:
    """Encode a homogeneous, schema-bearing map columnar.

    Returns ``None`` when the map is empty, holds objects of mixed
    classes, is schemaless (``fields()`` is ``None``), or the objects'
    state does not fit the declared dtype (e.g. ragged vector fields) —
    callers then fall back to the pickle wire format.
    """
    n = len(com_map)
    if n == 0:
        return None
    objs = list(com_map.values())
    first = objs[0]
    cls = type(first)
    if any(type(o) is not cls for o in objs):
        return None
    fields = first.fields()
    if not fields:
        return None
    try:
        records = np.empty(n, dtype=_schema_dtype(fields))
        if cls.pack_into is RedObj.pack_into:
            # Default attribute-mapped packing: one bulk assignment per
            # column instead of one record-view write per field per object.
            for field in fields:
                name = field.name
                records[name] = [getattr(o, name) for o in objs]
        else:
            for i, obj in enumerate(objs):
                obj.pack_into(records[i])
        keys = np.fromiter(com_map.keys(), dtype=np.int64, count=n)
    except (TypeError, ValueError):
        return None
    order = np.argsort(keys, kind="stable")
    return PackedMap(cls, keys[order], records[order], [f.merge for f in fields])


def serialize_map(com_map: KeyedMap, wire_format: str = "pickle") -> bytes:
    """Encode a combination map for the wire.

    ``"pickle"`` produces the paper-faithful ``[(key, RedObj)]`` pickle
    payload; ``"columnar"`` produces a :class:`PackedMap` encoding when
    the map carries a schema and falls back to pickle otherwise.
    """
    if wire_format not in WIRE_FORMATS:
        raise ValueError(
            f"wire_format must be one of {WIRE_FORMATS}, got {wire_format!r}"
        )
    if wire_format == "columnar":
        packed = pack_map(com_map)
        if packed is not None:
            return packed.to_bytes()
    return pickle.dumps(list(com_map.items()), protocol=pickle.HIGHEST_PROTOCOL)


def wire_format_of(payload: bytes) -> str:
    """Which wire format produced ``payload`` (``"pickle"``/``"columnar"``)."""
    return "columnar" if payload.startswith(_COLUMNAR_MAGIC) else "pickle"


def _decode(payload: bytes) -> KeyedMap | PackedMap:
    if payload.startswith(_COLUMNAR_MAGIC):
        return PackedMap.from_bytes(payload)
    return KeyedMap.from_trusted_items(pickle.loads(payload))


def deserialize_map(payload: bytes) -> KeyedMap:
    """Inverse of :func:`serialize_map` (accepts either wire format)."""
    decoded = _decode(payload)
    return decoded.to_map() if isinstance(decoded, PackedMap) else decoded


def _record_wire(comm: "Communicator", payload: bytes) -> None:
    """Per-format byte accounting: tally this payload under ``wire.<fmt>``."""
    profiler = getattr(comm, "profiler", None)
    if profiler is not None:
        profiler.record_wire(wire_format_of(payload), len(payload))


def global_combine(
    comm: "Communicator",
    local_map: KeyedMap,
    merge: MergeFn,
    algorithm: str = "gather",
    wire_format: str = "pickle",
    combine: CombinePolicy | None = None,
) -> KeyedMap:
    """Combine every rank's local combination map into the global one.

    ``combine`` — a :class:`~repro.core.policy.CombinePolicy` — is the
    preferred spelling and overrides the flat ``algorithm`` /
    ``wire_format`` arguments (kept for compatibility).

    Three algorithms are provided (each ends with every rank holding the
    identical global map — the redistribution of Algorithm 1 lines 3-4):

    * ``"gather"`` — the paper's description: local maps are gathered to
      the master (rank 0), merged there in rank order, and broadcast
      back.  Master-side work scales with the rank count.  With the
      columnar wire format, when every schema field declares a merge
      ufunc this algorithm short-circuits to the allreduce below.
    * ``"tree"`` — recursive-halving merge: ranks pairwise-merge maps up
      a binomial tree (log2 rounds, merging work parallelized across
      ranks), then the root broadcasts.  The classic MPI_Reduce shape;
      preferable when maps are large or ranks are many.
    * ``"allreduce"`` — the hand-written-MPI shape (Section 5.3): ranks
      agree on the key union, identity-pad their packed records to it,
      and reduce the contiguous buffers elementwise.  Requires an
      allreduce-eligible schema on every rank; otherwise falls back to
      ``"gather"`` (collectively — all ranks vote, so none diverges).

    Returns the global combination map (on every rank).
    """
    if combine is not None:
        algorithm = combine.algorithm
        wire_format = combine.wire_format
    if algorithm not in COMBINE_ALGORITHMS:
        raise ValueError(f"unknown combination algorithm {algorithm!r}")
    if wire_format not in WIRE_FORMATS:
        raise ValueError(
            f"wire_format must be one of {WIRE_FORMATS}, got {wire_format!r}"
        )
    if comm.size == 1:
        return local_map
    if algorithm == "allreduce" or (
        algorithm == "gather" and wire_format == "columnar"
    ):
        merged = _combine_allreduce(comm, local_map)
        if merged is not None:
            return merged
        if algorithm == "allreduce":
            algorithm = "gather"
    if algorithm == "gather":
        return _combine_gather(comm, local_map, merge, wire_format)
    return _combine_tree(comm, local_map, merge, wire_format)


def _combine_allreduce(comm: "Communicator", local_map: KeyedMap) -> KeyedMap | None:
    """Contiguous-allreduce global combination; ``None`` when ineligible.

    Eligibility is decided collectively: every rank contributes a vote
    (its schema, or "empty"), so either all ranks take this path or none
    does — a rank with an empty map still participates by contributing
    identity-padded records.
    """
    packed = pack_map(local_map)
    if packed is not None and packed.allreduce_eligible:
        vote = ("schema", packed.cls, packed.records.dtype, packed.merges, packed.keys)
    elif len(local_map) == 0:
        vote = ("empty",)
    else:
        vote = ("ineligible",)
    votes = comm.allgather(vote)
    schema_votes = [v for v in votes if v[0] == "schema"]
    if any(v[0] == "ineligible" for v in votes) or not schema_votes:
        return None
    ref = schema_votes[0]
    if any(
        v[1] is not ref[1] or v[2] != ref[2] or v[3] != ref[3]
        for v in schema_votes[1:]
    ):
        return None
    _cls, _dtype, _merges = ref[1], ref[2], ref[3]
    union = schema_votes[0][4]
    for v in schema_votes[1:]:
        union = np.union1d(union, v[4])
    if packed is not None:
        contribution = packed.expand_to(union)
    else:
        contribution = _identity_records(_dtype, _merges, len(union))
    _record_wire_allreduce(comm, contribution)
    op = structured_reduce_op(_dtype.names, _merges)
    reduced = comm.allreduce(contribution, op=op)
    return PackedMap(_cls, union, reduced, _merges).to_map()


def _record_wire_allreduce(comm: "Communicator", records: np.ndarray) -> None:
    profiler = getattr(comm, "profiler", None)
    if profiler is not None:
        profiler.record_wire("allreduce", int(records.nbytes))


def _combine_gather(
    comm: "Communicator", local_map: KeyedMap, merge: MergeFn, wire_format: str
) -> KeyedMap:
    payload = serialize_map(local_map, wire_format)
    _record_wire(comm, payload)
    gathered = comm.gather(payload, root=0)
    if comm.is_master:
        assert gathered is not None
        decoded = [_decode(p) for p in gathered]
        head = decoded[0]
        if isinstance(head, PackedMap) and all(
            isinstance(d, PackedMap) and head.mergeable_with(d) for d in decoded[1:]
        ):
            # Columnar fast path: merge arrays rank by rank, materialize
            # objects exactly once at the end.
            for d in decoded[1:]:
                head.merge_from(d)
            merged = head.to_map()
            out_payload = head.to_bytes()
        else:
            maps = [d.to_map() if isinstance(d, PackedMap) else d for d in decoded]
            merged = maps[0]
            for rank_map in maps[1:]:
                merged.merge_map(rank_map, merge)
            out_payload = serialize_map(merged, wire_format)
        _record_wire(comm, out_payload)
    else:
        merged = None
        out_payload = None
    out_payload = comm.bcast(out_payload, root=0)
    if merged is None:
        merged = deserialize_map(out_payload)
    return merged


_TREE_TAG = 271


def _combine_tree(
    comm: "Communicator", local_map: KeyedMap, merge: MergeFn, wire_format: str
) -> KeyedMap:
    """Binomial-tree reduction: at round ``r`` ranks whose low ``r+1`` bits
    are zero receive from the partner ``rank + 2**r`` (when it exists) and
    merge; senders drop out.  Rank order of merges is preserved within
    each subtree, so results match the gather algorithm for associative,
    commutative merges."""
    rank, size = comm.rank, comm.size
    acc = local_map
    stride = 1
    while stride < size:
        if rank % (2 * stride) == 0:
            partner = rank + stride
            if partner < size:
                payload = comm.recv(source=partner, tag=_TREE_TAG)
                received = _decode(payload)
                if isinstance(received, PackedMap):
                    acc.merge_packed(received, merge)
                else:
                    acc.merge_map(received, merge)
        elif rank % stride == 0:
            payload = serialize_map(acc, wire_format)
            _record_wire(comm, payload)
            comm.send(payload, dest=rank - stride, tag=_TREE_TAG)
        stride *= 2
    if rank == 0:
        out_payload = serialize_map(acc, wire_format)
        _record_wire(comm, out_payload)
    else:
        out_payload = None
    out_payload = comm.bcast(out_payload, root=0)
    if rank != 0:
        acc = deserialize_map(out_payload)
    return acc
