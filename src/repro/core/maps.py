"""Reduction and combination maps (paper Section 3.1).

Both are ``int key -> RedObj`` dictionaries.  A *reduction map* is private
to one thread during the reduction phase; a *combination map* holds the
per-process (local) or global result after the combination phase.  The
merge-or-move rule of Algorithm 1 lines 11-17 lives in
:meth:`KeyedMap.merge_in`.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping

from .red_obj import RedObj, ensure_red_obj

MergeFn = Callable[[RedObj, RedObj], RedObj]


class KeyedMap:
    """An ordered ``int -> RedObj`` map with Smart's merge-or-move rule.

    Iteration order is insertion order (deterministic), and keys are
    reported sorted where the paper's output conversion requires integer
    keys starting from 0 (Listing 4 discussion).
    """

    __slots__ = ("_d",)

    def __init__(self, initial: Mapping[int, RedObj] | None = None):
        self._d: dict[int, RedObj] = {}
        if initial:
            for key, obj in initial.items():
                self[key] = obj

    # -- dict-like surface -------------------------------------------------
    def __len__(self) -> int:
        return len(self._d)

    def __contains__(self, key: int) -> bool:
        return key in self._d

    def __iter__(self) -> Iterator[int]:
        return iter(self._d)

    def __getitem__(self, key: int) -> RedObj:
        return self._d[key]

    def __setitem__(self, key: int, obj: RedObj) -> None:
        self._d[int(key)] = ensure_red_obj(obj)

    def __delitem__(self, key: int) -> None:
        del self._d[key]

    def get(self, key: int, default: RedObj | None = None) -> RedObj | None:
        return self._d.get(key, default)

    def pop(self, key: int) -> RedObj:
        return self._d.pop(key)

    def keys(self):
        return self._d.keys()

    def items(self):
        return self._d.items()

    def values(self):
        return self._d.values()

    def clear(self) -> None:
        self._d.clear()

    def sorted_items(self) -> list[tuple[int, RedObj]]:
        return sorted(self._d.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeyedMap({len(self._d)} keys)"

    # -- Smart semantics ----------------------------------------------------
    def merge_in(self, key: int, red_obj: RedObj, merge: MergeFn) -> None:
        """Merge ``red_obj`` under ``key`` (Algorithm 1 lines 12-16).

        If the key exists, ``merge(red_obj, existing)`` combines them (the
        merge callback returns the combined object); otherwise the object
        is *moved* in as-is.
        """
        existing = self._d.get(key)
        if existing is None:
            self._d[int(key)] = ensure_red_obj(red_obj)
        else:
            self._d[int(key)] = ensure_red_obj(
                merge(red_obj, existing), "merge() result"
            )

    def merge_map(self, other: "KeyedMap | Mapping[int, RedObj]", merge: MergeFn) -> None:
        """Merge every entry of ``other`` into this map."""
        items = other.items() if hasattr(other, "items") else other
        for key, obj in items:
            self.merge_in(key, obj, merge)

    def clone(self) -> "KeyedMap":
        """Deep copy (clones every reduction object)."""
        fresh = KeyedMap()
        for key, obj in self._d.items():
            fresh._d[key] = obj.clone()
        return fresh

    def state_nbytes(self) -> int:
        """Approximate footprint of all reduction objects (memory audit)."""
        return sum(obj.nbytes() for obj in self._d.values())
