"""Reduction and combination maps (paper Section 3.1).

Both are ``int key -> RedObj`` dictionaries.  A *reduction map* is private
to one thread during the reduction phase; a *combination map* holds the
per-process (local) or global result after the combination phase.  The
merge-or-move rule of Algorithm 1 lines 11-17 lives in
:meth:`KeyedMap.merge_in`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from .red_obj import RedObj, ensure_red_obj

MergeFn = Callable[[RedObj, RedObj], RedObj]


class KeyedMap:
    """An ordered ``int -> RedObj`` map with Smart's merge-or-move rule.

    Iteration order is insertion order (deterministic), and keys are
    reported sorted where the paper's output conversion requires integer
    keys starting from 0 (Listing 4 discussion).
    """

    __slots__ = ("_d",)

    def __init__(self, initial: Mapping[int, RedObj] | None = None):
        self._d: dict[int, RedObj] = {}
        if initial:
            for key, obj in initial.items():
                self[key] = obj

    @classmethod
    def from_trusted_items(
        cls, items: "Iterable[tuple[int, RedObj]]"
    ) -> "KeyedMap":
        """Bulk-construct from already-validated ``(int, RedObj)`` pairs.

        The wire-format codecs produce objects this runtime serialized
        itself, so re-validating each through ``__setitem__`` /
        ``ensure_red_obj`` on the hot combine path is pure overhead —
        this constructor adopts the pairs directly.  Never hand it
        user-supplied objects.
        """
        fresh = cls()
        fresh._d = dict(items)
        return fresh

    def replace_contents(self, other: "KeyedMap") -> None:
        """Adopt ``other``'s entries wholesale (trusted, in place).

        Used by engines folding worker-returned maps back into the
        per-thread reduction maps without per-object re-validation.
        """
        self._d.clear()
        self._d.update(other._d)

    def replace_items(
        self, keys: Iterable[int], objs: Iterable[RedObj]
    ) -> None:
        """Set ``keys[i] -> objs[i]`` in bulk (trusted, no validation).

        The batch-map fold uses this to land a whole split's touched
        rows at dict-update speed; keys must already be Python ints.
        """
        self._d.update(zip(keys, objs))

    # -- dict-like surface -------------------------------------------------
    def __len__(self) -> int:
        return len(self._d)

    def __contains__(self, key: int) -> bool:
        return key in self._d

    def __iter__(self) -> Iterator[int]:
        return iter(self._d)

    def __getitem__(self, key: int) -> RedObj:
        return self._d[key]

    def __setitem__(self, key: int, obj: RedObj) -> None:
        self._d[int(key)] = ensure_red_obj(obj)

    def __delitem__(self, key: int) -> None:
        del self._d[key]

    def get(self, key: int, default: RedObj | None = None) -> RedObj | None:
        return self._d.get(key, default)

    def pop(self, key: int) -> RedObj:
        return self._d.pop(key)

    def keys(self):
        return self._d.keys()

    def items(self):
        return self._d.items()

    def values(self):
        return self._d.values()

    def clear(self) -> None:
        self._d.clear()

    def sorted_items(self) -> list[tuple[int, RedObj]]:
        return sorted(self._d.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeyedMap({len(self._d)} keys)"

    # -- Smart semantics ----------------------------------------------------
    def merge_in(self, key: int, red_obj: RedObj, merge: MergeFn) -> None:
        """Merge ``red_obj`` under ``key`` (Algorithm 1 lines 12-16).

        If the key exists, ``merge(red_obj, existing)`` combines them (the
        merge callback returns the combined object); otherwise the object
        is *moved* in as-is.
        """
        existing = self._d.get(key)
        if existing is None:
            self._d[int(key)] = ensure_red_obj(red_obj)
        else:
            self._d[int(key)] = ensure_red_obj(
                merge(red_obj, existing), "merge() result"
            )

    def merge_map(self, other: "KeyedMap | Mapping[int, RedObj]", merge: MergeFn) -> None:
        """Merge every entry of ``other`` into this map."""
        items = other.items() if hasattr(other, "items") else other
        for key, obj in items:
            self.merge_in(key, obj, merge)

    def merge_packed(self, packed, merge: MergeFn) -> None:
        """Merge a :class:`~repro.core.serialization.PackedMap` into this map.

        When this map packs to the same schema, the merge runs entirely
        in array land — ``np.searchsorted`` key alignment plus one ufunc
        per field — and objects materialize once at the end, instead of
        one Python ``merge()`` call per key.  Heterogeneous or
        schemaless maps fall back to object-by-object merging.
        """
        from .serialization import pack_map  # deferred: serialization imports maps

        if not self._d:
            self._d = packed.to_map()._d
            return
        mine = pack_map(self)
        if mine is not None and mine.mergeable_with(packed):
            mine.merge_from(packed)
            self._d = mine.to_map()._d
        else:
            self.merge_map(packed.to_map(), merge)

    def clone(self) -> "KeyedMap":
        """Deep copy (clones every reduction object)."""
        fresh = KeyedMap()
        for key, obj in self._d.items():
            fresh._d[key] = obj.clone()
        return fresh

    def state_nbytes(self) -> int:
        """Approximate footprint of all reduction objects (memory audit)."""
        return sum(obj.nbytes() for obj in self._d.values())
