"""Chunks, splits, and blocks — Smart's unit-of-processing hierarchy.

The Smart runtime scheduler (paper Section 3.1) processes each partition
*block by block*; every block is equally divided into *splits* (one per
thread); a split is consumed *chunk by chunk*, where a chunk is the unit
processing element (e.g. one scalar for histogram, one feature vector for
k-means).

Unlike conventional MapReduce's byte-stream records, a :class:`Chunk`
carries positional information (``start`` is an element index into the
rank's partition), which is what lets structural analytics such as grid
aggregation and moving average work (paper Section 5.8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True)
class Chunk:
    """A unit processing element: ``size`` consecutive input elements.

    Attributes
    ----------
    start:
        Index of the chunk's first element within the rank-local input
        array (element units, not bytes).
    size:
        Number of elements in the chunk (the ``chunk_size`` of
        :class:`~repro.core.sched_args.SchedArgs`; the final chunk of a
        split may be shorter when the split length is not a multiple).
    """

    start: int
    size: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.size <= 0:
            raise ValueError(f"invalid chunk: start={self.start}, size={self.size}")

    @property
    def stop(self) -> int:
        """One past the last element index."""
        return self.start + self.size

    @property
    def slice(self) -> slice:
        """Slice selecting this chunk from the rank-local input array."""
        return slice(self.start, self.stop)


@dataclass(frozen=True, slots=True)
class Split:
    """A contiguous range of a block assigned to one thread."""

    start: int
    stop: int
    thread_id: int

    def __len__(self) -> int:
        return self.stop - self.start

    def chunks(self, chunk_size: int) -> Iterator[Chunk]:
        """Iterate the split chunk by chunk.

        The final chunk is truncated when the split length is not a
        multiple of ``chunk_size``.
        """
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        pos = self.start
        while pos < self.stop:
            size = min(chunk_size, self.stop - pos)
            yield Chunk(pos, size)
            pos += size


def iter_blocks(n_elems: int, block_size: int | None) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` element ranges of consecutive blocks.

    ``block_size=None`` treats the whole partition as one block.
    """
    if n_elems < 0:
        raise ValueError(f"n_elems must be >= 0, got {n_elems}")
    if n_elems == 0:
        return
    if block_size is None or block_size >= n_elems:
        yield (0, n_elems)
        return
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    pos = 0
    while pos < n_elems:
        stop = min(pos + block_size, n_elems)
        yield (pos, stop)
        pos = stop


def make_splits(
    start: int, stop: int, num_threads: int, chunk_size: int
) -> list[Split]:
    """Equally divide ``[start, stop)`` into per-thread splits.

    Split boundaries are aligned to ``chunk_size`` so a chunk never
    straddles two splits (each chunk must be reduced by exactly one
    thread).  Trailing threads may receive empty splits, which are
    omitted from the result.
    """
    n = stop - start
    if n < 0:
        raise ValueError(f"empty-range splits: start={start} > stop={stop}")
    if num_threads <= 0:
        raise ValueError(f"num_threads must be positive, got {num_threads}")
    n_chunks = -(-n // chunk_size)  # ceil division
    base, extra = divmod(n_chunks, num_threads)
    splits: list[Split] = []
    chunk_pos = 0
    for t in range(num_threads):
        t_chunks = base + (1 if t < extra else 0)
        if t_chunks == 0:
            continue
        s = start + chunk_pos * chunk_size
        e = min(start + (chunk_pos + t_chunks) * chunk_size, stop)
        splits.append(Split(s, e, t))
        chunk_pos += t_chunks
    return splits
