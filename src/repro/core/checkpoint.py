"""Checkpoint/restore of analytics state.

Long-running in-situ deployments outlive single program runs: a
simulation restarting from its own checkpoint needs the co-located
analytics to resume where it left off (the evolving k-means centroids,
the accumulated histogram).  Smart's entire analytics state is the
combination map, so a checkpoint is one serialized map plus a small
header, written atomically (temp file + rename).

Every rank checkpoints its own state; with global combination on, the
maps are identical across ranks, so restoring rank files (or a single
shared file) reproduces the global state exactly.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

from .scheduler import Scheduler
from .serialization import deserialize_map, serialize_map

_MAGIC = "smart-checkpoint"
_VERSION = 1


class CheckpointError(RuntimeError):
    """The checkpoint file is missing, corrupt, or incompatible."""


def save_checkpoint(
    scheduler: Scheduler, path: str | Path, metadata: dict[str, Any] | None = None
) -> Path:
    """Write the scheduler's combination map (and stats counters) to ``path``.

    The write is atomic: a temp file in the same directory is fsync'ed
    and renamed over the destination, so a crash mid-save never corrupts
    an existing checkpoint.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "magic": _MAGIC,
        "version": _VERSION,
        "scheduler": type(scheduler).__name__,
        "metadata": metadata or {},
        "stats": {
            "runs": scheduler.stats.runs,
            "iterations_run": scheduler.stats.iterations_run,
            "early_emissions": scheduler.stats.early_emissions,
        },
    }
    header_bytes = json.dumps(header).encode()
    payload = serialize_map(scheduler.get_combination_map())

    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(len(header_bytes).to_bytes(8, "little"))
            fh.write(header_bytes)
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise
    return path


def load_checkpoint(
    scheduler: Scheduler, path: str | Path, *, strict_type: bool = True
) -> dict[str, Any]:
    """Restore a scheduler's combination map from ``path``.

    Returns the checkpoint's metadata dict.  With ``strict_type`` (the
    default) the checkpoint must have been written by the same scheduler
    class — restoring a k-means state into a histogram is a bug, not a
    migration.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    raw = path.read_bytes()
    try:
        header_len = int.from_bytes(raw[:8], "little")
        header = json.loads(raw[8 : 8 + header_len].decode())
        payload = raw[8 + header_len :]
    except (ValueError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc
    if header.get("magic") != _MAGIC:
        raise CheckpointError(f"{path} is not a Smart checkpoint")
    if header.get("version") != _VERSION:
        raise CheckpointError(
            f"checkpoint version {header.get('version')} unsupported "
            f"(expected {_VERSION})"
        )
    if strict_type and header.get("scheduler") != type(scheduler).__name__:
        raise CheckpointError(
            f"checkpoint was written by {header.get('scheduler')}, not "
            f"{type(scheduler).__name__}"
        )
    scheduler.combination_map_ = deserialize_map(payload)
    return header.get("metadata", {})
