"""Checkpoint/restore of analytics state.

Long-running in-situ deployments outlive single program runs: a
simulation restarting from its own checkpoint needs the co-located
analytics to resume where it left off (the evolving k-means centroids,
the accumulated histogram).  Smart's entire analytics state is the
combination map, so a checkpoint is one serialized map plus a small
header, written atomically (temp file + rename).

Every rank checkpoints its own state; with global combination on, the
maps are identical across ranks, so restoring rank files (or a single
shared file) reproduces the global state exactly.

Hardening (version 2 of the file format):

* the header carries a CRC32 of the payload, verified on load — torn
  writes and bit rot are detected instead of deserialized;
* the header records the map wire-format version
  (:data:`~repro.core.serialization.WIRE_VERSION`); a layout mismatch is
  a clear :class:`CheckpointError`, not a pickle explosion;
* ``save_checkpoint(..., keep=N)`` rotates the last ``N`` checkpoints
  (``path``, ``path.1``, ...), and ``load_checkpoint`` falls back to the
  newest *verifying* rotation when the primary is corrupt.

Version-1 files (no CRC) still load: integrity checks are skipped for
them, preserving restores of pre-hardening checkpoints.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any

from .scheduler import Scheduler
from .serialization import WIRE_VERSION, deserialize_map, serialize_map

if TYPE_CHECKING:  # pragma: no cover
    from ..faults import FaultPlan

_MAGIC = "smart-checkpoint"
_VERSION = 2


class CheckpointError(RuntimeError):
    """The checkpoint file is missing, corrupt, or incompatible."""


def _rotated(path: Path, index: int) -> Path:
    """The ``index``-th rotation of ``path`` (0 is ``path`` itself)."""
    return path if index == 0 else path.with_name(f"{path.name}.{index}")


def save_checkpoint(
    scheduler: Scheduler,
    path: str | Path,
    metadata: dict[str, Any] | None = None,
    *,
    keep: int = 1,
    fault_plan: "FaultPlan | None" = None,
) -> Path:
    """Write the scheduler's combination map (and stats counters) to ``path``.

    The write is atomic: a temp file in the same directory is fsync'ed
    and renamed over the destination, so a crash mid-save never corrupts
    an existing checkpoint.

    Parameters
    ----------
    keep:
        Number of checkpoint generations to retain.  With ``keep=3`` the
        previous file rotates to ``path.1`` and the one before to
        ``path.2`` before the new state lands on ``path``;
        :func:`load_checkpoint` falls back along that chain when the
        primary fails verification.  The default 1 keeps only ``path``
        (the pre-rotation behaviour).
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` consulted after the
        atomic write; a matching storage spec corrupts the just-written
        file (truncation or a seeded bit flip in the CRC-protected
        payload) to exercise verification and fallback.  ``None`` (the
        default) skips the hook entirely.
    """
    if keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = serialize_map(
        scheduler.get_combination_map(), scheduler.policy.wire_format
    )
    header = {
        "magic": _MAGIC,
        "version": _VERSION,
        "scheduler": type(scheduler).__name__,
        "wire_version": WIRE_VERSION,
        "payload_crc32": zlib.crc32(payload) & 0xFFFFFFFF,
        "metadata": metadata or {},
        "stats": {
            "runs": scheduler.stats.runs,
            "iterations_run": scheduler.stats.iterations_run,
            "early_emissions": scheduler.stats.early_emissions,
        },
    }
    header_bytes = json.dumps(header).encode()

    # Rotate the previous generations before the new file lands, oldest
    # first, so a crash between renames leaves a consistent chain.
    for index in range(keep - 1, 0, -1):
        older = _rotated(path, index - 1)
        if older.exists():
            os.replace(older, _rotated(path, index))

    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(len(header_bytes).to_bytes(8, "little"))
            fh.write(header_bytes)
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise

    if fault_plan is not None:
        spec = fault_plan.storage_fault()
        if spec is not None:
            raw = path.read_bytes()
            protect = 8 + len(header_bytes)  # corrupt the payload, not the header
            path.write_bytes(fault_plan.corrupt(raw, spec.kind, protect=protect))
    return path


def _read_verified(scheduler: Scheduler, path: Path, strict_type: bool) -> dict:
    """Parse and verify one checkpoint file; raise CheckpointError if bad."""
    raw = path.read_bytes()
    try:
        header_len = int.from_bytes(raw[:8], "little")
        header = json.loads(raw[8 : 8 + header_len].decode())
        payload = raw[8 + header_len :]
    except (ValueError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc
    if header.get("magic") != _MAGIC:
        raise CheckpointError(f"{path} is not a Smart checkpoint")
    if header.get("version") not in (1, _VERSION):
        raise CheckpointError(
            f"checkpoint version {header.get('version')} unsupported "
            f"(expected <= {_VERSION})"
        )
    if strict_type and header.get("scheduler") != type(scheduler).__name__:
        raise CheckpointError(
            f"checkpoint was written by {header.get('scheduler')}, not "
            f"{type(scheduler).__name__}"
        )
    if header.get("version") >= 2:
        wire_version = header.get("wire_version")
        if wire_version != WIRE_VERSION:
            raise CheckpointError(
                f"checkpoint {path} uses map wire-format version "
                f"{wire_version}, this runtime reads {WIRE_VERSION}"
            )
        expected_crc = header.get("payload_crc32")
        actual_crc = zlib.crc32(payload) & 0xFFFFFFFF
        if actual_crc != expected_crc:
            raise CheckpointError(
                f"checkpoint {path} failed CRC verification "
                f"(header {expected_crc}, payload {actual_crc:#010x}): "
                f"torn write or bit rot"
            )
    header["_payload"] = payload
    return header


def load_checkpoint(
    scheduler: Scheduler,
    path: str | Path,
    *,
    strict_type: bool = True,
    fallback: bool = True,
) -> dict[str, Any]:
    """Restore a scheduler's combination map from ``path``.

    Returns the checkpoint's metadata dict.  With ``strict_type`` (the
    default) the checkpoint must have been written by the same scheduler
    class — restoring a k-means state into a histogram is a bug, not a
    migration.

    With ``fallback`` (the default), a primary file that is missing or
    fails verification is not fatal while a rotated generation
    (``path.1``, ``path.2``, ...) verifies: the newest verifying file is
    restored instead, the fallback is counted on the scheduler's
    telemetry (``faults.checkpoint_fallbacks``), and the returned
    metadata is that file's.  Only when every candidate fails does the
    primary's error propagate.
    """
    path = Path(path)
    candidates = [path]
    if fallback:
        index = 1
        while _rotated(path, index).exists():
            candidates.append(_rotated(path, index))
            index += 1
    first_error: CheckpointError | None = None
    for candidate in candidates:
        if not candidate.exists():
            if first_error is None:
                first_error = CheckpointError(f"no checkpoint at {candidate}")
            continue
        try:
            header = _read_verified(scheduler, candidate, strict_type)
        except CheckpointError as exc:
            if first_error is None:
                first_error = exc
            continue
        if candidate is not path:
            scheduler.telemetry.inc("faults.checkpoint_fallbacks")
        scheduler.combination_map_ = deserialize_map(header["_payload"])
        return header.get("metadata", {})
    assert first_error is not None
    raise first_error
