"""Circular buffer for space-sharing mode (paper Section 3.2, Figure 4).

Smart maintains a bounded circular buffer whose cells cache time-step
outputs.  The simulation (producer) copies each finished time-step into an
empty cell via ``put`` and *blocks when the buffer is full*; the analytics
(consumer) drains cells via ``get``.  Cells allocate on demand: the buffer
holds references, so memory is only committed for occupied cells.
"""

from __future__ import annotations

import threading
from typing import Any


class BufferClosed(RuntimeError):
    """``get`` was called on a closed, drained buffer."""


class CircularBuffer:
    """Bounded FIFO with blocking put/get and close semantics.

    Parameters
    ----------
    capacity:
        Maximum number of cached time-steps (cells).
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._cells: list[Any] = [None] * capacity
        self._head = 0  # next cell to read
        self._count = 0
        self._closed = False
        self._cond = threading.Condition()
        # Occupancy telemetry for the space-sharing analysis.
        self.puts = 0
        self.gets = 0
        self.producer_blocks = 0
        self.consumer_blocks = 0
        self.high_water = 0  # peak occupancy (pipeline-depth utilisation)

    def __len__(self) -> int:
        with self._cond:
            return self._count

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def put(self, item: Any, timeout: float | None = None) -> None:
        """Copy one time-step into the next empty cell; block while full."""
        with self._cond:
            if self._closed:
                raise BufferClosed("cannot feed a closed buffer")
            if self._count == self.capacity:
                self.producer_blocks += 1
            while self._count == self.capacity:
                if not self._cond.wait(timeout=timeout):
                    raise TimeoutError(
                        f"producer blocked > {timeout}s on a full buffer"
                    )
                if self._closed:
                    raise BufferClosed("buffer closed while producer was blocked")
            tail = (self._head + self._count) % self.capacity
            self._cells[tail] = item
            self._count += 1
            self.puts += 1
            if self._count > self.high_water:
                self.high_water = self._count
            self._cond.notify_all()

    def get(self, timeout: float | None = None) -> Any:
        """Take the oldest cached time-step; block while empty.

        Raises :class:`BufferClosed` once the buffer is closed and fully
        drained (the consumer's termination signal).
        """
        with self._cond:
            if self._count == 0 and not self._closed:
                self.consumer_blocks += 1
            while self._count == 0:
                if self._closed:
                    raise BufferClosed("buffer closed and drained")
                if not self._cond.wait(timeout=timeout):
                    raise TimeoutError(
                        f"consumer blocked > {timeout}s on an empty buffer"
                    )
            item = self._cells[self._head]
            self._cells[self._head] = None  # free the cell eagerly
            self._head = (self._head + 1) % self.capacity
            self._count -= 1
            self.gets += 1
            self._cond.notify_all()
            return item

    def close(self) -> None:
        """Mark end of stream; wakes any blocked producer/consumer."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def stats(self) -> dict[str, int]:
        """Occupancy counters as one dict (for telemetry snapshots)."""
        with self._cond:
            return {
                "puts": self.puts,
                "gets": self.gets,
                "producer_blocks": self.producer_blocks,
                "consumer_blocks": self.consumer_blocks,
                "high_water": self.high_water,
            }
