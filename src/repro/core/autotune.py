"""Policy autotuning: the perfmodel → telemetry → config loop.

The paper's own measurements show the runtime's best configuration is
workload-dependent: Figure 6's overhead experiment and the Section 5.3
comparison flip winners between the per-object gather combine and the
contiguous allreduce as the combination map grows, and Figure 9's
copy/no-copy choice flips with data size.  SIM-SITU (PAPERS.md) argues
the general point — configuration exploration of in-situ workflows needs
a cost model connected to real measurements.  This repository has both
halves (:mod:`repro.perfmodel` predicts, the
:class:`~repro.telemetry.Recorder` measures); this module connects them
to the configuration they describe:

* :class:`PolicyAdvisor` — launch-time advice.  Given a workload
  description (element count, rank count, key estimate, schema shape),
  it queries :mod:`repro.perfmodel.costmodel`'s combine models and
  returns a complete :class:`~repro.core.policy.ExecutionPolicy`
  (exposed as ``ExecutionPolicy.auto(...)``).
* :class:`CombineSwitch` — mid-run adaptation.  Installed as a
  scheduler's ``policy_adaptor``, it watches the *observed* key count
  after every global combination and switches the combine algorithm
  when it crosses the calibrated gather/allreduce crossover.  The
  decision reads only post-combine state that is identical on every
  rank, so SPMD ranks switch in lockstep, and every switch is recorded
  in ``policy.*`` telemetry and in :attr:`CombineSwitch.history` —
  rerunning the same program replays the identical switch sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from .policy import CombinePolicy, EnginePolicy, ExecutionPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..perfmodel.machine import MachineSpec
    from ..telemetry import Recorder
    from .scheduler import Scheduler


def _default_machine() -> "MachineSpec":
    # Lazy: repro.perfmodel's package init imports the analytics package,
    # which imports repro.core — a module-level import here would close
    # that cycle while repro.core is still initializing.
    from ..perfmodel.machine import MULTICORE_CLUSTER

    return MULTICORE_CLUSTER

__all__ = ["CombineSwitch", "PolicyAdvisor", "PROCESS_ENGINE_MIN_ELEMENTS"]

#: Scalar-loop element count below which the process engine's dispatch
#: overhead (core publication, per-split serialization) outweighs
#: GIL-free execution — the advisor never picks ``process`` under it.
PROCESS_ENGINE_MIN_ELEMENTS = 100_000


@dataclass(frozen=True)
class Advice:
    """One launch-time decision with the model numbers behind it."""

    policy: ExecutionPolicy
    crossover_keys: int
    gather_seconds: float
    allreduce_seconds: float


class PolicyAdvisor:
    """Chooses engine/combine/wire knobs from the analytic cost model.

    Deterministic: the same hints against the same
    :class:`~repro.perfmodel.machine.MachineSpec` always yield the same
    policy, so an advised run is exactly reproducible.
    """

    def __init__(
        self,
        machine: "MachineSpec | None" = None,
        telemetry: "Recorder | None" = None,
    ):
        self.machine = machine if machine is not None else _default_machine()
        self.telemetry = telemetry

    def advise(
        self,
        *,
        elements: int = 0,
        ranks: int = 1,
        threads: int = 1,
        chunk_size: int = 1,
        num_iters: int = 1,
        key_estimate: int = 16,
        schema_mergeable: bool = False,
        has_vector_path: bool = False,
        has_batch_path: bool = False,
        extra_data: Any = None,
        block_size: int | None = None,
        **overrides: Any,
    ) -> ExecutionPolicy:
        """An :class:`~repro.core.policy.ExecutionPolicy` for the
        described workload.

        Parameters
        ----------
        elements:
            Per-rank elements per run (drives the engine choice).
        ranks:
            Communicator size the job will run under.
        threads:
            Worker budget per rank (e.g. the simulation's thread count
            in time-sharing mode).
        key_estimate:
            Expected combination-map key count (drives the combine
            algorithm via the gather/allreduce crossover).
        schema_mergeable:
            Whether the reduction objects declare a columnar
            :class:`~repro.core.red_obj.Field` schema (drives the wire
            format; the runtime falls back transparently if a hint is
            optimistic).
        has_vector_path:
            Whether the application implements ``vector_reduce``.
        has_batch_path:
            Whether the application implements the batch-map path
            (``make_accumulator`` / ``batch_reduce``); when it does the
            advisor forces ``map_path="batch"`` — the strongest
            per-element-overhead elimination the runtime offers.
        overrides:
            Passed through to the policy verbatim (``copy_input``,
            ``fault``, ``residency``, ...).
        """
        return self.advise_with_detail(
            elements=elements, ranks=ranks, threads=threads,
            chunk_size=chunk_size, num_iters=num_iters,
            key_estimate=key_estimate, schema_mergeable=schema_mergeable,
            has_vector_path=has_vector_path, has_batch_path=has_batch_path,
            extra_data=extra_data, block_size=block_size, **overrides,
        ).policy

    def advise_with_detail(
        self,
        *,
        elements: int = 0,
        ranks: int = 1,
        threads: int = 1,
        chunk_size: int = 1,
        num_iters: int = 1,
        key_estimate: int = 16,
        schema_mergeable: bool = False,
        has_vector_path: bool = False,
        has_batch_path: bool = False,
        extra_data: Any = None,
        block_size: int | None = None,
        **overrides: Any,
    ) -> Advice:
        """:meth:`advise` plus the cost-model numbers behind the choice."""
        from ..perfmodel.costmodel import (
            combine_crossover_keys,
            model_combine_allreduce,
            model_combine_gather,
        )

        residency = overrides.pop("residency", "auto")
        # Map path: the batch path (whole-split columnar scatters)
        # dominates the per-object vector path wherever both exist, so
        # an application exposing batch_reduce gets it unconditionally.
        map_path = "batch" if has_batch_path else "auto"
        vectorized = has_vector_path and not has_batch_path
        # Engine: the vectorized/batch fast paths make the serial/thread
        # loop numpy-bound, so process pools only pay off on large scalar
        # loops where shipping splits beats holding the GIL.
        numpy_bound = vectorized or has_batch_path
        if threads > 1:
            backend = "thread"
            if (
                not numpy_bound
                and elements // max(chunk_size, 1) >= PROCESS_ENGINE_MIN_ELEMENTS
            ):
                backend = "process"
        else:
            backend = "serial"
        num_threads = max(int(threads), 1)

        # Combine algorithm: calibrated gather/allreduce crossover
        # (paper Fig. 6 / Section 5.3).  Allreduce needs a fully
        # ufunc-mergeable schema; without one the runtime would fall
        # back collectively anyway, so the advisor does not bother.
        crossover = combine_crossover_keys(self.machine, ranks)
        t_gather = model_combine_gather(self.machine, ranks, key_estimate)
        t_allreduce = model_combine_allreduce(self.machine, ranks, key_estimate)
        if ranks >= 2 and schema_mergeable and key_estimate >= crossover:
            algorithm = "allreduce"
        else:
            algorithm = "gather"
        wire = "columnar" if schema_mergeable else "pickle"

        policy = ExecutionPolicy(
            engine=EnginePolicy(
                backend=backend, num_threads=num_threads,
                residency=residency, map_path=map_path,
            ),
            combine=CombinePolicy(algorithm=algorithm, wire_format=wire),
            chunk_size=chunk_size,
            num_iters=num_iters,
            block_size=block_size,
            extra_data=extra_data,
            vectorized=vectorized,
            **overrides,
        )
        if self.telemetry is not None:
            self.telemetry.inc("policy.advice")
            self.telemetry.inc(f"policy.advice.engine.{backend}")
            self.telemetry.inc(f"policy.advice.algo.{algorithm}")
            self.telemetry.inc(f"policy.advice.wire.{wire}")
            self.telemetry.inc(f"policy.advice.map.{map_path}")
            self.telemetry.set_gauge("policy.crossover_keys", crossover)
        return Advice(
            policy=policy,
            crossover_keys=crossover,
            gather_seconds=t_gather,
            allreduce_seconds=t_allreduce,
        )


@dataclass
class CombineSwitch:
    """Mid-run combine-algorithm adaptation on the observed key count.

    Installed as ``scheduler.policy_adaptor``; the scheduler calls
    :meth:`observe` after ``post_combine`` of every iteration.  When the
    *measured* combination-map size crosses the calibrated crossover,
    the scheduler's policy is replaced (policies are immutable — the
    switch builds a new one with :meth:`ExecutionPolicy.evolve`) and the
    next iteration's global combination runs the other algorithm.

    Determinism: the decision reads the post-combine map length — a
    value global combination has already made identical on every rank —
    plus constants, so all SPMD ranks flip together, and replaying the
    run replays the same :attr:`history`.
    """

    machine: "MachineSpec" = field(default_factory=_default_machine)
    #: Decision boundary override; ``None`` derives it from the machine
    #: and the live rank count via ``combine_crossover_keys``.
    crossover_keys: int | None = None
    #: ``(iteration, observed_keys, from_algorithm, to_algorithm)`` per
    #: switch, in firing order.
    history: list[tuple[int, int, str, str]] = field(default_factory=list)

    def crossover_for(self, ranks: int) -> int:
        if self.crossover_keys is not None:
            return int(self.crossover_keys)
        from ..perfmodel.costmodel import combine_crossover_keys

        return combine_crossover_keys(self.machine, ranks)

    def observe(self, scheduler: "Scheduler", iteration: int) -> None:
        """One post-combine observation; may replace ``scheduler.policy``."""
        ranks = scheduler.comm.size
        if ranks < 2:
            return
        keys = len(scheduler.combination_map_)
        crossover = self.crossover_for(ranks)
        current = scheduler.policy.combine.algorithm
        if current not in ("gather", "allreduce"):
            return  # never second-guess an explicit tree choice
        target = "allreduce" if keys >= crossover else "gather"
        scheduler.telemetry.set_gauge("policy.observed_keys", keys)
        scheduler.telemetry.set_gauge("policy.crossover_keys", crossover)
        if target == current:
            return
        scheduler.policy = scheduler.policy.evolve(
            combine=CombinePolicy(
                algorithm=target,
                wire_format=scheduler.policy.combine.wire_format,
            )
        )
        self.history.append((iteration, keys, current, target))
        scheduler.telemetry.inc("policy.switches")
        scheduler.telemetry.inc(f"policy.switch.{current}_to_{target}")
