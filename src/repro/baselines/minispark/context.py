"""Mini-Spark driver context.

Owns the worker thread pool, the serializer, broadcast variables, and the
memory-audit counters the Fig. 5 harness reads.  Deliberately mirrors the
SparkContext surface the paper's comparison applications use:
``parallelize``, ``broadcast``, and RDD actions.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

from .rdd import RDD, ParallelCollectionRDD
from .serializer import Serializer


class Broadcast:
    """A read-only variable shipped to every task.

    Spark serializes broadcast values for distribution even in local
    mode; creating one here pays that round-trip so the cost shows up in
    the audit (k-means re-broadcasts centroids every iteration).
    """

    def __init__(self, value: Any, serializer: Serializer):
        self.value = serializer.loads(serializer.dumps(value))


class MiniSparkContext:
    """Driver for mini-Spark jobs.

    Parameters
    ----------
    num_workers:
        Worker threads executing partition tasks.  Like Spark, the
        driver itself is an *extra* thread beyond the workers (the paper
        notes Spark "launches extra threads for other tasks" — one
        reason its 8-thread scaling flattens).
    """

    def __init__(self, num_workers: int = 1):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.serializer = Serializer()
        self._pool = ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="minispark-worker"
        )
        self._rdds: list[RDD] = []
        # Memory audit: peak simultaneously materialized elements across
        # all partitions of all stages.
        self.peak_partition_elements = 0
        self.total_elements_materialized = 0

    # -- data ingestion --------------------------------------------------------
    def parallelize(self, data: Sequence[Any], num_partitions: int | None = None) -> RDD:
        n_parts = num_partitions or self.num_workers
        if n_parts < 1:
            raise ValueError(f"num_partitions must be >= 1, got {n_parts}")
        data = list(data)
        size = len(data)
        slices = [
            data[(size * i) // n_parts : (size * (i + 1)) // n_parts]
            for i in range(n_parts)
        ]
        return ParallelCollectionRDD(self, slices)

    def broadcast(self, value: Any) -> Broadcast:
        return Broadcast(value, self.serializer)

    # -- execution ---------------------------------------------------------------
    def run_job(self, rdd: RDD, fn: Callable[[list[Any]], Any]) -> list[Any]:
        """Run ``fn`` over every materialized partition of ``rdd``.

        Upstream shuffle stages are submitted first, from this (driver)
        thread, mirroring Spark's stage scheduler.
        """
        rdd.prepare_stages()
        return self.run_job_without_prepare(rdd, fn)

    def run_job_without_prepare(
        self, rdd: RDD, fn: Callable[[list[Any]], Any]
    ) -> list[Any]:
        """Execute one stage; callers must have prepared upstream stages."""
        indices = range(rdd.num_partitions)
        if self.num_workers == 1:
            return [fn(rdd._materialize(i)) for i in indices]
        return list(self._pool.map(lambda i: fn(rdd._materialize(i)), indices))

    # -- bookkeeping ---------------------------------------------------------------
    def _register_rdd(self, rdd: RDD) -> None:
        self._rdds.append(rdd)

    def _observe_partition(self, n_elements: int) -> None:
        self.total_elements_materialized += n_elements
        if n_elements > self.peak_partition_elements:
            self.peak_partition_elements = n_elements

    @property
    def rdd_count(self) -> int:
        """How many RDD objects the lineage created (immutability audit)."""
        return len(self._rdds)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "MiniSparkContext":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()
