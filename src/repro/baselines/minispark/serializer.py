"""Pickle serializer with byte accounting.

Spark serializes RDD partitions between stages (and, the paper notes,
"serializes RDDs and sends them through network even in local mode").
Mini-Spark reproduces that cost: every shuffle bucket and every cached
partition passes through this serializer, and the byte counters feed the
memory/traffic audit of the Fig. 5 harness.
"""

from __future__ import annotations

import pickle
import threading
from typing import Any


class Serializer:
    """Pickle round-trips with cumulative byte/call counters (thread-safe)."""

    def __init__(self) -> None:
        self.bytes_serialized = 0
        self.bytes_deserialized = 0
        self.serialize_calls = 0
        self.deserialize_calls = 0
        self._lock = threading.Lock()

    def dumps(self, obj: Any) -> bytes:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            self.bytes_serialized += len(payload)
            self.serialize_calls += 1
        return payload

    def loads(self, payload: bytes) -> Any:
        with self._lock:
            self.bytes_deserialized += len(payload)
            self.deserialize_calls += 1
        return pickle.loads(payload)

    def reset(self) -> None:
        with self._lock:
            self.bytes_serialized = 0
            self.bytes_deserialized = 0
            self.serialize_calls = 0
            self.deserialize_calls = 0
