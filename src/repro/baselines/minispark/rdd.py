"""Immutable RDDs with lineage (the mini-Spark execution model).

Reproduces the three structural costs the paper attributes Spark's
slowdown to (Section 5.2):

1. every ``map``/``flatMap`` materializes its full key-value output per
   partition before anything downstream runs (intermediate pairs exist
   all at once — the mapping-phase memory peak of Section 2.3.3);
2. every transformation creates a *new* RDD — nothing is updated in
   place, and shuffle inputs/outputs are fresh materializations;
3. shuffle buckets are serialized and deserialized even though everything
   lives in one process ("Spark serializes RDDs and sends them through
   network even in local mode").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Hashable, Iterable

from .shuffle import ShuffleStats, combine_by_key, shuffle_read, shuffle_write

if TYPE_CHECKING:  # pragma: no cover
    from .context import MiniSparkContext


class RDD:
    """An immutable, partitioned dataset with recorded lineage."""

    def __init__(self, ctx: "MiniSparkContext", num_partitions: int, name: str):
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        self.ctx = ctx
        self.num_partitions = num_partitions
        self.name = name
        self._cache: dict[int, list[Any]] | None = None
        ctx._register_rdd(self)

    # -- to be provided by concrete RDDs ------------------------------------
    def compute(self, index: int) -> list[Any]:
        """Materialize partition ``index`` (list semantics, like Spark's
        iterator fully drained by the next stage)."""
        raise NotImplementedError

    def dependencies(self) -> list["RDD"]:
        """Parent RDDs (lineage edges)."""
        return []

    def prepare_stages(self) -> None:
        """Run every upstream shuffle stage, driver-side, leaves first.

        Spark's scheduler submits shuffle-map stages before the result
        stage; doing the same here keeps ``compute`` free of nested pool
        submissions (which would deadlock a bounded worker pool).
        """
        for parent in self.dependencies():
            parent.prepare_stages()

    # -- caching --------------------------------------------------------------
    def cache(self) -> "RDD":
        if self._cache is None:
            self._cache = {}
        return self

    def _materialize(self, index: int) -> list[Any]:
        if self._cache is not None and index in self._cache:
            return self._cache[index]
        part = self.compute(index)
        if self._cache is not None:
            # Spark caches the serialized-or-deserialized block; we keep the
            # list but still pay one serialization round-trip, mirroring the
            # default MEMORY_ONLY_SER-ish accounting used in the audit.
            self._cache[index] = part
        self.ctx._observe_partition(len(part))
        return part

    # -- transformations (lazy) ----------------------------------------------
    def map(self, fn: Callable[[Any], Any]) -> "RDD":
        return MappedRDD(self, fn, flat=False, name=f"{self.name}.map")

    def flatMap(self, fn: Callable[[Any], Iterable[Any]]) -> "RDD":
        return MappedRDD(self, fn, flat=True, name=f"{self.name}.flatMap")

    def filter(self, pred: Callable[[Any], bool]) -> "RDD":
        return FilteredRDD(self, pred, name=f"{self.name}.filter")

    def mapPartitions(self, fn: Callable[[list[Any]], Iterable[Any]]) -> "RDD":
        return PartitionMappedRDD(self, fn, name=f"{self.name}.mapPartitions")

    def groupByKey(self, num_partitions: int | None = None) -> "RDD":
        return ShuffledRDD(self, combiner=None,
                           num_partitions=num_partitions or self.num_partitions,
                           name=f"{self.name}.groupByKey")

    def reduceByKey(
        self, combiner: Callable[[Any, Any], Any], num_partitions: int | None = None
    ) -> "RDD":
        return ShuffledRDD(self, combiner=combiner,
                           num_partitions=num_partitions or self.num_partitions,
                           name=f"{self.name}.reduceByKey")

    # -- actions ----------------------------------------------------------------
    def collect(self) -> list[Any]:
        parts = self.ctx.run_job(self, lambda part: part)
        out: list[Any] = []
        for part in parts:
            out.extend(part)
        return out

    def count(self) -> int:
        return sum(self.ctx.run_job(self, len))

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        def fold(part: list[Any]) -> Any:
            if not part:
                return _EMPTY
            acc = part[0]
            for value in part[1:]:
                acc = fn(acc, value)
            return acc

        partials = [p for p in self.ctx.run_job(self, fold) if p is not _EMPTY]
        if not partials:
            raise ValueError(f"reduce() of empty RDD {self.name}")
        acc = partials[0]
        for value in partials[1:]:
            acc = fn(acc, value)
        return acc


_EMPTY = object()


class ParallelCollectionRDD(RDD):
    """Source RDD over pre-sliced in-memory data."""

    def __init__(self, ctx: "MiniSparkContext", slices: list[list[Any]], name: str = "parallelize"):
        super().__init__(ctx, len(slices), name)
        self._slices = slices

    def compute(self, index: int) -> list[Any]:
        return list(self._slices[index])


class MappedRDD(RDD):
    """map / flatMap: per-element function, output fully materialized."""

    def __init__(self, parent: RDD, fn: Callable, flat: bool, name: str):
        super().__init__(parent.ctx, parent.num_partitions, name)
        self.parent = parent
        self.fn = fn
        self.flat = flat

    def dependencies(self) -> list[RDD]:
        return [self.parent]

    def compute(self, index: int) -> list[Any]:
        source = self.parent._materialize(index)
        if self.flat:
            out: list[Any] = []
            for element in source:
                out.extend(self.fn(element))
            return out
        return [self.fn(element) for element in source]


class FilteredRDD(RDD):
    def __init__(self, parent: RDD, pred: Callable[[Any], bool], name: str):
        super().__init__(parent.ctx, parent.num_partitions, name)
        self.parent = parent
        self.pred = pred

    def dependencies(self) -> list[RDD]:
        return [self.parent]

    def compute(self, index: int) -> list[Any]:
        return [e for e in self.parent._materialize(index) if self.pred(e)]


class PartitionMappedRDD(RDD):
    def __init__(self, parent: RDD, fn: Callable[[list[Any]], Iterable[Any]], name: str):
        super().__init__(parent.ctx, parent.num_partitions, name)
        self.parent = parent
        self.fn = fn

    def dependencies(self) -> list[RDD]:
        return [self.parent]

    def compute(self, index: int) -> list[Any]:
        return list(self.fn(self.parent._materialize(index)))


class ShuffledRDD(RDD):
    """groupByKey / reduceByKey output: a full shuffle sits in the lineage.

    The shuffle (all map tasks, bucketing, serialization) runs once, when
    the first reduce partition is computed, and its serialized buckets are
    retained until the RDD is garbage collected — matching Spark's shuffle
    files.
    """

    def __init__(self, parent: RDD, combiner: Callable | None, num_partitions: int, name: str):
        super().__init__(parent.ctx, num_partitions, name)
        self.parent = parent
        self.combiner = combiner
        self.stats = ShuffleStats()
        self._buckets: list[list[bytes]] | None = None  # [map_part][reduce_part]

    def dependencies(self) -> list[RDD]:
        return [self.parent]

    def prepare_stages(self) -> None:
        """Run the map-side stage from the driver (never from a worker —
        a nested pool submission would deadlock a bounded pool)."""
        self.parent.prepare_stages()
        if self._buckets is not None:
            return
        serializer = self.ctx.serializer

        def map_task(part: list[tuple[Hashable, Any]]) -> list[bytes]:
            return shuffle_write(part, self.num_partitions, serializer, self.stats)

        self._buckets = self.ctx.run_job_without_prepare(self.parent, map_task)

    def compute(self, index: int) -> list[Any]:
        if self._buckets is None:
            raise RuntimeError(
                f"shuffle stage of {self.name} was not prepared; compute() must "
                "be reached through an action (collect/count/reduce)"
            )
        incoming = [row[index] for row in self._buckets]
        grouped = shuffle_read(incoming, self.ctx.serializer, self.stats)
        if self.combiner is None:
            return list(grouped.items())
        return list(combine_by_key(grouped, self.combiner).items())
