"""Mini-Spark: a miniature Spark-like engine (the Fig. 5 baseline).

Structurally faithful to the three costs the paper measures Spark
paying: materialized intermediate key-value pairs, a new immutable RDD
per transformation, and serialization between stages even in local mode.
"""

from .context import Broadcast, MiniSparkContext
from .rdd import (
    FilteredRDD,
    MappedRDD,
    ParallelCollectionRDD,
    PartitionMappedRDD,
    RDD,
    ShuffledRDD,
)
from .serializer import Serializer
from .shuffle import ShuffleStats, combine_by_key, shuffle_read, shuffle_write
from .apps import spark_histogram, spark_kmeans, spark_logistic_regression

__all__ = [
    "Broadcast",
    "FilteredRDD",
    "MappedRDD",
    "MiniSparkContext",
    "ParallelCollectionRDD",
    "PartitionMappedRDD",
    "RDD",
    "Serializer",
    "ShuffleStats",
    "ShuffledRDD",
    "combine_by_key",
    "shuffle_read",
    "shuffle_write",
    "spark_histogram",
    "spark_kmeans",
    "spark_logistic_regression",
]
