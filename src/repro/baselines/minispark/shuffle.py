"""Hash-partition shuffle (the structural bottleneck Fig. 5 measures).

The map side materializes its full key-value output, hashes each pair
into one bucket per reduce partition, and *serializes every bucket*
(Spark writes shuffle files / sends blocks even in local mode).  The
reduce side deserializes its incoming buckets and groups by key.  None of
this reduces data volume before grouping — exactly the memory-constraint
mismatch the paper describes in Section 2.3.3.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Hashable, Iterable

from .serializer import Serializer

KV = tuple[Hashable, Any]


class ShuffleStats:
    """Counters for one shuffle: pairs moved and peak in-flight pairs."""

    def __init__(self) -> None:
        self.pairs_emitted = 0
        self.buckets_written = 0
        self.peak_pairs_in_flight = 0

    def observe(self, pairs: int) -> None:
        if pairs > self.peak_pairs_in_flight:
            self.peak_pairs_in_flight = pairs


def shuffle_write(
    map_output: Iterable[KV],
    num_reducers: int,
    serializer: Serializer,
    stats: ShuffleStats | None = None,
) -> list[bytes]:
    """Map side: bucket the pairs by ``hash(key) % num_reducers``, serialize.

    Returns one serialized bucket per reduce partition.
    """
    if num_reducers < 1:
        raise ValueError(f"num_reducers must be >= 1, got {num_reducers}")
    buckets: list[list[KV]] = [[] for _ in range(num_reducers)]
    n = 0
    for key, value in map_output:
        buckets[hash(key) % num_reducers].append((key, value))
        n += 1
    if stats is not None:
        stats.pairs_emitted += n
        stats.buckets_written += num_reducers
        stats.observe(n)
    return [serializer.dumps(bucket) for bucket in buckets]


def shuffle_read(
    incoming: Iterable[bytes],
    serializer: Serializer,
    stats: ShuffleStats | None = None,
) -> dict[Hashable, list[Any]]:
    """Reduce side: deserialize incoming buckets and group values by key."""
    grouped: dict[Hashable, list[Any]] = defaultdict(list)
    total = 0
    for payload in incoming:
        for key, value in serializer.loads(payload):
            grouped[key].append(value)
            total += 1
    if stats is not None:
        stats.observe(total)
    return dict(grouped)


def combine_by_key(
    grouped: dict[Hashable, list[Any]], combiner: Callable[[Any, Any], Any]
) -> dict[Hashable, Any]:
    """Fold each key's value list with ``combiner`` (reduceByKey's last step)."""
    out: dict[Hashable, Any] = {}
    for key, values in grouped.items():
        acc = values[0]
        for value in values[1:]:
            acc = combiner(acc, value)
        out[key] = acc
    return out
