"""The paper's three Spark comparison applications, in mini-Spark style.

Each follows the structure of Spark's own example programs (which the
paper says it used): per-element lambdas emitting Python tuples, a
shuffle per aggregation, a new RDD per transformation, and driver-side
collection per iteration.
"""

from __future__ import annotations

import numpy as np

from .context import MiniSparkContext


def spark_histogram(
    ctx: MiniSparkContext,
    data: np.ndarray,
    lo: float,
    hi: float,
    num_buckets: int,
    num_partitions: int | None = None,
) -> np.ndarray:
    """Histogram: ``map(x -> (bucket, 1)).reduceByKey(+).collect()``."""
    width = (hi - lo) / num_buckets

    def bucket(x: float) -> tuple[int, int]:
        k = int((x - lo) / width)
        return (min(max(k, 0), num_buckets - 1), 1)

    rdd = ctx.parallelize(data.tolist(), num_partitions)
    pairs = rdd.map(bucket).reduceByKey(lambda a, b: a + b)
    counts = np.zeros(num_buckets, dtype=np.int64)
    for key, count in pairs.collect():
        counts[key] = count
    return counts


def spark_kmeans(
    ctx: MiniSparkContext,
    flat_points: np.ndarray,
    init_centroids: np.ndarray,
    num_iters: int,
    num_partitions: int | None = None,
) -> np.ndarray:
    """K-means: per iteration, broadcast centroids, map each point to
    ``(closest, (point, 1))``, reduceByKey with vector adds, recompute."""
    k, dims = init_centroids.shape
    points = [tuple(p) for p in np.asarray(flat_points).reshape(-1, dims)]
    rdd = ctx.parallelize(points, num_partitions).cache()
    centroids = np.asarray(init_centroids, dtype=np.float64).copy()

    for _ in range(num_iters):
        bc = ctx.broadcast(centroids.tolist())

        def closest(p: tuple, _c=bc) -> tuple[int, tuple[tuple, int]]:
            cs = _c.value
            best, best_d = 0, float("inf")
            for idx, c in enumerate(cs):
                d = sum((pi - ci) ** 2 for pi, ci in zip(p, c))
                if d < best_d:
                    best, best_d = idx, d
            return (best, (p, 1))

        def add(a: tuple[tuple, int], b: tuple[tuple, int]):
            return (tuple(x + y for x, y in zip(a[0], b[0])), a[1] + b[1])

        assigned = rdd.map(closest).reduceByKey(add)
        for key, (vec_sum, size) in assigned.collect():
            if size > 0:
                centroids[key] = np.asarray(vec_sum) / size
    return centroids


def spark_logistic_regression(
    ctx: MiniSparkContext,
    flat_data: np.ndarray,
    dims: int,
    num_iters: int,
    learning_rate: float = 0.1,
    num_partitions: int | None = None,
) -> np.ndarray:
    """Logistic regression: per iteration, map each sample to its gradient
    tuple and ``reduce`` them on the driver (Spark's example LR shape)."""
    rows = [tuple(r) for r in np.asarray(flat_data).reshape(-1, dims + 1)]
    rdd = ctx.parallelize(rows, num_partitions).cache()
    weights = np.zeros(dims)
    n = len(rows)

    for _ in range(num_iters):
        bc = ctx.broadcast(weights.tolist())

        def gradient(row: tuple, _w=bc) -> tuple:
            w = _w.value
            x, y = row[:dims], row[dims]
            z = sum(wi * xi for wi, xi in zip(w, x))
            p = 1.0 / (1.0 + np.exp(-z))
            return tuple((p - y) * xi for xi in x)

        def add(a: tuple, b: tuple) -> tuple:
            return tuple(x + y for x, y in zip(a, b))

        grad = rdd.map(gradient).reduce(add)
        weights -= learning_rate * np.asarray(grad) / n
    return weights
