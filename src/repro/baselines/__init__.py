"""Baselines the paper compares Smart against.

* :mod:`repro.baselines.minispark` — Spark-like engine (Fig. 5).
* :mod:`repro.baselines.lowlevel` — hand-written MPI/OpenMP-style
  analytics (Fig. 6, programmability comparison).
* :mod:`repro.baselines.offline` — store-first-analyze-after (Fig. 1).
"""

from .lowlevel import (
    lowlevel_histogram,
    lowlevel_kmeans,
    lowlevel_logreg,
    lowlevel_mutual_information,
)
from .offline import OfflineDriver, OfflineResult

__all__ = [
    "OfflineDriver",
    "OfflineResult",
    "lowlevel_histogram",
    "lowlevel_kmeans",
    "lowlevel_logreg",
    "lowlevel_mutual_information",
]
