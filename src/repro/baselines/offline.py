"""Offline (store-first-analyze-after) analytics — the Fig. 1 baseline.

Traditional scientific analytics writes every time-step to persistent
storage during the simulation and loads it back later for analysis.  The
driver below does exactly that: each partition is written to a scratch
file (optionally fsync'ed so the OS page cache cannot hide the cost),
then re-read for the analytics pass.  Timings are reported per phase so
the Fig. 1 harness can show total time and the I/O overhead bar.

A *modeled* parallel-filesystem mode is also provided: instead of local
disk, I/O seconds are charged analytically at a configurable aggregate
bandwidth.  The paper's cluster stores 1 TB through a shared PFS; the
modeled mode lets the harness reproduce the paper's in-situ/offline ratio
at paper-scale volumes without a PFS (see DESIGN.md's substitution
table).
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from ..core.scheduler import Scheduler
from ..sim.base import Simulation


@dataclass
class OfflineResult:
    """Phase timings of a store-first-analyze-after run (seconds)."""

    simulate: float = 0.0
    write: float = 0.0
    read: float = 0.0
    analyze: float = 0.0
    bytes_written: int = 0
    modeled_io: float = 0.0
    output: object = None

    @property
    def io_overhead(self) -> float:
        """The I/O cost in-situ processing avoids (write + read)."""
        return self.write + self.read

    @property
    def total(self) -> float:
        return self.simulate + self.write + self.read + self.analyze


class OfflineDriver:
    """Store-first-analyze-after execution of a simulation + analytics pair.

    Parameters
    ----------
    simulation / scheduler / multi_key:
        As in :class:`~repro.core.time_sharing.TimeSharingDriver`.
    scratch_dir:
        Where step files go; a temporary directory when omitted.
    fsync:
        Force data to the device on every write (defeats the page cache;
        default True so the measured cost is honest).
    modeled_bandwidth:
        When set (bytes/second), no real files are touched: write/read
        seconds are charged as ``bytes / bandwidth`` into ``modeled_io``
        and the data round-trips through memory.
    """

    def __init__(
        self,
        simulation: Simulation,
        scheduler: Scheduler,
        *,
        multi_key: bool = False,
        scratch_dir: str | Path | None = None,
        fsync: bool = True,
        modeled_bandwidth: float | None = None,
        out_factory: Callable[[np.ndarray], np.ndarray] | None = None,
    ):
        self.simulation = simulation
        self.scheduler = scheduler
        self.multi_key = multi_key
        self.fsync = fsync
        self.modeled_bandwidth = modeled_bandwidth
        self.out_factory = out_factory
        self._own_scratch = scratch_dir is None
        self._scratch = (
            Path(tempfile.mkdtemp(prefix="smart-offline-"))
            if scratch_dir is None
            else Path(scratch_dir)
        )
        self._scratch.mkdir(parents=True, exist_ok=True)

    # -- phase 1: simulate and store ------------------------------------------
    def _store_step(self, step: int, partition: np.ndarray, result: OfflineResult) -> None:
        nbytes = partition.nbytes
        result.bytes_written += nbytes
        if self.modeled_bandwidth is not None:
            result.modeled_io += nbytes / self.modeled_bandwidth
            self._memory_store[step] = partition.copy()
            return
        path = self._step_path(step)
        t0 = time.perf_counter()
        with open(path, "wb") as fh:
            fh.write(partition.tobytes())
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        result.write += time.perf_counter() - t0

    def _load_step(self, step: int, result: OfflineResult) -> np.ndarray:
        if self.modeled_bandwidth is not None:
            data = self._memory_store.pop(step)
            result.modeled_io += data.nbytes / self.modeled_bandwidth
            return data
        path = self._step_path(step)
        t0 = time.perf_counter()
        data = np.fromfile(path, dtype=np.float64)
        result.read += time.perf_counter() - t0
        path.unlink()
        return data

    def _step_path(self, step: int) -> Path:
        return self._scratch / f"step_{step:06d}.bin"

    # -- driver ------------------------------------------------------------------
    def run(self, num_steps: int) -> OfflineResult:
        """Simulate + store all steps, then load + analyze all steps."""
        result = OfflineResult()
        self._memory_store: dict[int, np.ndarray] = {}
        for step in range(num_steps):
            t0 = time.perf_counter()
            partition = self.simulation.advance()
            result.simulate += time.perf_counter() - t0
            self._store_step(step, partition, result)

        out = None
        for step in range(num_steps):
            data = self._load_step(step, result)
            t0 = time.perf_counter()
            out = self.out_factory(data) if self.out_factory else None
            runner = self.scheduler.run2 if self.multi_key else self.scheduler.run
            runner(data, out)
            result.analyze += time.perf_counter() - t0
        result.output = out if out is not None else self.scheduler.get_combination_map()
        self._cleanup()
        return result

    def _cleanup(self) -> None:
        if self._own_scratch and self._scratch.exists():
            for leftover in self._scratch.glob("step_*.bin"):
                leftover.unlink()
            try:
                self._scratch.rmdir()
            except OSError:  # pragma: no cover - non-empty foreign dir
                pass
