"""Hand-written low-level analytics (the Fig. 6 baseline).

These are the programs "manually implemented in OpenMP and MPI" of paper
Section 5.3: the analytics kernel is written directly against numpy (the
OpenMP-parallel inner loop) and global synchronization is a single
``Allreduce`` on one contiguous array — no reduction maps, no per-object
serialization.  The paper measures Smart's overhead (map bookkeeping +
noncontiguous reduction-object serialization) against exactly this shape.

These functions also anchor the Section 5.3 programmability comparison:
everything in this file is what a scientist would have to write and debug
by hand, versus the sequential-only callbacks of the Smart versions.
"""

from __future__ import annotations

import numpy as np

from ..comm.interface import Communicator
from ..comm.local import LocalComm


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-z))


def lowlevel_kmeans(
    flat_points: np.ndarray,
    init_centroids: np.ndarray,
    num_iters: int,
    comm: Communicator | None = None,
) -> np.ndarray:
    """K-means with contiguous-buffer allreduce per Lloyd iteration."""
    comm = comm if comm is not None else LocalComm()
    centroids = np.asarray(init_centroids, dtype=np.float64).copy()
    k, dims = centroids.shape
    points = np.asarray(flat_points, dtype=np.float64).reshape(-1, dims)
    # One contiguous buffer carries [sums | sizes], as a hand-written MPI
    # code would pack it for a single MPI_Allreduce.
    sendbuf = np.empty(k * dims + k)
    recvbuf = np.empty_like(sendbuf)
    for _ in range(num_iters):
        d2 = (
            np.sum(points**2, axis=1)[:, None]
            - 2.0 * points @ centroids.T
            + np.sum(centroids**2, axis=1)[None, :]
        )
        assign = np.argmin(d2, axis=1)
        sums = np.zeros((k, dims))
        sizes = np.zeros(k)
        for c in range(k):
            members = points[assign == c]
            if members.shape[0]:
                sums[c] = members.sum(axis=0)
                sizes[c] = members.shape[0]
        sendbuf[: k * dims] = sums.reshape(-1)
        sendbuf[k * dims :] = sizes
        comm.Allreduce(sendbuf, recvbuf)
        g_sums = recvbuf[: k * dims].reshape(k, dims)
        g_sizes = recvbuf[k * dims :]
        nonempty = g_sizes > 0
        centroids[nonempty] = g_sums[nonempty] / g_sizes[nonempty, None]
    return centroids


def lowlevel_logreg(
    flat_data: np.ndarray,
    dims: int,
    num_iters: int,
    learning_rate: float = 0.1,
    comm: Communicator | None = None,
    init_weights: np.ndarray | None = None,
) -> np.ndarray:
    """Batch-GD logistic regression; one contiguous allreduce per iteration."""
    comm = comm if comm is not None else LocalComm()
    block = np.asarray(flat_data, dtype=np.float64).reshape(-1, dims + 1)
    X, y = block[:, :dims], block[:, dims]
    weights = (
        np.zeros(dims) if init_weights is None else np.asarray(init_weights, float).copy()
    )
    sendbuf = np.empty(dims + 1)  # [grad | count] packed contiguously
    recvbuf = np.empty_like(sendbuf)
    for _ in range(num_iters):
        p = _sigmoid(X @ weights)
        sendbuf[:dims] = X.T @ (p - y)
        sendbuf[dims] = X.shape[0]
        comm.Allreduce(sendbuf, recvbuf)
        weights -= learning_rate * recvbuf[:dims] / recvbuf[dims]
    return weights


def lowlevel_histogram(
    data: np.ndarray,
    lo: float,
    hi: float,
    num_buckets: int,
    comm: Communicator | None = None,
) -> np.ndarray:
    """Histogram with a single contiguous count-vector allreduce."""
    comm = comm if comm is not None else LocalComm()
    width = (hi - lo) / num_buckets
    keys = np.floor((np.asarray(data, dtype=np.float64) - lo) / width).astype(np.int64)
    np.clip(keys, 0, num_buckets - 1, out=keys)
    local = np.bincount(keys, minlength=num_buckets).astype(np.float64)
    total = np.empty_like(local)
    comm.Allreduce(local, total)
    return total.astype(np.int64)


def lowlevel_mutual_information(
    xy: np.ndarray,
    x_range: tuple[float, float],
    y_range: tuple[float, float],
    bins: int,
    comm: Communicator | None = None,
) -> float:
    """MI from a joint histogram; one contiguous matrix allreduce."""
    comm = comm if comm is not None else LocalComm()
    pairs = np.asarray(xy, dtype=np.float64).reshape(-1, 2)
    ix = np.floor((pairs[:, 0] - x_range[0]) / ((x_range[1] - x_range[0]) / bins))
    iy = np.floor((pairs[:, 1] - y_range[0]) / ((y_range[1] - y_range[0]) / bins))
    ix = np.clip(ix.astype(np.int64), 0, bins - 1)
    iy = np.clip(iy.astype(np.int64), 0, bins - 1)
    local = np.zeros((bins, bins))
    np.add.at(local, (ix, iy), 1.0)
    joint = np.empty_like(local)
    comm.Allreduce(local, joint)
    total = joint.sum()
    p_xy = joint / total
    p_x = p_xy.sum(axis=1, keepdims=True)
    p_y = p_xy.sum(axis=0, keepdims=True)
    mask = p_xy > 0
    ratio = np.ones_like(p_xy)
    np.divide(p_xy, p_x * p_y, out=ratio, where=mask)
    return float(np.sum(p_xy[mask] * np.log(ratio[mask])))
