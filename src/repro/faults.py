"""Deterministic seeded fault injection and recovery policies.

Smart's value proposition is co-locating analytics with a long-running
simulation; a wedged collective, a dead worker, or a torn checkpoint
costs hours of simulation time.  This module provides the chaos side of
that bargain: a :class:`FaultPlan` is a *seeded, deterministic* schedule
of faults that threads into three runtime layers via injection hooks —

* **comm** — :class:`~repro.comm.sim.SimCluster` consults the plan on
  every communication call: messages can be delayed or dropped, and a
  rank can be crashed at a chosen call index (raising
  :class:`InjectedRankCrash`, which propagates exactly like a real rank
  death: peers observe :class:`~repro.comm.errors.CommAborted`).
* **engine** — :class:`~repro.core.engine.process.ProcessEngine`
  consults the plan per dispatched split task: the worker executing the
  task can be killed (``os._exit``) or hung (a long sleep) to exercise
  the pool supervisor.  A pool respawn also invalidates the engine's
  steady-state caches — the published scheduler core is re-issued under
  a fresh version (counted in ``engine.residency.invalidations``), so
  relaunched workers can never alias state cached before the fault.
* **storage** — :func:`~repro.core.checkpoint.save_checkpoint` consults
  the plan after each atomic write: the file can be truncated or have a
  seeded bit flipped, exercising CRC verification and rotation fallback.

With no plan installed every hook is a no-op on the fast path (a single
``is None`` check), so healthy runs pay nothing.

Recovery behaviour is selected independently of the plan by
:class:`FaultPolicy` (``SchedArgs(fault_policy=...)`` /
``supervised_launch(policy=...)``):

* ``fail_fast`` — today's behaviour and the default: the first failure
  aborts the job (``SpmdError`` / ``CommAborted`` /
  :class:`EngineFaultError`).
* ``retry`` — exponential backoff and replay: the process engine's
  supervisor respawns the pool and the scheduler replays the current
  iteration from the last consistent combination map (safe because the
  combination map is only mutated *after* every block of an iteration
  completes); ``supervised_launch`` relaunches the whole SPMD job.
  Because reduction is deterministic, results are bit-exact with the
  fault-free run.
* ``degrade`` — drop the failed worker's/rank's contribution for that
  iteration, record the drop in ``faults.*`` telemetry, and continue.
"""

from __future__ import annotations

import re
import threading
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

import numpy as np

#: Layers a :class:`FaultSpec` may target.
FAULT_LAYERS = ("comm", "engine", "storage", "network")

#: Fault kinds per layer.
FAULT_KINDS = {
    "comm": ("delay", "drop", "crash"),
    "engine": ("kill", "hang"),
    "storage": ("truncate", "bitflip"),
    # Wire-level faults threaded through the TCP backend and the elastic
    # staging tier: a closed connection, a per-frame latency injection,
    # a CRC-detectable frame corruption, and a timed network partition.
    "network": ("disconnect", "slowlink", "truncate", "partition"),
}

#: Policy modes accepted by :class:`FaultPolicy` / ``SchedArgs``.
POLICY_MODES = ("fail_fast", "retry", "degrade")


class FaultError(RuntimeError):
    """Base class for fault-subsystem errors."""


class EngineFaultError(FaultError):
    """An execution-engine worker died or hung mid-run.

    Raised by the process engine's supervisor after it has already
    respawned the worker pool, so the scheduler may replay the current
    iteration (``fault_policy=retry``) or propagate (``fail_fast``).
    """


class InjectedRankCrash(FaultError):
    """A :class:`FaultPlan` crashed this rank (simulated process death)."""

    def __init__(self, rank: int, call_index: int, op: str):
        self.rank = rank
        self.call_index = call_index
        self.op = op
        #: Surfaced by :class:`~repro.comm.errors.SpmdError` messages.
        self.fault_context = f"injected crash: rank {rank}, comm call {call_index} ({op})"
        super().__init__(self.fault_context)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Parameters
    ----------
    layer:
        ``"comm"``, ``"engine"``, or ``"storage"``.
    kind:
        comm: ``"delay"`` / ``"drop"`` / ``"crash"``; engine: ``"kill"``
        / ``"hang"``; storage: ``"truncate"`` / ``"bitflip"``.
    at_call:
        The first call index at which the fault may fire (it fires on
        the first matching call with index >= ``at_call``, up to
        ``times`` times).  Comm calls are counted per rank; engine task
        dispatches and checkpoint saves are counted globally.
        Deterministic given the program, so a seeded plan reproduces the
        identical failure every run — and because indices keep counting
        across retries, ``times > 1`` models a fault that strikes the
        relaunched job again.
    target:
        Restrict the fault to one rank (comm layer).  ``None`` matches
        any rank.
    op:
        Restrict a comm fault to one operation name (``"send"``,
        ``"recv"``, ``"barrier"``, ...).  ``None`` matches any.
    times:
        How many times the spec may fire (across all matching sites).
        The default 1 makes retry-based recovery converge: the replayed
        iteration runs clean.
    seconds:
        Duration for ``delay`` and ``hang`` faults.
    """

    layer: str
    kind: str
    at_call: int = 0
    target: int | None = None
    op: str | None = None
    times: int = 1
    seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.layer not in FAULT_LAYERS:
            raise ValueError(f"layer must be one of {FAULT_LAYERS}, got {self.layer!r}")
        if self.kind not in FAULT_KINDS[self.layer]:
            raise ValueError(
                f"kind for layer {self.layer!r} must be one of "
                f"{FAULT_KINDS[self.layer]}, got {self.kind!r}"
            )
        if self.at_call < 0:
            raise ValueError(f"at_call must be >= 0, got {self.at_call}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")

    def to_token(self) -> str:
        """Compact text form: ``layer:kind[@at_call][*times][~seconds][#target][/op]``.

        Default-valued parts are omitted; ``FaultSpec.parse`` round-trips
        the result.  Used in conformance fingerprints and repro lines.
        """
        token = f"{self.layer}:{self.kind}"
        if self.at_call:
            token += f"@{self.at_call}"
        if self.times != 1:
            token += f"*{self.times}"
        if self.seconds != 0.05:
            token += f"~{self.seconds:g}"
        if self.target is not None:
            token += f"#{self.target}"
        if self.op is not None:
            token += f"/{self.op}"
        return token

    @classmethod
    def parse(cls, token: str) -> "FaultSpec":
        """Inverse of :meth:`to_token`."""
        match = _TOKEN_RE.match(token.strip())
        if match is None:
            raise ValueError(
                f"bad fault token {token!r}; expected "
                "layer:kind[@at_call][*times][~seconds][#target][/op]")
        groups = match.groupdict()
        kwargs: dict[str, Any] = {
            "layer": groups["layer"], "kind": groups["kind"]}
        if groups["at_call"] is not None:
            kwargs["at_call"] = int(groups["at_call"])
        if groups["times"] is not None:
            kwargs["times"] = int(groups["times"])
        if groups["seconds"] is not None:
            kwargs["seconds"] = float(groups["seconds"])
        if groups["target"] is not None:
            kwargs["target"] = int(groups["target"])
        if groups["op"] is not None:
            kwargs["op"] = groups["op"]
        return cls(**kwargs)


_TOKEN_RE = re.compile(
    r"^(?P<layer>[a-z]+):(?P<kind>[a-z]+)"
    r"(?:@(?P<at_call>\d+))?"
    r"(?:\*(?P<times>\d+))?"
    r"(?:~(?P<seconds>[0-9.eE+-]+))?"
    r"(?:#(?P<target>\d+))?"
    r"(?:/(?P<op>[a-z_]+))?$"
)


@dataclass(frozen=True)
class Injection:
    """Record of one fired fault (the plan's audit log entry)."""

    layer: str
    kind: str
    site: Any
    call_index: int
    op: str | None = None


class FaultPlan:
    """A deterministic, seeded schedule of faults.

    Thread-safe: SPMD ranks are threads and consult the plan
    concurrently.  Call-index counters are kept *per site* (per rank for
    the comm layer), so a spec's ``at_call`` refers to a deterministic
    point in that site's call sequence regardless of thread interleaving.

    The ``seed`` drives every random draw the plan ever makes (currently
    the bit position of storage ``bitflip`` faults), so a plan with the
    same specs and seed injects byte-identical corruption every run.
    """

    def __init__(self, specs: list[FaultSpec] | tuple[FaultSpec, ...] = (), seed: int = 0):
        self.specs = list(specs)
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)
        self._lock = threading.Lock()
        self._counters: dict[Any, int] = defaultdict(int)
        self._fired: dict[int, int] = defaultdict(int)
        #: Audit log of every injection, in firing order.
        self.injections: list[Injection] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({len(self.specs)} specs, seed={self.seed}, fired={len(self.injections)})"

    def _fire(self, layer: str, site: Any, *, target: int | None, op: str | None) -> FaultSpec | None:
        with self._lock:
            index = self._counters[(layer, site)]
            self._counters[(layer, site)] = index + 1
            for i, spec in enumerate(self.specs):
                if spec.layer != layer:
                    continue
                if spec.target is not None and spec.target != target:
                    continue
                if spec.op is not None and spec.op != op:
                    continue
                if index < spec.at_call:
                    continue
                if self._fired[i] >= spec.times:
                    continue
                self._fired[i] += 1
                self.injections.append(Injection(layer, spec.kind, site, index, op))
                return spec
        return None

    # -- layer hooks (each is a no-op returning None unless a spec matches)
    def comm_fault(self, rank: int, op: str) -> FaultSpec | None:
        """Consulted by :class:`~repro.comm.sim.SimComm` on every call."""
        return self._fire("comm", rank, target=rank, op=op)

    def engine_fault(self) -> FaultSpec | None:
        """Consulted by the process engine per dispatched split task."""
        return self._fire("engine", "tasks", target=None, op=None)

    def storage_fault(self) -> FaultSpec | None:
        """Consulted by ``save_checkpoint`` per save call."""
        return self._fire("storage", "saves", target=None, op=None)

    def network_fault(self, rank: int, op: str) -> FaultSpec | None:
        """Consulted by the TCP layer per frame event.

        Call sites: the router consults it with ``op="forward"`` per
        routed data frame; elastic staging workers consult it with
        ``op="frame"`` per received step frame.  Counters are per rank /
        worker id, so ``at_call`` addresses a deterministic point in
        that peer's frame sequence.
        """
        return self._fire("network", rank, target=rank, op=op)

    def charge(self, n: int, *, target: int | None = None) -> int:
        """Pre-mark ``n`` firings against matching specs, in spec order.

        Recovery replay support: when a supervised site is respawned
        after an injected death, it re-parses the plan fingerprint with
        fresh counters — charging its prior firings first keeps the
        plan's per-site fault budget global across incarnations, so a
        replay does not re-suffer a fault it already paid for.  Returns
        the number of firings actually charged (capped by each matching
        spec's remaining ``times``).
        """
        charged = 0
        with self._lock:
            for i, spec in enumerate(self.specs):
                if charged >= n:
                    break
                if (target is not None and spec.target is not None
                        and spec.target != target):
                    continue
                take = min(n - charged, spec.times - self._fired[i])
                if take > 0:
                    self._fired[i] += take
                    charged += take
        return charged

    def call_count(self, layer: str, site: Any) -> int:
        """How many calls the plan has observed at ``(layer, site)``."""
        with self._lock:
            return self._counters.get((layer, site), 0)

    def fingerprint(self) -> str:
        """Seed-pinned text form, ``seed=S;token,token,...`` — stable
        across runs, embeddable in conformance repro lines."""
        tokens = ",".join(spec.to_token() for spec in self.specs)
        return f"seed={self.seed};{tokens}"

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`fingerprint` (the seed part is optional)."""
        seed = 0
        body = text.strip()
        if body.startswith("seed="):
            head, _, body = body.partition(";")
            seed = int(head[len("seed="):])
        specs = [FaultSpec.parse(token)
                 for token in body.split(",") if token.strip()]
        return cls(specs, seed=seed)

    def injected(self, layer: str | None = None) -> int:
        """Number of faults fired so far (optionally for one layer)."""
        with self._lock:
            if layer is None:
                return len(self.injections)
            return sum(1 for inj in self.injections if inj.layer == layer)

    def corrupt(self, data: bytes, kind: str, *, protect: int = 0) -> bytes:
        """Apply a storage corruption to ``data`` (seeded, deterministic).

        ``protect`` marks a prefix (the checkpoint header) that bit-flips
        avoid, so corruption lands in the CRC-protected payload.
        """
        if kind == "truncate":
            return data[: max(protect, len(data) // 2)]
        if kind == "bitflip":
            if len(data) <= protect:
                return data
            pos = int(self.rng.integers(protect, len(data)))
            bit = int(self.rng.integers(0, 8))
            flipped = bytearray(data)
            flipped[pos] ^= 1 << bit
            return bytes(flipped)
        raise ValueError(f"unknown storage corruption {kind!r}")


def _mix64(*parts: int) -> int:
    """splitmix64-style avalanche over the concatenated inputs."""
    mask = (1 << 64) - 1
    x = 0x9E3779B97F4A7C15
    for part in parts:
        x = (x + (int(part) & mask) + 0x9E3779B97F4A7C15) & mask
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & mask
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & mask
        x ^= x >> 31
    return x


def seeded_backoff(
    attempt: int,
    *,
    base: float,
    factor: float = 2.0,
    cap: float = float("inf"),
    jitter: float = 0.0,
    seed: int = 0,
) -> float:
    """Backoff seconds before retry ``attempt`` (1-based), deterministic.

    Capped exponential (``min(base * factor**(attempt-1), cap)``) with
    seeded jitter: the delay is scaled by a factor in ``[1-jitter,
    1+jitter)`` drawn from a pure integer mix of ``(seed, attempt)`` —
    no global RNG state, so the same seed replays the exact same
    schedule.  Used by :meth:`FaultPolicy.backoff_for` and the TCP
    backend's connect/send retry, so every retry loop in the system
    shares one backoff law.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    delay = min(base * factor ** (attempt - 1), cap)
    if jitter:
        unit = (_mix64(seed, attempt) & 0xFFFFFF) / float(1 << 24)  # [0, 1)
        delay *= 1.0 + jitter * (2.0 * unit - 1.0)
    return max(delay, 0.0)


@dataclass(frozen=True)
class FaultPolicy:
    """How the runtime reacts to a detected fault.

    Construct via the classmethods (``FaultPolicy.retry(...)``) or pass
    the mode name as a string wherever a policy is accepted
    (``SchedArgs(fault_policy="retry")``).
    """

    mode: str = "fail_fast"
    #: Total attempts for ``retry`` (the first run counts as attempt 1).
    max_attempts: int = 3
    #: Base backoff in seconds before the first retry.
    backoff: float = 0.05
    #: Multiplier applied per subsequent retry (exponential backoff).
    backoff_factor: float = 2.0
    #: Ceiling on any single backoff delay (seconds).
    backoff_cap: float = 2.0
    #: Jitter fraction in ``[0, 1]``: each delay is scaled by a
    #: seed-deterministic factor in ``[1-jitter, 1+jitter)``.  0 (the
    #: default) keeps the schedule exactly exponential.
    backoff_jitter: float = 0.0
    #: Seed for the jitter draws (pure function of ``(seed, attempt)``).
    backoff_seed: int = 0
    #: Seconds a dispatched engine task may run before the supervisor
    #: declares the worker hung.  ``None`` disables hang detection.
    task_deadline: float | None = None
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.mode not in POLICY_MODES:
            raise ValueError(f"mode must be one of {POLICY_MODES}, got {self.mode!r}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_cap < 0:
            raise ValueError(f"backoff_cap must be >= 0, got {self.backoff_cap}")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}"
            )
        if self.task_deadline is not None and self.task_deadline <= 0:
            raise ValueError(f"task_deadline must be positive, got {self.task_deadline}")

    # -- constructors ------------------------------------------------------
    @classmethod
    def fail_fast(cls) -> "FaultPolicy":
        return cls(mode="fail_fast")

    @classmethod
    def retry(
        cls,
        max_attempts: int = 3,
        backoff: float = 0.05,
        backoff_factor: float = 2.0,
        task_deadline: float | None = None,
        backoff_cap: float = 2.0,
        backoff_jitter: float = 0.0,
        backoff_seed: int = 0,
    ) -> "FaultPolicy":
        return cls(
            mode="retry",
            max_attempts=max_attempts,
            backoff=backoff,
            backoff_factor=backoff_factor,
            backoff_cap=backoff_cap,
            backoff_jitter=backoff_jitter,
            backoff_seed=backoff_seed,
            task_deadline=task_deadline,
        )

    @classmethod
    def degrade(cls, task_deadline: float | None = None) -> "FaultPolicy":
        return cls(mode="degrade", task_deadline=task_deadline)

    @classmethod
    def parse(cls, value: "FaultPolicy | str") -> "FaultPolicy":
        """Coerce a policy or mode name into a :class:`FaultPolicy`."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            if value not in POLICY_MODES:
                raise ValueError(
                    f"fault_policy must be one of {POLICY_MODES} or a FaultPolicy, "
                    f"got {value!r}"
                )
            return cls(mode=value)
        raise TypeError(f"fault_policy must be a str or FaultPolicy, got {type(value).__name__}")

    def backoff_for(self, attempt: int) -> float:
        """Backoff seconds before retry number ``attempt`` (1-based).

        Capped exponential with seed-deterministic jitter (see
        :func:`seeded_backoff`); the schedule is a pure function of the
        policy fields, so recovery runs replay identically.
        """
        return seeded_backoff(
            max(attempt, 1),
            base=self.backoff,
            factor=self.backoff_factor,
            cap=self.backoff_cap,
            jitter=self.backoff_jitter,
            seed=self.backoff_seed,
        )


__all__ = [
    "FAULT_KINDS",
    "FAULT_LAYERS",
    "POLICY_MODES",
    "EngineFaultError",
    "FaultError",
    "FaultPlan",
    "FaultPolicy",
    "FaultSpec",
    "Injection",
    "InjectedRankCrash",
    "seeded_backoff",
]
