"""Unified runtime telemetry.

One :class:`Recorder` backs every runtime statistic in the system: the
scheduler's :class:`~repro.core.scheduler.RunStats`, the communication
layer's :class:`~repro.comm.profiler.TrafficProfiler`, and the execution
engines' per-split timings all write into the same primitive — named
counters, timers, and per-operation (calls, bytes) tallies — so the
harness, the perfmodel calibration, and the benchmarks read a single
structured snapshot instead of three ad-hoc ones.

Four primitives:

* **counters** — monotonically adjusted integers (``inc``), plus
  high-water marks (``observe_max``).  Namespaced by dotted prefixes:
  the scheduler uses ``run.*``, engines use ``engine.*``.
* **timers** — accumulated wall-clock spans (``add_time`` or the
  ``span`` context manager), tracking call count, total and max seconds.
* **ops** — per-operation-kind call/byte tallies (``record_op``), the
  traffic profiler's unit of account.
* **gauges** — last-written point-in-time values (``set_gauge``), for
  live state such as resident shared-memory bytes or a pipeline
  buffer's high-water occupancy.

All mutation is serialized by one internal lock, so a recorder may be
shared by the scheduler, a thread engine's workers, and a communicator.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


@dataclass
class OpStats:
    """Aggregate statistics for one operation kind."""

    calls: int = 0
    bytes: int = 0

    def add(self, nbytes: int) -> None:
        self.calls += 1
        self.bytes += nbytes


@dataclass
class TimerStats:
    """Accumulated wall-clock time of one named span."""

    calls: int = 0
    seconds: float = 0.0
    max_seconds: float = 0.0

    def add(self, seconds: float) -> None:
        self.calls += 1
        self.seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds


class Recorder:
    """Thread-safe counters, timers, and op tallies behind one lock.

    Not picklable (it owns a lock); the process engine ships counter
    *snapshots* across process boundaries and merges them back with
    :meth:`merge_counters`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._timers: dict[str, TimerStats] = {}
        self._ops: dict[str, OpStats] = {}
        self._gauges: dict[str, float] = {}

    # -- counters ----------------------------------------------------------
    def inc(self, name: str, value: int = 1) -> int:
        """Add ``value`` to counter ``name``; return the new total."""
        with self._lock:
            total = self._counters.get(name, 0) + int(value)
            self._counters[name] = total
            return total

    def set_counter(self, name: str, value: int) -> None:
        with self._lock:
            self._counters[name] = int(value)

    def observe_max(self, name: str, value: int) -> None:
        """Raise counter ``name`` to ``value`` if it is below (high-water mark)."""
        with self._lock:
            if value > self._counters.get(name, 0):
                self._counters[name] = int(value)

    def counter(self, name: str, default: int = 0) -> int:
        with self._lock:
            return self._counters.get(name, default)

    def counters(self, prefix: str | None = None) -> dict[str, int]:
        """Snapshot of all counters, optionally filtered by name prefix."""
        with self._lock:
            if prefix is None:
                return dict(self._counters)
            return {name: value for name, value in self._counters.items()
                    if name.startswith(prefix)}

    def merge_counters(self, counters: dict[str, int]) -> None:
        """Add a counter snapshot (e.g. from a worker process) into this one."""
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + int(value)

    # -- timers ------------------------------------------------------------
    def add_time(self, name: str, seconds: float) -> None:
        with self._lock:
            timer = self._timers.get(name)
            if timer is None:
                timer = self._timers[name] = TimerStats()
            timer.add(float(seconds))

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into timer ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - t0)

    def timer(self, name: str) -> TimerStats:
        """A copy of timer ``name`` (zeros when never recorded)."""
        with self._lock:
            timer = self._timers.get(name)
            return TimerStats(timer.calls, timer.seconds, timer.max_seconds) if timer else TimerStats()

    # -- gauges ------------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        """Record the current value of a point-in-time quantity."""
        with self._lock:
            self._gauges[name] = value

    def gauge(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._gauges.get(name, default)

    # -- ops ---------------------------------------------------------------
    def record_op(self, op: str, nbytes: int = 0) -> None:
        with self._lock:
            stats = self._ops.get(op)
            if stats is None:
                stats = self._ops[op] = OpStats()
            stats.add(int(nbytes))

    def op(self, name: str) -> OpStats:
        """A copy of op tally ``name`` (zeros when never recorded)."""
        with self._lock:
            stats = self._ops.get(name)
            return OpStats(stats.calls, stats.bytes) if stats else OpStats()

    def op_names(self) -> list[str]:
        with self._lock:
            return list(self._ops)

    # -- lifecycle ---------------------------------------------------------
    def reset(self, prefix: str | None = None) -> None:
        """Clear recorded state; with ``prefix``, only names starting with it."""
        with self._lock:
            if prefix is None:
                self._counters.clear()
                self._timers.clear()
                self._ops.clear()
                self._gauges.clear()
                return
            for table in (self._counters, self._timers, self._ops, self._gauges):
                for name in [n for n in table if n.startswith(prefix)]:
                    del table[name]

    def snapshot(self) -> dict:
        """One structured view of everything recorded so far.

        ``{"counters": {name: int},
           "timers":  {name: {"calls", "seconds", "max_seconds"}},
           "ops":     {name: {"calls", "bytes"}},
           "gauges":  {name: float}}``
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: {
                        "calls": t.calls,
                        "seconds": t.seconds,
                        "max_seconds": t.max_seconds,
                    }
                    for name, t in self._timers.items()
                },
                "ops": {
                    name: {"calls": s.calls, "bytes": s.bytes}
                    for name, s in self._ops.items()
                },
            }
