"""Unified runtime telemetry.

One :class:`Recorder` backs every runtime statistic in the system: the
scheduler's :class:`~repro.core.scheduler.RunStats`, the communication
layer's :class:`~repro.comm.profiler.TrafficProfiler`, and the execution
engines' per-split timings all write into the same primitive — named
counters, timers, and per-operation (calls, bytes) tallies — so the
harness, the perfmodel calibration, and the benchmarks read a single
structured snapshot instead of three ad-hoc ones.

Four primitives:

* **counters** — monotonically adjusted integers (``inc``), plus
  high-water marks (``observe_max``).  Namespaced by dotted prefixes:
  the scheduler uses ``run.*``, engines use ``engine.*``.
* **timers** — accumulated wall-clock spans (``add_time`` or the
  ``span`` context manager), tracking call count, total and max seconds.
* **ops** — per-operation-kind call/byte tallies (``record_op``), the
  traffic profiler's unit of account.
* **gauges** — last-written point-in-time values (``set_gauge``), for
  live state such as resident shared-memory bytes or a pipeline
  buffer's high-water occupancy.

All mutation is serialized by one internal lock, so a recorder may be
shared by the scheduler, a thread engine's workers, and a communicator.

When several independent producers (e.g. concurrent analytics jobs in
the multi-tenant service) must share one recorder without their names
colliding, :meth:`Recorder.scoped` hands out a :class:`ScopedRecorder`
child: a drop-in recorder whose every name is transparently prefixed
with a dotted namespace (``service.tenant.a.job.3.``) in the parent.
Scope prefixes always end with a ``.`` so neighbouring namespaces can
never prefix-match each other (``job.1.`` does not capture
``job.11.*`` — the collision a bare ``counters("job.1")`` query has).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


@dataclass
class OpStats:
    """Aggregate statistics for one operation kind."""

    calls: int = 0
    bytes: int = 0

    def add(self, nbytes: int) -> None:
        self.calls += 1
        self.bytes += nbytes


@dataclass
class TimerStats:
    """Accumulated wall-clock time of one named span."""

    calls: int = 0
    seconds: float = 0.0
    max_seconds: float = 0.0

    def add(self, seconds: float) -> None:
        self.calls += 1
        self.seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds


class Recorder:
    """Thread-safe counters, timers, and op tallies behind one lock.

    Not picklable (it owns a lock); the process engine ships counter
    *snapshots* across process boundaries and merges them back with
    :meth:`merge_counters`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._timers: dict[str, TimerStats] = {}
        self._ops: dict[str, OpStats] = {}
        self._gauges: dict[str, float] = {}

    # -- counters ----------------------------------------------------------
    def inc(self, name: str, value: int = 1) -> int:
        """Add ``value`` to counter ``name``; return the new total."""
        with self._lock:
            total = self._counters.get(name, 0) + int(value)
            self._counters[name] = total
            return total

    def set_counter(self, name: str, value: int) -> None:
        with self._lock:
            self._counters[name] = int(value)

    def observe_max(self, name: str, value: int) -> None:
        """Raise counter ``name`` to ``value`` if it is below (high-water mark)."""
        with self._lock:
            if value > self._counters.get(name, 0):
                self._counters[name] = int(value)

    def counter(self, name: str, default: int = 0) -> int:
        with self._lock:
            return self._counters.get(name, default)

    def counters(self, prefix: str | None = None) -> dict[str, int]:
        """Snapshot of all counters, optionally filtered by name prefix."""
        with self._lock:
            if prefix is None:
                return dict(self._counters)
            return {name: value for name, value in self._counters.items()
                    if name.startswith(prefix)}

    def merge_counters(self, counters: dict[str, int]) -> None:
        """Add a counter snapshot (e.g. from a worker process) into this one."""
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + int(value)

    # -- timers ------------------------------------------------------------
    def add_time(self, name: str, seconds: float) -> None:
        with self._lock:
            timer = self._timers.get(name)
            if timer is None:
                timer = self._timers[name] = TimerStats()
            timer.add(float(seconds))

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into timer ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - t0)

    def timer(self, name: str) -> TimerStats:
        """A copy of timer ``name`` (zeros when never recorded)."""
        with self._lock:
            timer = self._timers.get(name)
            return TimerStats(timer.calls, timer.seconds, timer.max_seconds) if timer else TimerStats()

    # -- gauges ------------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        """Record the current value of a point-in-time quantity."""
        with self._lock:
            self._gauges[name] = value

    def gauge(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._gauges.get(name, default)

    # -- ops ---------------------------------------------------------------
    def record_op(self, op: str, nbytes: int = 0) -> None:
        with self._lock:
            stats = self._ops.get(op)
            if stats is None:
                stats = self._ops[op] = OpStats()
            stats.add(int(nbytes))

    def op(self, name: str) -> OpStats:
        """A copy of op tally ``name`` (zeros when never recorded)."""
        with self._lock:
            stats = self._ops.get(name)
            return OpStats(stats.calls, stats.bytes) if stats else OpStats()

    def op_names(self) -> list[str]:
        with self._lock:
            return list(self._ops)

    # -- scoping -----------------------------------------------------------
    def scoped(self, prefix: str) -> "ScopedRecorder":
        """A child recorder writing through to this one under ``prefix``.

        The prefix is normalized to end with a ``.`` (namespace
        boundary), so sibling scopes can never capture each other's
        names the way a raw ``counters(prefix)`` substring query can
        (``"job.1"`` matches ``job.11.*``; ``"job.1."`` does not).
        Scopes nest: ``rec.scoped("a").scoped("b")`` writes ``a.b.*``.
        """
        return ScopedRecorder(self, prefix)

    # -- lifecycle ---------------------------------------------------------
    def reset(self, prefix: str | None = None) -> None:
        """Clear recorded state; with ``prefix``, only names starting with it."""
        with self._lock:
            if prefix is None:
                self._counters.clear()
                self._timers.clear()
                self._ops.clear()
                self._gauges.clear()
                return
            for table in (self._counters, self._timers, self._ops, self._gauges):
                for name in [n for n in table if n.startswith(prefix)]:
                    del table[name]

    def snapshot(self) -> dict:
        """One structured view of everything recorded so far.

        ``{"counters": {name: int},
           "timers":  {name: {"calls", "seconds", "max_seconds"}},
           "ops":     {name: {"calls", "bytes"}},
           "gauges":  {name: float}}``
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: {
                        "calls": t.calls,
                        "seconds": t.seconds,
                        "max_seconds": t.max_seconds,
                    }
                    for name, t in self._timers.items()
                },
                "ops": {
                    name: {"calls": s.calls, "bytes": s.bytes}
                    for name, s in self._ops.items()
                },
            }


class ScopedRecorder(Recorder):
    """A namespaced view of a parent :class:`Recorder`.

    Every write delegates to the *root* recorder with the scope prefix
    prepended; every read filters the root's state down to the scope and
    strips the prefix, so scope-local code sees plain names
    (``run.chunks_processed``) while the parent aggregates the fully
    qualified ones (``service.tenant.a.job.3.run.chunks_processed``).

    Drop-in: a scheduler, an execution engine, or a communicator handed
    a scoped recorder behaves identically to one handed the root —
    including :meth:`span` and :meth:`merge_counters` (the process
    engine's worker-snapshot merge lands inside the scope).  All state
    and locking live in the root; the scope itself is immutable and
    thread-safe by construction.
    """

    def __init__(self, parent: Recorder, prefix: str):
        if not prefix:
            raise ValueError("scope prefix must be non-empty")
        if not prefix.endswith("."):
            prefix += "."
        if isinstance(parent, ScopedRecorder):
            # Flatten nesting: one hop to the root, combined prefix.
            self._root: Recorder = parent._root
            self._scope = parent._scope + prefix
        else:
            self._root = parent
            self._scope = prefix

    @property
    def root(self) -> Recorder:
        """The underlying unscoped recorder all writes land in."""
        return self._root

    @property
    def scope(self) -> str:
        """This recorder's full dotted prefix (always ``.``-terminated)."""
        return self._scope

    def _strip(self, table: dict) -> dict:
        n = len(self._scope)
        return {name[n:]: value for name, value in table.items()
                if name.startswith(self._scope)}

    # -- counters ----------------------------------------------------------
    def inc(self, name: str, value: int = 1) -> int:
        return self._root.inc(self._scope + name, value)

    def set_counter(self, name: str, value: int) -> None:
        self._root.set_counter(self._scope + name, value)

    def observe_max(self, name: str, value: int) -> None:
        self._root.observe_max(self._scope + name, value)

    def counter(self, name: str, default: int = 0) -> int:
        return self._root.counter(self._scope + name, default)

    def counters(self, prefix: str | None = None) -> dict[str, int]:
        return self._strip(self._root.counters(self._scope + (prefix or "")))

    def merge_counters(self, counters: dict[str, int]) -> None:
        self._root.merge_counters(
            {self._scope + name: value for name, value in counters.items()})

    # -- timers ------------------------------------------------------------
    def add_time(self, name: str, seconds: float) -> None:
        self._root.add_time(self._scope + name, seconds)

    def timer(self, name: str) -> TimerStats:
        return self._root.timer(self._scope + name)

    # -- gauges ------------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        self._root.set_gauge(self._scope + name, value)

    def gauge(self, name: str, default: float = 0) -> float:
        return self._root.gauge(self._scope + name, default)

    # -- ops ---------------------------------------------------------------
    def record_op(self, op: str, nbytes: int = 0) -> None:
        self._root.record_op(self._scope + op, nbytes)

    def op(self, name: str) -> OpStats:
        return self._root.op(self._scope + name)

    def op_names(self) -> list[str]:
        n = len(self._scope)
        return [name[n:] for name in self._root.op_names()
                if name.startswith(self._scope)]

    # -- lifecycle ---------------------------------------------------------
    def reset(self, prefix: str | None = None) -> None:
        self._root.reset(self._scope + (prefix or ""))

    def snapshot(self) -> dict:
        snap = self._root.snapshot()
        return {table: self._strip(snap[table])
                for table in ("counters", "gauges", "timers", "ops")}
