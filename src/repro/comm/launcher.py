"""SPMD launch: run a function once per rank, MPI-style.

``spmd_launch(n, fn)`` is the moral equivalent of ``mpiexec -n N``: it runs
``fn(comm, ...)`` on N rank threads over a fresh :class:`SimCluster`, joins
them, and returns the per-rank results in rank order.  A failure on any rank
aborts the whole job (peers blocked in communication raise
:class:`~repro.comm.errors.CommAborted`) and surfaces as a single
:class:`~repro.comm.errors.SpmdError` carrying every rank's exception.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from .errors import CommAborted, SpmdError
from .interface import Communicator
from .local import LocalComm
from .profiler import TrafficProfiler
from .sim import DEFAULT_TIMEOUT, SimCluster

RankFn = Callable[..., Any]


def spmd_launch(
    n_ranks: int,
    fn: RankFn,
    args_per_rank: Sequence[tuple] | None = None,
    profiler: TrafficProfiler | None = None,
    timeout: float = DEFAULT_TIMEOUT,
) -> list[Any]:
    """Run ``fn(comm, *args)`` on ``n_ranks`` SPMD ranks; return rank results.

    Parameters
    ----------
    n_ranks:
        Number of ranks.  ``1`` short-circuits to an in-thread
        :class:`LocalComm` run (no thread spawn), which keeps single-rank
        benchmarks free of threading overhead.
    fn:
        The SPMD body.  Receives the rank's :class:`Communicator` as its
        first argument.
    args_per_rank:
        Optional per-rank positional arguments, ``args_per_rank[rank]``.
        When omitted every rank receives only the communicator.
    profiler:
        Optional shared traffic profiler.
    timeout:
        Collective timeout in seconds (deadlock detection).

    Raises
    ------
    SpmdError
        If any rank raises.  ``CommAborted`` secondary failures on peer
        ranks are suppressed in favour of the originating exception(s).
    """
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
    if args_per_rank is not None and len(args_per_rank) != n_ranks:
        raise ValueError(
            f"args_per_rank has {len(args_per_rank)} entries for {n_ranks} ranks"
        )

    if n_ranks == 1:
        comm: Communicator = LocalComm(profiler=profiler)
        args = args_per_rank[0] if args_per_rank else ()
        return [fn(comm, *args)]

    cluster = SimCluster(n_ranks, profiler=profiler, timeout=timeout)
    results: list[Any] = [None] * n_ranks
    failures: dict[int, BaseException] = {}
    failures_lock = threading.Lock()

    def body(rank: int) -> None:
        rank_comm = cluster.comm(rank)
        args = args_per_rank[rank] if args_per_rank else ()
        try:
            results[rank] = fn(rank_comm, *args)
        except BaseException as exc:  # noqa: BLE001 - must not lose rank errors
            with failures_lock:
                failures[rank] = exc
            cluster.abort(f"rank {rank} raised {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=body, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        for r in range(n_ranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if failures:
        primary = {
            rank: exc
            for rank, exc in failures.items()
            if not isinstance(exc, CommAborted)
        }
        raise SpmdError(primary or failures)
    return results
