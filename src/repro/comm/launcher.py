"""SPMD launch: run a function once per rank, MPI-style.

``spmd_launch(n, fn)`` is the moral equivalent of ``mpiexec -n N``: it runs
``fn(comm, ...)`` on N rank threads over a fresh :class:`SimCluster`, joins
them, and returns the per-rank results in rank order.  A failure on any rank
aborts the whole job (peers blocked in communication raise
:class:`~repro.comm.errors.CommAborted`) and surfaces as a single
:class:`~repro.comm.errors.SpmdError` carrying every rank's exception.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Sequence

from .errors import CommAborted, SpmdError
from .interface import Communicator
from .local import LocalComm
from .profiler import TrafficProfiler
from .sim import DEFAULT_TIMEOUT, SimCluster

if TYPE_CHECKING:  # pragma: no cover
    from ..faults import FaultPlan, FaultPolicy
    from ..telemetry import Recorder

RankFn = Callable[..., Any]


def spmd_launch(
    n_ranks: int,
    fn: RankFn,
    args_per_rank: Sequence[tuple] | None = None,
    profiler: TrafficProfiler | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    deadline: float | None = None,
    fault_plan: "FaultPlan | None" = None,
    interleave=None,
    comm_backend: str = "sim",
) -> list[Any]:
    """Run ``fn(comm, *args)`` on ``n_ranks`` SPMD ranks; return rank results.

    Parameters
    ----------
    n_ranks:
        Number of ranks.  ``1`` short-circuits to an in-thread
        :class:`LocalComm` run (no thread spawn), which keeps single-rank
        benchmarks free of threading overhead.
    fn:
        The SPMD body.  Receives the rank's :class:`Communicator` as its
        first argument.
    args_per_rank:
        Optional per-rank positional arguments, ``args_per_rank[rank]``.
        When omitted every rank receives only the communicator.
    profiler:
        Optional shared traffic profiler.
    timeout:
        Collective timeout in seconds (deadlock detection).
    deadline:
        Optional per-call deadline (see :class:`~repro.comm.sim.SimCluster`):
        a blocked ``recv`` or collective raises
        :class:`~repro.comm.errors.CommTimeoutError` past it.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` installed on the
        cluster's communication hooks (no-op when ``None``).
    interleave:
        Optional :class:`~repro.comm.sim.InterleaveSchedule` installed
        on the cluster: deterministic seeded jitter before every
        communication call (the conformance fuzzer's hook).  Ignored
        for single-rank runs and for the TCP backend.
    comm_backend:
        ``"sim"`` (default) runs ranks as threads over a
        :class:`~repro.comm.sim.SimCluster`; ``"tcp"`` routes every
        communication call through a real socket hub
        (:class:`~repro.comm.tcp.TcpCluster`), including for
        ``n_ranks == 1`` (no :class:`LocalComm` short-circuit), so the
        wire path itself is exercised.

    Raises
    ------
    SpmdError
        If any rank raises.  ``CommAborted`` secondary failures on peer
        ranks are suppressed in favour of the originating exception(s).
    """
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
    if args_per_rank is not None and len(args_per_rank) != n_ranks:
        raise ValueError(
            f"args_per_rank has {len(args_per_rank)} entries for {n_ranks} ranks"
        )
    if comm_backend not in ("sim", "tcp"):
        raise ValueError(f"unknown comm_backend {comm_backend!r} (want 'sim' or 'tcp')")

    if n_ranks == 1 and comm_backend == "sim":
        comm: Communicator = LocalComm(profiler=profiler)
        args = args_per_rank[0] if args_per_rank else ()
        return [fn(comm, *args)]

    if comm_backend == "tcp":
        from .tcp import TcpCluster  # deferred: sockets only when asked for

        cluster: Any = TcpCluster(
            n_ranks,
            profiler=profiler,
            timeout=timeout,
            deadline=deadline,
            fault_plan=fault_plan,
        )
    else:
        cluster = SimCluster(
            n_ranks,
            profiler=profiler,
            timeout=timeout,
            deadline=deadline,
            fault_plan=fault_plan,
            interleave=interleave,
        )
    results: list[Any] = [None] * n_ranks
    failures: dict[int, BaseException] = {}
    failures_lock = threading.Lock()

    def body(rank: int) -> None:
        rank_comm = cluster.comm(rank)
        args = args_per_rank[rank] if args_per_rank else ()
        try:
            results[rank] = fn(rank_comm, *args)
        except BaseException as exc:  # noqa: BLE001 - must not lose rank errors
            with failures_lock:
                failures[rank] = exc
            cluster.abort(
                f"rank {rank} raised {type(exc).__name__}: {exc}",
                origin_rank=rank,
                origin_exc_type=type(exc).__name__,
            )

    threads = [
        threading.Thread(target=body, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        for r in range(n_ranks)
    ]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        close = getattr(cluster, "close", None)
        if close is not None:
            close()

    if failures:
        primary = {
            rank: exc
            for rank, exc in failures.items()
            if not isinstance(exc, CommAborted)
        }
        raise SpmdError(primary or failures)
    return results


def supervised_launch(
    n_ranks: int,
    fn: RankFn,
    args_per_rank: Sequence[tuple] | None = None,
    *,
    policy: "FaultPolicy | str | None" = None,
    telemetry: "Recorder | None" = None,
    profiler: TrafficProfiler | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    deadline: float | None = None,
    fault_plan: "FaultPlan | None" = None,
) -> list[Any]:
    """:func:`spmd_launch` under a recovery policy (worker supervision).

    ``fn`` must be re-invocable from scratch (build all per-rank state
    inside it) — SPMD recovery is whole-job: a failed launch is either
    relaunched identically (``retry``, with exponential backoff; because
    reduction is deterministic and one-shot fault specs do not re-fire,
    the retried run reproduces the fault-free results bit-exactly) or
    relaunched with the failed ranks' partitions dropped (``degrade``,
    recording ``faults.ranks_dropped``).  ``fail_fast`` (the default) is
    plain :func:`spmd_launch`.

    Every detection/recovery is surfaced on ``telemetry`` (when given):
    ``faults.launch_failures``, ``faults.retries``,
    ``faults.ranks_dropped`` counters and the ``faults.recovery_seconds``
    and ``faults.backoff_seconds`` timers (failure detection to
    successful relaunch, and the seeded backoff delays actually slept —
    see :func:`~repro.faults.seeded_backoff`).

    Returns the per-rank results of the first successful launch (under
    ``degrade``, results of the surviving ranks in their original rank
    order).
    """
    from ..faults import FaultPolicy

    policy = FaultPolicy.parse(policy) if policy is not None else FaultPolicy.fail_fast()

    def launch(ranks: int, rank_args: Sequence[tuple] | None) -> list[Any]:
        return spmd_launch(
            ranks,
            fn,
            rank_args,
            profiler=profiler,
            timeout=timeout,
            deadline=deadline,
            fault_plan=fault_plan,
        )

    if policy.mode == "fail_fast":
        return launch(n_ranks, args_per_rank)

    attempt = 1
    ranks = n_ranks
    rank_args = list(args_per_rank) if args_per_rank is not None else None
    recovering_since: float | None = None
    while True:
        try:
            results = launch(ranks, rank_args)
            if recovering_since is not None and telemetry is not None:
                # Recovery latency: failure detection to healthy completion.
                telemetry.add_time(
                    "faults.recovery_seconds", time.perf_counter() - recovering_since
                )
            return results
        except SpmdError as err:
            if recovering_since is None:
                recovering_since = time.perf_counter()
            if telemetry is not None:
                telemetry.inc("faults.launch_failures")
            if policy.mode == "retry":
                if attempt >= policy.max_attempts:
                    raise
                if telemetry is not None:
                    telemetry.inc("faults.retries")
                delay = policy.backoff_for(attempt)
                if telemetry is not None:
                    telemetry.add_time("faults.backoff_seconds", delay)
                time.sleep(delay)
                attempt += 1
                continue
            # degrade: drop the failed ranks' partitions and relaunch (a
            # further failure degrades again; ranks strictly decrease, so
            # this terminates).
            failed = sorted(err.failures)
            survivors = [r for r in range(ranks) if r not in failed]
            if not survivors:
                raise
            if telemetry is not None:
                telemetry.inc("faults.ranks_dropped", len(failed))
            if rank_args is not None:
                rank_args = [rank_args[r] for r in survivors]
            ranks = len(survivors)
