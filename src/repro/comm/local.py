"""Single-rank communicator.

Used for offline analytics, single-node examples, and anywhere the runtime
needs a communicator but no peers exist.  Point-to-point self-sends are
supported (buffered, FIFO per tag) because a 1-rank SPMD program may still
legitimately send to itself.
"""

from __future__ import annotations

import copy
from collections import defaultdict, deque
from typing import Any, Sequence

from .errors import CommError
from .interface import Communicator
from .profiler import TrafficProfiler


class LocalComm(Communicator):
    """A communicator with exactly one rank (rank 0)."""

    def __init__(self, profiler: TrafficProfiler | None = None):
        self.profiler = profiler
        self._self_mailbox: dict[int, deque[Any]] = defaultdict(deque)

    @property
    def rank(self) -> int:
        return 0

    @property
    def size(self) -> int:
        return 1

    # -- point to point ---------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_rank(dest, "dest")
        self._record("send", obj)
        # Copy so a later mutation by the sender is not observed by recv,
        # matching the buffered-send semantics of the threaded backend.
        self._self_mailbox[tag].append(copy.deepcopy(obj))

    def recv(self, source: int, tag: int = 0) -> Any:
        self._check_rank(source, "source")
        box = self._self_mailbox[tag]
        if not box:
            raise CommError(
                "LocalComm.recv would deadlock: no buffered self-send with tag "
                f"{tag} (single-rank communicator cannot block on a peer)"
            )
        return box.popleft()

    # -- collectives ------------------------------------------------------
    def barrier(self) -> None:
        self._record("barrier", nbytes=0)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._check_rank(root, "root")
        self._record("bcast", obj)
        return obj

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        self._check_rank(root, "root")
        self._record("gather", obj)
        return [obj]

    def allgather(self, obj: Any) -> list[Any]:
        self._record("allgather", obj)
        return [obj]

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        self._check_rank(root, "root")
        if objs is None:
            raise ValueError("scatter on the root rank requires a sequence")
        if len(objs) != 1:
            raise ValueError(f"scatter needs exactly 1 value on a 1-rank comm, got {len(objs)}")
        self._record("scatter", objs[0])
        return objs[0]

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        if len(objs) != 1:
            raise ValueError(f"alltoall needs exactly 1 value on a 1-rank comm, got {len(objs)}")
        self._record("alltoall", objs[0])
        return [objs[0]]

    def dup(self) -> "LocalComm":
        return LocalComm(profiler=self.profiler)
