"""Threaded SPMD communicator: N ranks as real threads, one process.

This is the stand-in for MPI in this reproduction (see DESIGN.md section 1).
Each rank of the SPMD program runs on its own thread; collectives are
implemented with shared slots guarded by a pair of alternating barriers, and
point-to-point messages go through tag-addressed mailboxes.  Synchronization
is *real* (threads genuinely block at barriers and on receives), so the
ordering, deadlock, and semantics properties of the code under test match a
genuine MPI execution; only the transport differs.

Concurrency contract (same as MPI): all ranks of a communicator must call
collectives in the same order.  Code that needs concurrent communication
from multiple threads of the same rank (space-sharing mode, Listing 2 of
the paper) must :meth:`~SimComm.dup` the communicator, exactly as one would
duplicate an MPI communicator.
"""

from __future__ import annotations

import copy
import threading
import time
from collections import defaultdict, deque
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from .errors import CommAborted, CommTimeoutError, RankMismatchError
from .interface import Communicator
from .profiler import TrafficProfiler

if TYPE_CHECKING:  # pragma: no cover
    from ..faults import FaultPlan

#: Default seconds to wait in a collective before declaring the job wedged.
#: Generous enough for slow CI; small enough that a deadlocked test fails.
DEFAULT_TIMEOUT = 120.0


def _isolate(obj: Any) -> Any:
    """Return a copy of ``obj`` so receiver and sender never share buffers.

    Mirrors MPI semantics where every rank owns its receive buffer.  numpy
    arrays get a cheap buffer copy; other objects are deep-copied.
    """
    if obj is None or isinstance(obj, (int, float, bool, str, bytes, np.generic)):
        return obj
    if isinstance(obj, np.ndarray):
        return obj.copy()
    return copy.deepcopy(obj)


class _Context:
    """Shared state for one communicator context (one 'MPI communicator')."""

    def __init__(self, size: int, timeout: float, deadline: float | None = None):
        self.size = size
        self.timeout = timeout
        self.deadline = deadline
        self.slots: list[Any] = [None] * size
        self.root_slot: Any = None
        self.tag_slot: Any = None  # collective-consistency checking
        self.enter = threading.Barrier(size)
        self.leave = threading.Barrier(size)
        self.mail: dict[tuple[int, int, int], deque[Any]] = defaultdict(deque)
        self.mail_cond = threading.Condition()
        self.aborted = False
        self.abort_reason: str | None = None
        self.abort_origin_rank: int | None = None
        self.abort_origin_exc_type: str | None = None

    def abort(
        self,
        reason: str,
        *,
        origin_rank: int | None = None,
        origin_exc_type: str | None = None,
    ) -> None:
        self.aborted = True
        if self.abort_reason is None:
            self.abort_reason = reason
            self.abort_origin_rank = origin_rank
            self.abort_origin_exc_type = origin_exc_type
        self.enter.abort()
        self.leave.abort()
        with self.mail_cond:
            self.mail_cond.notify_all()

    def check_abort(self) -> None:
        if self.aborted:
            raise CommAborted(
                self.abort_reason or "SPMD job aborted",
                origin_rank=self.abort_origin_rank,
                origin_exc_type=self.abort_origin_exc_type,
            )

    def wait(self, barrier: threading.Barrier) -> None:
        self.check_abort()
        effective = self.timeout if self.deadline is None else min(self.timeout, self.deadline)
        try:
            barrier.wait(timeout=effective)
        except threading.BrokenBarrierError:
            if not self.aborted and effective < self.timeout:
                # The per-call deadline, not the job timeout, expired on
                # this rank: surface the precise stall signal (the abort
                # still tears the context down so peers unblock).
                self.abort(f"collective exceeded the {effective}s call deadline")
                raise CommTimeoutError(
                    f"collective exceeded the {effective}s call deadline",
                    deadline_seconds=effective,
                ) from None
            if not self.aborted:
                self.abort(f"collective timed out after {self.timeout}s")
            raise CommAborted(
                self.abort_reason or "barrier broken",
                origin_rank=self.abort_origin_rank,
                origin_exc_type=self.abort_origin_exc_type,
            ) from None
        self.check_abort()


class InterleaveSchedule:
    """Deterministic per-rank micro-delays that perturb thread interleaving.

    The conformance fuzzer (``repro.verify.fuzz``) uses this to shake
    out collective-ordering races: before every communication call, a
    rank sleeps for a seed-derived jitter keyed by ``(seed, rank,
    per-rank call index)``.  The mapping is a pure integer mix (no
    global RNG state), so the same seed replays the exact same
    interleaving pressure — a failing schedule is reproducible from its
    seed alone.

    Zero-cost when not installed; a fresh instance must be used per run
    (call indices are stateful).
    """

    def __init__(self, seed: int, max_delay: float = 0.0015,
                 probability: float = 0.6):
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.seed = int(seed)
        self.max_delay = float(max_delay)
        self.probability = float(probability)
        self._lock = threading.Lock()
        self._calls: dict[int, int] = defaultdict(int)

    @staticmethod
    def _mix(*parts: int) -> int:
        # splitmix64-style avalanche over the concatenated inputs.
        mask = (1 << 64) - 1
        x = 0x9E3779B97F4A7C15
        for part in parts:
            x = (x + (int(part) & mask) + 0x9E3779B97F4A7C15) & mask
            x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & mask
            x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & mask
            x ^= x >> 31
        return x

    def delay(self, rank: int) -> float:
        """Seconds this rank should sleep before its next comm call."""
        with self._lock:
            index = self._calls[rank]
            self._calls[rank] = index + 1
        mixed = self._mix(self.seed, rank, index)
        gate = (mixed & 0xFFFFFF) / float(1 << 24)
        if gate >= self.probability:
            return 0.0
        return ((mixed >> 24) & 0xFFFFFF) / float(1 << 24) * self.max_delay

    def reset(self) -> None:
        """Rewind call indices so the same instance replays its schedule."""
        with self._lock:
            self._calls.clear()


class SimCluster:
    """Factory and shared state for a set of :class:`SimComm` rank handles.

    Parameters
    ----------
    size:
        Number of SPMD ranks.
    profiler:
        Optional shared :class:`TrafficProfiler`; when set, every rank's
        communication is accounted into it.
    timeout:
        Seconds a rank may block in a collective before the whole job is
        aborted (deadlock detection for tests).
    deadline:
        Optional per-call deadline in seconds.  A ``recv`` or collective
        blocked longer than this raises
        :class:`~repro.comm.errors.CommTimeoutError` on the blocked rank
        (and aborts the job so peers unblock) — a precise stall signal
        for supervised recovery, instead of relying only on the coarse
        job ``timeout``.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan`.  When set, every
        rank's communication calls consult it: messages may be delayed
        or dropped and ranks crashed at seeded call indices.  ``None``
        (the default) keeps every hook a no-op.
    interleave:
        Optional :class:`InterleaveSchedule`.  When set, every rank
        sleeps a seed-derived jitter before each communication call,
        deterministically perturbing barrier arrival order (the
        conformance schedule fuzzer's hook).  ``None`` costs nothing.
    """

    def __init__(
        self,
        size: int,
        profiler: TrafficProfiler | None = None,
        timeout: float = DEFAULT_TIMEOUT,
        deadline: float | None = None,
        fault_plan: "FaultPlan | None" = None,
        interleave: InterleaveSchedule | None = None,
    ):
        if size < 1:
            raise ValueError(f"cluster size must be >= 1, got {size}")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        self.size = size
        self.profiler = profiler
        self.timeout = timeout
        self.deadline = deadline
        self.fault_plan = fault_plan
        self.interleave = interleave
        self._world = _Context(size, timeout, deadline)
        self._contexts: list[_Context] = [self._world]
        self._ctx_lock = threading.Lock()

    def comm(self, rank: int) -> "SimComm":
        """The world-communicator handle for ``rank``."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")
        return SimComm(self, self._world, rank)

    def comms(self) -> list["SimComm"]:
        """World-communicator handles for every rank, rank order."""
        return [self.comm(r) for r in range(self.size)]

    def new_context(self) -> _Context:
        ctx = _Context(self.size, self.timeout, self.deadline)
        with self._ctx_lock:
            self._contexts.append(ctx)
        return ctx

    def abort(
        self,
        reason: str = "aborted",
        *,
        origin_rank: int | None = None,
        origin_exc_type: str | None = None,
    ) -> None:
        """Abort every context: all blocked ranks raise :class:`CommAborted`.

        ``origin_rank``/``origin_exc_type`` identify the failure that
        initiated the abort; peers' :class:`CommAborted` carry them so
        :class:`~repro.comm.errors.SpmdError` aggregation points at the
        root cause instead of a wall of secondary aborts.
        """
        with self._ctx_lock:
            contexts = list(self._contexts)
        for ctx in contexts:
            ctx.abort(reason, origin_rank=origin_rank, origin_exc_type=origin_exc_type)


class SimComm(Communicator):
    """One rank's handle onto a :class:`SimCluster` context."""

    def __init__(self, cluster: SimCluster, context: _Context, rank: int):
        self._cluster = cluster
        self._ctx = context
        self._rank = rank
        self.profiler = cluster.profiler

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._ctx.size

    def _fault(self, op: str) -> str | None:
        """Consult the cluster's fault plan before a communication call.

        Returns ``"drop"`` when the plan asks this call's message to be
        silently discarded (``send`` honours it); delays sleep in place;
        crashes raise :class:`~repro.faults.InjectedRankCrash` exactly
        where a real process death would surface.
        """
        schedule = self._cluster.interleave
        if schedule is not None:
            jitter = schedule.delay(self._rank)
            if jitter > 0.0:
                time.sleep(jitter)
        plan = self._cluster.fault_plan
        if plan is None:
            return None
        spec = plan.comm_fault(self._rank, op)
        if spec is None:
            return None
        if spec.kind == "delay":
            time.sleep(spec.seconds)
            return None
        if spec.kind == "drop":
            return "drop"
        from ..faults import InjectedRankCrash  # deferred: avoid import cycle

        raise InjectedRankCrash(self._rank, plan.call_count("comm", self._rank) - 1, op)

    # -- point to point ---------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_rank(dest, "dest")
        if self._fault("send") == "drop":
            return  # the message vanishes in transit
        self._record("send", obj)
        ctx = self._ctx
        payload = _isolate(obj)
        with ctx.mail_cond:
            ctx.check_abort()
            ctx.mail[(dest, self._rank, tag)].append(payload)
            ctx.mail_cond.notify_all()

    def recv(self, source: int, tag: int = 0) -> Any:
        self._check_rank(source, "source")
        self._fault("recv")
        ctx = self._ctx
        key = (self._rank, source, tag)
        deadline = ctx.deadline
        start = time.monotonic()
        with ctx.mail_cond:
            while not ctx.mail.get(key):
                ctx.check_abort()
                remaining = ctx.timeout - (time.monotonic() - start)
                if deadline is not None:
                    remaining = min(
                        remaining, deadline - (time.monotonic() - start)
                    )
                if not ctx.mail_cond.wait(timeout=max(remaining, 0.001)):
                    elapsed = time.monotonic() - start
                    if deadline is not None and elapsed >= deadline:
                        reason = (
                            f"recv(source={source}, tag={tag}) exceeded the "
                            f"{deadline}s call deadline on rank {self._rank}"
                        )
                        ctx.abort(reason)
                        raise CommTimeoutError(
                            reason,
                            source=source,
                            tag=tag,
                            deadline_seconds=deadline,
                        )
                    if elapsed >= ctx.timeout:
                        ctx.abort(
                            f"recv(source={source}, tag={tag}) timed out on rank {self._rank}"
                        )
                        ctx.check_abort()
            return ctx.mail[key].popleft()

    # -- collectives ------------------------------------------------------
    def _collective_check(self, name: str) -> None:
        """Detect mismatched collective calls across ranks (cheap guard)."""
        ctx = self._ctx
        if self._rank == 0:
            ctx.tag_slot = name
        ctx.wait(ctx.enter)
        if ctx.tag_slot != name:
            ctx.abort(
                f"collective mismatch: rank {self._rank} called {name!r} while "
                f"rank 0 called {ctx.tag_slot!r}"
            )
            ctx.check_abort()

    def barrier(self) -> None:
        self._fault("barrier")
        self._record("barrier", nbytes=0)
        ctx = self._ctx
        self._collective_check("barrier")
        ctx.wait(ctx.leave)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._check_rank(root, "root")
        self._fault("bcast")
        ctx = self._ctx
        if self._rank == root:
            self._record("bcast", obj)
            ctx.root_slot = obj
        self._collective_check("bcast")
        ctx.wait(ctx.leave)  # root_slot published
        result = ctx.root_slot if self._rank == root else _isolate(ctx.root_slot)
        ctx.wait(ctx.enter)  # everyone done reading
        if self._rank == root:
            ctx.root_slot = None
        ctx.wait(ctx.leave)
        return result

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        self._check_rank(root, "root")
        self._fault("gather")
        self._record("gather", obj)
        ctx = self._ctx
        ctx.slots[self._rank] = obj
        self._collective_check("gather")
        ctx.wait(ctx.leave)  # slots published
        result = [_isolate(v) for v in ctx.slots] if self._rank == root else None
        ctx.wait(ctx.enter)
        ctx.slots[self._rank] = None
        ctx.wait(ctx.leave)
        return result

    def allgather(self, obj: Any) -> list[Any]:
        self._fault("allgather")
        self._record("allgather", obj)
        ctx = self._ctx
        ctx.slots[self._rank] = obj
        self._collective_check("allgather")
        ctx.wait(ctx.leave)
        result = [v if i == self._rank else _isolate(v) for i, v in enumerate(ctx.slots)]
        ctx.wait(ctx.enter)
        ctx.slots[self._rank] = None
        ctx.wait(ctx.leave)
        return result

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        self._check_rank(root, "root")
        self._fault("scatter")
        ctx = self._ctx
        if self._rank == root:
            if objs is None:
                ctx.abort(f"scatter root {root} passed None")
            elif len(objs) != self.size:
                ctx.abort(
                    f"scatter needs exactly {self.size} values, got {len(objs)}"
                )
            else:
                self._record("scatter", objs)
                ctx.root_slot = list(objs)
        self._collective_check("scatter")
        ctx.wait(ctx.leave)
        ctx.check_abort()
        value = ctx.root_slot[self._rank]
        if self._rank != root:
            value = _isolate(value)
        ctx.wait(ctx.enter)
        if self._rank == root:
            ctx.root_slot = None
        ctx.wait(ctx.leave)
        return value

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        self._fault("alltoall")
        ctx = self._ctx
        if len(objs) != self.size:
            ctx.abort(
                f"alltoall on rank {self._rank} needs {self.size} values, got {len(objs)}"
            )
            ctx.check_abort()
        self._record("alltoall", list(objs))
        ctx.slots[self._rank] = list(objs)
        self._collective_check("alltoall")
        ctx.wait(ctx.leave)
        result = [_isolate(ctx.slots[src][self._rank]) for src in range(self.size)]
        ctx.wait(ctx.enter)
        ctx.slots[self._rank] = None
        ctx.wait(ctx.leave)
        return result

    # -- structure --------------------------------------------------------
    def dup(self) -> "SimComm":
        """Collectively duplicate into an independent context.

        All ranks must call :meth:`dup` together; the new communicator's
        collectives are fully independent from the parent's (same rank ids).
        """
        ctx = self._ctx
        if self._rank == 0:
            ctx.root_slot = self._cluster.new_context()
        self._collective_check("dup")
        ctx.wait(ctx.leave)
        new_ctx = ctx.root_slot  # shared by reference on purpose
        ctx.wait(ctx.enter)
        if self._rank == 0:
            ctx.root_slot = None
        ctx.wait(ctx.leave)
        if not isinstance(new_ctx, _Context):  # pragma: no cover - defensive
            raise RankMismatchError("dup lost the new context")
        return SimComm(self._cluster, new_ctx, self._rank)
