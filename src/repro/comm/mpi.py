"""mpi4py-backed communicator: run the same code on a real cluster.

This reproduction's substrate (:mod:`repro.comm.sim`) runs SPMD ranks as
threads; on a machine with MPI available, :class:`MpiComm` adapts an
``mpi4py`` communicator to the same :class:`Communicator` interface, so
every scheduler, simulation, and driver in this repository runs
unmodified under ``mpiexec``:

.. code-block:: bash

    mpiexec -n 8 python my_insitu_job.py

.. code-block:: python

    from repro.comm.mpi import world_comm
    comm = world_comm()          # rank's view of MPI_COMM_WORLD
    sim = Heat3D((256, 256, 256), comm)
    smart = Histogram(SchedArgs(num_threads=8), comm, ...)

mpi4py is imported lazily: this module imports fine without it, and
raises a clear error only when an MPI communicator is actually requested.
"""

from __future__ import annotations

from typing import Any, Sequence

from .interface import Communicator
from .profiler import TrafficProfiler


class MpiNotAvailable(RuntimeError):
    """mpi4py is not installed (or failed to initialize)."""


def _load_mpi():
    try:
        from mpi4py import MPI  # noqa: PLC0415 - lazy by design
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise MpiNotAvailable(
            "mpi4py is required for the MPI backend: pip install mpi4py "
            "(and run under mpiexec)"
        ) from exc
    return MPI


def world_comm(profiler: TrafficProfiler | None = None) -> "MpiComm":
    """This rank's view of ``MPI_COMM_WORLD``."""
    MPI = _load_mpi()
    return MpiComm(MPI.COMM_WORLD, profiler=profiler)


class MpiComm(Communicator):
    """Adapter from an ``mpi4py`` communicator to this repository's API.

    Generic-object methods map to mpi4py's lowercase (pickle-based)
    methods; the numpy-buffer fast paths map to the uppercase ones.
    """

    def __init__(self, mpi_comm: Any, profiler: TrafficProfiler | None = None):
        self._mpi = _load_mpi()
        self._comm = mpi_comm
        self.profiler = profiler

    @property
    def rank(self) -> int:
        return self._comm.Get_rank()

    @property
    def size(self) -> int:
        return self._comm.Get_size()

    # -- point to point -----------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_rank(dest, "dest")
        self._record("send", obj)
        # bsend semantics match the threaded substrate's buffered sends;
        # plain send suffices because mpi4py's send buffers small messages
        # and the runtime pairs every send with a matching recv.
        self._comm.send(obj, dest=dest, tag=tag)

    def recv(self, source: int, tag: int = 0) -> Any:
        self._check_rank(source, "source")
        return self._comm.recv(source=source, tag=tag)

    # -- collectives ------------------------------------------------------
    def barrier(self) -> None:
        self._record("barrier", nbytes=0)
        self._comm.Barrier()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._check_rank(root, "root")
        if self.rank == root:
            self._record("bcast", obj)
        return self._comm.bcast(obj, root=root)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        self._check_rank(root, "root")
        self._record("gather", obj)
        return self._comm.gather(obj, root=root)

    def allgather(self, obj: Any) -> list[Any]:
        self._record("allgather", obj)
        return self._comm.allgather(obj)

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        self._check_rank(root, "root")
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError(f"scatter needs exactly {self.size} values")
            self._record("scatter", objs)
        return self._comm.scatter(objs, root=root)

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        if len(objs) != self.size:
            raise ValueError(f"alltoall needs exactly {self.size} values")
        self._record("alltoall", list(objs))
        return self._comm.alltoall(list(objs))

    # -- numpy fast paths ---------------------------------------------------
    def Allreduce(self, sendbuf, recvbuf, op: str = "sum") -> None:
        if sendbuf.shape != recvbuf.shape:
            raise ValueError(
                f"Allreduce shape mismatch: {sendbuf.shape} vs {recvbuf.shape}"
            )
        self._record("Allreduce", sendbuf)
        mpi_op = {
            "sum": self._mpi.SUM,
            "max": self._mpi.MAX,
            "min": self._mpi.MIN,
            "prod": self._mpi.PROD,
        }.get(op)
        if mpi_op is None:
            # Fall back to the generic path for custom operators.
            super().Allreduce(sendbuf, recvbuf, op)
            return
        self._comm.Allreduce(sendbuf, recvbuf, op=mpi_op)

    def Bcast(self, buf, root: int = 0) -> None:
        self._record("Bcast", buf)
        self._comm.Bcast(buf, root=root)

    # -- structure -----------------------------------------------------------
    def dup(self) -> "MpiComm":
        return MpiComm(self._comm.Dup(), profiler=self.profiler)
