"""Sub-communicators: ``MPI_Comm_split`` for this substrate.

:func:`split_comm` partitions a communicator by color (collective over
every rank) and returns each rank's sub-communicator, ordered by key then
parent rank — exactly MPI's semantics.  The returned :class:`GroupComm`
implements collectives over the parent's point-to-point layer with
translated ranks, so ranks outside the group never participate.

The Smart runtime uses this for in-transit/hybrid placement (staging
ranks form one color); applications can use it for any coupled-code
topology (e.g. multiple simulations sharing one analytics pool).
"""

from __future__ import annotations

from typing import Any, Sequence

from .interface import Communicator

#: Color value whose ranks receive no sub-communicator (MPI_UNDEFINED).
UNDEFINED = None

_GROUP_TAG_SHIFT = 1 << 20
_COLL_TAG = (1 << 19) + 7


def split_comm(
    comm: Communicator, color: Any, key: int = 0
) -> "GroupComm | None":
    """Collectively split ``comm`` by ``color``; order groups by ``key``.

    Every rank must call this.  Ranks passing ``color=None`` receive
    ``None`` (they are in no group).  Within a group, ranks are ordered
    by ``(key, parent_rank)``.
    """
    memberships = comm.allgather((color, key))
    # dup() is itself collective: every rank participates, whether or not
    # it joins a group.
    dup = comm.dup()
    if color is UNDEFINED:
        return None
    members = sorted(
        (
            (member_key, parent_rank)
            for parent_rank, (member_color, member_key) in enumerate(memberships)
            if member_color == color
        ),
    )
    world_ranks = [parent_rank for _key, parent_rank in members]
    return GroupComm(dup, world_ranks)


class GroupComm(Communicator):
    """A communicator over an arbitrary subset of a parent's ranks.

    Collectives are implemented with rooted fan-in/fan-out over the
    parent's (duplicated) point-to-point layer; tags are shifted out of
    the parent's tag space.  All group members — and only they — must
    participate in each collective.
    """

    def __init__(self, parent: Communicator, world_ranks: Sequence[int]):
        if not world_ranks:
            raise ValueError("a group needs at least one rank")
        if parent.rank not in world_ranks:
            raise ValueError(
                f"parent rank {parent.rank} is not in the group {list(world_ranks)}"
            )
        if len(set(world_ranks)) != len(world_ranks):
            raise ValueError(f"duplicate ranks in group: {list(world_ranks)}")
        self.parent = parent
        self.world_ranks = list(world_ranks)
        self._rank = self.world_ranks.index(parent.rank)
        self.profiler = parent.profiler
        self._barrier_epoch = 0

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return len(self.world_ranks)

    def _world(self, group_rank: int) -> int:
        self._check_rank(group_rank)
        return self.world_ranks[group_rank]

    # -- point to point -----------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self.parent.send(obj, dest=self._world(dest), tag=_GROUP_TAG_SHIFT + tag)

    def recv(self, source: int, tag: int = 0) -> Any:
        return self.parent.recv(
            source=self._world(source), tag=_GROUP_TAG_SHIFT + tag
        )

    # -- collectives over pt2pt ------------------------------------------------
    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        self._check_rank(root, "root")
        if self.rank == root:
            values: list[Any] = [None] * self.size
            values[root] = obj
            for r in range(self.size):
                if r != root:
                    values[r] = self.recv(r, tag=_COLL_TAG)
            return values
        self.send(obj, dest=root, tag=_COLL_TAG)
        return None

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._check_rank(root, "root")
        if self.rank == root:
            for r in range(self.size):
                if r != root:
                    self.send(obj, dest=r, tag=_COLL_TAG + 1)
            return obj
        return self.recv(root, tag=_COLL_TAG + 1)

    def allgather(self, obj: Any) -> list[Any]:
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        self._check_rank(root, "root")
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError(f"scatter needs exactly {self.size} values")
            for r in range(self.size):
                if r != root:
                    self.send(objs[r], dest=r, tag=_COLL_TAG + 2)
            return objs[root]
        return self.recv(root, tag=_COLL_TAG + 2)

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        if len(objs) != self.size:
            raise ValueError(f"alltoall needs exactly {self.size} values")
        for r in range(self.size):
            if r != self.rank:
                self.send(objs[r], dest=r, tag=_COLL_TAG + 3)
        out: list[Any] = [None] * self.size
        out[self.rank] = objs[self.rank]
        for r in range(self.size):
            if r != self.rank:
                out[r] = self.recv(r, tag=_COLL_TAG + 3)
        return out

    def barrier(self) -> None:
        self.allgather(self._barrier_epoch)
        self._barrier_epoch += 1

    def dup(self) -> "GroupComm":
        return GroupComm(self.parent.dup(), self.world_ranks)
