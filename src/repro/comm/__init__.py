"""Message-passing substrate (the reproduction's stand-in for MPI).

Public surface:

* :class:`Communicator` — the interface the Smart runtime targets.
* :class:`LocalComm` — single-rank communicator.
* :class:`SimCluster` / :class:`SimComm` — N SPMD ranks as threads.
* :class:`TcpCluster` / :class:`TcpComm` — the same SPMD contract over
  real framed sockets (CRC-checked, fault-injectable, self-healing).
* :func:`spmd_launch` — ``mpiexec``-style launcher.
* :func:`supervised_launch` — the launcher under a recovery policy
  (retry with backoff / degrade by dropping failed ranks).
* :class:`TrafficProfiler` — byte/message accounting for the perf model.
* Reduce operators: ``SUM``, ``MAX``, ``MIN``, ``PROD``, ``CONCAT``, ...
"""

from .errors import (
    CommAborted,
    CommError,
    CommTimeoutError,
    FrameCorruptionError,
    InvalidRankError,
    RankMismatchError,
    SpmdError,
)
from .interface import Communicator, Request
from .launcher import spmd_launch, supervised_launch
from .local import LocalComm
from .profiler import OpStats, TrafficProfiler, payload_nbytes
from .reduce_ops import CONCAT, LAND, LOR, MAX, MIN, PROD, SUM, ReduceOp, as_reduce_op
from .sim import InterleaveSchedule, SimCluster, SimComm
from .subgroup import UNDEFINED, GroupComm, split_comm
from .tcp import TcpCluster, TcpComm, TcpRouter

__all__ = [
    "CommAborted",
    "CommError",
    "CommTimeoutError",
    "FrameCorruptionError",
    "Communicator",
    "Request",
    "InvalidRankError",
    "LocalComm",
    "OpStats",
    "RankMismatchError",
    "ReduceOp",
    "GroupComm",
    "InterleaveSchedule",
    "SimCluster",
    "SimComm",
    "SpmdError",
    "TcpCluster",
    "TcpComm",
    "TcpRouter",
    "TrafficProfiler",
    "as_reduce_op",
    "payload_nbytes",
    "split_comm",
    "spmd_launch",
    "supervised_launch",
    "UNDEFINED",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "CONCAT",
]
