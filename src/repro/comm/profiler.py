"""Communication traffic accounting.

Every communicator can carry a :class:`TrafficProfiler`.  The profiler
records, per operation kind, the number of calls and an estimate of the
payload bytes moved.  The performance model (``repro.perfmodel``) replays
these counters with an alpha-beta network model to predict synchronization
cost at cluster scale, so the counters must reflect what an MPI
implementation would actually put on the wire.

Since the telemetry unification the profiler is a thin facade over a
:class:`repro.telemetry.Recorder` (the same primitive the scheduler's
``RunStats`` and the execution engines write into): each operation kind
is one recorder op tally.  The public API is unchanged; a profiler can
also be constructed over an existing recorder to merge communication
traffic into a scheduler's unified snapshot.
"""

from __future__ import annotations

import pickle
import sys
import warnings
from typing import Any

import numpy as np

from ..telemetry import OpStats, Recorder

__all__ = ["OpStats", "TrafficProfiler", "payload_nbytes"]

_pickle_fallback_warned = False


def _getsizeof_estimate(obj: Any) -> int:
    """Shallow-recursive ``sys.getsizeof`` fallback for unpicklable payloads."""
    total = sys.getsizeof(obj)
    if isinstance(obj, dict):
        total += sum(sys.getsizeof(k) + sys.getsizeof(v) for k, v in obj.items())
    elif isinstance(obj, (list, tuple, set, frozenset)):
        total += sum(sys.getsizeof(item) for item in obj)
    return int(total)


def payload_nbytes(obj: Any) -> int:
    """Estimate the on-wire size of ``obj`` in bytes.

    numpy arrays are counted at their buffer size (MPI would send the raw
    buffer); everything else is counted at its pickle size, mirroring how
    mpi4py transports generic Python objects.  Unpicklable payloads fall
    back to a ``sys.getsizeof``-based estimate (with a one-time warning)
    rather than silently undercounting the traffic the perfmodel replays.
    """
    global _pickle_fallback_warned
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (int, float, bool, np.generic)):
        return 8
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception as exc:
        if not _pickle_fallback_warned:
            _pickle_fallback_warned = True
            warnings.warn(
                f"payload_nbytes: pickling a {type(obj).__name__} failed ({exc!r}); "
                "falling back to sys.getsizeof estimates for unpicklable payloads "
                "(traffic counters become approximate)",
                RuntimeWarning,
                stacklevel=2,
            )
        return _getsizeof_estimate(obj)


class TrafficProfiler:
    """Thread-safe per-operation traffic counters.

    A single profiler may be shared by all ranks of a
    :class:`~repro.comm.sim.SimCluster`; recording is serialized by the
    backing recorder's lock.

    Parameters
    ----------
    recorder:
        Optional :class:`~repro.telemetry.Recorder` to account into
        (e.g. a scheduler's, to unify the snapshot).  A private one is
        created when omitted.
    """

    def __init__(self, recorder: Recorder | None = None):
        self.recorder = recorder if recorder is not None else Recorder()

    def record(self, op: str, payload: Any = None, nbytes: int | None = None) -> None:
        """Record one call of kind ``op`` moving ``payload`` (or ``nbytes``)."""
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        self.recorder.record_op(op, size)

    def record_wire(self, wire_format: str, nbytes: int) -> None:
        """Account one serialized combination-map payload per wire format.

        Global combination tallies every payload it produces under
        ``wire.<format>`` (``wire.pickle`` / ``wire.columnar`` /
        ``wire.allreduce``), separate from the transport ops that move
        it, so format regressions show up directly in byte terms: the
        columnar formats should move strictly fewer bytes than pickle
        for the same combination maps.
        """
        self.recorder.record_op(f"wire.{wire_format}", int(nbytes))

    def reset(self) -> None:
        self.recorder.reset()

    def total_bytes(self) -> int:
        return sum(self.recorder.op(op).bytes for op in self.recorder.op_names())

    def total_calls(self) -> int:
        return sum(self.recorder.op(op).calls for op in self.recorder.op_names())

    def snapshot(self) -> dict[str, tuple[int, int]]:
        """Return ``{op: (calls, bytes)}`` at this instant."""
        ops = self.recorder.snapshot()["ops"]
        return {op: (s["calls"], s["bytes"]) for op, s in ops.items()}

    @property
    def stats(self) -> dict[str, OpStats]:
        """Back-compat view: per-op :class:`OpStats` copies."""
        ops = self.recorder.snapshot()["ops"]
        return {op: OpStats(s["calls"], s["bytes"]) for op, s in ops.items()}

    def bytes_for(self, op: str) -> int:
        return self.recorder.op(op).bytes

    def calls_for(self, op: str) -> int:
        return self.recorder.op(op).calls
