"""Communication traffic accounting.

Every communicator can carry a :class:`TrafficProfiler`.  The profiler
records, per operation kind, the number of calls and an estimate of the
payload bytes moved.  The performance model (``repro.perfmodel``) replays
these counters with an alpha-beta network model to predict synchronization
cost at cluster scale, so the counters must reflect what an MPI
implementation would actually put on the wire.
"""

from __future__ import annotations

import pickle
import threading
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

import numpy as np


def payload_nbytes(obj: Any) -> int:
    """Estimate the on-wire size of ``obj`` in bytes.

    numpy arrays are counted at their buffer size (MPI would send the raw
    buffer); everything else is counted at its pickle size, mirroring how
    mpi4py transports generic Python objects.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (int, float, bool, np.generic)):
        return 8
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0


@dataclass
class OpStats:
    """Aggregate statistics for one operation kind."""

    calls: int = 0
    bytes: int = 0

    def add(self, nbytes: int) -> None:
        self.calls += 1
        self.bytes += nbytes


@dataclass
class TrafficProfiler:
    """Thread-safe per-operation traffic counters.

    A single profiler may be shared by all ranks of a
    :class:`~repro.comm.sim.SimCluster`; recording is serialized by an
    internal lock.
    """

    stats: dict[str, OpStats] = field(default_factory=lambda: defaultdict(OpStats))
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, op: str, payload: Any = None, nbytes: int | None = None) -> None:
        """Record one call of kind ``op`` moving ``payload`` (or ``nbytes``)."""
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        with self._lock:
            self.stats[op].add(size)

    def reset(self) -> None:
        with self._lock:
            self.stats.clear()

    def total_bytes(self) -> int:
        with self._lock:
            return sum(s.bytes for s in self.stats.values())

    def total_calls(self) -> int:
        with self._lock:
            return sum(s.calls for s in self.stats.values())

    def snapshot(self) -> dict[str, tuple[int, int]]:
        """Return ``{op: (calls, bytes)}`` at this instant."""
        with self._lock:
            return {op: (s.calls, s.bytes) for op, s in self.stats.items()}

    def bytes_for(self, op: str) -> int:
        with self._lock:
            return self.stats[op].bytes if op in self.stats else 0

    def calls_for(self, op: str) -> int:
        with self._lock:
            return self.stats[op].calls if op in self.stats else 0
