"""Socket-backed SPMD communicator: real frames over localhost TCP.

This backend replaces the in-process mailboxes of
:class:`~repro.comm.sim.SimCluster` with a genuine wire path: every
point-to-point message is pickled, wrapped in a length-prefixed
CRC-checked frame, and routed through a hub (:class:`TcpRouter`) over a
real TCP connection.  Collectives are built from rooted fan-in/fan-out
over that point-to-point layer (the :class:`~repro.comm.subgroup.GroupComm`
construction), so one transport carries everything.

The design goals are the robustness properties the elastic in-transit
tier needs (DESIGN.md section 13):

* **Framing** — ``magic | version | kind | source | dest | tag | length
  | crc32`` header (:data:`HEADER`); payload corruption is detected by
  CRC before deserialization and surfaces as
  :class:`~repro.comm.errors.FrameCorruptionError` on the receiving
  call, never as a pickle explosion.
* **Deadlines** — a ``recv`` or collective blocked past the cluster's
  per-call ``deadline`` raises
  :class:`~repro.comm.errors.CommTimeoutError` with structured
  ``source``/``tag``/``deadline_seconds`` attributes.
* **Retry** — connects and sends retry with capped exponential backoff
  and deterministic seeded jitter (:func:`~repro.faults.seeded_backoff`);
  a dropped connection (including an injected ``network:disconnect``)
  heals transparently: the router buffers frames for an absent rank and
  flushes them on re-HELLO.
* **Heartbeats** — each endpoint probes the router on a fixed interval;
  the router tracks per-rank liveness (:meth:`TcpRouter.last_seen`),
  which the elastic tier's supervisor polls to call a worker dead.
* **Fault injection** — the router consults the cluster's
  :class:`~repro.faults.FaultPlan` per forwarded data frame
  (``network_fault(rank, op="forward")``): ``disconnect`` closes the
  sender's connection after the frame, ``slowlink`` sleeps before
  forwarding, ``truncate`` corrupts the payload so the receiver's CRC
  trips, ``partition`` stalls all forwarding for a duration.  The
  ``comm`` layer's delay/drop/crash kinds also apply, mirroring the sim
  backend, so existing chaos plans run unchanged over the wire.

Ranks remain threads of one process (the router binds loopback); what
changes is that every byte crosses a socket, so framing, partial reads,
reconnects, and corruption are exercised for real.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time
import zlib
from collections import defaultdict, deque
from typing import TYPE_CHECKING, Any, Sequence

from .errors import (
    CommAborted,
    CommError,
    CommTimeoutError,
    FrameCorruptionError,
)
from .interface import Communicator
from .profiler import TrafficProfiler
from .sim import DEFAULT_TIMEOUT

if TYPE_CHECKING:  # pragma: no cover
    from ..faults import FaultPlan

# -- framing -----------------------------------------------------------------

#: Wire header: magic, version, kind, source, dest, tag, payload length,
#: payload crc32.  Network byte order, 24 bytes.
HEADER = struct.Struct("!2sBBiiiII")
MAGIC = b"SF"
VERSION = 1

# Frame kinds.  Values < 16 are reserved for the comm substrate; the
# elastic tier (repro.core.elastic) layers its own kinds at >= 16 over
# the same header.
K_HELLO = 1  #: rank registration (source = rank)
K_DATA = 2  #: routed point-to-point payload
K_HEARTBEAT = 3  #: liveness probe, client -> router
K_HEARTBEAT_ACK = 4  #: liveness reply, router -> client
K_BYE = 5  #: clean disconnect

#: Attempts for connect / send before giving up on the wire.
CONNECT_ATTEMPTS = 6
#: Base seconds for the seeded reconnect backoff schedule.
CONNECT_BACKOFF_BASE = 0.02
#: Cap on a single reconnect backoff sleep.
CONNECT_BACKOFF_CAP = 0.5
#: Jitter fraction for the reconnect backoff schedule.
CONNECT_BACKOFF_JITTER = 0.25
#: Seconds between heartbeat probes from each endpoint.
HEARTBEAT_INTERVAL = 0.5

_CTX_SHIFT = 1 << 23  # wire tag = tag + ctx * _CTX_SHIFT
_COLL_TAG = (1 << 22) + 3  # collective fan-in/fan-out tag space
_DUP_TAG = (1 << 22) + 31


def pack_frame(kind: int, source: int, dest: int, tag: int, payload: bytes) -> bytes:
    """One wire frame: header (with payload CRC) followed by the payload."""
    return HEADER.pack(
        MAGIC, VERSION, kind, source, dest, tag, len(payload), zlib.crc32(payload)
    ) + payload


def recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError`` (peer gone)."""
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("peer closed the connection")
        buf += chunk
    return bytes(buf)


def recv_frame(sock: socket.socket) -> tuple[int, int, int, int, bytes, bool]:
    """Read one frame: ``(kind, source, dest, tag, payload, crc_ok)``.

    Structural problems (bad magic/version) raise
    :class:`~repro.comm.errors.FrameCorruptionError` immediately — the
    stream is unrecoverable.  A payload CRC mismatch is survivable (the
    stream stays framed), so it is reported via ``crc_ok=False`` for the
    caller to attribute to the right receive.
    """
    header = recv_exact(sock, HEADER.size)
    magic, version, kind, source, dest, tag, length, crc = HEADER.unpack(header)
    if magic != MAGIC or version != VERSION:
        raise FrameCorruptionError(
            f"bad frame header (magic={magic!r}, version={version})"
        )
    payload = recv_exact(sock, length) if length else b""
    return kind, source, dest, tag, payload, zlib.crc32(payload) == crc


class _Corrupt:
    """Mailbox marker: the frame for this receive failed its CRC."""

    __slots__ = ("source", "tag")

    def __init__(self, source: int, tag: int):
        self.source = source
        self.tag = tag


# -- router ------------------------------------------------------------------


class TcpRouter:
    """Hub that accepts one connection per rank and routes data frames.

    A hub (rather than a full mesh) keeps connection count linear and
    gives the fault plan a single choke point: every routed frame passes
    one ``network_fault(source, op="forward")`` consultation.  Frames
    addressed to a rank that is not currently connected (mid-reconnect)
    are buffered and flushed on its next HELLO, so an injected
    ``disconnect`` loses no data.
    """

    def __init__(self, size: int, fault_plan: "FaultPlan | None" = None):
        self.size = size
        self.fault_plan = fault_plan
        self._server = socket.create_server(("127.0.0.1", 0))
        self.address: tuple[str, int] = self._server.getsockname()
        self._conns: dict[int, socket.socket] = {}
        self._wlocks: dict[int, threading.Lock] = defaultdict(threading.Lock)
        self._pending: dict[int, list[bytes]] = defaultdict(list)
        self._last_seen: dict[int, float] = {}
        self._lock = threading.Lock()
        self._closing = False
        self._partition_until = 0.0
        self._threads: list[threading.Thread] = []
        accept = threading.Thread(
            target=self._accept_loop, name="tcp-router-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)

    # -- liveness ----------------------------------------------------------
    def last_seen(self, rank: int) -> float | None:
        """Monotonic time of ``rank``'s last heartbeat (None: never)."""
        with self._lock:
            return self._last_seen.get(rank)

    def alive(self, rank: int, within: float = 3 * HEARTBEAT_INTERVAL) -> bool:
        """Has ``rank`` heartbeated within the last ``within`` seconds?"""
        seen = self.last_seen(rank)
        return seen is not None and (time.monotonic() - seen) <= within

    # -- wiring ------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return  # server socket closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            reader = threading.Thread(
                target=self._serve, args=(conn,), name="tcp-router-serve", daemon=True
            )
            reader.start()
            self._threads.append(reader)

    def _register(self, rank: int, conn: socket.socket) -> None:
        with self._lock:
            old = self._conns.get(rank)
            self._conns[rank] = conn
            backlog = self._pending.pop(rank, [])
        if old is not None and old is not conn:
            try:
                old.close()
            except OSError:
                pass
        for frame in backlog:
            self._deliver(rank, frame)

    def _deliver(self, dest: int, frame: bytes) -> None:
        with self._lock:
            conn = self._conns.get(dest)
        if conn is None:
            with self._lock:
                self._pending[dest].append(frame)
            return
        try:
            with self._wlocks[dest]:
                conn.sendall(frame)
        except OSError:
            # Receiver mid-reconnect: keep the frame for its next HELLO.
            with self._lock:
                self._pending[dest].append(frame)

    def _inject(self, source: int, payload: bytes) -> tuple[bytes, bool, bool]:
        """Consult the fault plan for one forwarded frame.

        Returns ``(payload, corrupted, drop_conn)``: the possibly
        corrupted payload, whether it was corrupted (so the outbound
        frame must carry a mismatching CRC), and whether to close the
        source's connection after forwarding.
        """
        stall = self._partition_until - time.monotonic()
        if stall > 0:
            time.sleep(stall)
        plan = self.fault_plan
        if plan is None:
            return payload, False, False
        spec = plan.network_fault(source, op="forward")
        if spec is None:
            return payload, False, False
        if spec.kind == "slowlink":
            time.sleep(spec.seconds)
            return payload, False, False
        if spec.kind == "partition":
            self._partition_until = time.monotonic() + spec.seconds
            time.sleep(spec.seconds)
            return payload, False, False
        if spec.kind == "truncate":
            # Corrupt the tail while keeping the declared length, so the
            # receiver's CRC check trips (detectable, not a stall).
            if payload:
                payload = payload[:-1] + bytes([payload[-1] ^ 0xFF])
            return payload, True, False
        return payload, False, True  # disconnect

    def _serve(self, conn: socket.socket) -> None:
        rank: int | None = None
        try:
            while not self._closing:
                kind, source, dest, tag, payload, crc_ok = recv_frame(conn)
                if kind == K_HELLO:
                    rank = source
                    self._register(source, conn)
                elif kind == K_HEARTBEAT:
                    with self._lock:
                        self._last_seen[source] = time.monotonic()
                    try:
                        with self._wlocks[source]:
                            conn.sendall(pack_frame(K_HEARTBEAT_ACK, -1, source, 0, b""))
                    except OSError:
                        pass
                elif kind == K_DATA:
                    payload, corrupted, drop_conn = self._inject(source, payload)
                    self._deliver(
                        dest,
                        _reframe(source, dest, tag, payload, crc_ok and not corrupted),
                    )
                    if drop_conn:
                        conn.close()
                        return
                elif kind == K_BYE:
                    conn.close()
                    return
        except (ConnectionError, OSError, FrameCorruptionError):
            pass  # client gone (or injected disconnect); it will re-HELLO
        finally:
            if rank is not None:
                with self._lock:
                    if self._conns.get(rank) is conn:
                        del self._conns[rank]

    def close(self) -> None:
        self._closing = True
        try:
            self._server.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns.values())
            self._conns.clear()
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass


def _reframe(source: int, dest: int, tag: int, payload: bytes, crc_ok: bool) -> bytes:
    """Rebuild a forwarded frame, preserving corruption detectability.

    With ``crc_ok`` the recomputed CRC is honest.  When the router
    injected a ``truncate`` (or the inbound frame already failed its
    check) the outbound CRC is deliberately off by one bit, so the
    receiver's check trips exactly as if the corruption happened on its
    own wire segment.
    """
    crc = zlib.crc32(payload)
    if not crc_ok:
        crc ^= 1  # keep the mismatch visible downstream
    return HEADER.pack(
        MAGIC, VERSION, K_DATA, source, dest, tag, len(payload), crc
    ) + payload


# -- endpoint (one per rank) -------------------------------------------------


class _TcpEndpoint:
    """One rank's socket, reader thread, mailboxes, and heartbeat."""

    def __init__(self, cluster: "TcpCluster", rank: int):
        self.cluster = cluster
        self.rank = rank
        self.mail: dict[tuple[int, int], deque[Any]] = defaultdict(deque)
        self.mail_cond = threading.Condition()
        self.last_ack: float | None = None
        self._sock: socket.socket | None = None
        self._io_lock = threading.Lock()
        self._closing = threading.Event()
        self._connect_locked()
        if cluster.heartbeat_interval is not None:
            beat = threading.Thread(
                target=self._heartbeat_loop, name=f"tcp-hb-{rank}", daemon=True
            )
            beat.start()

    # -- connection management --------------------------------------------
    def _connect_locked(self) -> None:
        """(Re)connect under ``_io_lock`` callers, with seeded backoff."""
        from ..faults import seeded_backoff  # deferred: avoid import cycle

        last: Exception | None = None
        for attempt in range(1, CONNECT_ATTEMPTS + 1):
            try:
                sock = socket.create_connection(self.cluster.router.address, timeout=5.0)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                sock.sendall(pack_frame(K_HELLO, self.rank, -1, 0, b""))
                self._sock = sock
                reader = threading.Thread(
                    target=self._reader_loop,
                    args=(sock,),
                    name=f"tcp-reader-{self.rank}",
                    daemon=True,
                )
                reader.start()
                return
            except OSError as exc:
                last = exc
                if attempt < CONNECT_ATTEMPTS:
                    time.sleep(
                        seeded_backoff(
                            attempt,
                            base=CONNECT_BACKOFF_BASE,
                            cap=CONNECT_BACKOFF_CAP,
                            jitter=CONNECT_BACKOFF_JITTER,
                            seed=self.cluster.backoff_seed + self.rank,
                        )
                    )
        raise CommError(
            f"rank {self.rank} could not connect to router "
            f"{self.cluster.router.address} after {CONNECT_ATTEMPTS} attempts"
        ) from last

    def _ensure_connected(self) -> socket.socket:
        with self._io_lock:
            if self._sock is None:
                self._connect_locked()
            assert self._sock is not None
            return self._sock

    def _drop_socket(self, sock: socket.socket) -> None:
        with self._io_lock:
            if self._sock is sock:
                self._sock = None
        try:
            sock.close()
        except OSError:
            pass

    # -- wire I/O ----------------------------------------------------------
    def send_frame(self, kind: int, dest: int, tag: int, payload: bytes) -> None:
        """Send one frame, retrying across reconnects with seeded backoff."""
        from ..faults import seeded_backoff  # deferred: avoid import cycle

        frame = pack_frame(kind, self.rank, dest, tag, payload)
        last: Exception | None = None
        for attempt in range(1, CONNECT_ATTEMPTS + 1):
            try:
                with self._io_lock:
                    if self._sock is None:
                        self._connect_locked()
                    assert self._sock is not None
                    self._sock.sendall(frame)
                return
            except OSError as exc:
                last = exc
                with self._io_lock:
                    if self._sock is not None:
                        try:
                            self._sock.close()
                        except OSError:
                            pass
                        self._sock = None
                if self._closing.is_set():
                    break
                time.sleep(
                    seeded_backoff(
                        attempt,
                        base=CONNECT_BACKOFF_BASE,
                        cap=CONNECT_BACKOFF_CAP,
                        jitter=CONNECT_BACKOFF_JITTER,
                        seed=self.cluster.backoff_seed + self.rank,
                    )
                )
        raise CommError(
            f"rank {self.rank} could not send after {CONNECT_ATTEMPTS} attempts"
        ) from last

    def _reader_loop(self, sock: socket.socket) -> None:
        try:
            while not self._closing.is_set():
                kind, source, _dest, tag, payload, crc_ok = recv_frame(sock)
                if kind == K_HEARTBEAT_ACK:
                    self.last_ack = time.monotonic()
                    continue
                if kind != K_DATA:
                    continue
                if crc_ok:
                    item: Any = pickle.loads(payload)
                else:
                    item = _Corrupt(source, tag)
                with self.mail_cond:
                    self.mail[(source, tag)].append(item)
                    self.mail_cond.notify_all()
        except (ConnectionError, OSError, FrameCorruptionError):
            self._drop_socket(sock)
            if not self._closing.is_set() and not self.cluster.aborted:
                # Injected disconnect (or router hiccup): heal the wire.
                # Buffered frames for this rank flush on re-HELLO.
                try:
                    with self._io_lock:
                        if self._sock is None:
                            self._connect_locked()
                except CommError:
                    pass  # sends/receives surface the failure with context

    def _heartbeat_loop(self) -> None:
        interval = self.cluster.heartbeat_interval
        while not self._closing.wait(interval):
            try:
                self.send_frame(K_HEARTBEAT, -1, 0, b"")
            except CommError:
                return

    # -- mailbox -----------------------------------------------------------
    def wait_mail(self, source: int, tag: int, *, user_tag: int) -> Any:
        """Block for the next message at ``(source, tag)``; honour
        deadline/timeout/abort exactly like the sim backend."""
        cluster = self.cluster
        key = (source, tag)
        deadline = cluster.deadline
        start = time.monotonic()
        with self.mail_cond:
            while not self.mail.get(key):
                cluster.check_abort()
                elapsed = time.monotonic() - start
                remaining = cluster.timeout - elapsed
                if deadline is not None:
                    remaining = min(remaining, deadline - elapsed)
                if not self.mail_cond.wait(timeout=max(remaining, 0.001)):
                    elapsed = time.monotonic() - start
                    if deadline is not None and elapsed >= deadline:
                        reason = (
                            f"recv(source={source}, tag={user_tag}) exceeded the "
                            f"{deadline}s call deadline on rank {self.rank}"
                        )
                        cluster.abort(reason)
                        raise CommTimeoutError(
                            reason,
                            source=source,
                            tag=user_tag,
                            deadline_seconds=deadline,
                        )
                    if elapsed >= cluster.timeout:
                        cluster.abort(
                            f"recv(source={source}, tag={user_tag}) timed out "
                            f"on rank {self.rank}"
                        )
                        cluster.check_abort()
            item = self.mail[key].popleft()
        if isinstance(item, _Corrupt):
            raise FrameCorruptionError(
                f"frame from rank {source} (tag={user_tag}) failed its CRC "
                f"on rank {self.rank}"
            )
        return item

    def close(self) -> None:
        self._closing.set()
        with self._io_lock:
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.sendall(pack_frame(K_BYE, self.rank, -1, 0, b""))
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        with self.mail_cond:
            self.mail_cond.notify_all()


# -- cluster and communicator ------------------------------------------------


class TcpCluster:
    """Factory for :class:`TcpComm` rank handles over one :class:`TcpRouter`.

    Mirrors :class:`~repro.comm.sim.SimCluster`'s constructor contract
    (``size``, ``profiler``, ``timeout``, ``deadline``, ``fault_plan``)
    so :func:`~repro.comm.launcher.spmd_launch` can swap backends; adds
    ``heartbeat_interval`` (``None`` disables probes) and
    ``backoff_seed`` (drives every endpoint's reconnect jitter).
    """

    def __init__(
        self,
        size: int,
        profiler: TrafficProfiler | None = None,
        timeout: float = DEFAULT_TIMEOUT,
        deadline: float | None = None,
        fault_plan: "FaultPlan | None" = None,
        heartbeat_interval: float | None = HEARTBEAT_INTERVAL,
        backoff_seed: int = 0,
    ):
        if size < 1:
            raise ValueError(f"cluster size must be >= 1, got {size}")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        self.size = size
        self.profiler = profiler
        self.timeout = timeout
        self.deadline = deadline
        self.fault_plan = fault_plan
        self.heartbeat_interval = heartbeat_interval
        self.backoff_seed = backoff_seed
        self.router = TcpRouter(size, fault_plan=fault_plan)
        self.aborted = False
        self.abort_reason: str | None = None
        self.abort_origin_rank: int | None = None
        self.abort_origin_exc_type: str | None = None
        self._endpoints: dict[int, _TcpEndpoint] = {}
        self._lock = threading.Lock()
        self._next_ctx = 1

    def comm(self, rank: int) -> "TcpComm":
        """The world-communicator handle for ``rank`` (connects lazily)."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")
        with self._lock:
            endpoint = self._endpoints.get(rank)
            if endpoint is None:
                endpoint = _TcpEndpoint(self, rank)
                self._endpoints[rank] = endpoint
        return TcpComm(self, endpoint, ctx=0)

    def comms(self) -> list["TcpComm"]:
        """World-communicator handles for every rank, rank order."""
        return [self.comm(r) for r in range(self.size)]

    def new_context_id(self) -> int:
        with self._lock:
            ctx = self._next_ctx
            self._next_ctx += 1
        if ctx * _CTX_SHIFT >= 2**31:  # pragma: no cover - 255 dups deep
            raise CommError("communicator context space exhausted")
        return ctx

    def check_abort(self) -> None:
        if self.aborted:
            raise CommAborted(
                self.abort_reason or "SPMD job aborted",
                origin_rank=self.abort_origin_rank,
                origin_exc_type=self.abort_origin_exc_type,
            )

    def abort(
        self,
        reason: str = "aborted",
        *,
        origin_rank: int | None = None,
        origin_exc_type: str | None = None,
    ) -> None:
        """Abort the job: every blocked rank raises :class:`CommAborted`
        carrying the originating rank and exception type."""
        with self._lock:
            if not self.aborted:
                self.aborted = True
                self.abort_reason = reason
                self.abort_origin_rank = origin_rank
                self.abort_origin_exc_type = origin_exc_type
            endpoints = list(self._endpoints.values())
        for endpoint in endpoints:
            with endpoint.mail_cond:
                endpoint.mail_cond.notify_all()

    def close(self) -> None:
        """Tear down every endpoint and the router (idempotent)."""
        with self._lock:
            endpoints = list(self._endpoints.values())
            self._endpoints.clear()
        for endpoint in endpoints:
            endpoint.close()
        self.router.close()

    def __enter__(self) -> "TcpCluster":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class TcpComm(Communicator):
    """One rank's handle onto a :class:`TcpCluster` context.

    Collectives are rooted fan-in/fan-out over the framed point-to-point
    layer; :meth:`dup` allocates a fresh context id (rank 0 picks it and
    broadcasts), shifting the wire-tag space so the duplicate's traffic
    never collides with the parent's.
    """

    def __init__(self, cluster: TcpCluster, endpoint: _TcpEndpoint, ctx: int = 0):
        self._cluster = cluster
        self._endpoint = endpoint
        self._ctx = ctx
        self.profiler = cluster.profiler

    @property
    def rank(self) -> int:
        return self._endpoint.rank

    @property
    def size(self) -> int:
        return self._cluster.size

    def _wire_tag(self, tag: int) -> int:
        return tag + self._ctx * _CTX_SHIFT

    def _fault(self, op: str) -> str | None:
        """Comm-layer fault hook, mirroring the sim backend's semantics."""
        plan = self._cluster.fault_plan
        if plan is None:
            return None
        spec = plan.comm_fault(self.rank, op)
        if spec is None:
            return None
        if spec.kind == "delay":
            time.sleep(spec.seconds)
            return None
        if spec.kind == "drop":
            return "drop"
        from ..faults import InjectedRankCrash  # deferred: avoid import cycle

        raise InjectedRankCrash(self.rank, plan.call_count("comm", self.rank) - 1, op)

    # -- point to point ---------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_rank(dest, "dest")
        if self._fault("send") == "drop":
            return  # the message vanishes in transit
        self._record("send", obj)
        self._cluster.check_abort()
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self._endpoint.send_frame(K_DATA, dest, self._wire_tag(tag), payload)

    def recv(self, source: int, tag: int = 0) -> Any:
        self._check_rank(source, "source")
        self._fault("recv")
        return self._endpoint.wait_mail(source, self._wire_tag(tag), user_tag=tag)

    # -- collectives over pt2pt -------------------------------------------
    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        self._check_rank(root, "root")
        self._fault("gather")
        self._record("gather", obj)
        if self.rank == root:
            values: list[Any] = [None] * self.size
            values[root] = obj
            for r in range(self.size):
                if r != root:
                    values[r] = self._endpoint.wait_mail(
                        r, self._wire_tag(_COLL_TAG), user_tag=_COLL_TAG
                    )
            return values
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self._endpoint.send_frame(K_DATA, root, self._wire_tag(_COLL_TAG), payload)
        return None

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._check_rank(root, "root")
        self._fault("bcast")
        if self.rank == root:
            self._record("bcast", obj)
            payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
            for r in range(self.size):
                if r != root:
                    self._endpoint.send_frame(
                        K_DATA, r, self._wire_tag(_COLL_TAG + 1), payload
                    )
            return obj
        return self._endpoint.wait_mail(
            root, self._wire_tag(_COLL_TAG + 1), user_tag=_COLL_TAG + 1
        )

    def allgather(self, obj: Any) -> list[Any]:
        self._record("allgather", obj)
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        self._check_rank(root, "root")
        self._fault("scatter")
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                got = "None" if objs is None else str(len(objs))
                raise ValueError(f"scatter needs exactly {self.size} values, got {got}")
            self._record("scatter", objs)
            for r in range(self.size):
                if r != root:
                    payload = pickle.dumps(objs[r], protocol=pickle.HIGHEST_PROTOCOL)
                    self._endpoint.send_frame(
                        K_DATA, r, self._wire_tag(_COLL_TAG + 2), payload
                    )
            return objs[root]
        return self._endpoint.wait_mail(
            root, self._wire_tag(_COLL_TAG + 2), user_tag=_COLL_TAG + 2
        )

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        if len(objs) != self.size:
            raise ValueError(
                f"alltoall on rank {self.rank} needs {self.size} values, got {len(objs)}"
            )
        self._fault("alltoall")
        self._record("alltoall", list(objs))
        for r in range(self.size):
            if r != self.rank:
                payload = pickle.dumps(objs[r], protocol=pickle.HIGHEST_PROTOCOL)
                self._endpoint.send_frame(
                    K_DATA, r, self._wire_tag(_COLL_TAG + 3), payload
                )
        out: list[Any] = [None] * self.size
        out[self.rank] = objs[self.rank]
        for r in range(self.size):
            if r != self.rank:
                out[r] = self._endpoint.wait_mail(
                    r, self._wire_tag(_COLL_TAG + 3), user_tag=_COLL_TAG + 3
                )
        return out

    def barrier(self) -> None:
        self._fault("barrier")
        self._record("barrier", nbytes=0)
        # Rooted fan-in + fan-out: everyone has arrived once the root's
        # release reaches them (the GroupComm construction).
        self.gather(None, root=0)
        self.bcast(None, root=0)

    # -- structure --------------------------------------------------------
    def dup(self) -> "TcpComm":
        """Collectively duplicate into an independent wire-tag context."""
        if self.rank == 0:
            new_ctx = self._cluster.new_context_id()
            payload = pickle.dumps(new_ctx, protocol=pickle.HIGHEST_PROTOCOL)
            for r in range(1, self.size):
                self._endpoint.send_frame(
                    K_DATA, r, self._wire_tag(_DUP_TAG), payload
                )
        else:
            new_ctx = self._endpoint.wait_mail(
                0, self._wire_tag(_DUP_TAG), user_tag=_DUP_TAG
            )
        return TcpComm(self._cluster, self._endpoint, ctx=new_ctx)
