"""Reduction operators for collective operations.

Operators work on scalars, sequences, and numpy arrays.  For numpy inputs
the combining step is fully vectorized (per the HPC guides: never loop over
array elements in Python when an ufunc exists).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

import numpy as np

Combiner = Callable[[Any, Any], Any]


def _np_pairwise(ufunc: np.ufunc) -> Combiner:
    def combine(a: Any, b: Any) -> Any:
        return ufunc(a, b)

    return combine


class ReduceOp:
    """A named, associative, commutative reduction operator.

    Parameters
    ----------
    name:
        Human-readable identifier (used in profiler output and errors).
    combine:
        Binary combiner ``combine(acc, value) -> acc`` applied in rank order
        ``0..size-1`` so results are deterministic.
    """

    __slots__ = ("name", "combine")

    def __init__(self, name: str, combine: Combiner):
        self.name = name
        self.combine = combine

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ReduceOp({self.name})"

    def reduce(self, values: Sequence[Any]) -> Any:
        """Reduce ``values`` (one per rank, rank order) to a single value."""
        if not values:
            raise ValueError(f"cannot reduce an empty sequence with {self.name}")
        it: Iterable[Any] = iter(values)
        acc = next(iter(it))
        # Copy the accumulator when it is a numpy array so in-place combiners
        # never alias a rank's contribution buffer.
        if isinstance(acc, np.ndarray):
            acc = acc.copy()
        for value in it:
            acc = self.combine(acc, value)
        return acc


#: Schema merge names (``repro.core.red_obj.Field.merge``) that map to
#: elementwise ufuncs.  A columnar combination map whose every field names
#: one of these can be globally combined by a contiguous allreduce.
MERGE_UFUNCS: dict[str, np.ufunc] = {
    "sum": np.add,
    "prod": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
}


def merge_identity(merge: str, dtype: Any) -> Any:
    """Identity element of a schema merge for ``dtype``.

    Used to pad a rank's packed records out to the global key union
    before the contiguous allreduce: a key the rank never touched must
    contribute nothing to any field.
    """
    dt = np.dtype(dtype)
    if merge == "sum":
        return 0
    if merge == "prod":
        return 1
    if merge == "min":
        return np.inf if dt.kind == "f" else np.iinfo(dt).max
    if merge == "max":
        return -np.inf if dt.kind == "f" else np.iinfo(dt).min
    raise ValueError(f"no identity for merge {merge!r}")


def structured_reduce_op(
    names: Sequence[str], merges: Sequence[str]
) -> ReduceOp:
    """A :class:`ReduceOp` over structured record arrays.

    Each field combines with its own ufunc (``MERGE_UFUNCS[merge]``),
    applied in place on the accumulator — the per-field analogue of
    ``MPI_Allreduce`` with a user-defined op on a derived datatype.
    """
    pairs = [(name, MERGE_UFUNCS[m]) for name, m in zip(names, merges)]

    def combine(acc: Any, value: Any) -> Any:
        for name, ufunc in pairs:
            ufunc(acc[name], value[name], out=acc[name])
        return acc

    return ReduceOp("structured", combine)


def _nan_overlay(acc: Any, value: Any) -> Any:
    """Overwrite ``acc`` with the non-NaN elements of ``value``.

    Associative overlay for assembling distributed partial outputs:
    positions a rank did not write are NaN and contribute nothing;
    written positions win in rank order (later ranks override earlier
    ones, matching a sequential overlay loop).
    """
    acc = np.asarray(acc)
    value = np.asarray(value)
    mask = ~np.isnan(value)
    acc[mask] = value[mask]
    return acc


SUM = ReduceOp("sum", _np_pairwise(np.add))
PROD = ReduceOp("prod", _np_pairwise(np.multiply))
MAX = ReduceOp("max", _np_pairwise(np.maximum))
MIN = ReduceOp("min", _np_pairwise(np.minimum))
LAND = ReduceOp("land", lambda a, b: np.logical_and(a, b))
LOR = ReduceOp("lor", lambda a, b: np.logical_or(a, b))
CONCAT = ReduceOp("concat", lambda a, b: list(a) + list(b))
NANOVERLAY = ReduceOp("nanoverlay", _nan_overlay)


def as_reduce_op(op: ReduceOp | Combiner | str) -> ReduceOp:
    """Coerce ``op`` to a :class:`ReduceOp`.

    Accepts a ``ReduceOp``, one of the builtin names (``"sum"``, ``"max"``,
    ...), or a bare binary callable.
    """
    if isinstance(op, ReduceOp):
        return op
    if isinstance(op, str):
        try:
            return _BUILTIN[op]
        except KeyError:
            raise ValueError(f"unknown reduce op name: {op!r}") from None
    if callable(op):
        return ReduceOp(getattr(op, "__name__", "custom"), op)
    raise TypeError(f"cannot interpret {op!r} as a reduce op")


_BUILTIN = {
    "sum": SUM,
    "prod": PROD,
    "max": MAX,
    "min": MIN,
    "land": LAND,
    "lor": LOR,
    "concat": CONCAT,
    "nanoverlay": NANOVERLAY,
}
