"""The communicator interface the Smart runtime is written against.

This plays the role MPI plays for the original C++ Smart: the runtime and
the simulations call only methods defined here, so the same analytics code
runs unchanged on :class:`~repro.comm.local.LocalComm` (one rank, zero
overhead) and :class:`~repro.comm.sim.SimComm` (N SPMD ranks as threads).

Naming follows mpi4py conventions: lowercase methods move generic Python
objects; the capitalized ``Allreduce`` moves numpy buffers elementwise and
is what the low-level baseline analytics use (mirroring the paper's
``MPI_Allreduce`` on contiguous arrays, Section 5.3).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Sequence

import numpy as np

from .errors import InvalidRankError
from .profiler import TrafficProfiler
from .reduce_ops import ReduceOp, as_reduce_op


class Request:
    """Handle for a nonblocking operation (mpi4py ``Request`` analog).

    ``wait()`` blocks until completion and returns the received object
    (``None`` for sends); ``test()`` polls without blocking.
    """

    __slots__ = ("_resolve", "_done", "_value")

    def __init__(self, resolve: Callable[[], Any] | None, value: Any = None):
        self._resolve = resolve
        self._done = resolve is None
        self._value = value

    @classmethod
    def _completed(cls, value: Any) -> "Request":
        return cls(None, value)

    @classmethod
    def _deferred(cls, resolve: Callable[[], Any]) -> "Request":
        return cls(resolve)

    def wait(self) -> Any:
        """Block until the operation completes; return its result."""
        if not self._done:
            assert self._resolve is not None
            self._value = self._resolve()
            self._resolve = None
            self._done = True
        return self._value

    def test(self) -> tuple[bool, Any]:
        """(completed, result-or-None) without blocking on a receive."""
        return (self._done, self._value if self._done else None)


class Communicator(ABC):
    """Abstract SPMD communicator.

    Every method with a ``root`` argument follows MPI rooted-collective
    semantics: non-root ranks pass their contribution and receive ``None``
    (for :meth:`gather` / :meth:`reduce`) or the broadcast value (for
    :meth:`bcast` / :meth:`scatter`).
    """

    #: Optional traffic profiler; ``None`` disables accounting.
    profiler: TrafficProfiler | None = None

    # -- identity ---------------------------------------------------------
    @property
    @abstractmethod
    def rank(self) -> int:
        """This rank's index in ``[0, size)``."""

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of ranks in the communicator."""

    @property
    def is_master(self) -> bool:
        """True on rank 0 (the paper's 'master node' for global combination)."""
        return self.rank == 0

    # -- point to point ---------------------------------------------------
    @abstractmethod
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send a Python object to ``dest`` (blocking, buffered)."""

    @abstractmethod
    def recv(self, source: int, tag: int = 0) -> Any:
        """Receive a Python object from ``source`` (blocking)."""

    # -- nonblocking point to point (mpi4py-style isend/irecv) -------------
    def isend(self, obj: Any, dest: int, tag: int = 0) -> "Request":
        """Nonblocking send; returns a :class:`Request`.

        All sends in this substrate are buffered, so the send completes
        immediately; the request exists for API parity with MPI code.
        """
        self.send(obj, dest, tag)
        return Request._completed(None)

    def irecv(self, source: int, tag: int = 0) -> "Request":
        """Nonblocking receive; ``Request.wait()`` blocks and returns the
        message.  Lets halo-exchange code post receives before sends, as
        MPI programs do."""
        return Request._deferred(lambda: self.recv(source, tag))

    def sendrecv(
        self, obj: Any, dest: int, source: int, sendtag: int = 0, recvtag: int = 0
    ) -> Any:
        """Combined send+receive (``MPI_Sendrecv``): deadlock-free pairwise
        exchange — the idiom halo exchanges are written in."""
        self.send(obj, dest, tag=sendtag)
        return self.recv(source, tag=recvtag)

    # -- collectives ------------------------------------------------------
    @abstractmethod
    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""

    @abstractmethod
    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; returns the value on all ranks."""

    @abstractmethod
    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one value per rank to ``root`` (rank order)."""

    @abstractmethod
    def allgather(self, obj: Any) -> list[Any]:
        """Gather one value per rank to every rank (rank order)."""

    @abstractmethod
    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter ``objs[i]`` from ``root`` to rank ``i``."""

    @abstractmethod
    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        """Exchange ``objs[j]`` from each rank ``i`` to each rank ``j``."""

    def reduce(
        self, obj: Any, op: ReduceOp | Callable[[Any, Any], Any] | str = "sum", root: int = 0
    ) -> Any:
        """Reduce one value per rank onto ``root`` (None elsewhere)."""
        rop = as_reduce_op(op)
        values = self.gather(obj, root=root)
        if values is None:
            return None
        return rop.reduce(values)

    def allreduce(self, obj: Any, op: ReduceOp | Callable[[Any, Any], Any] | str = "sum") -> Any:
        """Reduce one value per rank; every rank receives the result."""
        rop = as_reduce_op(op)
        return rop.reduce(self.allgather(obj))

    # -- numpy buffer collectives (the 'fast path') -----------------------
    def Allreduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray, op: str = "sum") -> None:
        """Elementwise allreduce of numpy buffers into ``recvbuf``.

        This is the call the hand-written low-level baselines use; it is the
        contiguous-buffer ``MPI_Allreduce`` of the paper's Section 5.3.
        """
        if sendbuf.shape != recvbuf.shape:
            raise ValueError(
                f"Allreduce shape mismatch: send {sendbuf.shape} vs recv {recvbuf.shape}"
            )
        result = self.allreduce(sendbuf, op=op)
        np.copyto(recvbuf, result)

    def Bcast(self, buf: np.ndarray, root: int = 0) -> None:
        """In-place broadcast of a numpy buffer."""
        result = self.bcast(buf if self.rank == root else None, root=root)
        if self.rank != root:
            np.copyto(buf, result)

    # -- structure --------------------------------------------------------
    @abstractmethod
    def dup(self) -> "Communicator":
        """Duplicate the communicator into an independent context.

        Space-sharing mode gives the simulation and the analytics tasks
        separate contexts so their collectives never interleave (the
        ``MPI_THREAD_MULTIPLE`` concern of Listing 2).
        """

    def _check_rank(self, r: int, what: str = "rank") -> None:
        if not 0 <= r < self.size:
            raise InvalidRankError(f"{what} {r} out of range [0, {self.size})")

    def _record(self, op: str, payload: Any = None, nbytes: int | None = None) -> None:
        if self.profiler is not None:
            self.profiler.record(op, payload, nbytes)
