"""Errors raised by the communication substrate.

The substrate mimics MPI error behaviour: a failure on any rank aborts the
whole SPMD job, and every other rank that is blocked inside a communication
call observes :class:`CommAborted` rather than hanging forever.
"""

from __future__ import annotations


class CommError(RuntimeError):
    """Base class for all communication-substrate errors."""


class CommAborted(CommError):
    """The SPMD job was aborted (typically because a peer rank raised).

    Mirrors ``MPI_Abort`` semantics: once any rank calls abort (or dies with
    an exception), all ranks blocked in communication calls raise this.
    """


class RankMismatchError(CommError):
    """A collective was invoked with inconsistent arguments across ranks."""


class InvalidRankError(CommError, ValueError):
    """A point-to-point call referenced a rank outside ``[0, size)``."""


class SpmdError(CommError):
    """One or more ranks of an SPMD launch raised an exception.

    Attributes
    ----------
    failures:
        Mapping from rank to the exception that rank raised.
    """

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        detail = "; ".join(
            f"rank {rank}: {type(exc).__name__}: {exc}"
            for rank, exc in sorted(self.failures.items())
        )
        super().__init__(f"SPMD launch failed on {len(self.failures)} rank(s): {detail}")
