"""Errors raised by the communication substrate.

The substrate mimics MPI error behaviour: a failure on any rank aborts the
whole SPMD job, and every other rank that is blocked inside a communication
call observes :class:`CommAborted` rather than hanging forever.
"""

from __future__ import annotations


class CommError(RuntimeError):
    """Base class for all communication-substrate errors."""


class CommAborted(CommError):
    """The SPMD job was aborted (typically because a peer rank raised).

    Mirrors ``MPI_Abort`` semantics: once any rank calls abort (or dies with
    an exception), all ranks blocked in communication calls raise this.

    When the teardown path knows who started the abort, the origin rides
    along so :class:`SpmdError` aggregation can point peers' secondary
    failures at the root cause:

    Attributes
    ----------
    origin_rank:
        The rank whose failure initiated the abort (``None`` when the
        abort came from outside the rank set, e.g. a watchdog).
    origin_exc_type:
        Class name of the originating exception (``None`` if unknown).
    """

    def __init__(
        self,
        message: str = "SPMD job aborted",
        *,
        origin_rank: int | None = None,
        origin_exc_type: str | None = None,
    ):
        if origin_rank is not None:
            origin = f"aborted by rank {origin_rank}"
            if origin_exc_type:
                origin += f" ({origin_exc_type})"
            message = f"{message} [{origin}]"
        super().__init__(message)
        self.origin_rank = origin_rank
        self.origin_exc_type = origin_exc_type


class CommTimeoutError(CommError):
    """A per-call communication deadline expired.

    Raised on the rank whose ``recv`` or collective exceeded the
    cluster's per-call ``deadline`` (distinct from :class:`CommAborted`,
    which peers observe once the job is torn down).  Gives supervised
    recovery a precise signal — "this call stalled" — instead of only
    the coarse whole-job barrier timeout.

    Attributes
    ----------
    source:
        Peer rank the stalled call was waiting on (``None`` for
        collectives, which wait on every rank at once).
    tag:
        Message tag of the stalled point-to-point call (``None`` for
        collectives).
    deadline_seconds:
        The per-call deadline that expired.  Supervised recovery and the
        chaos reports read these attributes instead of parsing the
        message.
    """

    def __init__(
        self,
        message: str,
        *,
        source: int | None = None,
        tag: int | None = None,
        deadline_seconds: float | None = None,
    ):
        context = []
        if source is not None:
            context.append(f"source={source}")
        if tag is not None:
            context.append(f"tag={tag}")
        if deadline_seconds is not None:
            context.append(f"deadline={deadline_seconds:g}s")
        if context:
            message = f"{message} [{', '.join(context)}]"
        super().__init__(message)
        self.source = source
        self.tag = tag
        self.deadline_seconds = deadline_seconds


class FrameCorruptionError(CommError):
    """A TCP frame failed its CRC / structural check on receive.

    The framing layer (:mod:`repro.comm.tcp`) detects payload corruption
    before deserialization; supervised layers react by replaying from
    the last consistent state instead of folding garbage into a map.
    """


class RankMismatchError(CommError):
    """A collective was invoked with inconsistent arguments across ranks."""


class InvalidRankError(CommError, ValueError):
    """A point-to-point call referenced a rank outside ``[0, size)``."""


class SpmdError(CommError):
    """One or more ranks of an SPMD launch raised an exception.

    The first failing rank's exception is chained as ``__cause__``, so
    tracebacks show the root failure rather than just this aggregate;
    exceptions carrying a ``fault_context`` attribute (injected faults)
    have that context appended to their entry in the message.

    Attributes
    ----------
    failures:
        Mapping from rank to the exception that rank raised.
    first_rank:
        Lowest rank that failed.
    first_failure:
        That rank's exception (also ``self.__cause__``).
    """

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        self.first_rank = min(self.failures)
        self.first_failure = self.failures[self.first_rank]
        parts = []
        for rank, exc in sorted(self.failures.items()):
            entry = f"rank {rank}: {type(exc).__name__}: {exc}"
            fault_context = getattr(exc, "fault_context", None)
            if fault_context:
                entry += f" [{fault_context}]"
            parts.append(entry)
        super().__init__(
            f"SPMD launch failed on {len(self.failures)} rank(s) "
            f"(first failure: rank {self.first_rank}): " + "; ".join(parts)
        )
        self.__cause__ = self.first_failure
