"""Errors raised by the communication substrate.

The substrate mimics MPI error behaviour: a failure on any rank aborts the
whole SPMD job, and every other rank that is blocked inside a communication
call observes :class:`CommAborted` rather than hanging forever.
"""

from __future__ import annotations


class CommError(RuntimeError):
    """Base class for all communication-substrate errors."""


class CommAborted(CommError):
    """The SPMD job was aborted (typically because a peer rank raised).

    Mirrors ``MPI_Abort`` semantics: once any rank calls abort (or dies with
    an exception), all ranks blocked in communication calls raise this.
    """


class CommTimeoutError(CommError):
    """A per-call communication deadline expired.

    Raised on the rank whose ``recv`` or collective exceeded the
    cluster's per-call ``deadline`` (distinct from :class:`CommAborted`,
    which peers observe once the job is torn down).  Gives supervised
    recovery a precise signal — "this call stalled" — instead of only
    the coarse whole-job barrier timeout.
    """


class RankMismatchError(CommError):
    """A collective was invoked with inconsistent arguments across ranks."""


class InvalidRankError(CommError, ValueError):
    """A point-to-point call referenced a rank outside ``[0, size)``."""


class SpmdError(CommError):
    """One or more ranks of an SPMD launch raised an exception.

    The first failing rank's exception is chained as ``__cause__``, so
    tracebacks show the root failure rather than just this aggregate;
    exceptions carrying a ``fault_context`` attribute (injected faults)
    have that context appended to their entry in the message.

    Attributes
    ----------
    failures:
        Mapping from rank to the exception that rank raised.
    first_rank:
        Lowest rank that failed.
    first_failure:
        That rank's exception (also ``self.__cause__``).
    """

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        self.first_rank = min(self.failures)
        self.first_failure = self.failures[self.first_rank]
        parts = []
        for rank, exc in sorted(self.failures.items()):
            entry = f"rank {rank}: {type(exc).__name__}: {exc}"
            fault_context = getattr(exc, "fault_context", None)
            if fault_context:
                entry += f" [{fault_context}]"
            parts.append(entry)
        super().__init__(
            f"SPMD launch failed on {len(self.failures)} rank(s) "
            f"(first failure: rank {self.first_rank}): " + "; ".join(parts)
        )
        self.__cause__ = self.first_failure
