"""Setuptools entry point.

A classic ``setup.py`` (rather than PEP 621 metadata in pyproject.toml) is
used so that ``pip install -e .`` works on environments whose setuptools
predates bundled wheel support for PEP 660 editable installs.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Smart: a MapReduce-like framework for in-situ scientific analytics "
        "(Python reproduction)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)
