"""Choosing an execution engine and reading the unified telemetry.

The per-split reduction loop — the paper's intra-rank OpenMP region —
is pluggable: ``SchedArgs(engine=...)`` selects ``"serial"`` (default,
deterministic), ``"thread"`` (persistent thread pool; profitable when
the vectorized path hands the GIL to numpy), or ``"process"``
(persistent process pool over a shared-memory copy of the partition;
the GIL-free path for scalar chunk loops).  All three produce
bit-identical results; this example demonstrates that, shows the pooled
engines creating exactly one pool per scheduler lifetime, and reads the
unified telemetry snapshot that replaced ad-hoc statistics.

Run:  python examples/engine_selection.py
"""

from __future__ import annotations

import numpy as np

from repro.analytics import Histogram, KMeans, make_blobs
from repro.core import SchedArgs

ELEMENTS = 60_000


def histogram_counts(engine: str, data: np.ndarray) -> tuple[dict, dict]:
    """Run the histogram under one engine; return (counts, snapshot)."""
    # Schedulers are context managers: closing releases the engine pool.
    with Histogram(
        SchedArgs(num_threads=3, engine=engine, vectorized=True),
        lo=-4, hi=4, num_buckets=64,
    ) as app:
        app.run(data)
        counts = {k: v.count for k, v in app.get_combination_map().sorted_items()}
        return counts, app.telemetry_snapshot()


def main() -> None:
    data = np.random.default_rng(11).normal(size=ELEMENTS)

    print(f"histogram over {ELEMENTS} elements, 3 splits per run")
    reference = None
    for engine in ("serial", "thread", "process"):
        counts, snap = histogram_counts(engine, data)
        if reference is None:
            reference = counts
        agree = "identical" if counts == reference else "DIFFERENT"
        splits = snap["counters"].get("engine.splits", 0)
        pools = snap["counters"].get("engine.pools_created", 0)
        # In-process engines time each split; the process engine times
        # whole blocks on the parent side (workers keep their own clocks).
        timers = snap["timers"]
        timed = timers.get("engine.split_seconds") or timers.get("engine.block_seconds", {})
        print(
            f"  engine={engine:<8} counts {agree} to serial | "
            f"splits={splits} pools={pools} reduce_time={timed.get('seconds', 0.0) * 1e3:.2f} ms"
        )

    # One pool per scheduler *lifetime*: repeated runs reuse it.
    flat, _ = make_blobs(2_000, 4, 6, seed=11)
    init = flat.reshape(-1, 4)[:6].copy()
    with KMeans(
        SchedArgs(chunk_size=4, num_iters=4, extra_data=init,
                  num_threads=2, engine="thread", vectorized=True),
        dims=4,
    ) as app:
        for _ in range(3):
            app.reset()
            app.run(flat)
        snap = app.telemetry_snapshot()
        print(
            f"k-means x3 runs on engine={snap['engine']}: "
            f"pools_created={snap['counters']['engine.pools_created']} "
            f"(one per scheduler lifetime), "
            f"iterations={snap['counters']['run.iterations_run']}, "
            f"state={snap['counters']['run.state_nbytes']} bytes"
        )

    # The deprecated alias still works (emits a DeprecationWarning).
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = SchedArgs(use_threads=True)
    print(f"SchedArgs(use_threads=True) resolves to engine={legacy.resolved_engine!r}")


if __name__ == "__main__":
    main()
