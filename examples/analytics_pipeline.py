"""A Smart analytics pipeline: range discovery feeding a histogram.

Paper Listing 3 assumes the histogram's value range "can be taken as a
priori knowledge or be retrieved by an earlier Smart analytics job".
This example is that two-job pipeline, run distributed: a MinMax job
(global combination on, so every rank learns the range) followed by a
histogram over exactly that range — plus a mutual-information job
relating the simulated field to its own smoothed version, the paper's
"nuanced MapReduce pipeline" case.

Run:  python examples/analytics_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.analytics import Histogram, MinMax, MovingAverage, MutualInformation
from repro.comm import spmd_launch
from repro.core import SchedArgs
from repro.sim import LuleshProxy

RANKS = 3
STEPS = 5
EDGE = 16


def pipeline(comm):
    simulation = LuleshProxy(EDGE, comm)

    # Job 1: discover the global value range of the energy field.
    minmax = MinMax(SchedArgs(vectorized=True), comm)
    for _ in range(STEPS):
        minmax.run(simulation.advance())
    lo, hi = minmax.value_range

    # Job 2: histogram over the discovered range (fresh pass over new
    # steps, as a persistent in-situ deployment would).
    histogram = Histogram(
        SchedArgs(vectorized=True), comm,
        lo=lo, hi=np.nextafter(hi, np.inf), num_buckets=16,
    )
    simulation.reset()
    last_partition = None
    for _ in range(STEPS):
        last_partition = simulation.advance().copy()
        histogram.run(last_partition)

    # Job 3: mutual information between the raw field and its smoothed
    # version.  The smoothing stage is a *local* preprocessing job (global
    # combination off — each rank smooths its own partition, the paper's
    # pipeline pattern from Section 3.1); the MI job then combines
    # globally.
    n = last_partition.shape[0]
    smoother = MovingAverage(SchedArgs(), comm, win_size=5)
    smoother.set_global_combination(False)
    smoothed = np.full(n, np.nan)
    smoother.run2(last_partition, smoothed, global_offset=0, total_len=n)
    # Blast energy is concentrated near zero; compare in log space so the
    # joint histogram resolves the field's actual dynamic range.
    log_raw = np.log10(last_partition + 1e-9)
    log_smooth = np.log10(np.maximum(smoothed, 0.0) + 1e-9)
    log_lo, log_hi = np.log10(lo + 1e-9), np.log10(hi + 1e-9)
    pairs = np.column_stack([log_raw, log_smooth]).reshape(-1)
    mi = MutualInformation(
        SchedArgs(chunk_size=2, vectorized=True), comm,
        x_range=(log_lo, log_hi), y_range=(log_lo, log_hi), bins=12,
    )
    mi.run(pairs)

    if comm.is_master:
        return dict(lo=lo, hi=hi, counts=histogram.counts(), mi=mi.mutual_information())
    return None


def main() -> None:
    result = spmd_launch(RANKS, pipeline)[0]
    print(f"pipeline over {RANKS} ranks, Lulesh proxy edge={EDGE}, {STEPS} steps")
    print(f"job 1 (MinMax):    global energy range [{result['lo']:.4g}, {result['hi']:.4g}]")
    counts = result["counts"]
    print(f"job 2 (Histogram): {counts.sum():,} elements, "
          f"mode bucket {int(np.argmax(counts))} of 16")
    print(f"job 3 (MI):        raw vs smoothed field MI = {result['mi']:.3f} nats "
          "(> 0: the smoothed field retains information about the raw field)")


if __name__ == "__main__":
    main()
