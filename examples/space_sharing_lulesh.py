"""Space-sharing mode: simulation and analytics run concurrently (Listing 2).

One group of cores keeps the LULESH-proxy simulation advancing while
another drains time-steps from the circular buffer and runs a histogram
of the energy field — the producer/consumer structure of the paper's
Figure 4.  The buffer's blocking statistics show the coupling: whenever
analytics falls behind, the simulation blocks on a full buffer.

Run:  python examples/space_sharing_lulesh.py
"""

from __future__ import annotations

import numpy as np

from repro.analytics import Histogram
from repro.core import CoreSplit, SchedArgs, SpaceSharingDriver
from repro.sim import LuleshProxy

EDGE = 24
STEPS = 12
BUFFER_CELLS = 3


def main() -> None:
    simulation = LuleshProxy(EDGE)
    histogram = Histogram(
        SchedArgs(num_threads=1, vectorized=True, buffer_capacity=BUFFER_CELLS),
        lo=0.0, hi=float(EDGE), num_buckets=24,
    )
    driver = SpaceSharingDriver(
        simulation, histogram, CoreSplit(sim_threads=1, analytics_threads=1)
    )

    result = driver.run(num_steps=STEPS)

    counts = histogram.counts()
    print(f"space-sharing run: Lulesh proxy edge={EDGE}, {STEPS} steps, "
          f"{BUFFER_CELLS}-cell circular buffer")
    print(f"elements analyzed: {counts.sum():,} "
          f"(= {STEPS} steps x {simulation.partition_elements:,})")
    print(f"elapsed {result.elapsed_seconds * 1e3:.0f} ms "
          f"(producer {result.producer_seconds * 1e3:.0f} ms || "
          f"consumer {result.consumer_seconds * 1e3:.0f} ms)")
    print(f"producer blocked on full buffer:  {result.producer_blocks}x")
    print(f"consumer blocked on empty buffer: {result.consumer_blocks}x")

    print("\nenergy distribution (log-scaled bars):")
    nonzero = counts > 0
    log_counts = np.zeros_like(counts, dtype=float)
    log_counts[nonzero] = np.log10(counts[nonzero] + 1)
    scale = 50 / max(log_counts.max(), 1.0)
    width = EDGE / 24
    for i, count in enumerate(counts):
        if count:
            print(f"  [{i * width:5.1f}, {(i + 1) * width:5.1f}) "
                  f"{'#' * int(log_counts[i] * scale):50s} {count}")


if __name__ == "__main__":
    main()
