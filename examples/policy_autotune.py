"""Policy autotuning: launch advice and mid-run combine adaptation.

The runtime's knobs (engine backend, combine algorithm, wire format) are
transparent — every setting produces bit-identical results — so choosing
them is purely a performance question, and performance questions belong
to the cost model.  This example closes that loop twice:

1. **Launch advice.**  ``ExecutionPolicy.auto(...)`` describes the
   workload (element count, ranks, key estimate, schema shape) and lets
   :class:`~repro.core.autotune.PolicyAdvisor` pick the knobs from
   :mod:`repro.perfmodel`'s calibrated combine models.
2. **Mid-run adaptation.**  A k-means job starts on the paper-default
   gather combine; a :class:`~repro.core.autotune.CombineSwitch`
   installed as the scheduler's ``policy_adaptor`` watches the observed
   combination-map size after every iteration and flips the policy to
   allreduce when it crosses the calibrated gather/allreduce crossover
   (forced low here so a small example fires it).  Every decision lands
   in ``policy.*`` telemetry.

Run:  python examples/policy_autotune.py
"""

from __future__ import annotations

import numpy as np

from repro.core import CombineSwitch, ExecutionPolicy, PolicyAdvisor
from repro.analytics import KMeans
from repro.comm import spmd_launch

RANKS = 2
POINTS = 400
DIMS = 3
CLUSTERS = 4


def launch_advice() -> None:
    advisor = PolicyAdvisor()
    print("== launch advice ==")
    for label, hints in [
        ("small histogram, 1 rank",
         dict(elements=2048, ranks=1, key_estimate=32,
              schema_mergeable=True, has_vector_path=True)),
        ("wide window, 4 ranks",
         dict(elements=1 << 16, ranks=4, threads=2, key_estimate=1 << 16,
              schema_mergeable=True, has_vector_path=True)),
        ("big scalar loop, 4 threads",
         dict(elements=1 << 20, ranks=1, threads=4, key_estimate=16)),
    ]:
        advice = advisor.advise_with_detail(**hints)
        p = advice.policy
        print(f"  {label}:")
        print(f"    engine={p.engine.backend} threads={p.num_threads} "
              f"algo={p.combine.algorithm} wire={p.wire_format} "
              f"vec={int(p.vectorized)}")
        print(f"    crossover={advice.crossover_keys} keys  "
              f"(gather {advice.gather_seconds * 1e3:.3f} ms vs "
              f"allreduce {advice.allreduce_seconds * 1e3:.3f} ms at the "
              f"estimate)")


def kmeans_rank(comm):
    rng = np.random.default_rng(42)
    flat = rng.normal(size=POINTS * DIMS).reshape(-1, DIMS)
    flat[: POINTS // 2] += 5.0  # two well-separated blobs per axis pair
    data = np.array_split(flat, comm.size)[comm.rank].reshape(-1)

    policy = ExecutionPolicy.parse("chunk=3,iters=4").evolve(
        extra_data=flat[:CLUSTERS].copy())
    app = KMeans(policy, comm, dims=DIMS)
    # Force the crossover below k-means' k=4 keys so the tiny example
    # adapts; a real deployment omits crossover_keys and inherits the
    # machine model's calibrated boundary.
    switch = CombineSwitch(crossover_keys=2)
    app.policy_adaptor = switch
    with app:
        app.run(data.copy())
        counters = {k: v for k, v in
                    app.telemetry_snapshot()["counters"].items()
                    if k.startswith("policy.")}
        return (app.centroids(), list(switch.history),
                app.policy.combine.algorithm, counters)


def mid_run_switch() -> None:
    print("\n== mid-run combine switch (k-means, 2 ranks) ==")
    results = spmd_launch(RANKS, kmeans_rank)
    centroids, history, algorithm, counters = results[0]
    for iteration, keys, src, dst in history:
        print(f"  iteration {iteration}: observed {keys} keys -> "
              f"switched {src} to {dst}")
    print(f"  final combine algorithm: {algorithm}")
    print("  policy.* telemetry:")
    for name in sorted(counters):
        print(f"    {name} = {counters[name]}")
    same = all(np.array_equal(centroids, c) for c, _, _, _ in results)
    print(f"  centroids identical on all ranks: {same}")
    print(f"  centroids:\n{np.round(centroids, 3)}")


if __name__ == "__main__":
    launch_advice()
    mid_run_switch()
