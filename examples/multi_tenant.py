"""Multi-tenant analytics service over one resident sim step.

One simulation step, many clients: the :mod:`repro.service` front-end
accepts jobs from several tenants, admits them against per-tenant
quotas, dispatches them fairly (deficit round robin), and runs them all
against a *single* shared-memory copy of the step.  This example walks
the whole surface:

* submit mixed workloads from four tenants and read results off
  ``JobHandle``s;
* watch the ``engine.residency.shared_*`` telemetry prove one segment
  served every job;
* trip each admission gate (tenant quota, engine-seconds budget) and
  catch the structured rejection;
* flood from one tenant and observe the victim's bounded dispatch
  delay;
* read per-tenant scoped telemetry and compute the Jain fairness index.

Run:  python examples/multi_tenant.py
"""

from __future__ import annotations

import numpy as np

from repro.harness.service import fairness_index
from repro.service import (
    AnalyticsService,
    JobSpec,
    QuotaExceededError,
    TenantQuota,
)

ELEMENTS = 50_000
TENANTS = ("ada", "grace", "edsger", "barbara")
WORKLOADS = ("histogram", "minmax", "grid_aggregation", "moving_average")


def serve_mixed_jobs(data: np.ndarray) -> None:
    print(f"-- {len(TENANTS)} tenants x {len(WORKLOADS)} workloads, "
          f"one {data.nbytes >> 10} KiB resident step")
    with AnalyticsService(workers=4) as svc:
        svc.register_step("sim-step-0", data)
        handles = [
            svc.submit(JobSpec(tenant=tenant, workload=workload,
                               step="sim-step-0"))
            for tenant in TENANTS
            for workload in WORKLOADS
        ]
        svc.drain(timeout=120)

        for handle in handles[:3]:
            result = handle.result(timeout=5)
            fields = ", ".join(sorted(result))
            print(f"   {handle.spec.tenant:>8}/{handle.spec.workload:<16} "
                  f"-> fields [{fields}] "
                  f"(dispatched #{handle.dispatch_index}, "
                  f"{handle.engine_seconds * 1e3:.1f} ms)")
        print(f"   ... and {len(handles) - 3} more")

        # One shm segment no matter how many tenants read the step.
        tel = svc.telemetry
        print(f"   residency: segments="
              f"{tel.gauge('engine.residency.shared_segments')} "
              f"copies={tel.counter('engine.residency.shared_copies')} "
              f"attaches={tel.counter('engine.residency.shared_attaches')} "
              f"hit_rate={svc.store.hit_rate():.3f}")

        # Per-tenant scoped telemetry: the fairness-index input.
        seconds = [svc.tenant_scope(t).timer("engine_seconds").seconds
                   for t in TENANTS]
        for tenant, secs in zip(TENANTS, seconds):
            done = svc.tenant_scope(tenant).counter("jobs_completed")
            print(f"   {tenant:>8}: {done} jobs, {secs * 1e3:.1f} ms "
                  "engine time")
        print(f"   Jain fairness index: {fairness_index(seconds):.3f}")


def trip_admission_gates(data: np.ndarray) -> None:
    print("-- admission control: rejections are structured responses")
    svc = AnalyticsService(workers=1,
                           default_quota=TenantQuota(max_queued=2))
    svc.register_step("s", data)
    try:
        for _ in range(2):
            svc.submit(JobSpec(tenant="greedy", workload="minmax", step="s"))
        try:
            svc.submit(JobSpec(tenant="greedy", workload="minmax", step="s"))
        except QuotaExceededError as exc:
            print(f"   third submit rejected: {exc.to_dict()}")
        # Another tenant is unaffected by greedy's quota.
        ok = svc.submit(JobSpec(tenant="frugal", workload="minmax", step="s"))
        svc.start()
        svc.drain(timeout=60)
        print(f"   frugal's job still ran: status={ok.status!r}")
    finally:
        svc.close()


def bounded_delay_under_flood(data: np.ndarray) -> None:
    print("-- fair dispatch: a flood cannot starve another tenant")
    svc = AnalyticsService(workers=1, max_queue_depth=64,
                           default_quota=TenantQuota(max_queued=64),
                           quantum=float(data.size))
    svc.register_step("s", data)
    try:
        for _ in range(30):
            svc.submit(JobSpec(tenant="flooder", workload="minmax", step="s"))
        victim = svc.submit(JobSpec(tenant="victim", workload="minmax",
                                    step="s"))
        svc.start()  # workers start now, so order is purely the scheduler's
        svc.drain(timeout=120)
        print(f"   victim submitted behind 30 flood jobs, dispatched "
              f"#{victim.dispatch_index} (deficit round robin: at most "
              "one rotation behind)")
    finally:
        svc.close()


def main() -> None:
    data = np.random.default_rng(7).normal(size=ELEMENTS)
    serve_mixed_jobs(data)
    trip_admission_gates(data)
    bounded_delay_under_flood(np.ascontiguousarray(data[:4096]))


if __name__ == "__main__":
    main()
