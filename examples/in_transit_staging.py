"""In-transit and hybrid analytics placement (extension; paper Section 6).

Five SPMD ranks: three run independent emulated simulations, two are
dedicated staging ranks running the Smart histogram.  The same job runs
twice — in-transit (raw time-steps shipped to the staging ranks) and
hybrid (each simulation rank reduces locally and ships only its compact
combination map) — and reports the byte volumes, the trade these
placements exist for.

Run:  python examples/in_transit_staging.py
"""

from __future__ import annotations

import numpy as np

from repro.analytics import Histogram
from repro.comm import spmd_launch
from repro.core import InTransitDriver, SchedArgs, split_staging_comm
from repro.sim import GaussianEmulator

RANKS = 5
STAGING = 2
STEPS = 4
STEP_ELEMENTS = 20_000


def job(comm, mode):
    driver = InTransitDriver(comm, num_staging=STAGING, mode=mode)
    staging_comm = split_staging_comm(comm, STAGING)

    if driver.placement.is_staging:
        app = Histogram(
            SchedArgs(vectorized=True), staging_comm,
            lo=-4.0, hi=4.0, num_buckets=24,
        )
        driver.run_staging_side(app)
        return ("staging", app.counts())

    simulation = GaussianEmulator(STEP_ELEMENTS, seed=900 + comm.rank)
    local_scheduler = (
        Histogram(SchedArgs(vectorized=True), lo=-4.0, hi=4.0, num_buckets=24)
        if mode == "hybrid"
        else None
    )
    shipped = driver.run_simulation_side(
        simulation, STEPS, local_scheduler=local_scheduler
    )
    return ("simulation", shipped)


def main() -> None:
    n_sim = RANKS - STAGING
    print(f"{n_sim} simulation ranks -> {STAGING} staging ranks, "
          f"{STEPS} steps x {STEP_ELEMENTS:,} doubles each\n")

    reference = None
    for mode in ("in_transit", "hybrid"):
        results = spmd_launch(RANKS, job, args_per_rank=[(mode,)] * RANKS)
        shipped = sum(v for role, v in results if role == "simulation")
        counts = next(v for role, v in results if role == "staging")
        if reference is None:
            reference = counts
        assert np.array_equal(counts, reference), "modes must agree"
        print(f"{mode:11s}: shipped {shipped / 1024:8.1f} KiB from simulation "
              f"to staging ranks ({counts.sum():,} elements analyzed)")

    raw = n_sim * STEPS * STEP_ELEMENTS * 8
    print(f"\nhybrid ships local combination maps instead of raw partitions: "
          f"{raw / 1024:.0f} KiB of raw data never crosses the network.")


if __name__ == "__main__":
    main()
