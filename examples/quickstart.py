"""Quickstart: write and run a Smart analytics application.

This is the paper's Listing 3 (equi-width histogram) end to end: define a
reduction object, derive a scheduler with three sequential callbacks, and
run it in-situ over a simulation's time-steps — no parallelization code
anywhere in the application.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import RedObj, SchedArgs, Scheduler, TimeSharingDriver
from repro.sim import GaussianEmulator


# Step 1 - derive a reduction object (the value type of the reduction and
# combination maps).  One Bucket per histogram bin.
class Bucket(RedObj):
    __slots__ = ("count",)

    def __init__(self):
        self.count = 0


# Step 2 - derive a system scheduler: gen_key / accumulate / merge are
# plain sequential code; Smart handles splitting, threading, and global
# combination.
class Histogram(Scheduler):
    LO, HI, BUCKETS = -4.0, 4.0, 20

    def gen_key(self, chunk, data, combination_map):
        width = (self.HI - self.LO) / self.BUCKETS
        key = int((data[chunk.start] - self.LO) / width)
        return min(max(key, 0), self.BUCKETS - 1)

    def accumulate(self, chunk, data, red_obj, key):
        if red_obj is None:
            red_obj = Bucket()
        red_obj.count += 1
        return red_obj

    def merge(self, red_obj, com_obj):
        com_obj.count += red_obj.count
        return com_obj

    def convert(self, red_obj, out, key):
        out[key] = red_obj.count


def main() -> None:
    # Step 3 - attach the analytics to a running simulation.  The driver
    # alternates simulate/analyze per time-step (time-sharing mode); the
    # partition is analyzed in place through a read pointer, never copied.
    simulation = GaussianEmulator(step_elements=50_000, seed=7)
    histogram = Histogram(SchedArgs(num_threads=2, chunk_size=1))
    driver = TimeSharingDriver(simulation, histogram)

    result = driver.run(num_steps=10)

    out = np.zeros(Histogram.BUCKETS, dtype=np.int64)
    for key, bucket in histogram.get_combination_map().items():
        out[key] = bucket.count

    print(f"analyzed {out.sum():,} elements over 10 time-steps")
    print(f"simulation time: {result.simulate_seconds * 1e3:.1f} ms, "
          f"analytics time: {result.analyze_seconds * 1e3:.1f} ms")
    peak = histogram.stats.peak_red_objects
    print(f"peak reduction objects: {peak} (vs {out.sum():,} input elements)")
    width = (Histogram.HI - Histogram.LO) / Histogram.BUCKETS
    print("\nhistogram:")
    scale = 60 / out.max()
    for i, count in enumerate(out):
        lo = Histogram.LO + i * width
        print(f"  [{lo:+5.1f}, {lo + width:+5.1f}) {'#' * int(count * scale):60s} {count}")


if __name__ == "__main__":
    main()
