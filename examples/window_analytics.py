"""Window-based analytics with early emission (paper Section 4, Listing 5).

Smooths a noisy Heat3D temperature trace with all four window
applications (moving average, moving median, Gaussian kernel,
Savitzky-Golay) and demonstrates the early-emission optimization: with
the trigger, the runtime holds O(window) reduction objects instead of one
per input element.

Run:  python examples/window_analytics.py
"""

from __future__ import annotations

import numpy as np

from repro.analytics import (
    GaussianKernelSmoother,
    MovingAverage,
    MovingMedian,
    SavitzkyGolay,
)
from repro.core import SchedArgs
from repro.sim import Heat3D

WIN = 11


def noisy_trace(n_steps: int = 6) -> np.ndarray:
    """A single grid line of an evolving Heat3D field plus sensor noise."""
    sim = Heat3D((16, 16, 16))
    for _ in range(n_steps):
        sim.advance()
    line = sim.interior[:, 8, :].reshape(-1)  # one y-plane as a 1-D signal
    rng = np.random.default_rng(0)
    return line + rng.normal(scale=2.0, size=line.shape)


def main() -> None:
    signal = noisy_trace()
    n = signal.shape[0]
    print(f"smoothing a {n}-element Heat3D trace, window size {WIN}\n")

    apps = {
        "moving average": MovingAverage(SchedArgs(), win_size=WIN),
        "moving median": MovingMedian(SchedArgs(), win_size=WIN),
        "Gaussian kernel": GaussianKernelSmoother(SchedArgs(), win_size=WIN),
        "Savitzky-Golay": SavitzkyGolay(SchedArgs(), win_size=WIN, polyorder=2),
    }

    print(f"{'application':18s} {'residual std':>12s} {'peak objects':>13s} "
          f"{'early emissions':>16s}")
    for name, app in apps.items():
        out = np.full(n, np.nan)
        app.run2(signal, out)
        residual = np.std(signal - out)
        print(f"{name:18s} {residual:12.3f} {app.stats.peak_red_objects:13d} "
              f"{app.stats.early_emissions:16d}")

    # The comparison the paper's Fig. 11 makes: disable the trigger and
    # watch the live reduction-object count jump from O(W) to O(N).
    no_trigger = MovingAverage(
        SchedArgs(disable_early_emission=True), win_size=WIN
    )
    out = np.full(n, np.nan)
    no_trigger.run2(signal, out)
    with_trigger = apps["moving average"].stats.peak_red_objects
    print(f"\nearly emission effect (moving average): "
          f"{no_trigger.stats.peak_red_objects} live objects without the "
          f"trigger vs {with_trigger} with it "
          f"({no_trigger.stats.peak_red_objects / with_trigger:.0f}x reduction)")


if __name__ == "__main__":
    main()
