"""Volumetric multi-resolution downsampling with checkpointed analytics.

The visualization use case behind grid aggregation (paper Section 5.1,
ref [57]): every few time-steps, the evolving Heat3D temperature field is
downsampled to a coarse tile grid for rendering, using the 3-D
structural-aggregation extension.  Halfway through, the analytics state
is checkpointed and restored into a fresh scheduler — the deployment
pattern of a simulation that itself restarts from checkpoints.

Run:  python examples/volumetric_downsampling.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.analytics import TileAggregation3D
from repro.core import SchedArgs, load_checkpoint, save_checkpoint
from repro.sim import Heat3D

GRID = (16, 16, 16)
TILE = (4, 4, 4)
STEPS = 12


def render_profile(tile_means: np.ndarray) -> None:
    """Mean tile temperature per depth layer (heat enters at layer 0)."""
    for z, layer in enumerate(tile_means):
        mean = float(layer.mean())
        bar = "#" * int(mean / 2)
        print(f"    depth layer {z}: {bar:50s} {mean:6.2f}")


def main() -> None:
    sim = Heat3D(GRID)
    app = TileAggregation3D(SchedArgs(vectorized=True), shape=GRID, tile=TILE)
    ckpt = Path(tempfile.mkdtemp(prefix="smart-viz-")) / "tiles.ckpt"

    print(f"Heat3D {GRID} -> {tuple(app.tiles_per_axis)} tile grid "
          f"(tiles of {TILE}), {STEPS} steps\n")

    for step in range(STEPS):
        partition = sim.advance()
        app.reset()  # per-step snapshot, not cumulative
        app.run(partition)
        if step == STEPS // 2 - 1:
            save_checkpoint(app, ckpt, metadata={"step": step})
            print(f"checkpointed analytics state after step {step + 1} "
                  f"({ckpt.stat().st_size} bytes)\n")
        if step % 4 == 3:
            print(f"  tile-layer temperatures after step {step + 1}:")
            render_profile(app.means())
            print()

    # Restore into a brand-new scheduler, as a restarted job would.
    restored = TileAggregation3D(SchedArgs(vectorized=True), shape=GRID, tile=TILE)
    meta = load_checkpoint(restored, ckpt)
    print(f"restored checkpoint from step {meta['step'] + 1}: "
          f"{restored.num_tiles} tile means intact, "
          f"mean of hottest tile = {np.nanmax(restored.means()):.1f}")
    ckpt.unlink()


if __name__ == "__main__":
    main()
