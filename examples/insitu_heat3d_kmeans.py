"""Distributed in-situ k-means over a Heat3D simulation (paper Listing 1).

Launches a 4-rank SPMD job.  Each rank runs its slab of the Heat3D grid;
after every time-step, the rank-local output partition is handed to the
Smart scheduler (3 added lines in the simulation loop — the paper's
ease-of-use claim), and k-means centroids are combined globally.  After
the parallel region converges, the sequential code reads the final
centroids from the master — the hybrid programming view of Section 2.3.2.

The analytics tracks how the temperature-field clusters move as heat
diffuses through the domain (the paper's "k-means tracks the movement of
centroids in different time-steps" use case).

Run:  python examples/insitu_heat3d_kmeans.py
"""

from __future__ import annotations

import numpy as np

from repro.analytics import KMeans
from repro.comm import spmd_launch
from repro.core import SchedArgs
from repro.sim import Heat3D

GRID = (24, 32, 32)  # global (nz, ny, nx), decomposed along z
RANKS = 4
STEPS = 20
DIMS = 4  # consecutive temperature samples form one feature vector
K = 5


def simulation_with_insitu_analytics(comm):
    """The SPMD body: a simulation loop with 3 lines of Smart calls."""
    simulation = Heat3D(GRID, comm)
    init_centroids = np.linspace(0.0, 100.0, K)[:, None] * np.ones((K, DIMS))

    args = SchedArgs(
        num_threads=2, chunk_size=DIMS, num_iters=3,
        extra_data=init_centroids, vectorized=True,
    )
    smart = KMeans(args, comm, dims=DIMS)

    trajectory = []
    for step in range(STEPS):
        partition = simulation.advance()  # this rank's new time-step
        usable = (partition.shape[0] // DIMS) * DIMS
        smart.run(partition[:usable])  # <- the in-situ analytics launch
        if comm.is_master and step % 5 == 4:
            trajectory.append(smart.centroids().mean(axis=1).copy())

    # Sequential programming view: the global result is readable after the
    # parallel code converges.
    return trajectory if comm.is_master else None


def main() -> None:
    results = spmd_launch(RANKS, simulation_with_insitu_analytics)
    trajectory = results[0]
    print(f"in-situ k-means on Heat3D {GRID} over {STEPS} steps, {RANKS} ranks")
    print("centroid mean temperature after every 5 steps (heat diffusing):")
    for i, centroids in enumerate(trajectory):
        formatted = ", ".join(f"{c:7.2f}" for c in sorted(centroids))
        print(f"  step {5 * (i + 1):3d}: [{formatted}]")
    spread_first = max(trajectory[0]) - min(trajectory[0])
    spread_last = max(trajectory[-1]) - min(trajectory[-1])
    print(f"cluster spread {spread_first:.2f} -> {spread_last:.2f} "
          "(clusters track the evolving field)")


if __name__ == "__main__":
    main()
