"""Cross-validate our reference implementations against independent ones.

The test suite trusts the ``reference_*`` functions; these tests check
them against third-party implementations (scipy/numpy) wherever an
equivalent exists, so a bug in a reference cannot silently bless a
matching bug in the runtime.
"""

import numpy as np
import pytest
import scipy.cluster.vq
import scipy.signal
from numpy.lib.stride_tricks import sliding_window_view

from repro.analytics import (
    reference_histogram,
    reference_kmeans,
    reference_logreg,
    reference_moving_average,
    reference_moving_median,
    reference_savgol,
)


class TestKMeansVsScipy:
    def test_matches_scipy_kmeans2_lloyd(self, rng):
        points = rng.normal(size=(300, 3))
        init = points[:4].copy()
        iters = 7
        ours = reference_kmeans(points.reshape(-1), init, iters)
        scipy_centroids, _ = scipy.cluster.vq.kmeans2(
            points, init.copy(), iter=iters, minit="matrix"
        )
        assert np.allclose(ours, scipy_centroids, atol=1e-8)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scipy_across_seeds(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(150, 2))
        init = points[:3].copy()
        ours = reference_kmeans(points.reshape(-1), init, 5)
        theirs, _ = scipy.cluster.vq.kmeans2(points, init.copy(), iter=5,
                                             minit="matrix")
        assert np.allclose(ours, theirs, atol=1e-8)


class TestWindowsVsNumpy:
    def test_moving_average_interior_matches_convolution(self, rng):
        data = rng.normal(size=200)
        win = 9
        ours = reference_moving_average(data, win)
        conv = np.convolve(data, np.ones(win) / win, mode="valid")
        half = win // 2
        assert np.allclose(ours[half:-half], conv, atol=1e-10)

    def test_moving_median_interior_matches_sliding_view(self, rng):
        data = rng.normal(size=200)
        win = 7
        ours = reference_moving_median(data, win)
        medians = np.median(sliding_window_view(data, win), axis=1)
        half = win // 2
        assert np.allclose(ours[half:-half], medians)

    def test_savgol_interior_matches_scipy(self, rng):
        data = rng.normal(size=150)
        ours = reference_savgol(data, 11, 3)
        theirs = scipy.signal.savgol_filter(data, 11, 3)
        assert np.allclose(ours[5:-5], theirs[5:-5], atol=1e-9)


class TestHistogramVsNumpy:
    def test_matches_numpy_away_from_bin_edges(self, rng):
        # Compare on data kept strictly inside bins so float edge
        # conventions (ours: floor formula; numpy's: edge arrays) agree.
        buckets, lo, hi = 20, 0.0, 1.0
        width = (hi - lo) / buckets
        data = (rng.integers(0, buckets, size=2000) + 0.5) * width
        ours = reference_histogram(data, lo, hi, buckets)
        theirs, _ = np.histogram(data, bins=buckets, range=(lo, hi))
        assert np.array_equal(ours, theirs)


class TestLogRegVsClosedForm:
    def test_gradient_direction_matches_numerical_gradient(self, rng):
        """One GD step moves along the numerical gradient of the loss."""
        n, dims = 400, 3
        X = rng.normal(size=(n, dims))
        y = (rng.random(n) < 0.5).astype(np.float64)
        flat = np.concatenate([X, y[:, None]], axis=1).reshape(-1)

        def loss(w):
            p = 1 / (1 + np.exp(-(X @ w)))
            eps = 1e-12
            return -np.mean(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps))

        w1 = reference_logreg(flat, dims, num_iters=1, learning_rate=0.1)
        # Numerical gradient at w=0.
        num_grad = np.empty(dims)
        h = 1e-6
        for d in range(dims):
            e = np.zeros(dims)
            e[d] = h
            num_grad[d] = (loss(e) - loss(-e)) / (2 * h)
        assert np.allclose(w1, -0.1 * num_grad, atol=1e-5)
