"""3-D structural analytics (tile aggregation, cubic moving average)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import (
    MovingAverage3D,
    TileAggregation3D,
    reference_moving_average_3d,
    reference_tile_aggregation_3d,
)
from repro.comm import spmd_launch
from repro.core import SchedArgs, merge_distributed_output

SHAPE = (6, 5, 4)


@pytest.fixture
def field(rng):
    return rng.normal(size=SHAPE)


def slab_partition(field, size, rank):
    z_sizes = [len(a) for a in np.array_split(np.arange(field.shape[0]), size)]
    z0 = sum(z_sizes[:rank])
    part = field[z0 : z0 + z_sizes[rank]].reshape(-1)
    offset = z0 * field.shape[1] * field.shape[2]
    return part, offset


class TestTileAggregation:
    def test_matches_reference(self, field):
        app = TileAggregation3D(SchedArgs(), shape=SHAPE, tile=(2, 2, 2))
        app.run(field.reshape(-1))
        assert np.allclose(app.means(), reference_tile_aggregation_3d(field, (2, 2, 2)))

    def test_vectorized_equals_scalar(self, field):
        scalar = TileAggregation3D(SchedArgs(), shape=SHAPE, tile=(3, 2, 2))
        vector = TileAggregation3D(
            SchedArgs(vectorized=True), shape=SHAPE, tile=(3, 2, 2)
        )
        scalar.run(field.reshape(-1))
        vector.run(field.reshape(-1))
        assert np.allclose(scalar.means(), vector.means())

    def test_partial_edge_tiles(self, field):
        # 5 and 4 are not multiples of 3: edge tiles must average only the
        # cells they actually cover.
        app = TileAggregation3D(SchedArgs(), shape=SHAPE, tile=(3, 3, 3))
        app.run(field.reshape(-1))
        assert np.allclose(app.means(), reference_tile_aggregation_3d(field, (3, 3, 3)))

    def test_tile_of_ones_is_identity(self, field):
        app = TileAggregation3D(SchedArgs(), shape=SHAPE, tile=(1, 1, 1))
        app.run(field.reshape(-1))
        assert np.allclose(app.means(), field)

    @pytest.mark.parametrize("ranks", [2, 3])
    def test_rank_invariant_with_slab_offsets(self, field, ranks):
        expected = reference_tile_aggregation_3d(field, (2, 2, 2))

        def body(comm):
            part, offset = slab_partition(field, comm.size, comm.rank)
            app = TileAggregation3D(SchedArgs(), comm, shape=SHAPE, tile=(2, 2, 2))
            app.run(part, global_offset=offset, total_len=field.size)
            return app.means()

        for means in spmd_launch(ranks, body, timeout=30):
            assert np.allclose(means, expected)

    def test_mass_conservation(self, field):
        """Sum over (tile mean x tile population) equals the field sum."""
        app = TileAggregation3D(SchedArgs(), shape=SHAPE, tile=(2, 3, 2))
        app.run(field.reshape(-1))
        total = sum(o.total for o in app.get_combination_map().values())
        count = sum(o.count for o in app.get_combination_map().values())
        assert total == pytest.approx(field.sum())
        assert count == field.size

    def test_validation(self):
        with pytest.raises(ValueError):
            TileAggregation3D(SchedArgs(), shape=SHAPE, tile=(0, 1, 1))
        with pytest.raises(ValueError):
            TileAggregation3D(SchedArgs(chunk_size=2), shape=SHAPE, tile=(1, 1, 1))


class TestMovingAverage3D:
    def test_matches_reference(self, field):
        app = MovingAverage3D(SchedArgs(), shape=SHAPE, win_size=3)
        out = np.full(field.size, np.nan)
        app.run2(field.reshape(-1), out)
        assert np.allclose(
            out.reshape(SHAPE), reference_moving_average_3d(field, 3)
        )

    def test_early_emission_fires_for_interior(self, field):
        app = MovingAverage3D(SchedArgs(), shape=SHAPE, win_size=3)
        out = np.full(field.size, np.nan)
        app.run2(field.reshape(-1), out)
        interior = (SHAPE[0] - 2) * (SHAPE[1] - 2) * (SHAPE[2] - 2)
        assert app.stats.early_emissions == interior

    def test_trigger_disabled_same_results(self, field):
        on = MovingAverage3D(SchedArgs(), shape=SHAPE, win_size=3)
        off = MovingAverage3D(
            SchedArgs(disable_early_emission=True), shape=SHAPE, win_size=3
        )
        out_on = np.full(field.size, np.nan)
        out_off = np.full(field.size, np.nan)
        on.run2(field.reshape(-1), out_on)
        off.run2(field.reshape(-1), out_off)
        assert np.allclose(out_on, out_off)
        assert off.stats.peak_red_objects > on.stats.peak_red_objects

    def test_constant_field_unchanged(self):
        field = np.full(SHAPE, 2.5)
        app = MovingAverage3D(SchedArgs(), shape=SHAPE, win_size=3)
        out = np.full(field.size, np.nan)
        app.run2(field.reshape(-1), out)
        assert np.allclose(out, 2.5)

    @pytest.mark.parametrize("ranks", [2, 3])
    def test_rank_invariant(self, field, ranks):
        expected = reference_moving_average_3d(field, 3)

        def body(comm):
            part, offset = slab_partition(field, comm.size, comm.rank)
            app = MovingAverage3D(SchedArgs(), comm, shape=SHAPE, win_size=3)
            out = np.full(field.size, np.nan)
            app.run2(part, out, global_offset=offset, total_len=field.size)
            return merge_distributed_output(comm, out)

        for merged in spmd_launch(ranks, body, timeout=60):
            assert np.allclose(merged.reshape(SHAPE), expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            MovingAverage3D(SchedArgs(), shape=SHAPE, win_size=4)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    tz=st.integers(min_value=1, max_value=4),
    ty=st.integers(min_value=1, max_value=4),
    tx=st.integers(min_value=1, max_value=4),
)
def test_tile_means_property(seed, tz, ty, tx):
    field = np.random.default_rng(seed).normal(size=(4, 5, 3))
    app = TileAggregation3D(
        SchedArgs(vectorized=True), shape=(4, 5, 3), tile=(tz, ty, tx)
    )
    app.run(field.reshape(-1))
    assert np.allclose(
        app.means(), reference_tile_aggregation_3d(field, (tz, ty, tx))
    )
