"""K-means application (paper Listing 4)."""

import numpy as np
import pytest

from repro.analytics import KMeans, make_blobs, reference_kmeans
from repro.comm import spmd_launch
from repro.core import SchedArgs


def build(init, iters=5, vectorized=False, comm=None, threads=1):
    dims = init.shape[1]
    return KMeans(
        SchedArgs(
            chunk_size=dims, num_iters=iters, extra_data=init,
            vectorized=vectorized, num_threads=threads,
        ),
        comm, dims=dims,
    )


@pytest.fixture
def blobs():
    flat, centers = make_blobs(600, 3, 4, seed=11)
    init = flat.reshape(-1, 3)[:4].copy()
    return flat, init, centers


class TestCorrectness:
    def test_matches_reference_lloyd(self, blobs):
        flat, init, _ = blobs
        app = build(init)
        app.run(flat)
        assert np.allclose(app.centroids(), reference_kmeans(flat, init, 5), atol=1e-10)

    def test_vectorized_equals_scalar(self, blobs):
        flat, init, _ = blobs
        scalar, vector = build(init), build(init, vectorized=True)
        scalar.run(flat)
        vector.run(flat)
        assert np.allclose(scalar.centroids(), vector.centroids(), atol=1e-10)

    def test_recovers_blob_centers(self, blobs):
        flat, init, centers = blobs
        app = build(init, iters=25, vectorized=True)
        app.run(flat)
        found = app.centroids()
        # Each true centre has a recovered centroid nearby.
        for c in centers:
            assert np.min(np.linalg.norm(found - c, axis=1)) < 0.5

    def test_empty_cluster_keeps_centroid(self):
        points = np.array([[0.0, 0.0], [0.1, 0.1], [0.2, 0.0]])
        init = np.array([[0.0, 0.0], [100.0, 100.0]])  # second never wins
        app = build(init, iters=3)
        app.run(points.reshape(-1))
        assert np.allclose(app.centroids()[1], [100.0, 100.0])

    def test_converged_assignment_is_fixed_point(self, blobs):
        flat, init, _ = blobs
        app = build(init, iters=40, vectorized=True)
        app.run(flat)
        c40 = app.centroids()
        assert np.allclose(c40, reference_kmeans(flat, init, 41), atol=1e-8)

    @pytest.mark.parametrize("ranks", [2, 4])
    @pytest.mark.parametrize("vectorized", [False, True])
    def test_rank_invariant(self, blobs, ranks, vectorized):
        flat, init, _ = blobs
        expected = reference_kmeans(flat, init, 4)

        def body(comm):
            pts = flat.reshape(-1, 3)
            part = np.array_split(pts, comm.size)[comm.rank].reshape(-1)
            app = build(init, iters=4, vectorized=vectorized, comm=comm)
            app.run(part)
            return app.centroids()

        for c in spmd_launch(ranks, body, timeout=60):
            assert np.allclose(c, expected, atol=1e-8)

    def test_thread_invariant(self, blobs):
        flat, init, _ = blobs
        single, multi = build(init), build(init, threads=4)
        single.run(flat)
        multi.run(flat)
        assert np.allclose(single.centroids(), multi.centroids(), atol=1e-8)

    def test_centroids_tracked_across_time_steps(self, blobs):
        flat, init, _ = blobs
        app = build(init, iters=2)
        app.run(flat)
        first = app.centroids().copy()
        app.run(flat)  # process_extra_data must NOT reinitialize
        assert np.allclose(app.centroids(), reference_kmeans(flat, init, 4), atol=1e-8)
        assert not np.allclose(app.centroids(), init)
        assert not np.array_equal(first, init)


class TestValidation:
    def test_requires_extra_data(self):
        app = KMeans(SchedArgs(chunk_size=2), dims=2)
        with pytest.raises(ValueError, match="centroids"):
            app.run(np.zeros(4))

    def test_chunk_size_must_equal_dims(self):
        with pytest.raises(ValueError, match="chunk_size"):
            KMeans(SchedArgs(chunk_size=3), dims=2)

    def test_centroid_shape_checked(self):
        app = KMeans(SchedArgs(chunk_size=2, extra_data=np.zeros((4, 3))), dims=2)
        with pytest.raises(ValueError, match=r"\(k, 2\)"):
            app.run(np.zeros(4))
