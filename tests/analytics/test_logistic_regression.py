"""Logistic regression application."""

import numpy as np
import pytest

from repro.analytics import LogisticRegression, make_logreg_samples, reference_logreg
from repro.comm import spmd_launch
from repro.core import SchedArgs


def build(dims=5, iters=6, vectorized=False, comm=None, lr=0.1):
    return LogisticRegression(
        SchedArgs(chunk_size=dims + 1, num_iters=iters, vectorized=vectorized),
        comm, dims=dims, learning_rate=lr,
    )


class TestCorrectness:
    def test_matches_reference_exactly(self):
        flat, _ = make_logreg_samples(800, 5, seed=1)
        app = build()
        app.run(flat)
        assert np.allclose(app.weights, reference_logreg(flat, 5, 6), atol=1e-10)

    def test_vectorized_equals_scalar(self):
        flat, _ = make_logreg_samples(400, 4, seed=2)
        scalar = build(dims=4, vectorized=False)
        vector = build(dims=4, vectorized=True)
        scalar.run(flat)
        vector.run(flat)
        assert np.allclose(scalar.weights, vector.weights, atol=1e-10)

    def test_initial_weights_via_extra_data(self):
        flat, _ = make_logreg_samples(300, 3, seed=3)
        init = np.array([0.5, -0.5, 0.25])
        app = LogisticRegression(
            SchedArgs(chunk_size=4, num_iters=4, extra_data=init), dims=3
        )
        app.run(flat)
        expected = reference_logreg(flat, 3, 4, init_weights=init)
        assert np.allclose(app.weights, expected, atol=1e-10)

    def test_learns_the_generating_weights(self):
        true_w = np.array([2.0, -1.5, 0.8])
        flat, _ = make_logreg_samples(8000, 3, true_weights=true_w, seed=4)
        app = build(dims=3, iters=150, vectorized=True, lr=0.5)
        app.run(flat)
        # Direction recovered (magnitude shrinks with finite data/steps).
        cosine = app.weights @ true_w / (
            np.linalg.norm(app.weights) * np.linalg.norm(true_w)
        )
        assert cosine > 0.98

    def test_gradient_step_reduces_loss(self):
        flat, _ = make_logreg_samples(2000, 4, seed=5)
        block = flat.reshape(-1, 5)
        X, y = block[:, :4], block[:, 4]

        def loss(w):
            p = 1 / (1 + np.exp(-(X @ w)))
            eps = 1e-12
            return -np.mean(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps))

        one = build(dims=4, iters=1, vectorized=True)
        one.run(flat)
        ten = build(dims=4, iters=10, vectorized=True)
        ten.run(flat)
        assert loss(ten.weights) < loss(one.weights) < loss(np.zeros(4))

    @pytest.mark.parametrize("ranks", [2, 3])
    @pytest.mark.parametrize("vectorized", [False, True])
    def test_rank_invariant(self, ranks, vectorized):
        flat, _ = make_logreg_samples(600, 4, seed=6)
        expected = reference_logreg(flat, 4, 5)

        def body(comm):
            rows = flat.reshape(-1, 5)
            part = np.array_split(rows, comm.size)[comm.rank].reshape(-1)
            app = build(dims=4, iters=5, vectorized=vectorized, comm=comm)
            app.run(part)
            return app.weights

        for w in spmd_launch(ranks, body, timeout=30):
            assert np.allclose(w, expected, atol=1e-8)

    def test_model_persists_across_time_steps(self):
        # Two runs continue training the same model (in-situ across steps).
        flat, _ = make_logreg_samples(500, 3, seed=7)
        app = build(dims=3, iters=2)
        app.run(flat)
        w_after_step1 = app.weights.copy()
        app.run(flat)
        assert not np.allclose(app.weights, w_after_step1)
        # Equivalent to 4 iterations over the same data.
        assert np.allclose(app.weights, reference_logreg(flat, 3, 4), atol=1e-10)


class TestValidation:
    def test_chunk_size_checked(self):
        with pytest.raises(ValueError, match="chunk_size"):
            LogisticRegression(SchedArgs(chunk_size=3), dims=5)

    def test_bad_learning_rate(self):
        with pytest.raises(ValueError):
            build(lr=0.0)

    def test_bad_initial_weight_shape(self):
        app = LogisticRegression(
            SchedArgs(chunk_size=4, extra_data=np.zeros(7)), dims=3
        )
        with pytest.raises(ValueError, match="shape"):
            app.run(np.zeros(8))
