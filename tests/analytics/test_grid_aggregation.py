"""Grid aggregation (structural analytics needing positional info)."""

import numpy as np
import pytest

from repro.analytics import GridAggregation, reference_grid_aggregation
from repro.comm import spmd_launch
from repro.core import SchedArgs


def run_app(data, grid_size, vectorized=False, threads=1):
    app = GridAggregation(
        SchedArgs(vectorized=vectorized, num_threads=threads), grid_size=grid_size
    )
    app.run(data)
    out = np.zeros(-(-len(data) // grid_size))
    for k, obj in app.get_combination_map().items():
        out[k] = obj.total / obj.count
    return app, out


class TestCorrectness:
    def test_matches_reference(self, rng):
        data = rng.normal(size=1000)
        _, out = run_app(data, 37)
        assert np.allclose(out, reference_grid_aggregation(data, 37))

    def test_vectorized_equals_scalar(self, rng):
        data = rng.normal(size=500)
        _, scalar = run_app(data, 10)
        _, vector = run_app(data, 10, vectorized=True)
        assert np.allclose(scalar, vector)

    def test_partial_trailing_grid(self):
        data = np.array([1.0, 2.0, 3.0, 10.0])
        _, out = run_app(data, 3)
        assert out[0] == pytest.approx(2.0)
        assert out[1] == pytest.approx(10.0)  # average of the short grid

    def test_grid_size_one_is_identity(self, rng):
        data = rng.normal(size=50)
        _, out = run_app(data, 1)
        assert np.allclose(out, data)

    @pytest.mark.parametrize("ranks", [2, 3])
    @pytest.mark.parametrize("vectorized", [False, True])
    def test_rank_invariant_with_global_positions(self, rng, ranks, vectorized):
        """Grids spanning rank boundaries must still aggregate correctly —
        this is the positional-information property Section 5.8 claims."""
        data = rng.normal(size=400)
        expected = reference_grid_aggregation(data, 37)  # 37 does not divide evenly

        def body(comm):
            parts = np.array_split(data, comm.size)
            offset = sum(len(p) for p in parts[: comm.rank])
            app = GridAggregation(
                SchedArgs(vectorized=vectorized), comm, grid_size=37
            )
            app.run(parts[comm.rank], global_offset=offset, total_len=len(data))
            out = np.zeros(len(expected))
            for k, obj in app.get_combination_map().items():
                out[k] = obj.total / obj.count
            return out

        for out in spmd_launch(ranks, body, timeout=30):
            assert np.allclose(out, expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            GridAggregation(SchedArgs(), grid_size=0)
