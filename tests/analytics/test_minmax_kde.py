"""MinMax helper job and the value-grid KDE extension app."""

import numpy as np
import pytest

from repro.analytics import MinMax, ValueGridKDE, reference_value_grid_kde
from repro.comm import spmd_launch
from repro.core import SchedArgs


class TestMinMax:
    def test_single_rank(self, rng):
        data = rng.normal(size=500)
        app = MinMax(SchedArgs())
        app.run(data)
        lo, hi = app.value_range
        assert lo == data.min()
        assert hi == data.max()

    def test_vectorized_equals_scalar(self, rng):
        data = rng.normal(size=300)
        s, v = MinMax(SchedArgs()), MinMax(SchedArgs(vectorized=True))
        s.run(data)
        v.run(data)
        assert s.value_range == v.value_range

    def test_multi_rank(self, rng):
        data = rng.normal(size=400)

        def body(comm):
            part = np.array_split(data, comm.size)[comm.rank]
            app = MinMax(SchedArgs(), comm)
            app.run(part)
            return app.value_range

        for lo, hi in spmd_launch(3, body, timeout=30):
            assert lo == data.min()
            assert hi == data.max()

    def test_convert(self, rng):
        data = rng.normal(size=100)
        app = MinMax(SchedArgs())
        out = np.zeros(2)
        app.run(data, out)
        assert out[0] == data.min()
        assert out[1] == data.max()

    def test_single_element(self):
        app = MinMax(SchedArgs())
        app.run(np.array([7.5]))
        assert app.value_range == (7.5, 7.5)


class TestValueGridKDE:
    def test_matches_reference(self, rng):
        samples = rng.normal(size=800)
        grid = np.linspace(-4, 4, 41)
        app = ValueGridKDE(SchedArgs(), grid=grid, bandwidth=0.4)
        app.run2(samples)
        assert np.allclose(
            app.density(800), reference_value_grid_kde(samples, grid, 0.4), atol=1e-12
        )

    def test_density_integrates_to_about_one(self, rng):
        samples = rng.normal(size=5000)
        grid = np.linspace(-6, 6, 121)
        app = ValueGridKDE(SchedArgs(), grid=grid, bandwidth=0.3)
        app.run2(samples)
        density = app.density(5000)
        assert np.trapezoid(density, grid) == pytest.approx(1.0, abs=0.02)

    def test_multi_rank(self, rng):
        samples = rng.normal(size=600)
        grid = np.linspace(-4, 4, 21)
        expected = reference_value_grid_kde(samples, grid, 0.5)

        def body(comm):
            part = np.array_split(samples, comm.size)[comm.rank]
            app = ValueGridKDE(SchedArgs(), comm, grid=grid, bandwidth=0.5)
            app.run2(part)
            return app.density(600)

        for density in spmd_launch(2, body, timeout=30):
            assert np.allclose(density, expected, atol=1e-12)

    def test_cutoff_truncates_far_contributions(self, rng):
        grid = np.linspace(0, 10, 11)
        app = ValueGridKDE(SchedArgs(), grid=grid, bandwidth=0.1, cutoff=3.0)
        app.run2(np.array([5.0]))
        density = app.density(1)
        assert density[5] > 0
        assert density[0] == 0.0  # 50 bandwidths away: truncated

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            ValueGridKDE(SchedArgs(), grid=np.array([1.0, 0.5]), bandwidth=0.1)
        with pytest.raises(ValueError):
            ValueGridKDE(SchedArgs(), grid=np.linspace(0, 1, 5), bandwidth=0.0)
