"""Mutual information application."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import (
    MutualInformation,
    mutual_information_from_counts,
    reference_mutual_information,
)
from repro.comm import spmd_launch
from repro.core import SchedArgs


def build(bins=16, vectorized=False, comm=None):
    return MutualInformation(
        SchedArgs(chunk_size=2, vectorized=vectorized), comm,
        x_range=(-4, 4), y_range=(-4, 4), bins=bins,
    )


def correlated_pairs(rng, n, rho=0.8):
    x = rng.normal(size=n)
    y = rho * x + np.sqrt(1 - rho**2) * rng.normal(size=n)
    return np.column_stack([x, y]).reshape(-1)


class TestCorrectness:
    def test_matches_reference(self, rng):
        xy = correlated_pairs(rng, 2000)
        app = build()
        app.run(xy)
        assert app.mutual_information() == pytest.approx(
            reference_mutual_information(xy, (-4, 4), (-4, 4), 16), abs=1e-12
        )

    def test_vectorized_equals_scalar(self, rng):
        xy = correlated_pairs(rng, 1500)
        scalar, vector = build(), build(vectorized=True)
        scalar.run(xy)
        vector.run(xy)
        assert np.array_equal(scalar.joint_counts(), vector.joint_counts())

    def test_independent_variables_have_near_zero_mi(self, rng):
        xy = np.column_stack([rng.normal(size=20000), rng.normal(size=20000)]).reshape(-1)
        app = build(bins=8)
        app.run(xy)
        assert app.mutual_information() < 0.05

    def test_identical_variables_have_high_mi(self, rng):
        x = rng.normal(size=5000)
        xy = np.column_stack([x, x]).reshape(-1)
        app = build(bins=8)
        app.run(xy)
        # MI(X;X) = H(X) which for 8 near-uniform buckets approaches ln(8).
        assert app.mutual_information() > 1.0

    def test_correlation_increases_mi(self, rng):
        weak = build(bins=12)
        strong = build(bins=12)
        weak.run(correlated_pairs(rng, 8000, rho=0.2))
        strong.run(correlated_pairs(rng, 8000, rho=0.95))
        assert strong.mutual_information() > weak.mutual_information()

    @pytest.mark.parametrize("ranks", [2, 3])
    def test_rank_invariant(self, rng, ranks):
        xy = correlated_pairs(rng, 1200)
        expected = reference_mutual_information(xy, (-4, 4), (-4, 4), 16)

        def body(comm):
            pairs = xy.reshape(-1, 2)
            part = np.array_split(pairs, comm.size)[comm.rank].reshape(-1)
            app = build(comm=comm)
            app.run(part)
            return app.mutual_information()

        for mi in spmd_launch(ranks, body, timeout=30):
            assert mi == pytest.approx(expected, abs=1e-12)


class TestValidation:
    def test_chunk_size_must_be_two(self):
        with pytest.raises(ValueError, match="chunk_size"):
            MutualInformation(
                SchedArgs(chunk_size=1), x_range=(0, 1), y_range=(0, 1), bins=4
            )

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            MutualInformation(
                SchedArgs(chunk_size=2), x_range=(1, 1), y_range=(0, 1), bins=4
            )

    def test_empty_joint_rejected(self):
        with pytest.raises(ValueError):
            mutual_information_from_counts(np.zeros((4, 4)))


@settings(max_examples=50, deadline=None)
@given(
    counts=st.lists(
        st.lists(st.integers(min_value=0, max_value=50), min_size=3, max_size=3),
        min_size=3, max_size=3,
    )
)
def test_mi_is_nonnegative_property(counts):
    joint = np.array(counts)
    if joint.sum() == 0:
        return
    assert mutual_information_from_counts(joint) >= -1e-12


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=2, max_value=12))
def test_mi_of_product_distribution_is_zero(n):
    """Rank-one joint counts (independent marginals) give exactly MI = 0."""
    row = np.arange(1, n + 1, dtype=float)
    joint = np.outer(row, row)
    assert mutual_information_from_counts(joint) == pytest.approx(0.0, abs=1e-12)
